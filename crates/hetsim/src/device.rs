//! Device descriptors and presets.
//!
//! Preset numbers are order-of-magnitude figures for 2018-era hardware
//! (the paper's publication year): a desktop CPU, an integrated GPU
//! sharing host memory, a discrete GPU behind PCIe 3.0, and an FPGA
//! profile with modest clocks but deep pipelining on streaming kernels.

use serde::{Deserialize, Serialize};

/// The kind of simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Host CPU.
    Cpu,
    /// Integrated GPU (shares host memory; no transfer cost).
    IntegratedGpu,
    /// Discrete GPU behind a host link.
    DiscreteGpu,
    /// FPGA streaming profile.
    Fpga,
}

/// A host link (PCIe-style) for devices with private memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Per-transfer latency in nanoseconds.
    pub latency_ns: u64,
}

/// A simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Display name.
    pub name: String,
    /// Device kind.
    pub kind: DeviceKind,
    /// Data-parallel lanes executing concurrently.
    pub parallelism: u32,
    /// Per-lane throughput relative to one host CPU lane (1.0 = host).
    pub lane_speed: f64,
    /// Kernel launch latency in nanoseconds (0 for the host CPU).
    pub launch_ns: u64,
    /// Private-memory bandwidth in bytes/second (bounds streaming kernels).
    pub mem_bandwidth_bps: f64,
    /// Host link; `None` means host-shared memory (no transfers).
    pub link: Option<Link>,
}

impl DeviceSpec {
    /// A desktop-class 8-core CPU.
    pub fn cpu() -> DeviceSpec {
        DeviceSpec {
            name: "cpu".into(),
            kind: DeviceKind::Cpu,
            parallelism: 8,
            lane_speed: 1.0,
            launch_ns: 0,
            mem_bandwidth_bps: 40e9,
            link: None,
        }
    }

    /// An integrated GPU: many slow lanes, shared memory, cheap launch.
    pub fn integrated_gpu() -> DeviceSpec {
        DeviceSpec {
            name: "igpu".into(),
            kind: DeviceKind::IntegratedGpu,
            parallelism: 384,
            lane_speed: 0.08,
            launch_ns: 5_000,
            mem_bandwidth_bps: 40e9,
            link: None,
        }
    }

    /// A discrete GPU: thousands of slow lanes, fast private memory,
    /// expensive launch, PCIe 3.0 x16 link.
    pub fn discrete_gpu() -> DeviceSpec {
        DeviceSpec {
            name: "dgpu".into(),
            kind: DeviceKind::DiscreteGpu,
            parallelism: 2048,
            lane_speed: 0.12,
            launch_ns: 20_000,
            mem_bandwidth_bps: 320e9,
            link: Some(Link {
                bandwidth_bps: 12e9,
                latency_ns: 10_000,
            }),
        }
    }

    /// An FPGA streaming profile: modest clock, very deep pipelining
    /// (modeled as wide parallelism at low lane speed), slow link.
    pub fn fpga() -> DeviceSpec {
        DeviceSpec {
            name: "fpga".into(),
            kind: DeviceKind::Fpga,
            parallelism: 512,
            lane_speed: 0.05,
            launch_ns: 50_000,
            mem_bandwidth_bps: 19e9,
            link: Some(Link {
                bandwidth_bps: 7.8e9,
                latency_ns: 15_000,
            }),
        }
    }

    /// Effective compute throughput in "host-lane equivalents".
    pub fn effective_lanes(&self) -> f64 {
        self.parallelism as f64 * self.lane_speed
    }

    /// True when operands must be copied over a link before execution.
    pub fn needs_transfer(&self) -> bool {
        self.link.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let cpu = DeviceSpec::cpu();
        let dgpu = DeviceSpec::discrete_gpu();
        let igpu = DeviceSpec::integrated_gpu();
        // Discrete GPU has the most effective compute.
        assert!(dgpu.effective_lanes() > cpu.effective_lanes());
        assert!(dgpu.effective_lanes() > igpu.effective_lanes());
        // But also the launch/transfer overheads.
        assert!(dgpu.launch_ns > cpu.launch_ns);
        assert!(dgpu.needs_transfer());
        assert!(!cpu.needs_transfer());
        assert!(!igpu.needs_transfer());
        assert!(DeviceSpec::fpga().needs_transfer());
    }

    #[test]
    fn clone_and_eq() {
        let d = DeviceSpec::discrete_gpu();
        assert_eq!(d, d.clone());
        assert_ne!(d, DeviceSpec::cpu());
    }
}
