//! The device cost model and virtual clock.
//!
//! Execution of a fragment over a chunk on a device costs, in virtual
//! nanoseconds:
//!
//! ```text
//! launch + transfer_in(bytes_in) + max(compute, memory) + transfer_out(bytes_out)
//!
//! compute = lanes_processed · ops_per_lane · OP_NS / effective_lanes
//! memory  = (bytes_in + bytes_out) / mem_bandwidth
//! ```
//!
//! `max(compute, memory)` is the classical roofline: a kernel is bound by
//! whichever resource saturates first. Transfers apply only to devices with
//! private memory (discrete GPU, FPGA).

use crate::device::DeviceSpec;

/// Virtual cost of one host-lane-equivalent operation, in nanoseconds.
/// Roughly one simple ALU op per cycle at ~1 GHz per "host lane".
pub const OP_NS: f64 = 1.0;

/// An itemized virtual cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Kernel launch latency.
    pub launch_ns: u64,
    /// Host→device transfer.
    pub transfer_in_ns: u64,
    /// Compute/memory roofline time.
    pub exec_ns: u64,
    /// Device→host transfer of results.
    pub transfer_out_ns: u64,
}

impl CostBreakdown {
    /// Total virtual nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.launch_ns + self.transfer_in_ns + self.exec_ns + self.transfer_out_ns
    }
}

/// Price one fragment execution on `device`.
///
/// * `lanes` — lanes processed (chunk length or selected count),
/// * `ops_per_lane` — trace operations per lane,
/// * `bytes_in` / `bytes_out` — operand and result footprints.
pub fn price(
    device: &DeviceSpec,
    lanes: usize,
    ops_per_lane: usize,
    bytes_in: usize,
    bytes_out: usize,
) -> CostBreakdown {
    let transfer = |bytes: usize| -> u64 {
        match &device.link {
            None => 0,
            Some(link) => {
                if bytes == 0 {
                    0
                } else {
                    link.latency_ns + (bytes as f64 / link.bandwidth_bps * 1e9) as u64
                }
            }
        }
    };
    let compute_ns = lanes as f64 * ops_per_lane.max(1) as f64 * OP_NS / device.effective_lanes();
    let memory_ns = (bytes_in + bytes_out) as f64 / device.mem_bandwidth_bps * 1e9;
    CostBreakdown {
        launch_ns: device.launch_ns,
        transfer_in_ns: transfer(bytes_in),
        exec_ns: compute_ns.max(memory_ns) as u64,
        transfer_out_ns: transfer(bytes_out),
    }
}

/// A per-device virtual clock (monotone accumulator).
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    total_ns: u64,
    events: u64,
}

impl VirtualClock {
    /// A fresh clock at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Charge a cost to the clock.
    pub fn charge(&mut self, cost: &CostBreakdown) {
        self.total_ns += cost.total_ns();
        self.events += 1;
    }

    /// Charge raw nanoseconds.
    pub fn charge_ns(&mut self, ns: u64) {
        self.total_ns += ns;
        self.events += 1;
    }

    /// Accumulated virtual nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Number of charges.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn cpu_small_input_beats_dgpu() {
        let cpu = DeviceSpec::cpu();
        let dgpu = DeviceSpec::discrete_gpu();
        // 1k rows, 4 ops, 8 KiB in/out: launch+transfer dominate the GPU.
        let c = price(&cpu, 1024, 4, 8192, 8192).total_ns();
        let g = price(&dgpu, 1024, 4, 8192, 8192).total_ns();
        assert!(c < g, "cpu {c} vs dgpu {g}");
    }

    #[test]
    fn dgpu_large_input_beats_cpu() {
        let cpu = DeviceSpec::cpu();
        let dgpu = DeviceSpec::discrete_gpu();
        // 64M rows, 16 ops each: compute dwarfs transfer.
        let n = 64 * 1024 * 1024;
        let bytes = n * 8;
        let c = price(&cpu, n, 16, bytes, bytes).total_ns();
        let g = price(&dgpu, n, 16, bytes, bytes).total_ns();
        assert!(g < c, "dgpu {g} vs cpu {c}");
    }

    #[test]
    fn crossover_exists_and_is_monotone() {
        let cpu = DeviceSpec::cpu();
        let dgpu = DeviceSpec::discrete_gpu();
        let mut last_winner_cpu = true;
        let mut crossed = false;
        for exp in 8..=26 {
            let n = 1usize << exp;
            let bytes = n * 8;
            let c = price(&cpu, n, 16, bytes, bytes).total_ns();
            let g = price(&dgpu, n, 16, bytes, bytes).total_ns();
            let cpu_wins = c <= g;
            if last_winner_cpu && !cpu_wins {
                crossed = true;
            }
            // Once the GPU wins it keeps winning (monotone crossover).
            if !last_winner_cpu {
                assert!(!cpu_wins, "winner flipped back at n=2^{exp}");
            }
            last_winner_cpu = cpu_wins;
        }
        assert!(crossed, "no CPU→GPU crossover found in sweep");
    }

    #[test]
    fn integrated_gpu_has_no_transfer_cost() {
        let igpu = DeviceSpec::integrated_gpu();
        let c = price(&igpu, 1024, 4, 1 << 20, 1 << 20);
        assert_eq!(c.transfer_in_ns, 0);
        assert_eq!(c.transfer_out_ns, 0);
        assert!(c.launch_ns > 0);
    }

    #[test]
    fn memory_bound_kernels_hit_the_roofline() {
        let cpu = DeviceSpec::cpu();
        // 1 op per lane over a lot of bytes: memory-bound.
        let n = 1 << 24;
        let bytes = n * 8;
        let c = price(&cpu, n, 1, bytes, bytes);
        let mem_ns = ((2 * bytes) as f64 / cpu.mem_bandwidth_bps * 1e9) as u64;
        assert_eq!(c.exec_ns, mem_ns);
    }

    #[test]
    fn virtual_clock_accumulates() {
        let mut clock = VirtualClock::new();
        let c = price(&DeviceSpec::cpu(), 1024, 4, 8192, 8192);
        clock.charge(&c);
        clock.charge_ns(100);
        assert_eq!(clock.total_ns(), c.total_ns() + 100);
        assert_eq!(clock.events(), 2);
    }

    #[test]
    fn zero_work_costs_only_launch() {
        let dgpu = DeviceSpec::discrete_gpu();
        let c = price(&dgpu, 0, 0, 0, 0);
        assert_eq!(c.transfer_in_ns, 0);
        assert_eq!(c.total_ns(), dgpu.launch_ns);
    }
}
