//! Device executor: run a compiled trace "on" a simulated device.
//!
//! The trace executes on the host — sharded across host threads for wide
//! devices, so big chunks also gain real wall-clock speedup — while the
//! device's [`crate::cost`] model produces the virtual time the placement
//! policy consumes. Fold outputs merge across shards because the DSL's
//! `fold` carries reassociable reductions by construction (Table I's
//! design choice paying off: parallelization is loop-boundary
//! manipulation).

use adaptvm_jit::compiler::CompiledTrace;
use adaptvm_jit::ir::TraceResult;
use adaptvm_jit::JitError;
use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::sel::SelVec;

use adaptvm_dsl::ast::FoldFn;

use crate::cost::{price, CostBreakdown};
use crate::device::DeviceSpec;

/// Result of one device execution.
#[derive(Debug, Clone)]
pub struct DeviceRun {
    /// The trace outputs.
    pub result: TraceResult,
    /// Itemized virtual cost on the device.
    pub cost: CostBreakdown,
}

/// Shards used for host-side parallel execution of wide devices.
fn host_shards(device: &DeviceSpec, n: usize) -> usize {
    if device.parallelism <= 1 || n < 16 * 1024 {
        1
    } else {
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        host.min(8)
    }
}

/// Execute `trace` over `inputs` on `device`.
///
/// `candidates` restricts lanes (pending selection). Returns outputs plus
/// the itemized virtual cost.
pub fn run_trace_on(
    device: &DeviceSpec,
    trace: &CompiledTrace,
    inputs: &[&Array],
    candidates: Option<&SelVec>,
) -> Result<DeviceRun, JitError> {
    let n = inputs.first().map_or(0, |a| a.len());
    let lanes = candidates.map_or(n, SelVec::len);
    let bytes_in = inputs.iter().map(|a| a.byte_size()).sum::<usize>();

    let shards = host_shards(device, lanes);
    let result = if shards <= 1 || candidates.is_some() {
        trace.run(inputs, candidates)?
    } else {
        run_sharded(trace, inputs, n, shards)?
    };

    let bytes_out = result
        .arrays
        .iter()
        .map(|(_, a)| a.byte_size())
        .sum::<usize>();
    let cost = price(device, lanes, trace.ir.op_count(), bytes_in, bytes_out);
    Ok(DeviceRun { result, cost })
}

fn run_sharded(
    trace: &CompiledTrace,
    inputs: &[&Array],
    n: usize,
    shards: usize,
) -> Result<TraceResult, JitError> {
    let stride = n.div_ceil(shards);
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + stride).min(n);
        ranges.push((start, end));
        start = end;
    }
    // Slice inputs per shard (copy; the shards then run in parallel).
    let shard_inputs: Vec<Vec<Array>> = ranges
        .iter()
        .map(|&(s, e)| inputs.iter().map(|a| a.slice(s, e - s)).collect())
        .collect();

    let partials: Vec<Result<TraceResult, JitError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = shard_inputs
            .iter()
            .map(|cols| {
                scope.spawn(move |_| {
                    let refs: Vec<&Array> = cols.iter().collect();
                    trace.run(&refs, None)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut merged: Option<TraceResult> = None;
    for (shard_idx, partial) in partials.into_iter().enumerate() {
        let partial = partial?;
        let offset = ranges[shard_idx].0 as u32;
        match &mut merged {
            None => {
                let mut first = partial;
                // Offset of shard 0 is zero; adjust anyway for generality.
                for (_, _, sel) in &mut first.sels {
                    *sel = SelVec::new(sel.indices().iter().map(|&i| i + offset).collect());
                }
                merged = Some(first);
            }
            Some(acc) => {
                for ((_, dst), (_, src)) in acc.arrays.iter_mut().zip(partial.arrays) {
                    dst.extend(&src)
                        .map_err(|e| JitError::Unsupported(format!("shard merge failed: {e}")))?;
                }
                for ((_, _, dst), (_, _, src)) in acc.sels.iter_mut().zip(partial.sels) {
                    let mut indices = dst.indices().to_vec();
                    indices.extend(src.indices().iter().map(|&i| i + offset));
                    *dst = SelVec::new(indices);
                }
                for (i, (_, src)) in partial.scalars.into_iter().enumerate() {
                    let fold_spec = trace
                        .ir
                        .outputs
                        .iter()
                        .filter_map(|o| match o {
                            adaptvm_jit::ir::OutputSpec::Fold { f, .. } => Some(*f),
                            _ => None,
                        })
                        .nth(i)
                        .expect("fold spec exists");
                    let dst = &mut acc.scalars[i].1;
                    *dst = merge_fold(fold_spec, dst, &src);
                }
            }
        }
    }
    Ok(merged.unwrap_or_default())
}

fn merge_fold(f: FoldFn, a: &Scalar, b: &Scalar) -> Scalar {
    match (f, a, b) {
        (FoldFn::Sum | FoldFn::Count, Scalar::I64(x), Scalar::I64(y)) => {
            Scalar::I64(x.wrapping_add(*y))
        }
        (FoldFn::Sum, Scalar::F64(x), Scalar::F64(y)) => Scalar::F64(x + y),
        (FoldFn::Min, Scalar::I64(x), Scalar::I64(y)) => Scalar::I64(*x.min(y)),
        (FoldFn::Min, Scalar::F64(x), Scalar::F64(y)) => Scalar::F64(x.min(*y)),
        (FoldFn::Max, Scalar::I64(x), Scalar::I64(y)) => Scalar::I64(*x.max(y)),
        (FoldFn::Max, Scalar::F64(x), Scalar::F64(y)) => Scalar::F64(x.max(*y)),
        // Count folds with non-i64 representation or mixed widths: fall
        // back to the left value (cannot occur for builder-produced traces,
        // which accumulate counts as I64).
        _ => a.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_dsl::programs;
    use adaptvm_jit::compiler::{compile, CostModel};
    use adaptvm_jit::pipeline::whole_pipeline_fragment;
    use std::collections::HashMap;

    fn fig2_trace() -> CompiledTrace {
        let frag = whole_pipeline_fragment(&programs::fig2_example(), &HashMap::new()).unwrap();
        compile(frag, &CostModel::untimed())
    }

    fn filter_sum_trace() -> CompiledTrace {
        let frag =
            whole_pipeline_fragment(&programs::filter_sum(0, i64::MAX), &HashMap::new()).unwrap();
        compile(frag, &CostModel::untimed())
    }

    #[test]
    fn cpu_run_matches_direct_execution() {
        let trace = fig2_trace();
        let x = Array::from(vec![1i64, -2, 3]);
        let direct = trace.run(&[&x], None).unwrap();
        let run = run_trace_on(&DeviceSpec::cpu(), &trace, &[&x], None).unwrap();
        assert_eq!(run.result, direct);
        assert!(run.cost.total_ns() > 0);
        assert_eq!(run.cost.transfer_in_ns, 0);
    }

    #[test]
    fn sharded_execution_matches_sequential() {
        let trace = filter_sum_trace();
        // Large enough to trigger sharding on the wide device.
        let data: Vec<i64> = (0..100_000).map(|i| (i % 7) - 3).collect();
        let x = Array::from(data);
        let seq = trace.run(&[&x], None).unwrap();
        let run = run_trace_on(&DeviceSpec::discrete_gpu(), &trace, &[&x], None).unwrap();
        // Fold results merge exactly.
        assert_eq!(run.result.scalars, seq.scalars);
        // Compacted arrays concatenate in order.
        assert_eq!(run.result.arrays, seq.arrays);
        // Selections match with offsets applied.
        assert_eq!(run.result.sels, seq.sels);
    }

    #[test]
    fn device_costs_differ() {
        let trace = fig2_trace();
        let x = Array::from(vec![5i64; 1024]);
        let cpu = run_trace_on(&DeviceSpec::cpu(), &trace, &[&x], None).unwrap();
        let dgpu = run_trace_on(&DeviceSpec::discrete_gpu(), &trace, &[&x], None).unwrap();
        // Small chunk: CPU wins on virtual time.
        assert!(cpu.cost.total_ns() < dgpu.cost.total_ns());
        assert!(dgpu.cost.transfer_in_ns > 0);
        assert!(dgpu.cost.transfer_out_ns > 0);
    }

    #[test]
    fn candidates_price_selected_lanes_only() {
        let trace = fig2_trace();
        let x = Array::from((0..1000i64).collect::<Vec<_>>());
        let sel = SelVec::new(vec![1, 5, 9]);
        let run = run_trace_on(&DeviceSpec::cpu(), &trace, &[&x], Some(&sel)).unwrap();
        // Only 3 lanes of work: a and b reflect the 3 candidates.
        assert_eq!(run.result.arrays[0].1.len(), 3);
    }

    #[test]
    fn empty_input() {
        let trace = fig2_trace();
        let x = Array::from(Vec::<i64>::new());
        let run = run_trace_on(&DeviceSpec::integrated_gpu(), &trace, &[&x], None).unwrap();
        assert_eq!(run.result.arrays[0].1.len(), 0);
        assert_eq!(run.cost.exec_ns, 0);
    }
}
