//! Simulated heterogeneous device substrate (§IV target 3).
//!
//! The paper's third research target runs the VM "on multiple hardware
//! platforms, making adaptive decisions which strategy to use … but also on
//! which hardware". This environment has no GPU or FPGA, so the substrate
//! is **simulated** (see DESIGN.md §2): a [`device::DeviceSpec`] describes
//! a platform's parallelism, per-lane throughput, memory bandwidth, kernel
//! launch latency and host link; [`cost`] turns observed work into
//! **virtual nanoseconds** on that device; [`exec`] actually executes the
//! trace (on the host, optionally sharded across host cores) and charges
//! the virtual clock.
//!
//! What the simulation preserves — and what the placement experiments (B6)
//! measure — is the *decision structure*: small inputs lose on launch +
//! PCIe-transfer latency, large streaming inputs win on parallelism and
//! memory bandwidth, and the crossover moves with transfer volume. Those
//! are properties of the cost model, not of real silicon, and they are
//! exactly the inputs the paper's adaptive placement policy needs.

pub mod cost;
pub mod device;
pub mod exec;

pub use cost::{CostBreakdown, VirtualClock};
pub use device::{DeviceKind, DeviceSpec};
pub use exec::{run_trace_on, DeviceRun};
