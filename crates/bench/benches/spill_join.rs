//! B13 — out-of-core joins: in-memory vs. grace-hash spill overhead.
//!
//! Sweeps the memory budget from "everything fits" to "every partition
//! spills and recurses", printing an overhead table (median-of-3 wall
//! times, spill stats, slowdown vs. the in-memory join) plus a criterion
//! group over the two extremes.
//!
//! `ADAPTVM_BENCH_QUICK=1` shrinks everything to a CI smoke run that
//! still exercises the spill path (tiny budget ⇒ real run files).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

use adaptvm_parallel::MemoryBudget;
use adaptvm_relational::parallel::{parallel_hash_join, ParallelOpts};
use adaptvm_relational::spill::{parallel_hash_join_spill, INT_BUILD_ROW_BYTES};
use adaptvm_storage::Array;

fn quick() -> bool {
    std::env::var_os("ADAPTVM_BENCH_QUICK").is_some()
}

fn bench(c: &mut Criterion) {
    let rows: usize = if quick() { 40_000 } else { 800_000 };
    let workers = 4;
    let morsel_rows = 16 * 1024;
    let distinct = (rows / 4) as i64;
    let build_keys = Array::from(
        (0..rows as i64)
            .map(|i| (i * 7) % distinct)
            .collect::<Vec<_>>(),
    );
    let build_pays = Array::from((0..rows as i64).collect::<Vec<_>>());
    let probe_keys: Vec<i64> = (0..rows as i64)
        .map(|i| (i * 13) % (2 * distinct))
        .collect();
    let footprint = rows * INT_BUILD_ROW_BYTES;

    // Criterion group over the two extremes: unconstrained vs. a budget
    // that spills most of the build side.
    let mut g = c.benchmark_group("spill_join");
    g.sample_size(10);
    for (label, limit) in [("in_memory", usize::MAX), ("spill_87pct", footprint / 8)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &limit, |b, &limit| {
            b.iter(|| {
                let budget = MemoryBudget::bytes(limit);
                parallel_hash_join_spill(
                    &build_keys,
                    &build_pays,
                    &probe_keys,
                    false,
                    ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
                )
                .unwrap()
            })
        });
    }
    g.finish();

    // Overhead table: median-of-3, sweeping the budget, verifying
    // bit-identity against the in-memory join at every step.
    let (_, reference) = parallel_hash_join(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(workers, morsel_rows),
    )
    .unwrap();
    println!(
        "\n-- spill overhead table ({rows} build rows, footprint ≈ {:.1} MiB)",
        footprint as f64 / (1024.0 * 1024.0)
    );
    println!(
        "   {:>10} {:>10} {:>8} {:>11} {:>6} {:>8}",
        "budget", "median", "spills", "written", "depth", "vs mem"
    );
    let mut base = None;
    for (label, limit) in [
        ("unlimited", usize::MAX),
        ("50%", footprint / 2),
        ("12.5%", footprint / 8),
        ("1%", footprint / 100),
    ] {
        let mut runs: Vec<(f64, _)> = (0..3)
            .map(|_| {
                let budget = MemoryBudget::bytes(limit);
                let t0 = Instant::now();
                let (out, spill) = parallel_hash_join_spill(
                    &build_keys,
                    &build_pays,
                    &probe_keys,
                    false,
                    ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
                )
                .unwrap();
                assert_eq!(out.indices, reference.indices, "budget {label} diverged");
                assert_eq!(out.payloads, reference.payloads, "budget {label} diverged");
                assert_eq!(budget.used(), 0);
                (t0.elapsed().as_secs_f64(), spill)
            })
            .collect();
        runs.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        let (t, spill) = &runs[1];
        let base_t = *base.get_or_insert(*t);
        println!(
            "   {:>10} {:>8.2}ms {:>8} {:>10.1}K {:>6} {:>7.2}x",
            label,
            t * 1e3,
            spill.partitions_spilled,
            spill.bytes_written as f64 / 1024.0,
            spill.max_recursion_depth,
            t / base_t,
        );
    }
    println!("   every budgeted run bit-identical to the in-memory join ✓");
}

criterion_group!(benches, bench);
criterion_main!(benches);
