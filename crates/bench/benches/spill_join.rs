//! B13 — out-of-core operators: in-memory vs. grace-hash spill overhead.
//!
//! Sweeps the memory budget from "everything fits" to "every partition
//! spills and recurses" for all three [`SpillableOp`] operators — join,
//! group-by, and external sort — printing an overhead table
//! (median-of-3 wall times, spill stats, slowdown vs. in-memory) plus a
//! criterion group over the two join extremes. A counting global
//! allocator reports heap allocations cold (first spilled query, scratch
//! arenas freshly created) vs. warm (arenas reused from the pool).
//!
//! `ADAPTVM_BENCH_QUICK=1` shrinks everything to a CI smoke run that
//! still exercises the spill path (tiny budget ⇒ real run files).
//!
//! [`SpillableOp`]: adaptvm_parallel::SpillableOp

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use adaptvm_parallel::{scratch_stats, MemoryBudget, SpillStats};
use adaptvm_relational::parallel::{parallel_hash_join, ParallelOpts};
use adaptvm_relational::sort::{external_sort, SORT_ROW_BYTES};
use adaptvm_relational::spill::{
    parallel_hash_aggregate_spill, parallel_hash_join_spill, AGG_ROW_BYTES, INT_BUILD_ROW_BYTES,
};
use adaptvm_storage::{gen, Array};

/// Counts every heap allocation so the spill paths' cold-vs-warm scratch
/// reuse shows up as a concrete number, not just pool statistics.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn quick() -> bool {
    std::env::var_os("ADAPTVM_BENCH_QUICK").is_some()
}

fn median3<T>(mut runs: Vec<(f64, T)>) -> (f64, T) {
    runs.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    runs.swap_remove(1)
}

fn print_stats_row(op: &str, label: &str, t: f64, spill: &SpillStats, base: f64) {
    println!(
        "   {op:>9} {label:>10} {:>8.2}ms {:>8} {:>10.1}K {:>6} {:>7.2}x",
        t * 1e3,
        spill.partitions_spilled,
        spill.bytes_written as f64 / 1024.0,
        spill.max_recursion_depth,
        t / base,
    );
}

fn bench(c: &mut Criterion) {
    let rows: usize = if quick() { 40_000 } else { 800_000 };
    let workers = 4;
    let morsel_rows = 16 * 1024;
    let distinct = (rows / 4) as i64;
    let build_keys = Array::from(
        (0..rows as i64)
            .map(|i| (i * 7) % distinct)
            .collect::<Vec<_>>(),
    );
    let build_pays = Array::from((0..rows as i64).collect::<Vec<_>>());
    let probe_keys: Vec<i64> = (0..rows as i64)
        .map(|i| (i * 13) % (2 * distinct))
        .collect();
    let footprint = rows * INT_BUILD_ROW_BYTES;

    // Cold vs. warm scratch arenas: the first spilled query creates its
    // partition scratch buffers, every later one leases them back from
    // the pool. The allocation counter makes the saving concrete. This
    // runs first so the pool really is cold.
    {
        let budget_limit = footprint / 8;
        let scratch0 = scratch_stats();
        let a0 = allocations();
        let budget = MemoryBudget::bytes(budget_limit);
        parallel_hash_join_spill(
            &build_keys,
            &build_pays,
            &probe_keys,
            false,
            ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
        )
        .unwrap();
        let cold = allocations() - a0;
        let a1 = allocations();
        let budget = MemoryBudget::bytes(budget_limit);
        parallel_hash_join_spill(
            &build_keys,
            &build_pays,
            &probe_keys,
            false,
            ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
        )
        .unwrap();
        let warm = allocations() - a1;
        let scratch1 = scratch_stats();
        println!(
            "\n-- scratch arena reuse (budget 12.5%): {cold} allocations cold, {warm} warm \
             ({:+.1}%)",
            (warm as f64 - cold as f64) / cold as f64 * 100.0
        );
        println!(
            "   scratch pool: {} arenas created, {} leased back",
            scratch1.created - scratch0.created,
            scratch1.reused - scratch0.reused,
        );
    }

    // Criterion group over the two extremes: unconstrained vs. a budget
    // that spills most of the build side.
    let mut g = c.benchmark_group("spill_join");
    g.sample_size(10);
    for (label, limit) in [("in_memory", usize::MAX), ("spill_87pct", footprint / 8)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &limit, |b, &limit| {
            b.iter(|| {
                let budget = MemoryBudget::bytes(limit);
                parallel_hash_join_spill(
                    &build_keys,
                    &build_pays,
                    &probe_keys,
                    false,
                    ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
                )
                .unwrap()
            })
        });
    }
    g.finish();

    // Overhead table: median-of-3, sweeping the budget across all three
    // spillable operators, verifying each against its in-memory oracle.
    let (_, reference) = parallel_hash_join(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(workers, morsel_rows),
    )
    .unwrap();
    let table = gen::measurements(rows, (rows / 16).max(1), 42);
    let sort_keys: Vec<i64> = (0..rows as i64)
        .map(|i| (i * 2_654_435_761) % 1_000_003)
        .collect();
    let sort_pays: Vec<i64> = (0..rows as i64).collect();

    println!(
        "\n-- spill overhead table ({rows} rows/operator, join footprint ≈ {:.1} MiB)",
        footprint as f64 / (1024.0 * 1024.0)
    );
    println!(
        "   {:>9} {:>10} {:>10} {:>8} {:>11} {:>6} {:>8}",
        "operator", "budget", "median", "spills", "written", "depth", "vs mem"
    );
    let budgets = [
        ("unlimited", usize::MAX),
        ("50%", 2),
        ("12.5%", 8),
        ("1%", 100),
    ];

    let mut base = None;
    for (label, div) in budgets {
        let limit = if div == usize::MAX {
            div
        } else {
            footprint / div
        };
        let (t, spill) = median3(
            (0..3)
                .map(|_| {
                    let budget = MemoryBudget::bytes(limit);
                    let t0 = Instant::now();
                    let (out, spill) = parallel_hash_join_spill(
                        &build_keys,
                        &build_pays,
                        &probe_keys,
                        false,
                        ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
                    )
                    .unwrap();
                    assert_eq!(out.indices, reference.indices, "budget {label} diverged");
                    assert_eq!(out.payloads, reference.payloads, "budget {label} diverged");
                    assert_eq!(budget.used(), 0);
                    (t0.elapsed().as_secs_f64(), spill)
                })
                .collect(),
        );
        let base_t = *base.get_or_insert(t);
        print_stats_row("join", label, t, &spill, base_t);
    }

    let agg_footprint = rows * AGG_ROW_BYTES;
    let mut base = None;
    for (label, div) in budgets {
        let limit = if div == usize::MAX {
            div
        } else {
            agg_footprint / div
        };
        let (t, spill) = median3(
            (0..3)
                .map(|_| {
                    let budget = MemoryBudget::bytes(limit);
                    let t0 = Instant::now();
                    let (_, spill) = parallel_hash_aggregate_spill(
                        &table,
                        "group",
                        "value",
                        ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
                    )
                    .unwrap();
                    assert_eq!(budget.used(), 0);
                    (t0.elapsed().as_secs_f64(), spill)
                })
                .collect(),
        );
        let base_t = *base.get_or_insert(t);
        print_stats_row("group-by", label, t, &spill, base_t);
    }

    let sort_footprint = rows * SORT_ROW_BYTES;
    let mut base = None;
    for (label, div) in budgets {
        let limit = if div == usize::MAX {
            div
        } else {
            sort_footprint / div
        };
        let (t, spill) = median3(
            (0..3)
                .map(|_| {
                    let budget = MemoryBudget::bytes(limit);
                    let t0 = Instant::now();
                    let (_, spill) = external_sort(
                        &sort_keys,
                        &sort_pays,
                        ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
                    )
                    .unwrap();
                    assert_eq!(budget.used(), 0);
                    (t0.elapsed().as_secs_f64(), spill)
                })
                .collect(),
        );
        let base_t = *base.get_or_insert(t);
        print_stats_row("sort", label, t, &spill, base_t);
    }
    println!("   every budgeted run bit-identical to its in-memory oracle ✓");
}

criterion_group!(benches, bench);
criterion_main!(benches);
