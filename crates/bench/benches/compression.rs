//! B4 — scan strategies over per-block compressed columns.

use adaptvm_relational::compressed_exec::{sum_where_gt, ScanStrategy};
use adaptvm_storage::block::{Block, BlockColumn};
use adaptvm_storage::compress::Scheme;
use adaptvm_storage::gen;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn column() -> BlockColumn {
    let mut col = BlockColumn::new();
    for b in 0..128usize {
        let (data, scheme) = match b % 4 {
            0 => (gen::runs_i64(4096, 64, b as u64), Scheme::Rle),
            1 => (gen::categorical_i64(4096, 5, b as u64), Scheme::Dict),
            2 => (
                gen::uniform_i64(4096, 1000, 1255, b as u64),
                Scheme::ForPack,
            ),
            _ => (
                gen::uniform_i64(4096, -1_000_000, 1_000_000, b as u64),
                Scheme::Plain,
            ),
        };
        col.push_block(Block::compress(&data, scheme).unwrap());
    }
    col
}

fn bench(c: &mut Criterion) {
    let col = column();
    let mut g = c.benchmark_group("compression");
    g.throughput(Throughput::Elements(col.rows() as u64));
    for (name, strategy) in [
        ("decompress", ScanStrategy::Decompress),
        ("compressed", ScanStrategy::Compressed),
        ("adaptive", ScanStrategy::Adaptive),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| sum_where_gt(&col, 500, strategy).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
