//! B10 — morsel-driven parallel scaling: TPC-H Q1/Q6 swept over
//! 1/2/4/8 workers.
//!
//! Beyond the per-worker-count timings, the bench prints a speedup table
//! (sequential time / parallel time). On multi-core hardware the
//! vectorized-Q1 sweep demonstrates >1.5× at 4 workers; on a single-core
//! container the speedups degenerate to ~1× (the numbers still verify
//! that dispatch overhead is small).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

use adaptvm_relational::parallel::{
    q1_parallel_adaptive, q1_parallel_vectorized, q6_parallel, ParallelOpts,
};
use adaptvm_relational::tpch;
use adaptvm_storage::DEFAULT_CHUNK;
use adaptvm_vm::{Strategy, VmConfig};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn bench(c: &mut Criterion) {
    let rows = 500_000;
    let table = tpch::lineitem(rows, 42);
    let compact = tpch::CompactLineitem::from_table(&table);
    let morsel_rows = 16 * DEFAULT_CHUNK;

    let mut g = c.benchmark_group("parallel_q1_vectorized");
    g.sample_size(10);
    for workers in WORKERS {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                q1_parallel_vectorized(
                    &table,
                    DEFAULT_CHUNK,
                    ParallelOpts {
                        workers: w,
                        morsel_rows,
                        ..ParallelOpts::default()
                    },
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("parallel_q1_adaptive");
    g.sample_size(10);
    for workers in WORKERS {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                q1_parallel_adaptive(
                    &compact,
                    DEFAULT_CHUNK,
                    ParallelOpts {
                        workers: w,
                        morsel_rows,
                        ..ParallelOpts::default()
                    },
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("parallel_q6_vm");
    g.sample_size(10);
    for workers in WORKERS {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                q6_parallel(
                    &table,
                    1000,
                    VmConfig {
                        strategy: Strategy::Adaptive,
                        ..VmConfig::default()
                    },
                    ParallelOpts {
                        workers: w,
                        morsel_rows,
                        ..ParallelOpts::default()
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();

    // Speedup table: median-of-3 wall times per worker count, vectorized
    // strategy (the acceptance metric: >1.5× at 4 workers on multi-core).
    println!("\n-- speedup table (vectorized Q1, {rows} rows, morsel {morsel_rows})");
    let time_of = |w: usize| {
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let _ = q1_parallel_vectorized(
                    &table,
                    DEFAULT_CHUNK,
                    ParallelOpts {
                        workers: w,
                        morsel_rows,
                        ..ParallelOpts::default()
                    },
                );
                t0.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(f64::total_cmp);
        runs[1]
    };
    let base = time_of(1);
    println!("   1 worker : {:8.2} ms  1.00×", base * 1e3);
    for w in [2usize, 4, 8] {
        let t = time_of(w);
        println!("   {w} workers: {:8.2} ms  {:.2}×", t * 1e3, base / t);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("   (available cores: {cores})");
}

criterion_group!(benches, bench);
criterion_main!(benches);
