//! B5 — compile-or-interpret break-even through the VM.

use adaptvm_dsl::programs;
use adaptvm_jit::compiler::CostModel;
use adaptvm_storage::Array;
use adaptvm_vm::{Buffers, Strategy, Vm, VmConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("break_even");
    g.sample_size(10);
    for chunks in [10usize, 1000] {
        let n = chunks * 1024;
        let data: Vec<i64> = (0..n as i64).map(|i| i % 1000).collect();
        for (name, strategy) in [
            ("interpret", Strategy::Interpret),
            ("jit", Strategy::CompiledPipeline),
            ("adaptive", Strategy::Adaptive),
        ] {
            g.bench_with_input(BenchmarkId::new(name, chunks), &data, |b, data| {
                b.iter(|| {
                    let config = VmConfig {
                        strategy,
                        cost_model: CostModel::default(),
                        ..VmConfig::default()
                    };
                    let vm = Vm::new(config);
                    let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
                    vm.run(&programs::map_chain(n as i64), buffers).unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
