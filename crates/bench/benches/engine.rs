//! B14 — the first engine-wide perf snapshot plus the tracing overhead
//! contract.
//!
//! Two parts:
//! * the **disabled-path overhead** micro-bench: with no live
//!   [`Trace`](adaptvm_parallel::Trace) anywhere, every `obs::emit`
//!   site must cost one relaxed atomic load and a predictable branch.
//!   Measured directly (median of five trials over a tight emit loop)
//!   and **asserted** under [`DISABLED_EMIT_BOUND_NS`] — the bound the
//!   `obs` module docs promise. A criterion pair (`emit_disabled` vs
//!   `baseline`) shows the same loop with and without the event site.
//! * a **five-query perf snapshot**: Q1/Q3/Q6/Q18/Q9 through the
//!   parallel relational entry points — Q6 and Q18's HAVING leg through
//!   the adaptive VM (JIT activity), Q18 under a spill-forcing 4 kB
//!   budget (spill traffic) — each query timed under both JIT tiers
//!   (interpreted-trace pinned vs native allowed), recording
//!   queries/sec per tier, p50/p99 latency, spill bytes, JIT
//!   compile/cache-hit deltas, and native install/deopt/execution
//!   counts per query. The run is written to `BENCH_engine.json` at the
//!   workspace root alongside `BENCH_serving.json`: the
//!   ROADMAP-item-5 trajectory point.
//!
//! `ADAPTVM_BENCH_QUICK=1` shrinks everything to a CI smoke run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use adaptvm_parallel::{obs, EventKind, MemoryBudget};
use adaptvm_relational::parallel::{
    q18_parallel_vm, q1_parallel_vectorized, q3_parallel, q6_parallel, q9_parallel, ParallelOpts,
};
use adaptvm_relational::tpch::{self, KeyDist};
use adaptvm_storage::DEFAULT_CHUNK;
use adaptvm_vm::{Strategy, VmConfig};

fn quick() -> bool {
    std::env::var_os("ADAPTVM_BENCH_QUICK").is_some()
}

/// The asserted ceiling on one disabled `obs::emit` call, loop overhead
/// included. The real cost is a relaxed load and a branch (~1 ns); the
/// slack absorbs slow shared CI hardware without ever excusing a lock,
/// a TLS read, or an allocation on the disabled path.
const DISABLED_EMIT_BOUND_NS: f64 = 25.0;

/// Nanoseconds per iteration of a tight loop around one disabled event
/// site. Must run while no `Trace` is live anywhere in the process.
fn disabled_emit_ns(iters: u64) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        obs::emit(black_box(EventKind::JitCacheHit));
        black_box(i);
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// One query's figures for the snapshot table and `BENCH_engine.json`.
struct QueryReport {
    name: &'static str,
    rows: usize,
    reps: usize,
    qps: f64,
    qps_interpreted: f64,
    p50: Duration,
    p99: Duration,
    spill_bytes_written: u64,
    spill_bytes_read: u64,
    jit_compiles: u64,
    jit_cache_hits: u64,
    native_installs: u64,
    native_deopts: u64,
    native_trace_executions: u64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run `f` under both JIT tiers: a warmup plus `reps` timed repetitions
/// with the interpreted-trace tier pinned (`f(false)`), then the same
/// with the native tier allowed (`f(true)`), bracketing the native block
/// with the process-wide JIT and spill-I/O counters so each query's
/// engine activity is attributed to it. `f` returns the run's native
/// trace executions (0 for queries that never enter the VM). On hosts
/// without the native backend both passes run interpreted and the
/// native counters stay zero.
fn snapshot<F: FnMut(bool) -> u64>(
    name: &'static str,
    rows: usize,
    reps: usize,
    mut f: F,
) -> QueryReport {
    f(false);
    let wall = Instant::now();
    for _ in 0..reps {
        f(false);
    }
    let qps_interpreted = reps as f64 / wall.elapsed().as_secs_f64().max(1e-9);

    f(true);
    let jit0 = adaptvm_vm::jit_counters();
    let io0 = adaptvm_storage::spill::io_counters();
    let mut times = Vec::with_capacity(reps);
    let mut native_trace_executions = 0u64;
    let wall = Instant::now();
    for _ in 0..reps {
        let t0 = Instant::now();
        native_trace_executions += f(true);
        times.push(t0.elapsed());
    }
    let wall = wall.elapsed().as_secs_f64();
    let jit1 = adaptvm_vm::jit_counters();
    let io1 = adaptvm_storage::spill::io_counters();
    times.sort();
    QueryReport {
        name,
        rows,
        reps,
        qps: reps as f64 / wall.max(1e-9),
        qps_interpreted,
        p50: percentile(&times, 0.50),
        p99: percentile(&times, 0.99),
        spill_bytes_written: io1.bytes_written - io0.bytes_written,
        spill_bytes_read: io1.bytes_read - io0.bytes_read,
        jit_compiles: jit1.compiles - jit0.compiles,
        jit_cache_hits: jit1.cache_hits - jit0.cache_hits,
        native_installs: jit1.native_installs - jit0.native_installs,
        native_deopts: jit1.native_deopts - jit0.native_deopts,
        native_trace_executions,
    }
}

fn bench(c: &mut Criterion) {
    // Part 1: the disabled-path overhead contract. Runs first, before
    // any Trace exists, so the global active-gate is provably zero.
    let iters: u64 = if quick() { 2_000_000 } else { 20_000_000 };
    let mut trials: Vec<f64> = (0..5).map(|_| disabled_emit_ns(iters)).collect();
    trials.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let emit_ns = trials[trials.len() / 2];
    println!(
        "\n-- engine: disabled-path emit overhead\n   {emit_ns:.2} ns/emit \
         (median of 5 × {iters} iters; bound {DISABLED_EMIT_BOUND_NS} ns)"
    );
    assert!(
        emit_ns < DISABLED_EMIT_BOUND_NS,
        "disabled obs::emit cost {emit_ns:.2} ns/site exceeds the \
         {DISABLED_EMIT_BOUND_NS} ns contract — the disabled path must stay \
         one relaxed load and a branch"
    );

    let mut g = c.benchmark_group("obs_emit");
    g.sample_size(10);
    g.bench_function("emit_disabled", |b| {
        b.iter(|| {
            for i in 0..10_000u64 {
                obs::emit(black_box(EventKind::JitCacheHit));
                black_box(i);
            }
        })
    });
    g.bench_function("baseline", |b| {
        b.iter(|| {
            for i in 0..10_000u64 {
                black_box(i);
            }
        })
    });
    g.finish();

    // Part 2: the five-query snapshot.
    let scale = if quick() { 1usize } else { 10 };
    let reps = if quick() { 5usize } else { 20 };
    let workers = 4;

    let mut reports = Vec::new();

    // Q1: vectorized scan-aggregate, chunk-ordered merge.
    let li_q1 = tpch::lineitem(40_000 * scale, 42);
    let q1_rows = li_q1.rows();
    reports.push(snapshot("q1", q1_rows, reps, |_native| {
        let rows = q1_parallel_vectorized(&li_q1, DEFAULT_CHUNK, ParallelOpts::new(workers, 8_192))
            .expect("q1 runs");
        assert!(!rows.is_empty());
        black_box(rows);
        0
    }));

    // Q3: partitioned-build hash join with a Bloom pre-filter.
    let ord_q3 = tpch::orders(4_000 * scale, 77);
    let li_q3 = tpch::lineitem_q3(30_000 * scale, 4_000 * scale, 77);
    let date = tpch::SHIPDATE_MAX / 2;
    reports.push(snapshot("q3", li_q3.rows(), reps, |_native| {
        let (rev, _) = q3_parallel(
            &li_q3,
            &ord_q3,
            date,
            tpch::JoinStrategy::Adaptive,
            DEFAULT_CHUNK,
            true,
            ParallelOpts::new(workers, 8_192),
        )
        .expect("q3 runs");
        black_box(rev);
        0
    }));

    // Q6: the full adaptive VM per morsel — exercises the JIT tier.
    let li_q6 = tpch::lineitem(40_000 * scale, 7);
    let q6_reference = tpch::q6_reference(&li_q6, 1000);
    reports.push(snapshot("q6", li_q6.rows(), reps, |native| {
        let config = VmConfig {
            strategy: Strategy::Adaptive,
            native,
            ..VmConfig::default()
        };
        let (rev, report) =
            q6_parallel(&li_q6, 1000, config, ParallelOpts::new(workers, 8_192)).expect("q6 runs");
        assert!(
            (rev - q6_reference).abs() / q6_reference.abs().max(1.0) < 1e-9,
            "q6 diverged: {rev} vs {q6_reference}"
        );
        black_box(rev);
        report.native_trace_executions
    }));

    // Q18: spillable group-by under a 4 kB budget + the HAVING clause
    // through the adaptive VM — spill traffic and JIT in one query.
    let ord_q18 = tpch::orders(256, 7);
    let li_q18 = tpch::lineitem_q18(30_000 * scale, 256, KeyDist::Zipf, 11);
    let budget = MemoryBudget::bytes(4_000);
    reports.push(snapshot("q18", li_q18.rows(), reps, |native| {
        let config = VmConfig {
            chunk_size: 64,
            strategy: Strategy::Adaptive,
            hot_threshold: 2,
            native,
            ..VmConfig::default()
        };
        let (rows, spill) = q18_parallel_vm(
            &li_q18,
            &ord_q18,
            900.0,
            config,
            ParallelOpts::new(workers, 8_192).with_budget(&budget),
        )
        .expect("q18 runs");
        assert!(spill.spilled(), "the 4 kB budget must force spilling");
        black_box(rows);
        0
    }));

    // Q9: three-way mixed-key adaptive join chain under the reorder
    // controller.
    let q9 = tpch::q9_data(16_000 * scale, 200, 64, 8, KeyDist::Zipf, 23);
    let q9_rows = q9.l_partkey.len();
    reports.push(snapshot("q9", q9_rows, reps, |_native| {
        let (rows, _) =
            q9_parallel(&q9, 2_048, true, 2, ParallelOpts::new(workers, 8_192)).expect("q9 runs");
        assert!(!rows.is_empty());
        black_box(rows);
        0
    }));

    let q18_report = reports.iter().find(|r| r.name == "q18").unwrap();
    assert!(
        q18_report.spill_bytes_written > 0 && q18_report.spill_bytes_read > 0,
        "q18 snapshot must show spill traffic"
    );
    assert!(
        q18_report.jit_compiles + q18_report.jit_cache_hits > 0,
        "q18's VM HAVING leg must show JIT activity"
    );
    if adaptvm_vm::native_available() {
        let q6_report = reports.iter().find(|r| r.name == "q6").unwrap();
        assert!(
            q6_report.native_installs + q6_report.native_trace_executions > 0,
            "native tier is available but q6 shows no native activity"
        );
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let native_host = adaptvm_vm::native_available();
    println!(
        "\n-- engine: five-query perf snapshot ({workers} workers requested, {cores} cores, \
         native tier {})",
        if native_host {
            "available"
        } else {
            "unavailable"
        }
    );
    println!(
        "   {:<5} {:>9} {:>5} {:>9} {:>9} {:>9} {:>9}  {:>11} {:>11} {:>5} {:>5} {:>6} {:>6} {:>8}",
        "query",
        "rows",
        "reps",
        "q/s",
        "int q/s",
        "p50 ms",
        "p99 ms",
        "spill out B",
        "spill in B",
        "jit",
        "hits",
        "ninst",
        "ndeop",
        "nexec"
    );
    for r in &reports {
        println!(
            "   {:<5} {:>9} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2}  {:>11} {:>11} {:>5} {:>5} \
             {:>6} {:>6} {:>8}",
            r.name,
            r.rows,
            r.reps,
            r.qps,
            r.qps_interpreted,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.spill_bytes_written,
            r.spill_bytes_read,
            r.jit_compiles,
            r.jit_cache_hits,
            r.native_installs,
            r.native_deopts,
            r.native_trace_executions,
        );
    }

    // Machine-readable dump: the ROADMAP-item-5 trajectory point.
    let mut json = String::from("{\n  \"bench\": \"engine\",\n");
    let _ = writeln!(json, "  \"quick\": {},", quick());
    let _ = writeln!(json, "  \"disabled_emit_ns\": {emit_ns:.3},");
    let _ = writeln!(
        json,
        "  \"disabled_emit_bound_ns\": {DISABLED_EMIT_BOUND_NS:.1},"
    );
    let _ = writeln!(json, "  \"native_available\": {native_host},");
    json.push_str("  \"queries\": [\n");
    let rows: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"rows\":{},\"reps\":{},\
                 \"queries_per_second\":{:.2},\"queries_per_second_interpreted\":{:.2},\
                 \"p50_ms\":{:.3},\"p99_ms\":{:.3},\
                 \"spill_bytes_written\":{},\"spill_bytes_read\":{},\
                 \"jit_compiles\":{},\"jit_cache_hits\":{},\
                 \"native_installs\":{},\"native_deopts\":{},\"native_trace_executions\":{}}}",
                r.name,
                r.rows,
                r.reps,
                r.qps,
                r.qps_interpreted,
                r.p50.as_secs_f64() * 1e3,
                r.p99.as_secs_f64() * 1e3,
                r.spill_bytes_written,
                r.spill_bytes_read,
                r.jit_compiles,
                r.jit_cache_hits,
                r.native_installs,
                r.native_deopts,
                r.native_trace_executions,
            )
        })
        .collect();
    let _ = writeln!(json, "    {}", rows.join(",\n    "));
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("   wrote {path}"),
        Err(e) => println!("   could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
