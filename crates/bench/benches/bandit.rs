//! B9 — micro-adaptive bandit selection overhead and convergence.

use adaptvm_dsl::ast::ScalarOp;
use adaptvm_kernels::{filter_cmp, FilterFlavor, Operand};
use adaptvm_storage::gen;
use adaptvm_storage::scalar::Scalar;
use adaptvm_vm::adaptive::{BanditPolicy, FlavorPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let n = 64 * 1024;
    let data = gen::signed_with_selectivity(n, 0.3, 5);
    let mut g = c.benchmark_group("bandit");
    g.sample_size(20);
    g.bench_function("fixed_selvec", |b| {
        b.iter(|| {
            filter_cmp(
                ScalarOp::Gt,
                &[Operand::Col(&data), Operand::Const(Scalar::I64(0))],
                None,
                FilterFlavor::SelVecLoop,
            )
            .unwrap()
        })
    });
    g.bench_function("bandit_driven", |b| {
        let mut policy = BanditPolicy::epsilon_greedy(0.1, 9);
        b.iter(|| {
            let flavor = policy.filter_flavor("bench");
            let t0 = Instant::now();
            let sel = filter_cmp(
                ScalarOp::Gt,
                &[Operand::Col(&data), Operand::Const(Scalar::I64(0))],
                None,
                flavor,
            )
            .unwrap();
            policy.feedback_filter("bench", flavor, t0.elapsed().as_nanos() as u64, n);
            sel
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
