//! B2 — filter flavor × selectivity.

use adaptvm_dsl::ast::ScalarOp;
use adaptvm_kernels::{filter_cmp, FilterFlavor, Operand};
use adaptvm_storage::gen;
use adaptvm_storage::scalar::Scalar;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let n = 256 * 1024;
    let mut g = c.benchmark_group("selectivity");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(20);
    for sel in [0.01, 0.5, 0.99] {
        let data = gen::signed_with_selectivity(n, sel, 7);
        for flavor in FilterFlavor::ALL {
            g.bench_with_input(BenchmarkId::new(flavor.name(), sel), &data, |b, data| {
                b.iter(|| {
                    filter_cmp(
                        ScalarOp::Gt,
                        &[Operand::Col(data), Operand::Const(Scalar::I64(0))],
                        None,
                        flavor,
                    )
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
