//! T1 — Table I skeleton kernel throughput.

use adaptvm_dsl::ast::{FoldFn, MergeKind, ScalarOp};
use adaptvm_kernels::*;
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::Array;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let n = 64 * 1024;
    let a = Array::from((0..n as i64).collect::<Vec<_>>());
    let b = Array::from((0..n as i64).rev().collect::<Vec<_>>());
    let sorted = Array::from((0..n as i64).collect::<Vec<_>>());
    let mut g = c.benchmark_group("skeletons");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("map_add_i64", |bch| {
        bch.iter(|| {
            map_apply(
                ScalarOp::Add,
                &[Operand::Col(&a), Operand::Col(&b)],
                None,
                MapMode::Full,
            )
            .unwrap()
        })
    });
    g.bench_function("map_mul_const_i64", |bch| {
        bch.iter(|| {
            map_apply(
                ScalarOp::Mul,
                &[Operand::Col(&a), Operand::Const(Scalar::I64(3))],
                None,
                MapMode::Full,
            )
            .unwrap()
        })
    });
    g.bench_function("filter_gt_selvec", |bch| {
        bch.iter(|| {
            filter_cmp(
                ScalarOp::Gt,
                &[Operand::Col(&a), Operand::Const(Scalar::I64(n as i64 / 2))],
                None,
                FilterFlavor::SelVecLoop,
            )
            .unwrap()
        })
    });
    g.bench_function("fold_sum_i64", |bch| {
        bch.iter(|| fold_apply(FoldFn::Sum, &Scalar::I64(0), &a, None).unwrap())
    });
    g.bench_function("gather", |bch| {
        let idx = Array::from(
            (0..n as i64)
                .map(|i| (i * 7) % n as i64)
                .collect::<Vec<_>>(),
        );
        bch.iter(|| movement::gather(&a, &idx).unwrap())
    });
    g.bench_function("merge_union", |bch| {
        bch.iter(|| merge::merge_apply(MergeKind::Union, &sorted, &sorted).unwrap())
    });
    g.bench_function("gen_condense", |bch| {
        let sel = adaptvm_storage::sel::SelVec::new((0..n as u32).step_by(3).collect());
        bch.iter(|| movement::condense(&a, Some(&sel)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
