//! B7 — deforestation: unfused interpretation vs fused traces.

use adaptvm_dsl::programs;
use adaptvm_dsl::transform::fuse_program;
use adaptvm_storage::Array;
use adaptvm_vm::{Buffers, Strategy, Vm, VmConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let n: usize = 1 << 20;
    let data: Vec<i64> = (0..n as i64).collect();
    let program = programs::map_chain(n as i64);
    let fused = fuse_program(&program);
    let mut g = c.benchmark_group("fusion");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("unfused_interpret", |b| {
        b.iter(|| {
            let vm = Vm::new(VmConfig {
                strategy: Strategy::Interpret,
                ..VmConfig::default()
            });
            let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
            vm.run(&program, buffers).unwrap()
        })
    });
    g.bench_function("fused_compiled", |b| {
        b.iter(|| {
            let vm = Vm::new(VmConfig {
                strategy: Strategy::CompiledPipeline,
                ..VmConfig::default()
            });
            let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
            vm.run(&fused, buffers).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
