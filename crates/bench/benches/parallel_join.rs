//! B11 — morsel-parallel partitioned hash joins: the Q3-style
//! lineitem ⋈ orders revenue query swept over 1/2/4/8 workers and all
//! three probe strategies, plus the partitioned build on its own.
//!
//! Like `parallel_scaling`, the speedup table needs multi-core hardware
//! to show >1×; on a single-core container the numbers verify that the
//! two-phase (build barrier + shared probe) overhead stays small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

use adaptvm_relational::parallel::{parallel_build_hash_table, q3_parallel, ParallelOpts};
use adaptvm_relational::tpch::{self, JoinStrategy};
use adaptvm_storage::{Array, DEFAULT_CHUNK};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn bench(c: &mut Criterion) {
    let rows = 400_000;
    let n_orders = 100_000;
    let date = tpch::SHIPDATE_MAX / 2;
    let lineitem = tpch::lineitem_q3(rows, n_orders, 42);
    let orders = tpch::orders(n_orders, 42);
    let morsel_rows = 16 * DEFAULT_CHUNK;

    for (name, strategy) in [
        ("parallel_q3_vectorized", JoinStrategy::Vectorized),
        ("parallel_q3_fused", JoinStrategy::Fused),
        ("parallel_q3_adaptive", JoinStrategy::Adaptive),
    ] {
        let mut g = c.benchmark_group(name);
        g.sample_size(10);
        for workers in WORKERS {
            g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
                b.iter(|| {
                    q3_parallel(
                        &lineitem,
                        &orders,
                        date,
                        strategy,
                        DEFAULT_CHUNK,
                        true,
                        ParallelOpts {
                            workers: w,
                            morsel_rows,
                            ..ParallelOpts::default()
                        },
                    )
                    .unwrap()
                })
            });
        }
        g.finish();
    }

    // The partitioned build phase in isolation (heavy duplication: 4 build
    // rows per key).
    let build_keys = Array::from(
        (0..rows as i64)
            .map(|i| i % (rows as i64 / 4))
            .collect::<Vec<_>>(),
    );
    let build_pays = Array::from((0..rows as i64).collect::<Vec<_>>());
    let mut g = c.benchmark_group("partitioned_build");
    g.sample_size(10);
    for workers in WORKERS {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                parallel_build_hash_table(
                    &build_keys,
                    &build_pays,
                    false,
                    ParallelOpts {
                        workers: w,
                        morsel_rows,
                        ..ParallelOpts::default()
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();

    // Speedup table: median-of-3 wall times, fused strategy (the cheapest
    // probe loop, so parallel overhead shows up first).
    println!(
        "\n-- speedup table (Q3 fused, {rows} rows ⋈ {n_orders} orders, morsel {morsel_rows})"
    );
    let time_of = |w: usize| {
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let _ = q3_parallel(
                    &lineitem,
                    &orders,
                    date,
                    JoinStrategy::Fused,
                    DEFAULT_CHUNK,
                    true,
                    ParallelOpts {
                        workers: w,
                        morsel_rows,
                        ..ParallelOpts::default()
                    },
                )
                .unwrap();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(f64::total_cmp);
        runs[1]
    };
    let base = time_of(1);
    println!("   1 worker : {:8.2} ms  1.00×", base * 1e3);
    for w in [2usize, 4, 8] {
        let t = time_of(w);
        println!("   {w} workers: {:8.2} ms  {:.2}×", t * 1e3, base / t);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("   (available cores: {cores})");
}

criterion_group!(benches, bench);
criterion_main!(benches);
