//! B3 — adaptive join-order chain vs static orders.

use adaptvm_bench::experiments;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_reorder");
    g.sample_size(10);
    g.bench_function("shifted_workload_summary", |b| b.iter(experiments::exp_b3));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
