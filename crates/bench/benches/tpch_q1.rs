//! B1 — TPC-H Q1 engine styles and Q6 through the VM.

use adaptvm_bench::experiments;
use adaptvm_relational::tpch;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let table = tpch::lineitem(500_000, 42);
    let mut g = c.benchmark_group("tpch_q1");
    g.sample_size(10);
    g.bench_function("q1_vectorized", |b| {
        b.iter(|| tpch::q1_vectorized(&table, 1024))
    });
    g.bench_function("q1_fused", |b| b.iter(|| tpch::q1_fused(&table)));
    let compact = tpch::CompactLineitem::from_table(&table);
    g.bench_function("q1_adaptive", |b| {
        b.iter(|| tpch::q1_adaptive(&compact, 1024))
    });
    g.finish();

    let mut g = c.benchmark_group("tpch_q6");
    g.sample_size(10);
    for (name, strategy) in [
        ("interpret", adaptvm_vm::Strategy::Interpret),
        ("compiled", adaptvm_vm::Strategy::CompiledPipeline),
        ("adaptive", adaptvm_vm::Strategy::Adaptive),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let config = adaptvm_vm::VmConfig {
                    strategy,
                    ..adaptvm_vm::VmConfig::default()
                };
                let vm = adaptvm_vm::Vm::new(config);
                let program = tpch::q6_program(table.rows() as i64, 1000);
                vm.run(&program, tpch::q6_buffers(&table)).unwrap()
            })
        });
    }
    g.finish();
    let _ = experiments::time_ms(1, || {});
}

criterion_group!(benches, bench);
criterion_main!(benches);
