//! B13 — the admission-controlled serving layer under mixed-priority
//! open-loop load.
//!
//! Three parts:
//! * Criterion micro-benches of the admission path itself: the same raw
//!   morsel query submitted straight to a `Scheduler` vs through a
//!   `QueryService` (bounded queue + fair dispatch + telemetry) — the
//!   per-query cost of admission control,
//! * a saturation table: a burst of heavy Batch queries followed by an
//!   open-loop stream of light Interactive queries against one small
//!   pool; prints per-priority admitted/completed/rejected counts, the
//!   rejection rate, and queue-wait + end-to-end latency p50/p99 —
//!   demonstrating that Interactive p99 stays below Batch p99 while
//!   Batch keeps completing (fair share, no starvation).
//!
//! * a multi-tenant saturation run: a flooding tenant (weight 1, open
//!   loop, ignored refusals) against a gold tenant (weight 8) and a
//!   silver tenant (weight 2) on one small pool; prints per-tenant
//!   admitted/rejected/latency rows and writes the whole run —
//!   queries/sec, per-priority and per-tenant p50/p99, rejection rates —
//!   to `BENCH_serving.json` at the workspace root for machine
//!   consumption.
//!
//! `ADAPTVM_BENCH_QUICK=1` shrinks everything to a CI smoke run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use adaptvm_parallel::serve::{
    Priority, QueryService, ServeConfig, SubmitOpts, TenantQuota, TenantRegistry,
};
use adaptvm_parallel::{MorselPlan, Scheduler};

fn quick() -> bool {
    std::env::var_os("ADAPTVM_BENCH_QUICK").is_some()
}

/// One raw morsel query: sum of a per-morsel arithmetic series.
fn submit_direct(scheduler: &Scheduler, rows: usize) -> usize {
    scheduler
        .submit(
            MorselPlan::new(rows, 2_048),
            |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
            |parts, _| parts.iter().sum::<usize>(),
        )
        .expect("scheduler accepting")
        .join()
        .unwrap()
}

fn submit_served(service: &QueryService, opts: SubmitOpts, rows: usize) -> Option<usize> {
    service
        .try_submit(
            opts,
            MorselPlan::new(rows, 2_048),
            |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
            |parts, _| parts.iter().sum::<usize>(),
        )
        .ok()
        .map(|h| h.join().unwrap())
}

fn fmt_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:8.2}", d.as_secs_f64() * 1e3),
        None => format!("{:>8}", "-"),
    }
}

/// Milliseconds as a JSON number, or `null` when the histogram is empty.
fn json_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.3}", d.as_secs_f64() * 1e3),
        None => "null".into(),
    }
}

/// The admission/latency figures shared by the per-priority and
/// per-tenant rows in `BENCH_serving.json`.
struct JsonRow {
    submitted: u64,
    admitted: u64,
    completed: u64,
    rejected: u64,
    shed: u64,
    rate: f64,
    queue_wait_p50: Option<Duration>,
    queue_wait_p99: Option<Duration>,
    latency_p50: Option<Duration>,
    latency_p99: Option<Duration>,
}

/// One JSON object of admission/latency figures.
fn json_row(name: &str, weight: Option<u64>, r: &JsonRow) -> String {
    let mut s = format!("{{\"name\":\"{name}\"");
    if let Some(w) = weight {
        let _ = write!(s, ",\"weight\":{w}");
    }
    let _ = write!(
        s,
        ",\"submitted\":{},\"admitted\":{},\"completed\":{},\
         \"rejected\":{},\"shed\":{},\"rejection_rate\":{:.4},\
         \"queue_wait_p50_ms\":{},\"queue_wait_p99_ms\":{},\
         \"latency_p50_ms\":{},\"latency_p99_ms\":{}}}",
        r.submitted,
        r.admitted,
        r.completed,
        r.rejected,
        r.shed,
        r.rate,
        json_ms(r.queue_wait_p50),
        json_ms(r.queue_wait_p99),
        json_ms(r.latency_p50),
        json_ms(r.latency_p99),
    );
    s
}

fn bench(c: &mut Criterion) {
    let rows = if quick() { 20_000 } else { 200_000 };

    // Part 1: admission-layer overhead on an otherwise identical query.
    let scheduler = Scheduler::new(2);
    let service = QueryService::new(ServeConfig::default().with_workers(2));
    let mut g = c.benchmark_group("submit_join_path");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::from_parameter("scheduler"), &(), |b, _| {
        b.iter(|| submit_direct(&scheduler, rows))
    });
    g.bench_with_input(BenchmarkId::from_parameter("service"), &(), |b, _| {
        b.iter(|| submit_served(&service, SubmitOpts::normal(), rows).unwrap())
    });
    g.finish();
    service.shutdown();
    drop(scheduler);

    // Part 2: mixed-priority saturation.
    let (batch_n, interactive_n, batch_rows, interactive_rows) = if quick() {
        (6usize, 12usize, 400_000usize, 20_000usize)
    } else {
        (16, 48, 4_000_000, 100_000)
    };
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(2)
            .with_queue_capacity(usize::max(batch_n, 8)),
    );

    let wall = Instant::now();
    let mut handles = Vec::new();
    // Burst of heavy batch work saturates the pool and the batch lane…
    for _ in 0..batch_n {
        if let Ok(h) = service.try_submit(
            SubmitOpts::batch(),
            MorselPlan::new(batch_rows, 2_048),
            |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
            |parts, _| parts.iter().sum::<usize>(),
        ) {
            handles.push(h);
        }
    }
    // …then light interactive queries arrive open-loop (fixed cadence,
    // regardless of completions).
    for _ in 0..interactive_n {
        if let Ok(h) = service.try_submit(
            SubmitOpts::interactive(),
            MorselPlan::new(interactive_rows, 2_048),
            |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
            |parts, _| parts.iter().sum::<usize>(),
        ) {
            handles.push(h);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = wall.elapsed().as_secs_f64();

    let stats = service.stats();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n-- serving: mixed-priority open-loop saturation");
    println!(
        "   {batch_n} batch × {batch_rows} rows + {interactive_n} interactive × {interactive_rows} rows, \
         2 workers / 2 slots, {cores} cores, wall {elapsed:.2} s"
    );
    println!(
        "   {:<12} {:>9} {:>9} {:>9} {:>7}  {:>8} {:>8}  {:>8} {:>8}",
        "priority",
        "admitted",
        "complete",
        "rejected",
        "rate",
        "wait p50",
        "wait p99",
        "lat p50",
        "lat p99"
    );
    for p in Priority::ALL {
        let ps = stats.priority(p);
        if ps.submitted == 0 {
            continue;
        }
        println!(
            "   {:<12} {:>9} {:>9} {:>9} {:>6.1}%  {} {}  {} {} ms",
            p.name(),
            ps.admitted,
            ps.completed,
            ps.rejected(),
            ps.rejection_rate() * 100.0,
            fmt_ms(ps.queue_wait.p50()),
            fmt_ms(ps.queue_wait.p99()),
            fmt_ms(ps.latency.p50()),
            fmt_ms(ps.latency.p99()),
        );
    }

    let interactive = stats.priority(Priority::Interactive);
    let batch = stats.priority(Priority::Batch);
    assert!(
        batch.completed > 0,
        "batch must keep making progress under interactive load"
    );
    if let (Some(ip99), Some(bp99)) = (interactive.latency.p99(), batch.latency.p99()) {
        println!(
            "   interactive p99 {:.2} ms vs batch p99 {:.2} ms → {}",
            ip99.as_secs_f64() * 1e3,
            bp99.as_secs_f64() * 1e3,
            if ip99 <= bp99 {
                "interactive wins under load ✓"
            } else {
                "UNEXPECTED inversion"
            }
        );
        assert!(
            ip99 <= bp99,
            "interactive p99 ({ip99:?}) must not exceed batch p99 ({bp99:?}) under saturation"
        );
    }
    let report = service.drain(Duration::from_secs(60));
    assert!(report.clean, "everything joined already: {report:?}");

    // Part 3: multi-tenant saturation — one flooder vs two paying tiers.
    let (rounds, query_rows) = if quick() {
        (60usize, 20_000usize)
    } else {
        (400, 100_000)
    };
    let mut reg = TenantRegistry::new();
    let gold = reg.register("gold", TenantQuota::new().with_weight(8));
    let silver = reg.register("silver", TenantQuota::new().with_weight(2));
    let flood = reg.register(
        "flood",
        TenantQuota::new().with_weight(1).with_max_in_flight(1),
    );
    let service = QueryService::with_tenants(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(2)
            .with_queue_capacity(8)
            .with_elastic_concurrency(4),
        reg,
    );
    let wall = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..rounds {
        // The flooder fires four Batch queries a round, open loop,
        // shrugging off refusals; the paying tiers run closed-loop (one
        // query in flight each), which is the shape the isolation claim
        // is about: their backpressure is their own, not the flood's.
        for _ in 0..4 {
            if let Ok(h) = service.try_submit(
                SubmitOpts::batch().with_tenant(flood),
                MorselPlan::new(query_rows, 2_048),
                |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
                |parts, _| parts.iter().sum::<usize>(),
            ) {
                handles.push(h);
            }
        }
        for (id, opts) in [
            (gold, SubmitOpts::interactive()),
            (silver, SubmitOpts::normal()),
        ] {
            let h = service
                .try_submit(
                    opts.with_tenant(id),
                    MorselPlan::new(query_rows / 4, 2_048),
                    |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
                    |parts, _| parts.iter().sum::<usize>(),
                )
                .expect("closed-loop tier queries are never refused");
            let _ = h.join();
        }
        if handles.len() > 64 {
            for h in handles.drain(..) {
                let _ = h.join();
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let tenant_wall = wall.elapsed().as_secs_f64();
    let stats = service.stats();

    println!("\n-- serving: multi-tenant saturation (gold w8 / silver w2 / flood w1×4)");
    println!(
        "   {:<8} {:>7} {:>9} {:>9} {:>9} {:>7}  {:>8} {:>8}",
        "tenant", "weight", "admitted", "complete", "rejected", "rate", "lat p50", "lat p99"
    );
    for t in &stats.tenants {
        println!(
            "   {:<8} {:>7} {:>9} {:>9} {:>9} {:>6.1}%  {} {} ms",
            t.name,
            t.weight,
            t.admitted,
            t.completed,
            t.rejected() + t.shed,
            t.rejection_rate() * 100.0,
            fmt_ms(t.latency.p50()),
            fmt_ms(t.latency.p99()),
        );
    }
    let completed: u64 = stats.tenants.iter().map(|t| t.completed).sum();
    let qps = completed as f64 / tenant_wall.max(1e-9);
    println!(
        "   {completed} queries in {tenant_wall:.2} s → {qps:.1} queries/s; \
         elastic limit grew {}×, shrank {}×",
        stats.grow_events, stats.shrink_events
    );
    let gold_stats = stats.tenant("gold").expect("gold registered");
    assert_eq!(
        gold_stats.rejected() + gold_stats.shed,
        0,
        "the weighted gold tenant must never be refused: {gold_stats:?}"
    );

    // Machine-readable dump for trend tracking.
    let mut json = String::from("{\n  \"bench\": \"serving\",\n");
    let _ = writeln!(json, "  \"quick\": {},", quick());
    let _ = writeln!(json, "  \"wall_seconds\": {tenant_wall:.3},");
    let _ = writeln!(json, "  \"queries_per_second\": {qps:.2},");
    json.push_str("  \"priorities\": [\n");
    let rows: Vec<String> = Priority::ALL
        .iter()
        .map(|&p| {
            let ps = stats.priority(p);
            json_row(
                p.name(),
                None,
                &JsonRow {
                    submitted: ps.submitted,
                    admitted: ps.admitted,
                    completed: ps.completed,
                    rejected: ps.rejected(),
                    shed: ps.shed,
                    rate: ps.rejection_rate(),
                    queue_wait_p50: ps.queue_wait.p50(),
                    queue_wait_p99: ps.queue_wait.p99(),
                    latency_p50: ps.latency.p50(),
                    latency_p99: ps.latency.p99(),
                },
            )
        })
        .collect();
    let _ = writeln!(json, "    {}", rows.join(",\n    "));
    json.push_str("  ],\n  \"tenants\": [\n");
    let rows: Vec<String> = stats
        .tenants
        .iter()
        .map(|t| {
            json_row(
                &t.name,
                Some(t.weight),
                &JsonRow {
                    submitted: t.submitted,
                    admitted: t.admitted,
                    completed: t.completed,
                    rejected: t.rejected(),
                    shed: t.shed,
                    rate: t.rejection_rate(),
                    queue_wait_p50: t.queue_wait.p50(),
                    queue_wait_p99: t.queue_wait.p99(),
                    latency_p50: t.latency.p50(),
                    latency_p99: t.latency.p99(),
                },
            )
        })
        .collect();
    let _ = writeln!(json, "    {}", rows.join(",\n    "));
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("   wrote {path}"),
        Err(e) => println!("   could not write {path}: {e}"),
    }

    let report = service.drain(Duration::from_secs(60));
    assert!(report.clean, "everything joined already: {report:?}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
