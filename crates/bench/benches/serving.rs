//! B13 — the admission-controlled serving layer under mixed-priority
//! open-loop load.
//!
//! Two parts:
//! * Criterion micro-benches of the admission path itself: the same raw
//!   morsel query submitted straight to a `Scheduler` vs through a
//!   `QueryService` (bounded queue + fair dispatch + telemetry) — the
//!   per-query cost of admission control,
//! * a saturation table: a burst of heavy Batch queries followed by an
//!   open-loop stream of light Interactive queries against one small
//!   pool; prints per-priority admitted/completed/rejected counts, the
//!   rejection rate, and queue-wait + end-to-end latency p50/p99 —
//!   demonstrating that Interactive p99 stays below Batch p99 while
//!   Batch keeps completing (fair share, no starvation).
//!
//! `ADAPTVM_BENCH_QUICK=1` shrinks everything to a CI smoke run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use adaptvm_parallel::serve::{Priority, QueryService, ServeConfig, SubmitOpts};
use adaptvm_parallel::{MorselPlan, Scheduler};

fn quick() -> bool {
    std::env::var_os("ADAPTVM_BENCH_QUICK").is_some()
}

/// One raw morsel query: sum of a per-morsel arithmetic series.
fn submit_direct(scheduler: &Scheduler, rows: usize) -> usize {
    scheduler
        .submit(
            MorselPlan::new(rows, 2_048),
            |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
            |parts, _| parts.iter().sum::<usize>(),
        )
        .expect("scheduler accepting")
        .join()
        .unwrap()
}

fn submit_served(service: &QueryService, opts: SubmitOpts, rows: usize) -> Option<usize> {
    service
        .try_submit(
            opts,
            MorselPlan::new(rows, 2_048),
            |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
            |parts, _| parts.iter().sum::<usize>(),
        )
        .ok()
        .map(|h| h.join().unwrap())
}

fn fmt_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:8.2}", d.as_secs_f64() * 1e3),
        None => format!("{:>8}", "-"),
    }
}

fn bench(c: &mut Criterion) {
    let rows = if quick() { 20_000 } else { 200_000 };

    // Part 1: admission-layer overhead on an otherwise identical query.
    let scheduler = Scheduler::new(2);
    let service = QueryService::new(ServeConfig::default().with_workers(2));
    let mut g = c.benchmark_group("submit_join_path");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::from_parameter("scheduler"), &(), |b, _| {
        b.iter(|| submit_direct(&scheduler, rows))
    });
    g.bench_with_input(BenchmarkId::from_parameter("service"), &(), |b, _| {
        b.iter(|| submit_served(&service, SubmitOpts::normal(), rows).unwrap())
    });
    g.finish();
    service.shutdown();
    drop(scheduler);

    // Part 2: mixed-priority saturation.
    let (batch_n, interactive_n, batch_rows, interactive_rows) = if quick() {
        (6usize, 12usize, 400_000usize, 20_000usize)
    } else {
        (16, 48, 4_000_000, 100_000)
    };
    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(2)
            .with_max_concurrent(2)
            .with_queue_capacity(usize::max(batch_n, 8)),
    );

    let wall = Instant::now();
    let mut handles = Vec::new();
    // Burst of heavy batch work saturates the pool and the batch lane…
    for _ in 0..batch_n {
        if let Ok(h) = service.try_submit(
            SubmitOpts::batch(),
            MorselPlan::new(batch_rows, 2_048),
            |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
            |parts, _| parts.iter().sum::<usize>(),
        ) {
            handles.push(h);
        }
    }
    // …then light interactive queries arrive open-loop (fixed cadence,
    // regardless of completions).
    for _ in 0..interactive_n {
        if let Ok(h) = service.try_submit(
            SubmitOpts::interactive(),
            MorselPlan::new(interactive_rows, 2_048),
            |_, m| Ok::<usize, ()>((m.start..m.end()).map(|i| i % 7).sum()),
            |parts, _| parts.iter().sum::<usize>(),
        ) {
            handles.push(h);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = wall.elapsed().as_secs_f64();

    let stats = service.stats();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n-- serving: mixed-priority open-loop saturation");
    println!(
        "   {batch_n} batch × {batch_rows} rows + {interactive_n} interactive × {interactive_rows} rows, \
         2 workers / 2 slots, {cores} cores, wall {elapsed:.2} s"
    );
    println!(
        "   {:<12} {:>9} {:>9} {:>9} {:>7}  {:>8} {:>8}  {:>8} {:>8}",
        "priority",
        "admitted",
        "complete",
        "rejected",
        "rate",
        "wait p50",
        "wait p99",
        "lat p50",
        "lat p99"
    );
    for p in Priority::ALL {
        let ps = stats.priority(p);
        if ps.submitted == 0 {
            continue;
        }
        println!(
            "   {:<12} {:>9} {:>9} {:>9} {:>6.1}%  {} {}  {} {} ms",
            p.name(),
            ps.admitted,
            ps.completed,
            ps.rejected(),
            ps.rejection_rate() * 100.0,
            fmt_ms(ps.queue_wait.p50()),
            fmt_ms(ps.queue_wait.p99()),
            fmt_ms(ps.latency.p50()),
            fmt_ms(ps.latency.p99()),
        );
    }

    let interactive = stats.priority(Priority::Interactive);
    let batch = stats.priority(Priority::Batch);
    assert!(
        batch.completed > 0,
        "batch must keep making progress under interactive load"
    );
    if let (Some(ip99), Some(bp99)) = (interactive.latency.p99(), batch.latency.p99()) {
        println!(
            "   interactive p99 {:.2} ms vs batch p99 {:.2} ms → {}",
            ip99.as_secs_f64() * 1e3,
            bp99.as_secs_f64() * 1e3,
            if ip99 <= bp99 {
                "interactive wins under load ✓"
            } else {
                "UNEXPECTED inversion"
            }
        );
        assert!(
            ip99 <= bp99,
            "interactive p99 ({ip99:?}) must not exceed batch p99 ({bp99:?}) under saturation"
        );
    }
    let report = service.drain(Duration::from_secs(60));
    assert!(report.clean, "everything joined already: {report:?}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
