//! B12 — long-lived scheduler throughput: concurrent mixed Q1/Q3/Q6 jobs
//! over one shared worker pool.
//!
//! Two parts:
//! * Criterion micro-benches of the submission path itself (scoped pool
//!   run vs scheduler run of the same query — the spawn/park overhead
//!   delta), and
//! * a mixed-workload table: S submitter threads fire interleaved
//!   Q1/Q3/Q6 at one scheduler; prints queries/sec plus a per-shape
//!   latency table (mean / p50-ish mid / max).
//!
//! `ADAPTVM_BENCH_QUICK=1` shrinks everything to a CI smoke run. Real
//! throughput numbers need multi-core hardware (the table prints the
//! available cores).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Mutex;
use std::time::Instant;

use adaptvm_parallel::Scheduler;
use adaptvm_relational::parallel::{
    q1_parallel_adaptive, q1_parallel_vectorized, q3_parallel, q6_parallel, ParallelOpts,
};
use adaptvm_relational::tpch;
use adaptvm_storage::DEFAULT_CHUNK;
use adaptvm_vm::{Strategy, VmConfig};

fn quick() -> bool {
    std::env::var_os("ADAPTVM_BENCH_QUICK").is_some()
}

fn bench(c: &mut Criterion) {
    let rows = if quick() { 40_000 } else { 400_000 };
    let table = tpch::lineitem(rows, 42);
    let compact = tpch::CompactLineitem::from_table(&table);
    let li = tpch::lineitem_q3(rows / 2, rows / 8, 42);
    let ord = tpch::orders(rows / 8, 42);
    let date = tpch::SHIPDATE_MAX / 2;
    let morsel_rows = 8 * DEFAULT_CHUNK;
    let workers = 4;
    let scheduler = Scheduler::new(workers);

    // Part 1: per-query executor overhead, scoped pool vs parked pool.
    let mut g = c.benchmark_group("q1_adaptive_executor");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::from_parameter("scoped"), &(), |b, _| {
        b.iter(|| {
            q1_parallel_adaptive(
                &compact,
                DEFAULT_CHUNK,
                ParallelOpts::new(workers, morsel_rows),
            )
        })
    });
    g.bench_with_input(BenchmarkId::from_parameter("scheduler"), &(), |b, _| {
        b.iter(|| {
            q1_parallel_adaptive(
                &compact,
                DEFAULT_CHUNK,
                ParallelOpts::new(workers, morsel_rows).with_scheduler(&scheduler),
            )
        })
    });
    g.finish();

    // Part 2: mixed concurrent workload through one scheduler.
    let submitters = if quick() { 2 } else { 8 };
    let per_submitter = if quick() { 2 } else { 8 };
    let shapes = ["q1_vectorized", "q1_adaptive", "q3_fused", "q6_adaptive"];
    let latencies: Vec<Mutex<Vec<f64>>> = shapes.iter().map(|_| Mutex::new(Vec::new())).collect();

    let wall = Instant::now();
    std::thread::scope(|s| {
        for submitter in 0..submitters {
            let scheduler = &scheduler;
            let (table, compact, li, ord) = (&table, &compact, &li, &ord);
            let latencies = &latencies;
            s.spawn(move || {
                for round in 0..per_submitter {
                    let shape = (submitter + round) % shapes.len();
                    let opts = ParallelOpts::new(workers, morsel_rows).with_scheduler(scheduler);
                    let t0 = Instant::now();
                    match shape {
                        0 => {
                            let _ = q1_parallel_vectorized(table, DEFAULT_CHUNK, opts);
                        }
                        1 => {
                            let _ = q1_parallel_adaptive(compact, DEFAULT_CHUNK, opts);
                        }
                        2 => {
                            let _ = q3_parallel(
                                li,
                                ord,
                                date,
                                tpch::JoinStrategy::Fused,
                                DEFAULT_CHUNK,
                                true,
                                opts,
                            )
                            .unwrap();
                        }
                        _ => {
                            let config = VmConfig {
                                strategy: Strategy::Adaptive,
                                hot_threshold: 4,
                                ..VmConfig::default()
                            };
                            let _ = q6_parallel(table, 1000, config, opts).unwrap();
                        }
                    }
                    latencies[shape]
                        .lock()
                        .unwrap()
                        .push(t0.elapsed().as_secs_f64() * 1e3);
                }
            });
        }
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let total_queries = submitters * per_submitter;

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n-- scheduler mixed-workload throughput");
    println!(
        "   {total_queries} queries ({submitters} submitters × {per_submitter}), {workers} pool workers, {cores} cores"
    );
    println!(
        "   wall {:.2} s  →  {:.1} queries/sec",
        elapsed,
        total_queries as f64 / elapsed
    );
    println!("   latency per shape (ms):        mean      mid      max    n");
    for (shape, lat) in shapes.iter().zip(&latencies) {
        let mut v = lat.lock().unwrap().clone();
        if v.is_empty() {
            continue;
        }
        v.sort_by(f64::total_cmp);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "     {shape:<16} {mean:12.2} {:8.2} {:8.2} {:4}",
            v[v.len() / 2],
            v[v.len() - 1],
            v.len()
        );
    }
    let stats = scheduler.stats();
    println!(
        "   scheduler: {} queries finalized, {} morsels, {} cache entries, elastic morsel_rows {}",
        stats.queries_completed,
        stats.morsels_executed,
        scheduler.cache().stats().entries,
        scheduler.morsel_rows(),
    );
    assert_eq!(
        stats.queries_submitted, stats.queries_completed,
        "no lost queries under the benchmark load"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
