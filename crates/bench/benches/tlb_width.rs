//! B8 — partitioning with different TLB-width (max_io) budgets.

use adaptvm_dsl::depgraph::DepGraph;
use adaptvm_dsl::normalize::normalize_program;
use adaptvm_dsl::parser::parse_program;
use adaptvm_dsl::partition::{partition, PartitionConfig};
use adaptvm_dsl::programs::loop_body;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn wide_program(lanes: usize) -> adaptvm_dsl::ast::Program {
    let mut src = String::from("mut i\ni := 0\nloop {\n  let x = read i xs in {\n");
    let mut closes = 1;
    for k in 0..lanes {
        src.push_str(&format!("let y{k} = map (\\v -> v * 2 + {k}) x in {{\n"));
        src.push_str(&format!("write out{k} i y{k}\n"));
        closes += 1;
    }
    src.push_str("i := i + len(x)\n");
    for _ in 0..closes {
        src.push('}');
    }
    src.push_str("\nif i >= 4096 then { break }\n}");
    parse_program(&src).unwrap()
}

fn bench(c: &mut Criterion) {
    let program = normalize_program(&wide_program(12));
    let body = loop_body(&program).unwrap();
    let g_ = DepGraph::from_stmts(body);
    let mut grp = c.benchmark_group("tlb_width");
    for max_io in [2usize, 8, 32] {
        grp.bench_with_input(BenchmarkId::new("partition", max_io), &max_io, |b, &m| {
            b.iter(|| partition(&g_, &PartitionConfig::with_max_io(m)))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
