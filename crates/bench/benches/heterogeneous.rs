//! B6 — device placement: virtual-cost pricing and sharded host execution.

use adaptvm_dsl::programs;
use adaptvm_hetsim::cost::price;
use adaptvm_hetsim::device::DeviceSpec;
use adaptvm_hetsim::exec::run_trace_on;
use adaptvm_jit::compiler::{compile, CostModel};
use adaptvm_jit::pipeline::whole_pipeline_fragment;
use adaptvm_storage::Array;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("heterogeneous");
    g.sample_size(20);
    // Pricing is nanosecond-scale; benchmark the decision itself.
    g.bench_function("price_three_devices", |b| {
        let devices = [
            DeviceSpec::cpu(),
            DeviceSpec::integrated_gpu(),
            DeviceSpec::discrete_gpu(),
        ];
        b.iter(|| {
            devices
                .iter()
                .map(|d| price(d, 1 << 20, 64, 8 << 20, 8 << 20).total_ns())
                .min()
        })
    });
    // Actual device-run (host execution + virtual accounting).
    let frag = whole_pipeline_fragment(&programs::map_chain(i64::MAX), &HashMap::new()).unwrap();
    let trace = compile(frag, &CostModel::untimed());
    let data = Array::from((0..(1 << 18) as i64).collect::<Vec<_>>());
    for d in [DeviceSpec::cpu(), DeviceSpec::discrete_gpu()] {
        g.bench_with_input(BenchmarkId::new("run_on", d.name.clone()), &d, |b, d| {
            b.iter(|| run_trace_on(d, &trace, &[&data], None).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
