//! The experiment suite (DESIGN.md §6): one function per experiment,
//! returning formatted rows so both the harness binary and EXPERIMENTS.md
//! stay in sync with the code.

use std::collections::HashMap;
use std::time::Instant;

use adaptvm_dsl::depgraph::{scalar_uses, DepGraph};
use adaptvm_dsl::partition::{partition, PartitionConfig};
use adaptvm_dsl::programs;
use adaptvm_dsl::transform::fuse_program;
use adaptvm_hetsim::cost::price;
use adaptvm_hetsim::device::DeviceSpec;
use adaptvm_jit::compiler::CostModel;
use adaptvm_kernels::{filter_cmp, FilterFlavor, Operand};
use adaptvm_relational::compressed_exec::{sum_where_gt, ScanStrategy};
use adaptvm_relational::join::{AdaptiveJoinChain, HashTable};
use adaptvm_relational::tpch;
use adaptvm_storage::block::{Block, BlockColumn};
use adaptvm_storage::compress::Scheme;
use adaptvm_storage::gen;
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::Array;
use adaptvm_vm::adaptive::{BanditPolicy, FlavorPolicy};
use adaptvm_vm::{Buffers, Strategy, Vm, VmConfig};

/// Milliseconds of one timed closure run `reps` times (best of runs).
pub fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// F1 — the Fig. 1 state machine trace on a hot Fig. 2 loop.
pub fn exp_f1() -> Vec<String> {
    let n = 256 * 1024;
    let data: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
    let config = VmConfig {
        hot_threshold: 8,
        ..VmConfig::default()
    };
    let vm = Vm::new(config);
    let buffers = Buffers::new().with_input("some_data", Array::from(data));
    let (_, report) = vm
        .run(&programs::fig2_with_limit(n as i64 - 4096), buffers)
        .expect("fig2 runs");
    let mut rows = vec![format!(
        "state transitions : {}",
        report.state_names().join(" → ")
    )];
    for t in &report.transitions {
        rows.push(format!("  iteration {:>4} → {:?}", t.iteration, t.state));
    }
    rows.push(format!("iterations        : {}", report.iterations));
    rows.push(format!("traces injected   : {}", report.injected_traces));
    rows.push(format!("trace executions  : {}", report.trace_executions));
    rows.push(format!(
        "interpreted nodes : {} (the cold start)",
        report.interpreted_nodes
    ));
    rows
}

/// F2 — Fig. 2 output equivalence across execution strategies.
pub fn exp_f2() -> Vec<String> {
    let n = 64 * 1024;
    let data: Vec<i64> = (0..n as i64).map(|i| (i * 13 % 101) - 50).collect();
    let limit = (n - 8192) as i64;
    let mut rows = Vec::new();
    let mut reference: Option<(Vec<i64>, Vec<i64>)> = None;
    for (name, strategy, chunk) in [
        ("vectorized (1024)", Strategy::Interpret, 1024usize),
        ("tuple-at-a-time (1)", Strategy::CompiledPipeline, 1),
        ("column-at-a-time", Strategy::CompiledPipeline, n),
        ("compiled pipeline", Strategy::CompiledPipeline, 1024),
        ("adaptive", Strategy::Adaptive, 1024),
    ] {
        let config = VmConfig {
            strategy,
            chunk_size: chunk,
            hot_threshold: 4,
            ..VmConfig::default()
        };
        let vm = Vm::new(config);
        let buffers = Buffers::new().with_input("some_data", Array::from(data.clone()));
        let (out, _) = vm
            .run(&programs::fig2_with_limit(limit), buffers)
            .expect("fig2 runs");
        let v = out
            .output("v")
            .expect("written")
            .to_i64_vec()
            .expect("ints");
        let w = out
            .output("w")
            .expect("written")
            .to_i64_vec()
            .expect("ints");
        // w must always be the positive subset of v; strategies at the
        // same chunk size must match bit for bit. (Different chunk sizes
        // legitimately process different row counts — whole chunks are
        // consumed before the break check fires.)
        let subset_ok = w == v.iter().copied().filter(|&x| x > 0).collect::<Vec<_>>();
        let ok = match &reference {
            None => {
                reference = Some((v.clone(), w.clone()));
                true
            }
            Some((rv, rw)) if chunk == 1024 => *rv == v && *rw == w,
            _ => true,
        };
        rows.push(format!(
            "{name:<22} |v|={:<7} |w|={:<7} w=positives(v)={subset_ok} same-chunk-match={ok}",
            v.len(),
            w.len()
        ));
    }
    rows
}

/// F3 — the greedy partitioning of the Fig. 2 dependency graph.
pub fn exp_f3() -> Vec<String> {
    let p = programs::fig2_example();
    let body = programs::loop_body(&p).expect("fig2 has a loop");
    let g = DepGraph::from_stmts(body);
    let parts = partition(&g, &PartitionConfig::default());
    let mut rows = vec![format!(
        "nodes={} regions={} interpreted={}",
        g.len(),
        parts.regions.len(),
        parts.interpreted.len()
    )];
    for (i, r) in parts.regions.iter().enumerate() {
        let labels: Vec<String> = r.nodes.iter().map(|&id| g.node(id).label.clone()).collect();
        rows.push(format!(
            "function {}: seed=`{}` members = {{{}}}",
            i + 1,
            g.node(r.seed).label,
            labels.join(", ")
        ));
    }
    rows.push("(paper Fig. 3: {read, map, write v} and {filter, condense, write w})".into());
    rows
}

/// B1 — TPC-H Q1 and Q6 across execution strategies.
pub fn exp_b1(rows_n: usize) -> Vec<String> {
    let table = tpch::lineitem(rows_n, 42);
    let mut rows = vec![format!("lineitem rows = {rows_n}")];

    // Q1: three engine styles.
    let reps = 3;
    let t_vec = time_ms(reps, || {
        let _ = tpch::q1_vectorized(&table, 1024);
    });
    let t_fused = time_ms(reps, || {
        let _ = tpch::q1_fused(&table);
    });
    // Compact columns are prepared once at load time (a compact-types
    // engine stores them narrow); only execution is timed.
    let compact = tpch::CompactLineitem::from_table(&table);
    let t_adaptive = time_ms(reps, || {
        let _ = tpch::q1_adaptive(&compact, 1024);
    });
    rows.push(format!("Q1 vectorized (X100)          : {t_vec:>9.2} ms"));
    rows.push(format!("Q1 fused (HyPer codegen)      : {t_fused:>9.2} ms"));
    rows.push(format!(
        "Q1 adaptive (compact+preagg)  : {t_adaptive:>9.2} ms   speedup vs fused = {:.2}x",
        t_fused / t_adaptive
    ));

    // Q6 through the full VM.
    let expected = tpch::q6_reference(&table, 1000);
    for (name, strategy) in [
        ("Q6 interpret (vectorized VM) ", Strategy::Interpret),
        ("Q6 compiled pipeline (HyPer) ", Strategy::CompiledPipeline),
        ("Q6 adaptive (Fig. 1 VM)      ", Strategy::Adaptive),
    ] {
        let t = time_ms(reps, || {
            let config = VmConfig {
                strategy,
                hot_threshold: 8,
                cost_model: CostModel::default(),
                ..VmConfig::default()
            };
            let vm = Vm::new(config);
            let program = tpch::q6_program(rows_n as i64, 1000);
            let (out, _) = vm.run(&program, tpch::q6_buffers(&table)).expect("q6 runs");
            let rev = out
                .output("revenue")
                .expect("written")
                .as_f64()
                .expect("f64")[0];
            assert!((rev - expected).abs() / expected.abs().max(1.0) < 1e-9);
        });
        rows.push(format!("{name}: {t:>9.2} ms"));
    }
    rows
}

/// B2 — filter-strategy selectivity sweep.
pub fn exp_b2(n: usize) -> Vec<String> {
    let mut rows = vec![format!(
        "{:<14} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "selectivity", "selvec ms", "bitmap ms", "computeall ms", "static best", "bandit best"
    )];
    for sel in [0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
        let data = gen::signed_with_selectivity(n, sel, 7);
        let reps = 3;
        let mut times = Vec::new();
        for flavor in FilterFlavor::ALL {
            let t = time_ms(reps, || {
                let mut off = 0;
                while off < n {
                    let c = data.slice(off, 16 * 1024);
                    let _ = filter_cmp(
                        adaptvm_dsl::ast::ScalarOp::Gt,
                        &[Operand::Col(&c), Operand::Const(Scalar::I64(0))],
                        None,
                        flavor,
                    )
                    .expect("filter kernel");
                    off += 16 * 1024;
                }
            });
            times.push(t);
        }
        let best = FilterFlavor::ALL[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0];
        // The bandit's pick after exploring this regime.
        let mut policy = BanditPolicy::epsilon_greedy(0.1, 3);
        for _ in 0..200 {
            let flavor = policy.filter_flavor("b2");
            let c = data.slice(0, 16 * 1024);
            let t0 = Instant::now();
            let _ = filter_cmp(
                adaptvm_dsl::ast::ScalarOp::Gt,
                &[Operand::Col(&c), Operand::Const(Scalar::I64(0))],
                None,
                flavor,
            )
            .expect("filter kernel");
            policy.feedback_filter("b2", flavor, t0.elapsed().as_nanos() as u64, 16 * 1024);
        }
        let bandit = policy.best_filter("b2").expect("explored");
        rows.push(format!(
            "{sel:<14} {:>12.2} {:>12.2} {:>12.2} {:>14} {:>12}",
            times[0],
            times[1],
            times[2],
            best.name(),
            bandit.name()
        ));
    }
    rows
}

/// B3 — adaptive join reordering under a selectivity shift.
pub fn exp_b3() -> Vec<String> {
    let chunks = 400usize;
    let chunk_n = 4096usize;
    let mk = |keys: std::ops::Range<i64>| {
        let keys: Vec<i64> = keys.collect();
        HashTable::build(
            &Array::from(keys.clone()),
            &Array::from(keys.iter().map(|k| k * 10).collect::<Vec<_>>()),
        )
        .expect("integer keys")
    };
    // Phase 1: join 0 passes ~100% (keys within its 4000-key build side),
    // join 1 passes ~5%. Phase 2: the probe key domains swap roles, so the
    // optimal order flips mid-run — the §III-C scenario.
    let p1_a: Vec<i64> = (0..chunk_n as i64).map(|i| (i * 7) % 4000).collect();
    let p1_b: Vec<i64> = p1_a.clone();
    let p2_a: Vec<i64> = (0..chunk_n as i64).map(|i| (i * 7) % 80_000).collect(); // ~5% hit join 0
    let p2_b: Vec<i64> = (0..chunk_n as i64).map(|i| (i * 7) % 200).collect(); // 100% hit join 1

    let static_run = |order: [usize; 2]| -> f64 {
        let tables = [mk(0..4000), mk(0..200)];
        time_ms(2, || {
            for c in 0..chunks {
                let (ka, kb) = if c < chunks / 2 {
                    (&p1_a, &p1_b)
                } else {
                    (&p2_a, &p2_b)
                };
                let mut alive: Vec<u32> = (0..chunk_n as u32).collect();
                for &j in &order {
                    let keys = if j == 0 { ka } else { kb };
                    alive.retain(|&i| tables[j].contains(keys[i as usize]));
                }
                std::hint::black_box(&alive);
            }
        })
    };
    let t_static_ab = static_run([0, 1]);
    let t_static_ba = static_run([1, 0]);

    let mut reorders = 0;
    let t_adaptive = time_ms(2, || {
        let mut chain = AdaptiveJoinChain::new(vec![mk(0..4000), mk(0..200)], 8);
        for c in 0..chunks {
            let (ka, kb) = if c < chunks / 2 {
                (&p1_a, &p1_b)
            } else {
                (&p2_a, &p2_b)
            };
            let _ = chain.probe_chunk(&[ka.clone(), kb.clone()]);
        }
        reorders = chain.reorders();
    });
    vec![
        format!("static order A→B : {t_static_ab:>9.2} ms"),
        format!("static order B→A : {t_static_ba:>9.2} ms"),
        format!("adaptive order   : {t_adaptive:>9.2} ms ({reorders} reorders)"),
    ]
}

/// B4 — compressed execution with per-block scheme changes.
pub fn exp_b4(blocks: usize, rows_per_block: usize) -> Vec<String> {
    let mut col = BlockColumn::new();
    for b in 0..blocks {
        let (data, scheme) = match b % 4 {
            0 => (gen::runs_i64(rows_per_block, 64, b as u64), Scheme::Rle),
            1 => (
                gen::categorical_i64(rows_per_block, 5, b as u64),
                Scheme::Dict,
            ),
            2 => (
                gen::uniform_i64(rows_per_block, 1000, 1255, b as u64),
                Scheme::ForPack,
            ),
            _ => (
                gen::uniform_i64(rows_per_block, -1_000_000, 1_000_000, b as u64),
                Scheme::Plain,
            ),
        };
        col.push_block(Block::compress(&data, scheme).expect("codec fits"));
    }
    let mut rows = vec![format!(
        "column: {} rows, {} blocks, schemes change at every boundary",
        col.rows(),
        blocks
    )];
    let mut sums = Vec::new();
    for (name, strategy) in [
        ("always-decompress", ScanStrategy::Decompress),
        ("compressed-exec  ", ScanStrategy::Compressed),
        ("adaptive         ", ScanStrategy::Adaptive),
    ] {
        let mut result = (0i64, Default::default());
        let t = time_ms(3, || {
            result = sum_where_gt(&col, 500, strategy).expect("scan runs");
        });
        let (sum, stats) = result;
        sums.push(sum);
        rows.push(format!(
            "{name}: {t:>8.2} ms   fast={:<5} decompressed={:<5} plans={}",
            stats.fast_path, stats.decompressed, stats.plans_cached
        ));
    }
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "strategies agree");
    rows
}

/// B5 — compile-or-interpret break-even, through the actual VM: the
/// interpreter pays per-operation dispatch/profiling, the JIT pays the
/// calibrated compile cost up front, the adaptive strategy interprets the
/// cold start and compiles once hot.
pub fn exp_b5() -> Vec<String> {
    let chunk = 1024usize;
    let mut rows = vec![format!(
        "{:<12} {:>14} {:>14} {:>14} {:>10}",
        "chunks", "interpret ms", "jit-now ms", "adaptive ms", "winner"
    )];
    for chunks in [1usize, 10, 100, 1_000, 10_000] {
        let n = chunks * chunk;
        let data: Vec<i64> = (0..n as i64).map(|i| i % 1000).collect();
        let program = programs::map_chain(n as i64);
        let run = |strategy: Strategy, hot: u64| {
            let config = VmConfig {
                strategy,
                chunk_size: chunk,
                hot_threshold: hot,
                cost_model: CostModel::default(), // real compile latency
                ..VmConfig::default()
            };
            let vm = Vm::new(config);
            let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
            let (out, _) = vm.run(&program, buffers).expect("chain runs");
            assert_eq!(out.output("out").expect("written").len(), n);
        };
        let t_interp = time_ms(2, || run(Strategy::Interpret, 8));
        let t_jit = time_ms(2, || run(Strategy::CompiledPipeline, 8));
        let t_adaptive = time_ms(2, || run(Strategy::Adaptive, 8));
        let winner = if t_interp <= t_jit {
            "interpret"
        } else {
            "jit"
        };
        rows.push(format!(
            "{chunks:<12} {t_interp:>14.3} {t_jit:>14.3} {t_adaptive:>14.3} {winner:>10}"
        ));
    }
    rows
}

/// B6 — CPU/GPU placement crossover (virtual time).
pub fn exp_b6() -> Vec<String> {
    let devices = [
        DeviceSpec::cpu(),
        DeviceSpec::integrated_gpu(),
        DeviceSpec::discrete_gpu(),
    ];
    // A compute-heavy fragment (64 ops/lane): enough arithmetic intensity
    // that the discrete GPU can amortize its PCIe transfers at the top end.
    let ops = 64;
    let mut rows = vec![format!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "rows", "cpu µs", "igpu µs", "dgpu µs", "winner"
    )];
    for exp in (8..=26).step_by(2) {
        let n = 1usize << exp;
        let bytes = n * 8;
        let costs: Vec<u64> = devices
            .iter()
            .map(|d| price(d, n, ops, bytes, bytes).total_ns())
            .collect();
        let w = costs
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .expect("non-empty")
            .0;
        rows.push(format!(
            "2^{exp:<8} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            costs[0] as f64 / 1e3,
            costs[1] as f64 / 1e3,
            costs[2] as f64 / 1e3,
            devices[w].name
        ));
    }
    rows
}

/// B7 — deforestation: fused vs unfused map chains.
pub fn exp_b7(n: usize) -> Vec<String> {
    let data: Vec<i64> = (0..n as i64).collect();
    let mut rows = vec![format!(
        "{:<10} {:>14} {:>12} {:>10}",
        "chain len", "unfused ms", "fused ms", "speedup"
    )];
    for len in [2usize, 4, 8, 16] {
        // Build an n-op chain program textually.
        let mut src = String::from("mut i\ni := 0\nloop {\n  let x = read i xs in {\n");
        let mut prev = "x".to_string();
        for k in 0..len {
            src.push_str(&format!(
                "let m{k} = map (\\v -> v * 3 + {k}) {prev} in {{\n"
            ));
            prev = format!("m{k}");
        }
        src.push_str(&format!("write out i {prev}\ni := i + len(x)\n"));
        for _ in 0..len {
            src.push('}');
        }
        src.push_str(&format!("\n}}\nif i >= {n} then {{ break }}\n}}"));
        let program = adaptvm_dsl::parser::parse_program(&src).expect("generated chain parses");

        let run = |p: &adaptvm_dsl::ast::Program, strategy: Strategy| {
            let config = VmConfig {
                strategy,
                ..VmConfig::default()
            };
            let vm = Vm::new(config);
            let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
            let (out, _) = vm.run(p, buffers).expect("chain runs");
            out.output("out").expect("written").len()
        };
        // Unfused: vectorized interpretation (one pass + intermediate per op).
        let t_unfused = time_ms(2, || {
            let _ = run(&program, Strategy::Interpret);
        });
        // Fused: deforestation + whole-pipeline trace.
        let fused = fuse_program(&program);
        let t_fused = time_ms(2, || {
            let _ = run(&fused, Strategy::CompiledPipeline);
        });
        rows.push(format!(
            "{len:<10} {t_unfused:>14.2} {t_fused:>12.2} {:>9.2}x",
            t_unfused / t_fused
        ));
    }
    rows
}

/// B8 — the TLB-width partitioning heuristic sweep.
///
/// One shared input fans out into `lanes` independent map→write chains:
/// fusing everything into one function touches `2·lanes + 1` names, so the
/// `max_io` constraint directly controls how wide the compiled functions
/// may grow (the paper's TLB-thrashing guard).
pub fn exp_b8() -> Vec<String> {
    let lanes = 12;
    let n = 256 * 1024;
    let mut src = String::from("mut i\ni := 0\nloop {\n  let x = read i xs in {\n");
    let mut closes = 1;
    for k in 0..lanes {
        src.push_str(&format!("let y{k} = map (\\v -> v * 2 + {k}) x in {{\n"));
        src.push_str(&format!("write out{k} i y{k}\n"));
        closes += 1;
    }
    src.push_str("i := i + len(x)\n");
    for _ in 0..closes {
        src.push('}');
    }
    src.push_str(&format!("\nif i >= {n} then {{ break }}\n}}"));
    let program = adaptvm_dsl::parser::parse_program(&src).expect("generated program parses");
    let normalized = adaptvm_dsl::normalize::normalize_program(&program);
    let body = programs::loop_body(&normalized).expect("has a loop");
    let g = DepGraph::from_stmts(body);
    let uses = scalar_uses(body);

    let mut rows = vec![format!(
        "{:<10} {:>10} {:>14} {:>12} {:>12}",
        "max_io", "regions", "widest (io)", "compiled", "time ms"
    )];
    let data: Vec<i64> = (0..n as i64).collect();
    for max_io in [2usize, 4, 8, 16, 32, 64] {
        let parts = partition(&g, &PartitionConfig::with_max_io(max_io));
        let widest = parts
            .regions
            .iter()
            .map(|r| g.io_count(&r.nodes))
            .max()
            .unwrap_or(0);
        let compilable = parts
            .regions
            .iter()
            .filter(|r| adaptvm_jit::builder::build_fragment(&g, r, &uses, &HashMap::new()).is_ok())
            .count();
        let t = time_ms(2, || {
            let config = VmConfig {
                strategy: Strategy::Adaptive,
                hot_threshold: 2,
                partition: PartitionConfig::with_max_io(max_io),
                ..VmConfig::default()
            };
            let vm = Vm::new(config);
            let buffers = Buffers::new().with_input("xs", Array::from(data.clone()));
            let _ = vm.run(&program, buffers).expect("wide program runs");
        });
        rows.push(format!(
            "{max_io:<10} {:>10} {widest:>14} {compilable:>12} {t:>12.2}",
            parts.regions.len()
        ));
    }
    rows
}

/// B9 — micro-adaptive bandit convergence and regret.
pub fn exp_b9() -> Vec<String> {
    let n = 16 * 1024;
    let mut rows = vec![format!(
        "{:<12} {:>14} {:>14} {:>16}",
        "phase", "bandit ms", "oracle ms", "regret vs oracle"
    )];
    let mut policy = BanditPolicy::epsilon_greedy(0.1, 11);
    for (phase, sel) in [("low-sel", 0.01), ("high-sel", 0.99)] {
        let data = gen::signed_with_selectivity(n, sel, 5);
        let rounds = 300;
        // Bandit-driven.
        let t0 = Instant::now();
        for _ in 0..rounds {
            let flavor = policy.filter_flavor("b9");
            let t1 = Instant::now();
            let _ = filter_cmp(
                adaptvm_dsl::ast::ScalarOp::Gt,
                &[Operand::Col(&data), Operand::Const(Scalar::I64(0))],
                None,
                flavor,
            )
            .expect("filter kernel");
            policy.feedback_filter("b9", flavor, t1.elapsed().as_nanos() as u64, n);
        }
        let t_bandit = t0.elapsed().as_secs_f64() * 1e3;
        // Oracle: best single flavor for this phase.
        let mut t_oracle = f64::INFINITY;
        for flavor in FilterFlavor::ALL {
            let t = time_ms(1, || {
                for _ in 0..rounds {
                    let _ = filter_cmp(
                        adaptvm_dsl::ast::ScalarOp::Gt,
                        &[Operand::Col(&data), Operand::Const(Scalar::I64(0))],
                        None,
                        flavor,
                    )
                    .expect("filter kernel");
                }
            });
            t_oracle = t_oracle.min(t);
        }
        rows.push(format!(
            "{phase:<12} {t_bandit:>14.2} {t_oracle:>14.2} {:>15.1}%",
            (t_bandit / t_oracle - 1.0) * 100.0
        ));
        rows.push(format!(
            "  converged to {:?}, pulls {:?}",
            policy.best_filter("b9"),
            policy.filter_pulls("b9")
        ));
    }
    rows
}

/// T1 — Table I conformance: the registered kernel catalog.
pub fn exp_t1() -> Vec<String> {
    let all = adaptvm_kernels::registry::all_kernels();
    let mut by_family: HashMap<&'static str, usize> = HashMap::new();
    for k in &all {
        *by_family.entry(k.family).or_default() += 1;
    }
    let mut fams: Vec<_> = by_family.into_iter().collect();
    fams.sort();
    let mut rows = vec![format!("pre-compiled kernels: {}", all.len())];
    for (fam, count) in fams {
        rows.push(format!("  {fam:<8} {count}"));
    }
    rows.push("Table I skeletons: map filter fold read write gather scatter gen condense merge — all present".into());
    rows
}
