//! The experiment harness: regenerates every paper artifact and derived
//! experiment from DESIGN.md §6.
//!
//! ```sh
//! cargo run --release -p adaptvm-bench --bin experiments          # all
//! cargo run --release -p adaptvm-bench --bin experiments -- b2   # one
//! ```

use adaptvm_bench::experiments as exp;

fn section(id: &str, title: &str, rows: Vec<String>) {
    println!("\n=== {id}: {title} ===");
    for r in rows {
        println!("{r}");
    }
}

fn main() {
    let filter: Option<String> = std::env::args().nth(1).map(|s| s.to_lowercase());
    let want = |id: &str| filter.as_deref().is_none_or(|f| f == id);

    if want("t1") {
        section("T1", "Table I skeleton/kernel conformance", exp::exp_t1());
    }
    if want("f1") {
        section("F1", "Fig. 1 state machine trace", exp::exp_f1());
    }
    if want("f2") {
        section("F2", "Fig. 2 across execution strategies", exp::exp_f2());
    }
    if want("f3") {
        section("F3", "Fig. 3 greedy partitioning", exp::exp_f3());
    }
    if want("b1") {
        section(
            "B1",
            "TPC-H Q1/Q6 strategy comparison",
            exp::exp_b1(2_000_000),
        );
    }
    if want("b2") {
        section(
            "B2",
            "filter-flavor selectivity sweep",
            exp::exp_b2(1 << 20),
        );
    }
    if want("b3") {
        section("B3", "adaptive join reordering", exp::exp_b3());
    }
    if want("b4") {
        section(
            "B4",
            "compressed execution under scheme changes",
            exp::exp_b4(256, 4096),
        );
    }
    if want("b5") {
        section("B5", "compile-or-interpret break-even", exp::exp_b5());
    }
    if want("b6") {
        section("B6", "heterogeneous placement crossover", exp::exp_b6());
    }
    if want("b7") {
        section(
            "B7",
            "deforestation / fusion ablation",
            exp::exp_b7(1 << 21),
        );
    }
    if want("b8") {
        section("B8", "TLB-width partitioning heuristic", exp::exp_b8());
    }
    if want("b9") {
        section("B9", "micro-adaptive bandit regret", exp::exp_b9());
    }
}
