//! Shared experiment implementations.
//!
//! Each `exp_*` function runs one experiment from DESIGN.md §6 and returns
//! printable rows; the `experiments` binary prints them (regenerating the
//! numbers in EXPERIMENTS.md) and the Criterion benches time the same code
//! paths.

pub mod experiments;
