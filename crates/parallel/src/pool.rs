//! The scoped worker pool: run a task over every morsel of a plan and
//! return the results **in morsel order**.
//!
//! Each worker loops on [`Dispatcher::next`] until the plan drains. A
//! worker owns everything mutable it touches (the task builds per-morsel
//! state); only explicitly shared structures (the JIT code cache, the
//! dispatcher) cross threads. `workers = 1` runs inline on the calling
//! thread — *by construction* identical to a sequential loop over the
//! plan, which is the anchor of every determinism guarantee upstairs.

use crate::dispatch::{DispatchStats, Dispatcher};
use crate::morsel::{Morsel, MorselPlan};
use crate::scheduler::Scheduler;

/// Where a morsel plan executes: a scoped per-run pool (threads spawned
/// and joined inside the call) or a long-lived [`Scheduler`] (threads
/// created once, queries queued). Both sides honor the same contract —
/// results in morsel order, first error aborts — so pipelines written
/// against [`Runner::run`] are executor-agnostic and their results are
/// identical on either side.
#[derive(Clone, Copy)]
pub enum Runner<'a> {
    /// Spawn `workers` scoped threads for this run only.
    Scoped {
        /// Worker threads (clamped to ≥1).
        workers: usize,
    },
    /// Queue the run on a long-lived scheduler.
    Scheduler(&'a Scheduler),
}

impl std::fmt::Debug for Runner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Runner::Scoped { workers } => {
                f.debug_struct("Scoped").field("workers", workers).finish()
            }
            Runner::Scheduler(s) => f
                .debug_struct("Scheduler")
                .field("workers", &s.workers())
                .finish(),
        }
    }
}

impl Runner<'_> {
    /// Worker threads this runner executes on.
    pub fn workers(&self) -> usize {
        match self {
            Runner::Scoped { workers } => (*workers).max(1),
            Runner::Scheduler(s) => s.workers(),
        }
    }

    /// Run `task` over every morsel of `plan`; results come back in morsel
    /// order (see [`run_morsels`], whose contract both arms share).
    pub fn run<T, E, F>(&self, plan: &MorselPlan, task: F) -> Result<(Vec<T>, DispatchStats), E>
    where
        T: Send,
        E: Send,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync,
    {
        match self {
            Runner::Scoped { workers } => run_morsels(*workers, plan, task),
            Runner::Scheduler(s) => s.run(plan, task),
        }
    }
}

/// Run `task` over every morsel using `workers` threads; results come back
/// in morsel order. The first task error aborts the run (remaining morsels
/// are skipped) and is returned. Worker panics propagate.
pub fn run_morsels<T, E, F>(
    workers: usize,
    plan: &MorselPlan,
    task: F,
) -> Result<(Vec<T>, DispatchStats), E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &Morsel) -> Result<T, E> + Sync,
{
    let workers = workers.max(1);
    let dispatcher = Dispatcher::new(plan.morsels(), workers);

    if workers == 1 {
        // Inline sequential execution: the single-threaded reference path.
        let mut results = Vec::with_capacity(plan.len());
        while let Some(m) = dispatcher.next(0) {
            results.push(task(0, &m)?);
        }
        return Ok((results, dispatcher.stats()));
    }

    let stop = std::sync::atomic::AtomicBool::new(false);
    let worker_outputs: Vec<Result<Vec<(usize, T)>, E>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let dispatcher = &dispatcher;
                let task = &task;
                let stop = &stop;
                s.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let Some(m) = dispatcher.next(w) else { break };
                        match task(w, &m) {
                            Ok(v) => out.push((m.index, v)),
                            Err(e) => {
                                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                                return Err(e);
                            }
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });

    // Assemble in morsel order (indices are unique and dense on success).
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(plan.len());
    for out in worker_outputs {
        indexed.extend(out?);
    }
    indexed.sort_by_key(|(i, _)| *i);
    Ok((
        indexed.into_iter().map(|(_, v)| v).collect(),
        dispatcher.stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_morsel_order() {
        let plan = MorselPlan::new(100, 3);
        for workers in [1, 2, 4, 8] {
            let (results, _) =
                run_morsels(workers, &plan, |_, m| Ok::<usize, ()>(m.start)).unwrap();
            let expect: Vec<usize> = plan.morsels().iter().map(|m| m.start).collect();
            assert_eq!(results, expect, "workers={workers}");
        }
    }

    #[test]
    fn errors_abort_and_surface() {
        let plan = MorselPlan::new(64, 1);
        let r = run_morsels(4, &plan, |_, m| {
            if m.index == 13 {
                Err("boom")
            } else {
                Ok(m.index)
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let data: Vec<i64> = (0..10_000).collect();
        let plan = MorselPlan::new(data.len(), 128);
        let seq: i64 = data.iter().sum();
        for workers in [1, 2, 4, 8] {
            let (parts, stats) = run_morsels(workers, &plan, |_, m| {
                Ok::<i64, ()>(data[m.start..m.end()].iter().sum())
            })
            .unwrap();
            assert_eq!(parts.iter().sum::<i64>(), seq);
            assert_eq!(
                stats.executed.iter().sum::<u64>(),
                plan.len() as u64,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn empty_plan_is_fine() {
        let plan = MorselPlan::new(0, 8);
        let (results, stats) = run_morsels(4, &plan, |_, _| Ok::<(), ()>(())).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.steals, 0);
    }
}
