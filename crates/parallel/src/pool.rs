//! The scoped worker pool: run a task over every morsel of a plan and
//! return the results **in morsel order**.
//!
//! Each worker loops on [`Dispatcher::next`] until the plan drains. A
//! worker owns everything mutable it touches (the task builds per-morsel
//! state); only explicitly shared structures (the JIT code cache, the
//! dispatcher) cross threads. `workers = 1` runs inline on the calling
//! thread — *by construction* identical to a sequential loop over the
//! plan, which is the anchor of every determinism guarantee upstairs.

use std::time::Instant;

use crate::dispatch::{DispatchStats, Dispatcher};
use crate::morsel::{Morsel, MorselPlan};
use crate::obs::{self, EventKind};
use crate::scheduler::{CancelReason, CancelToken, QueryOutcomeKind, RunError, Scheduler};
use crate::serve::{Priority, QueryService, SubmitOpts, TenantId};

/// The trace lane for worker `w` (worker ids past the lane budget share
/// the last worker lane).
pub(crate) fn worker_lane(w: usize) -> u16 {
    w.min(obs::MAX_WORKER_LANES - 1) as u16
}

/// Where a morsel plan executes: a scoped per-run pool (threads spawned
/// and joined inside the call), a long-lived [`Scheduler`] (threads
/// created once, queries queued), or an admission-controlled
/// [`QueryService`] (a scheduler behind bounded priority queues). All
/// sides honor the same contract — results in morsel order, first error
/// aborts — so pipelines written against [`Runner::run`] are
/// executor-agnostic and their results are identical on any of them.
#[derive(Clone, Copy)]
pub enum Runner<'a> {
    /// Spawn `workers` scoped threads for this run only.
    Scoped {
        /// Worker threads (clamped to ≥1).
        workers: usize,
    },
    /// Queue the run on a long-lived scheduler.
    Scheduler(&'a Scheduler),
    /// Pass admission control first, then run on the service's scheduler.
    Service {
        /// The serving layer (admission + fairness + telemetry).
        service: &'a QueryService,
        /// Priority class the run is admitted under.
        priority: Priority,
        /// Tenant the run is attributed to (`None` = anonymous). Tenancy
        /// only gates admission and dispatch order — results are
        /// bit-identical either way.
        tenant: Option<TenantId>,
    },
}

impl std::fmt::Debug for Runner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Runner::Scoped { workers } => {
                f.debug_struct("Scoped").field("workers", workers).finish()
            }
            Runner::Scheduler(s) => f
                .debug_struct("Scheduler")
                .field("workers", &s.workers())
                .finish(),
            Runner::Service {
                service,
                priority,
                tenant,
            } => f
                .debug_struct("Service")
                .field("workers", &service.scheduler().workers())
                .field("priority", priority)
                .field("tenant", tenant)
                .finish(),
        }
    }
}

impl Runner<'_> {
    /// Worker threads this runner executes on.
    pub fn workers(&self) -> usize {
        match self {
            Runner::Scoped { workers } => (*workers).max(1),
            Runner::Scheduler(s) => s.workers(),
            Runner::Service { service, .. } => service.scheduler().workers(),
        }
    }

    /// Run `task` over every morsel of `plan`; results come back in morsel
    /// order (see [`run_morsels`], whose contract every arm shares).
    ///
    /// This is the legacy non-cancellable flavor: it cannot express
    /// cancellation or admission rejection, so the `Service` arm is run
    /// at its priority with an unbounded queue wait. Prefer
    /// [`Runner::run_with`] in new code.
    pub fn run<T, E, F>(&self, plan: &MorselPlan, task: F) -> Result<(Vec<T>, DispatchStats), E>
    where
        T: Send,
        E: Send,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync,
    {
        match self {
            Runner::Scoped { workers } => run_morsels(*workers, plan, task),
            Runner::Scheduler(s) => s.run(plan, task),
            Runner::Service { .. } => match self.run_with(plan, None, task) {
                Ok(out) => Ok(out),
                Err(RunError::Task(e)) => Err(e),
                // Reachable during service drain/shutdown races: drain
                // can refuse (or cancel) a queued gated run even though
                // this caller attached no token.
                Err(RunError::Rejected(why)) => {
                    panic!("Runner::run cannot express an admission rejection ({why}); use Runner::run_with")
                }
                Err(RunError::Cancelled | RunError::DeadlineExceeded) => {
                    panic!("Runner::run cannot express a drain-time cancellation; use Runner::run_with")
                }
            },
        }
    }

    /// [`Runner::run`] with a cooperative [`CancelToken`] checked at every
    /// morsel boundary. Cancellation, deadlines, and admission rejection
    /// (scheduler shut down / service queue full or draining) surface as
    /// typed [`RunError`]s.
    pub fn run_with<T, E, F>(
        &self,
        plan: &MorselPlan,
        cancel: Option<&CancelToken>,
        task: F,
    ) -> Result<(Vec<T>, DispatchStats), RunError<E>>
    where
        T: Send,
        E: Send,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync,
    {
        match self {
            Runner::Scoped { workers } => run_morsels_with(*workers, plan, cancel, task),
            Runner::Scheduler(s) => s.run_with(plan, cancel, task),
            Runner::Service {
                service,
                priority,
                tenant,
            } => {
                let mut opts = SubmitOpts::new(*priority);
                if let Some(id) = tenant {
                    opts = opts.with_tenant(*id);
                }
                if let Some(token) = cancel {
                    opts = opts.with_cancel(token.clone());
                }
                // Classify the run's own result for the service
                // telemetry (a plain run_gated would count task errors
                // as completed).
                let outcome = |r: &Result<(Vec<T>, DispatchStats), RunError<E>>| match r {
                    Ok(_) => QueryOutcomeKind::Completed,
                    Err(RunError::Task(_)) => QueryOutcomeKind::TaskError,
                    Err(RunError::Cancelled | RunError::Rejected(_)) => QueryOutcomeKind::Cancelled,
                    Err(RunError::DeadlineExceeded) => QueryOutcomeKind::DeadlineExceeded,
                };
                match service.run_gated_with(opts, |s| s.run_with(plan, cancel, task), outcome) {
                    Ok(out) => out,
                    Err(gate) => Err(gate.into_run_error()),
                }
            }
        }
    }
}

/// Run `task` over every morsel using `workers` threads; results come back
/// in morsel order. The first task error aborts the run (remaining morsels
/// are skipped) and is returned. Worker panics propagate.
pub fn run_morsels<T, E, F>(
    workers: usize,
    plan: &MorselPlan,
    task: F,
) -> Result<(Vec<T>, DispatchStats), E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &Morsel) -> Result<T, E> + Sync,
{
    match run_morsels_with(workers, plan, None, task) {
        Ok(out) => Ok(out),
        Err(RunError::Task(e)) => Err(e),
        Err(RunError::Cancelled | RunError::DeadlineExceeded | RunError::Rejected(_)) => {
            unreachable!("no cancel token was attached and the scoped pool never rejects")
        }
    }
}

/// [`run_morsels`] with a cooperative [`CancelToken`] checked before every
/// morsel: on cancellation the remaining morsels are skipped (in-flight
/// ones finish) and [`RunError::Cancelled`]/[`RunError::DeadlineExceeded`]
/// is returned. A task error still wins if it happened first.
pub fn run_morsels_with<T, E, F>(
    workers: usize,
    plan: &MorselPlan,
    cancel: Option<&CancelToken>,
    task: F,
) -> Result<(Vec<T>, DispatchStats), RunError<E>>
where
    T: Send,
    E: Send,
    F: Fn(usize, &Morsel) -> Result<T, E> + Sync,
{
    let workers = workers.max(1);
    let dispatcher = Dispatcher::new(plan.morsels(), workers);
    // Capture the caller's trace scope (if any) before fanning out, so
    // worker threads inherit it; one relaxed load when tracing is off.
    let scope = obs::current_scope();
    let check = || -> Result<(), CancelReason> {
        match cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    };
    let cancel_err = |reason: CancelReason| -> RunError<E> {
        match reason {
            CancelReason::Cancelled => RunError::Cancelled,
            CancelReason::DeadlineExceeded => RunError::DeadlineExceeded,
        }
    };

    if workers == 1 {
        // Inline sequential execution: the single-threaded reference path.
        let _lane = scope.as_ref().map(|(t, st)| t.enter_lane(0, st));
        let mut results = Vec::with_capacity(plan.len());
        while let Some((m, stolen)) = dispatcher.next_from(0) {
            check().map_err(cancel_err)?;
            let t0 = scope.as_ref().map(|_| Instant::now());
            results.push(task(0, &m).map_err(RunError::Task)?);
            if let Some((trace, _)) = &scope {
                obs::emit(EventKind::Morsel {
                    index: m.index as u32,
                    rows: m.len as u32,
                    stolen,
                    dur_ns: trace.dur_ns(t0.expect("timed when traced").elapsed()),
                });
            }
        }
        return Ok((results, dispatcher.stats()));
    }

    // What each scoped worker hands back: its indexed morsel results, or
    // the first task/cancellation error it hit.
    type WorkerOutput<T, E> = Result<Vec<(usize, T)>, RunError<E>>;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let worker_outputs: Vec<WorkerOutput<T, E>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let dispatcher = &dispatcher;
                let task = &task;
                let stop = &stop;
                let check = &check;
                let scope = scope.clone();
                s.spawn(move || {
                    let _lane = scope
                        .as_ref()
                        .map(|(t, st)| t.enter_lane(worker_lane(w), st));
                    let mut out: Vec<(usize, T)> = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let Some((m, stolen)) = dispatcher.next_from(w) else {
                            break;
                        };
                        if let Err(reason) = check() {
                            stop.store(true, std::sync::atomic::Ordering::Relaxed);
                            return Err(cancel_err(reason));
                        }
                        let t0 = scope.as_ref().map(|_| Instant::now());
                        match task(w, &m) {
                            Ok(v) => {
                                if let Some((trace, _)) = &scope {
                                    obs::emit(EventKind::Morsel {
                                        index: m.index as u32,
                                        rows: m.len as u32,
                                        stolen,
                                        dur_ns: trace
                                            .dur_ns(t0.expect("timed when traced").elapsed()),
                                    });
                                }
                                out.push((m.index, v));
                            }
                            Err(e) => {
                                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                                return Err(RunError::Task(e));
                            }
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });

    // Assemble in morsel order (indices are unique and dense on success).
    // A task error outranks a concurrent cancellation: the error happened
    // first (it is what tripped `stop` for the others), so report it.
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(plan.len());
    let mut cancelled: Option<RunError<E>> = None;
    for out in worker_outputs {
        match out {
            Ok(pairs) => indexed.extend(pairs),
            Err(e @ RunError::Task(_)) => return Err(e),
            Err(e) => cancelled = Some(e),
        }
    }
    if let Some(e) = cancelled {
        return Err(e);
    }
    indexed.sort_by_key(|(i, _)| *i);
    Ok((
        indexed.into_iter().map(|(_, v)| v).collect(),
        dispatcher.stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_morsel_order() {
        let plan = MorselPlan::new(100, 3);
        for workers in [1, 2, 4, 8] {
            let (results, _) =
                run_morsels(workers, &plan, |_, m| Ok::<usize, ()>(m.start)).unwrap();
            let expect: Vec<usize> = plan.morsels().iter().map(|m| m.start).collect();
            assert_eq!(results, expect, "workers={workers}");
        }
    }

    #[test]
    fn errors_abort_and_surface() {
        let plan = MorselPlan::new(64, 1);
        let r = run_morsels(4, &plan, |_, m| {
            if m.index == 13 {
                Err("boom")
            } else {
                Ok(m.index)
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let data: Vec<i64> = (0..10_000).collect();
        let plan = MorselPlan::new(data.len(), 128);
        let seq: i64 = data.iter().sum();
        for workers in [1, 2, 4, 8] {
            let (parts, stats) = run_morsels(workers, &plan, |_, m| {
                Ok::<i64, ()>(data[m.start..m.end()].iter().sum())
            })
            .unwrap();
            assert_eq!(parts.iter().sum::<i64>(), seq);
            assert_eq!(
                stats.executed.iter().sum::<u64>(),
                plan.len() as u64,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn empty_plan_is_fine() {
        let plan = MorselPlan::new(0, 8);
        let (results, stats) = run_morsels(4, &plan, |_, _| Ok::<(), ()>(())).unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn pre_cancelled_token_stops_the_scoped_run() {
        let token = CancelToken::new();
        token.cancel();
        for workers in [1, 4] {
            let plan = MorselPlan::new(1_000, 10);
            let r = run_morsels_with(workers, &plan, Some(&token), |_, m| Ok::<usize, ()>(m.len));
            assert_eq!(r.unwrap_err(), RunError::Cancelled, "workers={workers}");
        }
    }

    #[test]
    fn mid_run_cancellation_skips_the_tail() {
        let token = CancelToken::new();
        let plan = MorselPlan::new(200, 1);
        let t = token.clone();
        let executed = std::sync::atomic::AtomicUsize::new(0);
        let r = run_morsels_with(2, &plan, Some(&token), |_, m| {
            executed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if m.index == 5 {
                t.cancel();
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
            Ok::<usize, ()>(m.len)
        });
        assert_eq!(r.unwrap_err(), RunError::Cancelled);
        assert!(
            executed.load(std::sync::atomic::Ordering::Relaxed) < plan.len(),
            "cancellation must skip part of the plan"
        );
    }
}
