//! Bounded per-priority queues with weighted-fair (stride) dispatch and
//! aging.
//!
//! Three lanes — one per [`Priority`] — each a bounded FIFO. The pop side
//! is a **stride scheduler**: every lane carries a *pass* value that
//! advances by `stride = STRIDE_ONE / weight` each time the lane
//! dispatches, and the lane with the smallest pass goes next (ties break
//! toward the higher priority). With weights 16/4/1 a fully backlogged
//! system dispatches Interactive : Normal : Batch at exactly 16 : 4 : 1 —
//! Interactive wins under load, but Batch's share is *guaranteed*, so it
//! can never starve on proportions alone.
//!
//! Two refinements keep the scheme honest:
//!
//! * **no banked credit** — a lane that was empty re-enters at
//!   `max(own pass, global pass)`, so an idle priority cannot save up
//!   virtual time and then monopolize the pool in a burst;
//! * **aging** — any lane *head* that has waited more than `age_rounds`
//!   dispatches is promoted past the stride order (oldest overdue first).
//!   This bounds worst-case queueing delay in dispatches, on top of the
//!   proportional-share guarantee. Aging counts dispatch rounds, not wall
//!   time, which keeps unit tests deterministic.

use std::collections::VecDeque;
use std::time::Instant;

use super::Priority;

/// One pass-value unit: the stride of a weight-`STRIDE_ONE` lane.
const STRIDE_ONE: u64 = 16;

/// A queued item plus the bookkeeping fairness needs.
pub(crate) struct Aged<T> {
    /// The queued payload.
    pub item: T,
    /// Wall-clock enqueue time (for queue-wait telemetry).
    pub enqueued: Instant,
    /// Dispatch-round counter at enqueue (for aging).
    pub round: u64,
}

struct Lane<T> {
    items: VecDeque<Aged<T>>,
    capacity: usize,
    pass: u64,
    stride: u64,
}

/// The three bounded lanes plus the stride/aging state. Generic over the
/// payload so the fairness logic is unit-testable with plain integers.
pub(crate) struct FairQueues<T> {
    lanes: Vec<Lane<T>>,
    /// Dispatches so far — the aging clock.
    rounds: u64,
    /// Pass value of the most recent dispatch (for credit-sync on
    /// re-entry of an empty lane).
    global_pass: u64,
    /// Promote a lane head once it has waited this many dispatches.
    age_rounds: u64,
}

impl<T> FairQueues<T> {
    /// Three empty lanes of `capacity` each.
    pub fn new(capacity: usize, age_rounds: u64) -> FairQueues<T> {
        FairQueues {
            lanes: Priority::ALL
                .iter()
                .map(|p| Lane {
                    items: VecDeque::new(),
                    capacity: capacity.max(1),
                    pass: 0,
                    stride: STRIDE_ONE / p.weight(),
                })
                .collect(),
            rounds: 0,
            global_pass: 0,
            age_rounds: age_rounds.max(1),
        }
    }

    /// Enqueue under `priority`; hands the item back when the lane is
    /// full (bounded queues are the backpressure mechanism).
    pub fn push(&mut self, priority: Priority, item: T) -> Result<(), T> {
        let rounds = self.rounds;
        let global_pass = self.global_pass;
        let lane = &mut self.lanes[priority.index()];
        if lane.items.len() >= lane.capacity {
            return Err(item);
        }
        if lane.items.is_empty() {
            // Re-entry after idleness: no banked virtual time.
            lane.pass = lane.pass.max(global_pass);
        }
        lane.items.push_back(Aged {
            item,
            enqueued: Instant::now(),
            round: rounds,
        });
        Ok(())
    }

    /// Dispatch the next item: an overdue head first (aging), else the
    /// smallest-pass lane (stride). `None` when every lane is empty.
    /// (The dispatcher itself uses [`FairQueues::pop_where`]; this is the
    /// no-filter form the fairness unit tests exercise.)
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<(Priority, Aged<T>)> {
        self.pop_where(|_, items| (!items.is_empty()).then_some(0))
    }

    /// [`FairQueues::pop`] with a second selection level: lanes are tried
    /// in fairness order (aging candidate first, then ascending pass),
    /// and for each lane `select` names the index of the entry to
    /// dispatch — or `None` to skip the lane (e.g. every entry's tenant
    /// is at its in-flight cap). Only the lane that actually dispatches
    /// advances its pass, so skipped lanes keep their place in the stride
    /// order. `None` when no lane yields an entry.
    pub fn pop_where(
        &mut self,
        mut select: impl FnMut(Priority, &VecDeque<Aged<T>>) -> Option<usize>,
    ) -> Option<(Priority, Aged<T>)> {
        for pick in self.lane_preference() {
            let lane = &mut self.lanes[pick];
            let Some(i) = select(Priority::ALL[pick], &lane.items) else {
                continue;
            };
            let entry = lane.items.remove(i).expect("select returned a valid index");
            lane.pass += lane.stride;
            self.global_pass = self.global_pass.max(lane.pass);
            self.rounds += 1;
            return Some((Priority::ALL[pick], entry));
        }
        None
    }

    /// Non-empty lanes in dispatch-preference order: the aging candidate
    /// (if any) first, then ascending `(pass, index)` — the same order
    /// [`FairQueues::pop`] would try them in.
    fn lane_preference(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.lanes.len())
            .filter(|&i| !self.lanes[i].items.is_empty())
            .collect();
        order.sort_by_key(|&i| (self.lanes[i].pass, i));
        if let Some(aged) = self.pick_lane() {
            if order.first() != Some(&aged) {
                order.retain(|&i| i != aged);
                order.insert(0, aged);
            }
        }
        order
    }

    fn pick_lane(&self) -> Option<usize> {
        // Aging: a head that is overdue (waited ≥ `age_rounds` dispatches)
        // *and strictly older than every other head* jumps the stride
        // order. The strictness matters: in a fully backlogged system all
        // heads are equally old, and there stride's proportional share is
        // the right answer — aging only rescues an old straggler sitting
        // behind a stream of fresh higher-priority arrivals.
        let mut oldest: Option<(u64, usize, bool)> = None; // (age, lane, unique)
        for (i, lane) in self.lanes.iter().enumerate() {
            let Some(head) = lane.items.front() else {
                continue;
            };
            let age = self.rounds.saturating_sub(head.round);
            if age < self.age_rounds {
                continue;
            }
            oldest = Some(match oldest {
                None => (age, i, true),
                Some((a, j, u)) => {
                    if age > a {
                        (age, i, true)
                    } else {
                        (a, j, u && age < a)
                    }
                }
            });
        }
        if let Some((_, i, true)) = oldest {
            return Some(i);
        }
        // Stride: smallest pass among non-empty lanes; ties toward the
        // higher priority (lower index).
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, lane)| !lane.items.is_empty())
            .min_by_key(|(i, lane)| (lane.pass, *i))
            .map(|(i, _)| i)
    }

    /// Queued items under `priority`.
    pub fn depth(&self, priority: Priority) -> usize {
        self.lanes[priority.index()].items.len()
    }

    /// Queued items across all lanes.
    pub fn total(&self) -> usize {
        self.lanes.iter().map(|l| l.items.len()).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Take everything still queued (highest priority first, FIFO within
    /// a lane) — the drain path.
    pub fn drain(&mut self) -> Vec<(Priority, Aged<T>)> {
        let mut out = Vec::with_capacity(self.total());
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            out.extend(lane.items.drain(..).map(|e| (Priority::ALL[i], e)));
        }
        out
    }

    /// Remove every queued item matching `pred`, from any position (the
    /// survivors keep their FIFO order and fairness state) — how the
    /// dispatcher evicts cancelled/expired entries without waiting for
    /// their dispatch turn.
    pub fn take_dead(&mut self, pred: impl Fn(&T) -> bool) -> Vec<(Priority, Aged<T>)> {
        let mut out = Vec::new();
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let mut keep = VecDeque::with_capacity(lane.items.len());
            for e in lane.items.drain(..) {
                if pred(&e.item) {
                    out.push((Priority::ALL[i], e));
                } else {
                    keep.push_back(e);
                }
            }
            lane.items = keep;
        }
        out
    }

    /// Iterate the queued items (lane order, FIFO within a lane).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.lanes
            .iter()
            .flat_map(|l| l.items.iter().map(|e| &e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturated(age_rounds: u64) -> FairQueues<usize> {
        let mut q = FairQueues::new(64, age_rounds);
        for i in 0..40 {
            q.push(Priority::Interactive, i).unwrap();
            q.push(Priority::Normal, 100 + i).unwrap();
            q.push(Priority::Batch, 200 + i).unwrap();
        }
        q
    }

    #[test]
    fn stride_dispatch_is_proportional_16_4_1() {
        // Aging disabled (huge threshold): pure stride scheduling. One
        // full stride period (16 + 4 + 1 = 21 dispatches) must split
        // exactly by weight.
        let mut q = saturated(u64::MAX);
        let mut counts = [0usize; 3];
        for _ in 0..21 {
            let (p, _) = q.pop().unwrap();
            counts[p.index()] += 1;
        }
        assert_eq!(counts, [16, 4, 1], "one stride period splits by weight");
    }

    #[test]
    fn ties_prefer_higher_priority() {
        let mut q: FairQueues<usize> = FairQueues::new(8, u64::MAX);
        q.push(Priority::Batch, 1).unwrap();
        q.push(Priority::Interactive, 2).unwrap();
        // Equal passes (both 0): Interactive must win the tie.
        assert_eq!(q.pop().unwrap().0, Priority::Interactive);
    }

    #[test]
    fn aging_promotes_an_old_straggler_past_the_stride_gap() {
        // A batch entry whose lane just used its stride turn sits a full
        // period (~16 dispatches) behind; with a stream of *fresh*
        // interactive arrivals its head becomes strictly the oldest and
        // aging promotes it after ~age_rounds dispatches instead.
        let age = 8;
        let mut q: FairQueues<usize> = FairQueues::new(512, age);
        for i in 0..4usize {
            q.push(Priority::Interactive, i).unwrap();
        }
        q.push(Priority::Batch, 900).unwrap();
        q.push(Priority::Batch, 901).unwrap();
        // Two warm-up dispatches: one interactive, then the first batch
        // entry (its lane's pass jumps a full period ahead).
        assert_eq!(q.pop().unwrap().0, Priority::Interactive);
        assert_eq!(q.pop().unwrap().1.item, 900);
        // Open loop: one fresh interactive arrival per dispatch.
        let mut batch_round = None;
        for r in 0..40usize {
            q.push(Priority::Interactive, 100 + r).unwrap();
            let (p, e) = q.pop().unwrap();
            if p == Priority::Batch {
                assert_eq!(e.item, 901);
                batch_round = Some(r);
                break;
            }
        }
        let r = batch_round.expect("batch head must dispatch");
        assert!(
            (4..=age as usize).contains(&r),
            "aging should beat the ~16-dispatch stride gap, got round {r}"
        );
    }

    #[test]
    fn saturated_equal_ages_fall_back_to_stride() {
        // Everything enqueued at round 0: all heads age together, so the
        // aging rule (strictly-oldest only) must never fire and the split
        // stays proportional — no priority inversion, no starvation.
        let mut q = saturated(2);
        let mut counts = [0usize; 3];
        for _ in 0..21 {
            let (p, _) = q.pop().unwrap();
            counts[p.index()] += 1;
        }
        assert_eq!(counts, [16, 4, 1]);
    }

    #[test]
    fn empty_lane_reenters_without_banked_credit() {
        // Interactive runs alone for a while; when Batch shows up it must
        // not have banked virtual time from its idle period.
        let mut q: FairQueues<usize> = FairQueues::new(64, u64::MAX);
        for i in 0..48 {
            q.push(Priority::Interactive, i).unwrap();
        }
        for _ in 0..16 {
            assert_eq!(q.pop().unwrap().0, Priority::Interactive);
        }
        for i in 0..16 {
            q.push(Priority::Batch, 500 + i).unwrap();
        }
        // Over the next full period Batch gets its 1-in-21 share, not a
        // catch-up burst: at most 2 of the next 21 dispatches.
        let mut batch = 0;
        for _ in 0..21 {
            if q.pop().unwrap().0 == Priority::Batch {
                batch += 1;
            }
        }
        assert!(batch <= 2, "idle lane must not bank credit (got {batch})");
        assert!(batch >= 1, "batch still gets its share");
    }

    #[test]
    fn bounded_lanes_reject_when_full() {
        let mut q: FairQueues<usize> = FairQueues::new(2, 8);
        assert!(q.push(Priority::Normal, 1).is_ok());
        assert!(q.push(Priority::Normal, 2).is_ok());
        assert_eq!(q.push(Priority::Normal, 3), Err(3));
        // Other lanes are unaffected.
        assert!(q.push(Priority::Batch, 4).is_ok());
        assert_eq!(q.depth(Priority::Normal), 2);
        assert_eq!(q.depth(Priority::Batch), 1);
        assert_eq!(q.total(), 3);
        let drained = q.drain();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_within_a_lane() {
        let mut q: FairQueues<usize> = FairQueues::new(16, 8);
        for i in 0..5 {
            q.push(Priority::Normal, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().1.item, i);
        }
    }
}
