//! Multi-tenant quotas and accounting for the serving layer.
//!
//! The serving layer's priority classes decide *how urgent* a query is;
//! tenants decide *who is asking*. A [`TenantRegistry`] — built before
//! the service and immutable afterwards — gives every registered tenant a
//! [`TenantQuota`]:
//!
//! * **`weight`** — the tenant's admission share. The dispatcher runs a
//!   second stride scheduler *inside* each priority lane: among the
//!   queued entries of the lane chosen by the priority stride, the
//!   dispatchable entry whose tenant has the smallest tenant-pass goes
//!   next, and that tenant's pass advances by `TENANT_STRIDE_ONE /
//!   weight`. Two tenants flooding the same lane therefore split its
//!   dispatches by weight, and an idle tenant re-enters at the global
//!   tenant pass (no banked credit) — the same scheme, one level down.
//! * **`max_in_flight`** — how many of the tenant's queries may occupy
//!   the service's concurrent-query slots at once. A tenant at its cap is
//!   simply skipped by the dispatcher (its entries stay queued, FIFO
//!   order preserved) until one of its queries finishes, so a flood from
//!   one tenant cannot occupy every slot.
//! * **`max_queued`** — how many of the tenant's queries may wait in the
//!   admission queues (across all priorities). Beyond it, submissions are
//!   refused with the typed [`AdmissionError::TenantQuota`] — "you
//!   exceeded *your* quota", distinct from a service-wide
//!   [`AdmissionError::QueueFull`] or [`AdmissionError::Shed`].
//! * **`memory_budget`** — an optional [`MemoryBudget`] shared by all of
//!   the tenant's queries. `relational::ParallelOpts` picks it up when a
//!   query is tenant-attributed and no explicit budget is set, so one
//!   tenant's spilling joins are governed by *its* byte account.
//!
//! Queries submitted without a tenant are *anonymous*: they bypass every
//! tenant quota and dispatch under a built-in pseudo-tenant of weight 1.
//! Tenancy only ever decides *when* a query starts — never how it runs —
//! so a tenant-attributed result is bit-identical to the same query
//! submitted anonymously.
//!
//! [`AdmissionError::TenantQuota`]: super::AdmissionError::TenantQuota
//! [`AdmissionError::QueueFull`]: super::AdmissionError::QueueFull
//! [`AdmissionError::Shed`]: super::AdmissionError::Shed

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::budget::MemoryBudget;
use crate::scheduler::QueryOutcomeKind;

use super::telemetry::{LatencyHistogram, TenantStats};

/// One tenant-pass unit: the stride of a weight-`2^20` tenant. Large so
/// integer division keeps distinct strides for any sane weight.
pub(crate) const TENANT_STRIDE_ONE: u64 = 1 << 20;

/// A handle to a registered tenant — obtained from
/// [`TenantRegistry::register`] and attached to submissions via
/// `SubmitOpts::with_tenant` (or `ParallelOpts::with_tenant` one level
/// up). Only valid with the registry it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The registry slot this id names.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Per-tenant resource limits. The default is deliberately permissive —
/// weight 1, no in-flight/queue caps, no budget — so registering a tenant
/// buys accounting first and constraints only where asked for.
#[derive(Debug, Clone, Default)]
pub struct TenantQuota {
    /// Admission share inside a priority lane (clamped to ≥ 1). A
    /// weight-4 tenant gets 4 dispatches for every 1 a weight-1 tenant
    /// gets when both are backlogged in the same lane.
    pub weight: u64,
    /// Concurrent-query slots this tenant may hold at once
    /// (`0` = unlimited).
    pub max_in_flight: usize,
    /// Queued submissions this tenant may have waiting, summed across
    /// priorities (`0` = unlimited).
    pub max_queued: usize,
    /// Byte budget shared by the tenant's spilling operators.
    pub memory_budget: Option<Arc<MemoryBudget>>,
}

impl TenantQuota {
    /// The permissive default quota.
    pub fn new() -> TenantQuota {
        TenantQuota::default()
    }

    /// Set the admission-share weight.
    pub fn with_weight(mut self, weight: u64) -> TenantQuota {
        self.weight = weight;
        self
    }

    /// Cap concurrent dispatched queries.
    pub fn with_max_in_flight(mut self, max: usize) -> TenantQuota {
        self.max_in_flight = max;
        self
    }

    /// Cap queued submissions (across all priorities).
    pub fn with_max_queued(mut self, max: usize) -> TenantQuota {
        self.max_queued = max;
        self
    }

    /// Attach a shared memory budget.
    pub fn with_budget(mut self, budget: Arc<MemoryBudget>) -> TenantQuota {
        self.memory_budget = Some(budget);
        self
    }

    /// The stride weight, clamped to ≥ 1.
    pub(crate) fn effective_weight(&self) -> u64 {
        self.weight.max(1)
    }

    /// In-flight cap with `0` meaning unlimited.
    pub(crate) fn in_flight_cap(&self) -> usize {
        if self.max_in_flight == 0 {
            usize::MAX
        } else {
            self.max_in_flight
        }
    }

    /// Queue cap with `0` meaning unlimited.
    pub(crate) fn queued_cap(&self) -> usize {
        if self.max_queued == 0 {
            usize::MAX
        } else {
            self.max_queued
        }
    }
}

/// The atomic per-tenant counter block (telemetry; exact counts, written
/// lock-free).
#[derive(Default)]
pub(crate) struct TenantCounters {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub rejected_full: AtomicU64,
    pub rejected_quota: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub admission_timeouts: AtomicU64,
    pub shed: AtomicU64,
    pub completed: AtomicU64,
    pub task_errors: AtomicU64,
    pub panicked: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_expired: AtomicU64,
    pub queue_wait: LatencyHistogram,
    pub latency: LatencyHistogram,
}

impl TenantCounters {
    pub fn record_outcome(&self, kind: QueryOutcomeKind, latency: Duration) {
        match kind {
            QueryOutcomeKind::Completed => self.completed.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::TaskError => self.task_errors.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::Panicked => self.panicked.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::Cancelled => self.cancelled.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::DeadlineExceeded => {
                self.deadline_expired.fetch_add(1, Ordering::Relaxed)
            }
        };
        self.latency.record(latency);
    }
}

struct TenantEntry {
    name: String,
    quota: TenantQuota,
    counters: TenantCounters,
}

/// The fixed set of tenants a service knows about. Register every tenant
/// **before** building the `QueryService` — the registry is immutable
/// once the service owns it (no interior registration), which keeps the
/// dispatcher's per-tenant scheduling state a plain indexed vector.
#[derive(Default)]
pub struct TenantRegistry {
    tenants: Vec<TenantEntry>,
}

impl TenantRegistry {
    /// An empty registry (every submission is anonymous).
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Register a tenant; the returned [`TenantId`] is how submissions
    /// name it. Names are labels for telemetry — duplicates are allowed
    /// and simply share a label.
    pub fn register(&mut self, name: impl Into<String>, quota: TenantQuota) -> TenantId {
        self.tenants.push(TenantEntry {
            name: name.into(),
            quota,
            counters: TenantCounters::default(),
        });
        TenantId(self.tenants.len() - 1)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Look a tenant up by name (first match).
    pub fn lookup(&self, name: &str) -> Option<TenantId> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .map(TenantId)
    }

    /// The tenant's display name.
    pub fn name(&self, id: TenantId) -> &str {
        &self.tenants[id.0].name
    }

    /// The tenant's quota.
    pub fn quota(&self, id: TenantId) -> &TenantQuota {
        &self.tenants[id.0].quota
    }

    /// The tenant's memory budget, if one was configured — what
    /// `ParallelOpts::effective_budget` resolves for tenant-attributed
    /// queries.
    pub fn budget(&self, id: TenantId) -> Option<&MemoryBudget> {
        self.tenants[id.0].quota.memory_budget.as_deref()
    }

    /// The tenant's shared budget handle (for holding it elsewhere).
    pub fn budget_arc(&self, id: TenantId) -> Option<Arc<MemoryBudget>> {
        self.tenants[id.0].quota.memory_budget.clone()
    }

    /// All tenant ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = TenantId> + '_ {
        (0..self.tenants.len()).map(TenantId)
    }

    pub(crate) fn counters(&self, slot: usize) -> Option<&TenantCounters> {
        self.tenants.get(slot).map(|t| &t.counters)
    }

    /// Counter snapshot for one tenant; the live `queued`/`in_flight`
    /// gauges are filled in by the service (they live under its lock).
    pub(crate) fn snapshot(&self, id: TenantId) -> TenantStats {
        let t = &self.tenants[id.0];
        let c = &t.counters;
        TenantStats {
            name: t.name.clone(),
            weight: t.quota.effective_weight(),
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected_full: c.rejected_full.load(Ordering::Relaxed),
            rejected_quota: c.rejected_quota.load(Ordering::Relaxed),
            rejected_shutdown: c.rejected_shutdown.load(Ordering::Relaxed),
            admission_timeouts: c.admission_timeouts.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            task_errors: c.task_errors.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            queued: 0,
            in_flight: 0,
            queue_wait: c.queue_wait.snapshot(),
            latency: c.latency.snapshot(),
        }
    }
}

impl fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.tenants.iter().map(|t| (&t.name, &t.quota)))
            .finish()
    }
}

/// Per-tenant *scheduling* state, one slot per registered tenant plus a
/// trailing slot for anonymous traffic. Lives inside the service's state
/// mutex — gauges and stride passes are only ever touched under it.
pub(crate) struct TenantSched {
    /// Queued submissions (gauge; the quota's `max_queued` bound).
    pub queued: usize,
    /// Dispatched-but-unfinished queries (gauge; `max_in_flight` bound).
    pub in_flight: usize,
    /// Tenant stride pass (see the module docs).
    pub pass: u64,
    /// `TENANT_STRIDE_ONE / weight`, precomputed.
    pub stride: u64,
    /// `max_in_flight` with 0 mapped to unlimited.
    pub in_flight_cap: usize,
    /// `max_queued` with 0 mapped to unlimited.
    pub queued_cap: usize,
}

impl TenantSched {
    pub fn from_quota(quota: &TenantQuota) -> TenantSched {
        TenantSched {
            queued: 0,
            in_flight: 0,
            pass: 0,
            stride: TENANT_STRIDE_ONE / quota.effective_weight(),
            in_flight_cap: quota.in_flight_cap(),
            queued_cap: quota.queued_cap(),
        }
    }

    /// The anonymous pseudo-tenant: weight 1, no caps.
    pub fn anonymous() -> TenantSched {
        TenantSched::from_quota(&TenantQuota::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let mut reg = TenantRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register("acme", TenantQuota::new().with_weight(4));
        let b = reg.register(
            "burst",
            TenantQuota::new()
                .with_max_in_flight(2)
                .with_max_queued(8)
                .with_budget(Arc::new(MemoryBudget::bytes(1 << 20))),
        );
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.lookup("acme"), Some(a));
        assert_eq!(reg.lookup("burst"), Some(b));
        assert_eq!(reg.lookup("nobody"), None);
        assert_eq!(reg.name(a), "acme");
        assert_eq!(reg.quota(a).effective_weight(), 4);
        assert!(reg.budget(a).is_none());
        assert_eq!(reg.budget(b).unwrap().limit(), 1 << 20);
        assert_eq!(reg.ids().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(a.index(), 0);
        assert_eq!(format!("{b}"), "tenant#1");
    }

    #[test]
    fn quota_caps_map_zero_to_unlimited() {
        let q = TenantQuota::default();
        assert_eq!(q.effective_weight(), 1);
        assert_eq!(q.in_flight_cap(), usize::MAX);
        assert_eq!(q.queued_cap(), usize::MAX);
        let q = TenantQuota::new()
            .with_weight(0)
            .with_max_in_flight(3)
            .with_max_queued(5);
        assert_eq!(q.effective_weight(), 1, "weight 0 clamps to 1");
        assert_eq!(q.in_flight_cap(), 3);
        assert_eq!(q.queued_cap(), 5);
    }

    #[test]
    fn sched_state_precomputes_strides() {
        let s = TenantSched::from_quota(&TenantQuota::new().with_weight(4));
        assert_eq!(s.stride, TENANT_STRIDE_ONE / 4);
        let anon = TenantSched::anonymous();
        assert_eq!(anon.stride, TENANT_STRIDE_ONE);
        assert_eq!(anon.in_flight_cap, usize::MAX);
    }

    #[test]
    fn counters_record_outcomes() {
        let c = TenantCounters::default();
        c.record_outcome(QueryOutcomeKind::Completed, Duration::from_micros(3));
        c.record_outcome(QueryOutcomeKind::Cancelled, Duration::from_micros(3));
        assert_eq!(c.completed.load(Ordering::Relaxed), 1);
        assert_eq!(c.cancelled.load(Ordering::Relaxed), 1);
        assert_eq!(c.latency.snapshot().count, 2);
    }
}
