//! Serving-layer telemetry: per-priority **and per-tenant** counters,
//! queue-depth gauges, log-bucketed latency histograms — all lock-free on
//! the record path — plus [`render_text`], the plain-text metrics
//! exposition.
//!
//! Everything here is written by workers/dispatchers with relaxed atomics
//! and read through [`ServiceStats`] snapshots — a snapshot taken while
//! queries are in flight is internally *approximately* consistent (each
//! counter is exact, cross-counter invariants may lag by in-flight
//! updates), and exactly consistent once the service is idle or drained.
//!
//! ## The text exposition format
//!
//! [`render_text`] renders one snapshot as a Prometheus-inspired plain
//! text document with a **stable, versioned line format** (golden-tested
//! so it cannot silently drift):
//!
//! * The first line is exactly `# adaptvm-serve-metrics v2`. No other
//!   comment, `HELP`, or `TYPE` lines are emitted.
//! * Every other line is `name value` or `name{key="value"} escaped`,
//!   with **exactly one** label (`priority="…"` or `tenant="…"`), plus
//!   `le`/`quantile` on histogram lines. Label values escape `\` as
//!   `\\`, `"` as `\"`, and newline as `\n`.
//! * Counters end in `_total`; gauges are bare names; histograms emit
//!   cumulative `name_bucket{…,le="…"}` lines (upper bounds are the
//!   log₂-µs bucket edges rendered in seconds, last bucket `+Inf`),
//!   `quantile="0.5"`/`"0.99"` summary lines (omitted while the
//!   histogram is empty), then `name_sum` (seconds) and `name_count`.
//! * Families appear in a fixed order: service-level gauges, scheduler
//!   counters, per-priority families (lane order: interactive, normal,
//!   batch), per-tenant families in registration order, then the
//!   unlabelled `engine_*` process-wide counters.
//! * Integer values print in decimal; seconds print as Rust's shortest
//!   round-trip `f64` (e.g. `0.000128`, `1.048576`).
//!
//! ## v1 → v2
//!
//! v2 is a byte-stable superset of v1: every line v1 emitted is emitted
//! unchanged and in the same order; v2 appends the `engine_*` family
//! block — JIT compiles/cache hits/deopts, spill bytes written/read,
//! scratch-arena pool activity, and morsel-elasticity resize events —
//! sampled from the process-wide always-on counters (see
//! [`EngineSnapshot`]).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::scheduler::{QueryOutcomeKind, SchedulerStats};

use super::Priority;

/// Histogram buckets: bucket `i` counts latencies in `[2^(i-1), 2^i)`
/// microseconds (bucket 0: `< 1 µs`); the last bucket is open-ended.
/// 28 buckets reach past 2^27 µs ≈ 134 s — beyond any sane query.
pub const HISTOGRAM_BUCKETS: usize = 28;

/// A concurrent log₂-bucketed latency histogram.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    fn bucket_of(d: Duration) -> usize {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        if micros == 0 {
            return 0;
        }
        // 1 µs → bucket 1, 2-3 µs → bucket 2, …
        ((64 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// An owned, immutable copy of the current state.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An owned histogram snapshot with quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
}

impl Default for LatencySnapshot {
    fn default() -> LatencySnapshot {
        LatencySnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencySnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// where the cumulative count crosses `q · count` — an over-estimate
    /// by at most 2× (the bucket width). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i upper bound: 2^i µs (bucket 0: 1 µs). The open
                // last bucket reports the observed max instead.
                if i == HISTOGRAM_BUCKETS - 1 {
                    return Some(Duration::from_nanos(self.max_ns));
                }
                return Some(Duration::from_micros(1u64 << i));
            }
        }
        Some(Duration::from_nanos(self.max_ns))
    }

    /// Median (see [`LatencySnapshot::quantile`]).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 99th percentile (see [`LatencySnapshot::quantile`]).
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// Arithmetic mean. `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.sum_ns / self.count))
    }

    /// Largest observation.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }
}

/// The atomic per-priority counter block.
#[derive(Default)]
pub(crate) struct PriorityCounters {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub rejected_full: AtomicU64,
    pub rejected_quota: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub admission_timeouts: AtomicU64,
    pub shed: AtomicU64,
    pub completed: AtomicU64,
    pub task_errors: AtomicU64,
    pub panicked: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_expired: AtomicU64,
    pub queue_wait: LatencyHistogram,
    pub latency: LatencyHistogram,
}

/// A snapshot of one priority class's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PriorityStats {
    /// Submissions attempted (accepted or not).
    pub submitted: u64,
    /// Submissions that entered the queue.
    pub admitted: u64,
    /// Submissions refused because the class queue was full.
    pub rejected_full: u64,
    /// Submissions refused because the submitting tenant was at its
    /// queue-depth quota.
    pub rejected_quota: u64,
    /// Submissions refused because the service was draining/stopped.
    pub rejected_shutdown: u64,
    /// Blocking submissions that timed out waiting for queue space.
    pub admission_timeouts: u64,
    /// Submissions refused by the overload-shedding policy (Batch before
    /// Normal before Interactive under sustained `QueueFull`).
    pub shed: u64,
    /// Queries that ran to a merged result.
    pub completed: u64,
    /// Queries whose task errored.
    pub task_errors: u64,
    /// Queries whose task or merge panicked.
    pub panicked: u64,
    /// Queries cancelled (queued or running).
    pub cancelled: u64,
    /// Queries whose deadline passed (queued or running).
    pub deadline_expired: u64,
    /// Time from admission to dispatch.
    pub queue_wait: LatencySnapshot,
    /// Time from admission to completion (any outcome).
    pub latency: LatencySnapshot,
}

impl PriorityStats {
    /// Every terminal outcome recorded so far.
    pub fn finished(&self) -> u64 {
        self.completed + self.task_errors + self.panicked + self.cancelled + self.deadline_expired
    }

    /// Rejections of any kind (full / tenant quota / shutdown). Shed
    /// queries are counted separately — see [`PriorityStats::shed`].
    pub fn rejected(&self) -> u64 {
        self.rejected_full + self.rejected_quota + self.rejected_shutdown
    }

    /// Refused fraction of all submissions — rejections plus sheds (0
    /// when none were attempted).
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.rejected() + self.shed) as f64 / self.submitted as f64
        }
    }
}

/// The whole telemetry block (one counter set per priority).
#[derive(Default)]
pub(crate) struct Telemetry {
    per: [PriorityCounters; 3],
}

impl Telemetry {
    pub fn counters(&self, p: Priority) -> &PriorityCounters {
        &self.per[p.index()]
    }

    pub fn record_outcome(&self, p: Priority, kind: QueryOutcomeKind, latency: Duration) {
        let c = self.counters(p);
        match kind {
            QueryOutcomeKind::Completed => c.completed.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::TaskError => c.task_errors.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::Panicked => c.panicked.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::Cancelled => c.cancelled.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::DeadlineExceeded => {
                c.deadline_expired.fetch_add(1, Ordering::Relaxed)
            }
        };
        c.latency.record(latency);
    }

    pub fn snapshot_priority(&self, p: Priority) -> PriorityStats {
        let c = self.counters(p);
        PriorityStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected_full: c.rejected_full.load(Ordering::Relaxed),
            rejected_quota: c.rejected_quota.load(Ordering::Relaxed),
            rejected_shutdown: c.rejected_shutdown.load(Ordering::Relaxed),
            admission_timeouts: c.admission_timeouts.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            task_errors: c.task_errors.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            queue_wait: c.queue_wait.snapshot(),
            latency: c.latency.snapshot(),
        }
    }
}

/// A snapshot of one tenant's counters, gauges, and latency histograms.
/// Same counter vocabulary as [`PriorityStats`], sliced by *who asked*
/// instead of *how urgent*.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's registered display name (metrics label).
    pub name: String,
    /// Effective stride weight (≥ 1).
    pub weight: u64,
    /// Submissions attempted (accepted or not).
    pub submitted: u64,
    /// Submissions that entered the queue.
    pub admitted: u64,
    /// Submissions refused because the class queue was full.
    pub rejected_full: u64,
    /// Submissions refused by this tenant's own queue-depth quota.
    pub rejected_quota: u64,
    /// Submissions refused because the service was draining/stopped.
    pub rejected_shutdown: u64,
    /// Blocking submissions that timed out waiting for queue space.
    pub admission_timeouts: u64,
    /// Submissions refused by the overload-shedding policy.
    pub shed: u64,
    /// Queries that ran to a merged result.
    pub completed: u64,
    /// Queries whose task errored.
    pub task_errors: u64,
    /// Queries whose task or merge panicked.
    pub panicked: u64,
    /// Queries cancelled (queued or running).
    pub cancelled: u64,
    /// Queries whose deadline passed (queued or running).
    pub deadline_expired: u64,
    /// Live queued submissions across priorities (gauge).
    pub queued: usize,
    /// Live dispatched-but-unfinished queries (gauge).
    pub in_flight: usize,
    /// Time from admission to dispatch.
    pub queue_wait: LatencySnapshot,
    /// Time from admission to completion (any outcome).
    pub latency: LatencySnapshot,
}

impl TenantStats {
    /// Every terminal outcome recorded so far.
    pub fn finished(&self) -> u64 {
        self.completed + self.task_errors + self.panicked + self.cancelled + self.deadline_expired
    }

    /// Rejections of any kind (full / tenant quota / shutdown); sheds are
    /// counted separately in [`TenantStats::shed`].
    pub fn rejected(&self) -> u64 {
        self.rejected_full + self.rejected_quota + self.rejected_shutdown
    }

    /// Refused fraction of all submissions — rejections plus sheds (0
    /// when none were attempted).
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.rejected() + self.shed) as f64 / self.submitted as f64
        }
    }
}

/// One coherent view of the service: per-priority counters and
/// histograms, per-tenant counters, live gauges, and the underlying
/// scheduler's counters.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Counter snapshots indexed by [`Priority::index`].
    pub per_priority: [PriorityStats; 3],
    /// Live queue depth per priority (gauge).
    pub queue_depths: [usize; 3],
    /// Queries currently dispatched onto the scheduler (gauge).
    pub running: usize,
    /// True once `drain`/`shutdown` began.
    pub draining: bool,
    /// The scheduler's own lifetime counters.
    pub scheduler: SchedulerStats,
    /// Per-tenant snapshots in registration order (empty when the service
    /// was built without a registry). Anonymous traffic appears only in
    /// the per-priority counters.
    pub tenants: Vec<TenantStats>,
    /// The live elastic concurrency gate (gauge; between the configured
    /// base and ceiling).
    pub concurrent_limit: usize,
    /// Times the elastic gate doubled under backlog.
    pub grow_events: u64,
    /// Times the elastic gate halved after draining.
    pub shrink_events: u64,
    /// Current shedding escalation: 0 none, 1 Batch shed, 2 Batch and
    /// Normal shed (gauge).
    pub shed_level: u8,
}

impl ServiceStats {
    /// The counter block for one priority class.
    pub fn priority(&self, p: Priority) -> &PriorityStats {
        &self.per_priority[p.index()]
    }

    /// Live queue depth for one priority class.
    pub fn queue_depth(&self, p: Priority) -> usize {
        self.queue_depths[p.index()]
    }

    /// The tenant snapshot with the given registered name (first match).
    pub fn tenant(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

/// A point-in-time sample of the process-wide engine counters rendered
/// as the `engine_*` families of the v2 exposition: JIT activity
/// ([`adaptvm_vm::jit_counters`]), spill I/O byte totals
/// ([`adaptvm_storage::spill::io_counters`]), scratch-arena pool churn
/// ([`crate::scratch_stats`]), and morsel-elasticity resizes
/// ([`crate::obs::morsel_resize_counters`]).
///
/// All sources are monotonic relaxed atomics that are **always on** —
/// they cost one `fetch_add` at each event site whether or not tracing
/// is enabled, so the exposition never needs a [`crate::obs::Trace`].
/// [`render_text`] captures a live snapshot; tests inject a synthetic
/// one through [`render_text_with`] to keep goldens deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Fragments compiled (sync or via a background publish).
    pub jit_compiles: u64,
    /// Fragments injected from a shared cache without compiling.
    pub jit_cache_hits: u64,
    /// Fragments submitted to a background compile server.
    pub jit_async_submits: u64,
    /// Build/compile/run failures that fell back to interpretation.
    pub jit_deopts: u64,
    /// Encoded bytes written to spill run files.
    pub spill_bytes_written: u64,
    /// Encoded bytes read back from spill run files.
    pub spill_bytes_read: u64,
    /// Scratch arenas allocated fresh because the pool was empty.
    pub scratch_created: u64,
    /// Scratch arenas handed out from the pool (buffers already warm).
    pub scratch_reused: u64,
    /// Morsel-elasticity resizes that grew the morsel size.
    pub morsel_grow: u64,
    /// Morsel-elasticity resizes that shrank the morsel size.
    pub morsel_shrink: u64,
}

impl EngineSnapshot {
    /// Sample every process-wide engine counter right now.
    pub fn capture() -> EngineSnapshot {
        let jit = adaptvm_vm::jit_counters();
        let io = adaptvm_storage::spill::io_counters();
        let scratch = crate::scratch_stats();
        let (morsel_grow, morsel_shrink) = crate::obs::morsel_resize_counters();
        EngineSnapshot {
            jit_compiles: jit.compiles,
            jit_cache_hits: jit.cache_hits,
            jit_async_submits: jit.async_submits,
            jit_deopts: jit.deopts,
            spill_bytes_written: io.bytes_written,
            spill_bytes_read: io.bytes_read,
            scratch_created: scratch.created,
            scratch_reused: scratch.reused,
            morsel_grow,
            morsel_shrink,
        }
    }
}

/// A named counter family: exposition name plus field accessor.
type CounterFamily<T, V> = (&'static str, fn(&T) -> V);

/// Escape a label value per the exposition format: `\` → `\\`, `"` →
/// `\"`, newline → `\n`.
fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

/// Emit one labelled histogram family: cumulative `_bucket` lines (upper
/// bounds in seconds, final `+Inf`), `quantile` summary lines when
/// non-empty, then `_sum` and `_count`.
fn render_histogram(out: &mut String, name: &str, key: &str, value: &str, h: &LatencySnapshot) {
    let v = escape_label(value);
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        cumulative += c;
        if i == HISTOGRAM_BUCKETS - 1 {
            let _ = writeln!(
                out,
                "{name}_bucket{{{key}=\"{v}\",le=\"+Inf\"}} {cumulative}"
            );
        } else {
            let le = (1u64 << i) as f64 / 1e6;
            let _ = writeln!(
                out,
                "{name}_bucket{{{key}=\"{v}\",le=\"{le}\"}} {cumulative}"
            );
        }
    }
    for (q, qlabel) in [(0.50, "0.5"), (0.99, "0.99")] {
        if let Some(d) = h.quantile(q) {
            let _ = writeln!(
                out,
                "{name}{{{key}=\"{v}\",quantile=\"{qlabel}\"}} {}",
                d.as_secs_f64()
            );
        }
    }
    let sum = Duration::from_nanos(h.sum_ns).as_secs_f64();
    let _ = writeln!(out, "{name}_sum{{{key}=\"{v}\"}} {sum}");
    let _ = writeln!(out, "{name}_count{{{key}=\"{v}\"}} {}", h.count);
}

/// Render a [`ServiceStats`] snapshot as the versioned plain-text metrics
/// exposition, sampling the process-wide engine counters live (see the
/// module docs for the format contract). For a deterministic rendering —
/// golden-testable byte for byte — inject the engine sample through
/// [`render_text_with`].
pub fn render_text(stats: &ServiceStats) -> String {
    render_text_with(stats, &EngineSnapshot::capture())
}

/// Render a [`ServiceStats`] snapshot plus an explicit [`EngineSnapshot`]
/// as the versioned plain-text metrics exposition. The output is
/// deterministic for a given pair of snapshots.
pub fn render_text_with(stats: &ServiceStats, engine: &EngineSnapshot) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("# adaptvm-serve-metrics v2\n");

    // Service-level gauges.
    let _ = writeln!(out, "serve_running {}", stats.running);
    let _ = writeln!(out, "serve_draining {}", u8::from(stats.draining));
    let _ = writeln!(out, "serve_concurrent_limit {}", stats.concurrent_limit);
    let _ = writeln!(out, "serve_shed_level {}", stats.shed_level);
    for p in Priority::ALL {
        let _ = writeln!(
            out,
            "serve_queue_depth{{priority=\"{}\"}} {}",
            p.name(),
            stats.queue_depth(p)
        );
    }

    // Scheduler / service-wide counters.
    let _ = writeln!(out, "serve_concurrency_grow_total {}", stats.grow_events);
    let _ = writeln!(
        out,
        "serve_concurrency_shrink_total {}",
        stats.shrink_events
    );
    let _ = writeln!(
        out,
        "scheduler_queries_submitted_total {}",
        stats.scheduler.queries_submitted
    );
    let _ = writeln!(
        out,
        "scheduler_queries_completed_total {}",
        stats.scheduler.queries_completed
    );
    let _ = writeln!(
        out,
        "scheduler_morsels_executed_total {}",
        stats.scheduler.morsels_executed
    );

    // Per-priority counter families, family-major, lanes in order.
    let priority_counters: [CounterFamily<PriorityStats, u64>; 12] = [
        ("serve_submitted_total", |s| s.submitted),
        ("serve_admitted_total", |s| s.admitted),
        ("serve_rejected_full_total", |s| s.rejected_full),
        ("serve_rejected_quota_total", |s| s.rejected_quota),
        ("serve_rejected_shutdown_total", |s| s.rejected_shutdown),
        ("serve_admission_timeouts_total", |s| s.admission_timeouts),
        ("serve_shed_total", |s| s.shed),
        ("serve_completed_total", |s| s.completed),
        ("serve_task_errors_total", |s| s.task_errors),
        ("serve_panicked_total", |s| s.panicked),
        ("serve_cancelled_total", |s| s.cancelled),
        ("serve_deadline_expired_total", |s| s.deadline_expired),
    ];
    for (name, get) in priority_counters {
        for p in Priority::ALL {
            let _ = writeln!(
                out,
                "{name}{{priority=\"{}\"}} {}",
                p.name(),
                get(stats.priority(p))
            );
        }
    }
    for p in Priority::ALL {
        render_histogram(
            &mut out,
            "serve_queue_wait_seconds",
            "priority",
            p.name(),
            &stats.priority(p).queue_wait,
        );
    }
    for p in Priority::ALL {
        render_histogram(
            &mut out,
            "serve_latency_seconds",
            "priority",
            p.name(),
            &stats.priority(p).latency,
        );
    }

    // Per-tenant families, family-major, tenants in registration order.
    for t in &stats.tenants {
        let _ = writeln!(
            out,
            "tenant_weight{{tenant=\"{}\"}} {}",
            escape_label(&t.name),
            t.weight
        );
    }
    let tenant_counters: [CounterFamily<TenantStats, u64>; 12] = [
        ("tenant_submitted_total", |s| s.submitted),
        ("tenant_admitted_total", |s| s.admitted),
        ("tenant_rejected_full_total", |s| s.rejected_full),
        ("tenant_rejected_quota_total", |s| s.rejected_quota),
        ("tenant_rejected_shutdown_total", |s| s.rejected_shutdown),
        ("tenant_admission_timeouts_total", |s| s.admission_timeouts),
        ("tenant_shed_total", |s| s.shed),
        ("tenant_completed_total", |s| s.completed),
        ("tenant_task_errors_total", |s| s.task_errors),
        ("tenant_panicked_total", |s| s.panicked),
        ("tenant_cancelled_total", |s| s.cancelled),
        ("tenant_deadline_expired_total", |s| s.deadline_expired),
    ];
    for (name, get) in tenant_counters {
        for t in &stats.tenants {
            let _ = writeln!(
                out,
                "{name}{{tenant=\"{}\"}} {}",
                escape_label(&t.name),
                get(t)
            );
        }
    }
    let tenant_gauges: [CounterFamily<TenantStats, usize>; 2] = [
        ("tenant_queued", |s| s.queued),
        ("tenant_in_flight", |s| s.in_flight),
    ];
    for (name, get) in tenant_gauges {
        for t in &stats.tenants {
            let _ = writeln!(
                out,
                "{name}{{tenant=\"{}\"}} {}",
                escape_label(&t.name),
                get(t)
            );
        }
    }
    for t in &stats.tenants {
        render_histogram(
            &mut out,
            "tenant_queue_wait_seconds",
            "tenant",
            &t.name,
            &t.queue_wait,
        );
    }
    for t in &stats.tenants {
        render_histogram(
            &mut out,
            "tenant_latency_seconds",
            "tenant",
            &t.name,
            &t.latency,
        );
    }

    // Engine-wide process counters (v2): appended after every v1 family
    // so the v1 prefix of the document stays byte-identical.
    let engine_counters: [CounterFamily<EngineSnapshot, u64>; 10] = [
        ("engine_jit_compiles_total", |e| e.jit_compiles),
        ("engine_jit_cache_hits_total", |e| e.jit_cache_hits),
        ("engine_jit_async_submits_total", |e| e.jit_async_submits),
        ("engine_jit_deopts_total", |e| e.jit_deopts),
        ("engine_spill_bytes_written_total", |e| {
            e.spill_bytes_written
        }),
        ("engine_spill_bytes_read_total", |e| e.spill_bytes_read),
        ("engine_scratch_created_total", |e| e.scratch_created),
        ("engine_scratch_reused_total", |e| e.scratch_reused),
        ("engine_morsel_grow_total", |e| e.morsel_grow),
        ("engine_morsel_shrink_total", |e| e.morsel_shrink),
    ];
    for (name, get) in engine_counters {
        let _ = writeln!(out, "{name} {}", get(engine));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.snapshot().p50(), None);
        // 90 fast observations (~4 µs), 10 slow (~1000 µs).
        for _ in 0..90 {
            h.record(Duration::from_micros(4));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(1000));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 lands in the 4 µs bucket (upper bound 8 µs); p99 in the
        // 1000 µs bucket (upper bound 1024 µs).
        assert_eq!(s.p50(), Some(Duration::from_micros(8)));
        assert_eq!(s.p99(), Some(Duration::from_micros(1024)));
        assert!(s.mean().unwrap() >= Duration::from_micros(4));
        assert!(s.max() >= Duration::from_micros(1000));
    }

    #[test]
    fn histogram_extremes() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(500)); // beyond the last bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        // The open-ended bucket reports the observed max.
        assert_eq!(s.quantile(1.0), Some(Duration::from_secs(500)));
    }

    #[test]
    fn render_text_header_and_label_escaping() {
        let mut stats = ServiceStats::default();
        stats.tenants.push(TenantStats {
            name: "we\"ird\\te\nnant".to_string(),
            weight: 3,
            submitted: 7,
            ..TenantStats::default()
        });
        let text = render_text(&stats);
        assert!(text.starts_with("# adaptvm-serve-metrics v2\n"));
        assert!(text.contains("tenant_weight{tenant=\"we\\\"ird\\\\te\\nnant\"} 3"));
        assert!(text.contains("tenant_submitted_total{tenant=\"we\\\"ird\\\\te\\nnant\"} 7"));
        // Empty histograms emit no quantile lines, but do emit sum/count.
        assert!(!text.contains("quantile"));
        assert!(text.contains("serve_latency_seconds_count{priority=\"interactive\"} 0"));
        // Exactly one header comment line.
        assert_eq!(text.lines().filter(|l| l.starts_with('#')).count(), 1);
    }

    #[test]
    fn render_text_histogram_lines() {
        let mut stats = ServiceStats::default();
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(100));
        stats.per_priority[Priority::Normal.index()].latency = h.snapshot();
        let text = render_text(&stats);
        // 100 µs lands in the (64, 128] bucket: cumulative 1 from le=128 µs on.
        assert!(
            text.contains("serve_latency_seconds_bucket{priority=\"normal\",le=\"0.000064\"} 0")
        );
        assert!(
            text.contains("serve_latency_seconds_bucket{priority=\"normal\",le=\"0.000128\"} 1")
        );
        assert!(text.contains("serve_latency_seconds_bucket{priority=\"normal\",le=\"+Inf\"} 1"));
        assert!(
            text.contains("serve_latency_seconds{priority=\"normal\",quantile=\"0.5\"} 0.000128")
        );
        assert!(text.contains("serve_latency_seconds_sum{priority=\"normal\"} 0.0001"));
        assert!(text.contains("serve_latency_seconds_count{priority=\"normal\"} 1"));
    }

    #[test]
    fn engine_families_append_without_disturbing_v1_lines() {
        let stats = ServiceStats::default();
        let engine = EngineSnapshot {
            jit_compiles: 3,
            spill_bytes_read: 9,
            ..EngineSnapshot::default()
        };
        let text = render_text_with(&stats, &engine);
        assert!(text.contains("\nengine_jit_compiles_total 3\n"));
        assert!(text.contains("\nengine_spill_bytes_read_total 9\n"));
        assert!(text.ends_with("engine_morsel_shrink_total 0\n"));
        // The engine sample only affects the appended block: everything
        // before the first engine_* line is byte-identical across samples.
        let zero = render_text_with(&stats, &EngineSnapshot::default());
        let prefix = |s: &str| s[..s.find("engine_").unwrap()].to_string();
        assert_eq!(prefix(&text), prefix(&zero));
    }

    #[test]
    fn outcome_counters_split_by_kind() {
        let t = Telemetry::default();
        let p = Priority::Batch;
        t.record_outcome(p, QueryOutcomeKind::Completed, Duration::from_micros(5));
        t.record_outcome(p, QueryOutcomeKind::Cancelled, Duration::from_micros(5));
        t.record_outcome(
            p,
            QueryOutcomeKind::DeadlineExceeded,
            Duration::from_micros(5),
        );
        let s = t.snapshot_priority(p);
        assert_eq!(s.completed, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.deadline_expired, 1);
        assert_eq!(s.finished(), 3);
        assert_eq!(s.latency.count, 3);
        // Other priorities untouched.
        assert_eq!(t.snapshot_priority(Priority::Interactive).finished(), 0);
    }
}
