//! Serving-layer telemetry: per-priority counters, queue-depth gauges,
//! and log-bucketed latency histograms, all lock-free on the record path.
//!
//! Everything here is written by workers/dispatchers with relaxed atomics
//! and read through [`ServiceStats`] snapshots — a snapshot taken while
//! queries are in flight is internally *approximately* consistent (each
//! counter is exact, cross-counter invariants may lag by in-flight
//! updates), and exactly consistent once the service is idle or drained.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::scheduler::{QueryOutcomeKind, SchedulerStats};

use super::Priority;

/// Histogram buckets: bucket `i` counts latencies in `[2^(i-1), 2^i)`
/// microseconds (bucket 0: `< 1 µs`); the last bucket is open-ended.
/// 28 buckets reach past 2^27 µs ≈ 134 s — beyond any sane query.
pub const HISTOGRAM_BUCKETS: usize = 28;

/// A concurrent log₂-bucketed latency histogram.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    fn bucket_of(d: Duration) -> usize {
        let micros = d.as_micros().min(u128::from(u64::MAX)) as u64;
        if micros == 0 {
            return 0;
        }
        // 1 µs → bucket 1, 2-3 µs → bucket 2, …
        ((64 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// An owned, immutable copy of the current state.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An owned histogram snapshot with quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
}

impl Default for LatencySnapshot {
    fn default() -> LatencySnapshot {
        LatencySnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencySnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// where the cumulative count crosses `q · count` — an over-estimate
    /// by at most 2× (the bucket width). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i upper bound: 2^i µs (bucket 0: 1 µs). The open
                // last bucket reports the observed max instead.
                if i == HISTOGRAM_BUCKETS - 1 {
                    return Some(Duration::from_nanos(self.max_ns));
                }
                return Some(Duration::from_micros(1u64 << i));
            }
        }
        Some(Duration::from_nanos(self.max_ns))
    }

    /// Median (see [`LatencySnapshot::quantile`]).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 99th percentile (see [`LatencySnapshot::quantile`]).
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// Arithmetic mean. `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        (self.count > 0).then(|| Duration::from_nanos(self.sum_ns / self.count))
    }

    /// Largest observation.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }
}

/// The atomic per-priority counter block.
#[derive(Default)]
pub(crate) struct PriorityCounters {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub rejected_full: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub admission_timeouts: AtomicU64,
    pub completed: AtomicU64,
    pub task_errors: AtomicU64,
    pub panicked: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_expired: AtomicU64,
    pub queue_wait: LatencyHistogram,
    pub latency: LatencyHistogram,
}

/// A snapshot of one priority class's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PriorityStats {
    /// Submissions attempted (accepted or not).
    pub submitted: u64,
    /// Submissions that entered the queue.
    pub admitted: u64,
    /// Submissions refused because the class queue was full.
    pub rejected_full: u64,
    /// Submissions refused because the service was draining/stopped.
    pub rejected_shutdown: u64,
    /// Blocking submissions that timed out waiting for queue space.
    pub admission_timeouts: u64,
    /// Queries that ran to a merged result.
    pub completed: u64,
    /// Queries whose task errored.
    pub task_errors: u64,
    /// Queries whose task or merge panicked.
    pub panicked: u64,
    /// Queries cancelled (queued or running).
    pub cancelled: u64,
    /// Queries whose deadline passed (queued or running).
    pub deadline_expired: u64,
    /// Time from admission to dispatch.
    pub queue_wait: LatencySnapshot,
    /// Time from admission to completion (any outcome).
    pub latency: LatencySnapshot,
}

impl PriorityStats {
    /// Every terminal outcome recorded so far.
    pub fn finished(&self) -> u64 {
        self.completed + self.task_errors + self.panicked + self.cancelled + self.deadline_expired
    }

    /// Rejections of either kind.
    pub fn rejected(&self) -> u64 {
        self.rejected_full + self.rejected_shutdown
    }

    /// Rejected fraction of all submissions (0 when none were attempted).
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected() as f64 / self.submitted as f64
        }
    }
}

/// The whole telemetry block (one counter set per priority).
#[derive(Default)]
pub(crate) struct Telemetry {
    per: [PriorityCounters; 3],
}

impl Telemetry {
    pub fn counters(&self, p: Priority) -> &PriorityCounters {
        &self.per[p.index()]
    }

    pub fn record_outcome(&self, p: Priority, kind: QueryOutcomeKind, latency: Duration) {
        let c = self.counters(p);
        match kind {
            QueryOutcomeKind::Completed => c.completed.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::TaskError => c.task_errors.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::Panicked => c.panicked.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::Cancelled => c.cancelled.fetch_add(1, Ordering::Relaxed),
            QueryOutcomeKind::DeadlineExceeded => {
                c.deadline_expired.fetch_add(1, Ordering::Relaxed)
            }
        };
        c.latency.record(latency);
    }

    pub fn snapshot_priority(&self, p: Priority) -> PriorityStats {
        let c = self.counters(p);
        PriorityStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected_full: c.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: c.rejected_shutdown.load(Ordering::Relaxed),
            admission_timeouts: c.admission_timeouts.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            task_errors: c.task_errors.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            queue_wait: c.queue_wait.snapshot(),
            latency: c.latency.snapshot(),
        }
    }
}

/// One coherent view of the service: per-priority counters and
/// histograms, live gauges, and the underlying scheduler's counters.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Counter snapshots indexed by [`Priority::index`].
    pub per_priority: [PriorityStats; 3],
    /// Live queue depth per priority (gauge).
    pub queue_depths: [usize; 3],
    /// Queries currently dispatched onto the scheduler (gauge).
    pub running: usize,
    /// True once `drain`/`shutdown` began.
    pub draining: bool,
    /// The scheduler's own lifetime counters.
    pub scheduler: SchedulerStats,
}

impl ServiceStats {
    /// The counter block for one priority class.
    pub fn priority(&self, p: Priority) -> &PriorityStats {
        &self.per_priority[p.index()]
    }

    /// Live queue depth for one priority class.
    pub fn queue_depth(&self, p: Priority) -> usize {
        self.queue_depths[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.snapshot().p50(), None);
        // 90 fast observations (~4 µs), 10 slow (~1000 µs).
        for _ in 0..90 {
            h.record(Duration::from_micros(4));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(1000));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 lands in the 4 µs bucket (upper bound 8 µs); p99 in the
        // 1000 µs bucket (upper bound 1024 µs).
        assert_eq!(s.p50(), Some(Duration::from_micros(8)));
        assert_eq!(s.p99(), Some(Duration::from_micros(1024)));
        assert!(s.mean().unwrap() >= Duration::from_micros(4));
        assert!(s.max() >= Duration::from_micros(1000));
    }

    #[test]
    fn histogram_extremes() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(500)); // beyond the last bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        // The open-ended bucket reports the observed max.
        assert_eq!(s.quantile(1.0), Some(Duration::from_secs(500)));
    }

    #[test]
    fn outcome_counters_split_by_kind() {
        let t = Telemetry::default();
        let p = Priority::Batch;
        t.record_outcome(p, QueryOutcomeKind::Completed, Duration::from_micros(5));
        t.record_outcome(p, QueryOutcomeKind::Cancelled, Duration::from_micros(5));
        t.record_outcome(
            p,
            QueryOutcomeKind::DeadlineExceeded,
            Duration::from_micros(5),
        );
        let s = t.snapshot_priority(p);
        assert_eq!(s.completed, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.deadline_expired, 1);
        assert_eq!(s.finished(), 3);
        assert_eq!(s.latency.count, 3);
        // Other priorities untouched.
        assert_eq!(t.snapshot_priority(Priority::Interactive).finished(), 0);
    }
}
