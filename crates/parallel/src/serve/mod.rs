//! The admission-controlled query serving layer.
//!
//! [`crate::scheduler::Scheduler`] executes whatever it is given —
//! `submit` accepts unboundedly and every active query shares the workers
//! round-robin. That is the right *execution* substrate and the wrong
//! *serving* front end: a multi-tenant service needs backpressure, tiers
//! of urgency, a way to shed or cancel work, and numbers to watch. A
//! [`QueryService`] wraps one scheduler with exactly that:
//!
//! * **admission control** — one bounded FIFO per [`Priority`] class
//!   ([`Priority::Interactive`], [`Priority::Normal`],
//!   [`Priority::Batch`]); [`QueryService::try_submit`] refuses with a
//!   typed [`AdmissionError::QueueFull`] when the class queue is full
//!   (backpressure), and the blocking [`QueryService::submit`] waits for
//!   space up to [`SubmitOpts::queue_timeout`],
//! * **weighted-fair dispatch with aging** — a stride scheduler over the
//!   three queues (weights 16 / 4 / 1) gives Interactive the pool under
//!   load while *guaranteeing* Batch its proportional share, and an aging
//!   rule promotes any head that waited ≥ `age_rounds` dispatches and is
//!   strictly the oldest, bounding stragglers behind fresh
//!   higher-priority streams (see the `queue` module source for the full argument),
//! * **cancellation & deadlines** — every accepted query carries a
//!   [`crate::CancelToken`] checked at morsel boundaries;
//!   [`ServeHandle::cancel`] (or a [`SubmitOpts::deadline`]) aborts that
//!   query alone, whether it is still queued or already running, with
//!   morsel accounting exact either way,
//! * **graceful drain** — [`QueryService::drain`] rejects new work,
//!   finishes what it can inside the timeout, cancels the rest, then
//!   shuts the scheduler down; [`QueryService::shutdown`] is the
//!   immediate flavor and `Drop` runs the same path,
//! * **telemetry** — per-priority counters, queue-depth gauges, and
//!   queue-wait/latency histograms in one [`ServiceStats`] snapshot.
//!
//! Execution semantics are entirely inherited from the scheduler:
//! results are merged in morsel order, so a query's output through the
//! service is **bit-identical** to direct scheduler submission — the
//! service only decides *when* a query starts, never how it runs.
//!
//! ## Quickstart
//!
//! ```
//! use adaptvm_parallel::serve::{Priority, QueryService, ServeConfig, SubmitOpts};
//! use adaptvm_parallel::MorselPlan;
//!
//! let service = QueryService::new(ServeConfig::default());
//! let handle = service
//!     .try_submit(
//!         SubmitOpts::interactive(),
//!         MorselPlan::new(10_000, 512),
//!         |_worker, m| Ok::<usize, ()>(m.len),
//!         |parts, _stats| parts.iter().sum::<usize>(),
//!     )
//!     .expect("queue has room");
//! assert_eq!(handle.join().unwrap(), 10_000);
//!
//! let stats = service.stats();
//! assert_eq!(stats.priority(Priority::Interactive).completed, 1);
//! assert_eq!(stats.priority(Priority::Interactive).rejected(), 0);
//!
//! let report = service.shutdown();
//! assert!(report.clean);
//! ```

mod queue;
pub mod telemetry;
pub mod tenant;

use std::fmt;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::dispatch::DispatchStats;
use crate::morsel::{Morsel, MorselPlan};
use crate::obs::{self, EventKind, QueryProfile, Trace};
use crate::scheduler::{
    CancelReason, CancelToken, DoneHook, QueryError, QueryHandle, QueryOutcomeKind, RunError,
    Scheduler, SubmitOptions,
};

use queue::FairQueues;
use telemetry::Telemetry;
pub use telemetry::{
    render_text, render_text_with, EngineSnapshot, LatencyHistogram, LatencySnapshot,
    PriorityStats, ServiceStats, TenantStats, HISTOGRAM_BUCKETS,
};
use tenant::TenantSched;
pub use tenant::{TenantId, TenantQuota, TenantRegistry};

// ---------------------------------------------------------------------------
// Priorities, configuration, errors
// ---------------------------------------------------------------------------

/// The three service classes. Dispatch weight (stride share under load)
/// is 16 : 4 : 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground queries.
    Interactive,
    /// The default class.
    #[default]
    Normal,
    /// Throughput-oriented background work.
    Batch,
}

impl Priority {
    /// All classes, in lane order (highest priority first).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Batch];

    /// Stride-scheduler weight (dispatch share under saturation).
    pub fn weight(self) -> u64 {
        match self {
            Priority::Interactive => 16,
            Priority::Normal => 4,
            Priority::Batch => 1,
        }
    }

    /// Lane index (also the index into [`ServiceStats::per_priority`]).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Service construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads in the underlying scheduler (clamped to ≥ 1).
    pub workers: usize,
    /// Capacity of each priority class's queue (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// Queries allowed on the scheduler simultaneously (clamped to ≥ 1).
    /// The scheduler round-robins morsels across them; this bounds how
    /// thin each query's share can get. With elasticity enabled (see
    /// [`ServeConfig::max_concurrent_ceiling`]) this is the *floor* the
    /// limit shrinks back to.
    pub max_concurrent: usize,
    /// Elasticity ceiling for the concurrent-query limit. When above
    /// `max_concurrent`, the dispatcher grows the live limit (doubling,
    /// up to this ceiling) while the backlog is deep and every slot is
    /// busy, and shrinks it (halving, down to `max_concurrent`) once the
    /// queues drain — see `ELASTIC_GROW_BACKLOG_FACTOR`. Values ≤
    /// `max_concurrent` disable elasticity (the default).
    pub max_concurrent_ceiling: usize,
    /// Aging threshold in dispatches (see the `queue` module source).
    pub age_rounds: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            max_concurrent: 4,
            max_concurrent_ceiling: 0,
            age_rounds: 32,
        }
    }
}

impl ServeConfig {
    /// Set the worker count.
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// Set the per-class queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Set the concurrent-query bound.
    pub fn with_max_concurrent(mut self, max: usize) -> ServeConfig {
        self.max_concurrent = max;
        self
    }

    /// Enable concurrency elasticity up to `ceiling` (see
    /// [`ServeConfig::max_concurrent_ceiling`]).
    pub fn with_elastic_concurrency(mut self, ceiling: usize) -> ServeConfig {
        self.max_concurrent_ceiling = ceiling;
        self
    }

    /// Set the aging threshold.
    pub fn with_age_rounds(mut self, rounds: u64) -> ServeConfig {
        self.age_rounds = rounds;
        self
    }
}

/// Why a submission was refused at the door. The variants distinguish
/// "the service is overloaded" ([`AdmissionError::QueueFull`],
/// [`AdmissionError::Shed`]) from "*you* exceeded your quota"
/// ([`AdmissionError::TenantQuota`]) — callers back off differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The class queue is at capacity — backpressure; retry, degrade, or
    /// shed.
    QueueFull(Priority),
    /// Refused by the overload-shedding policy: sustained `QueueFull`
    /// pressure sheds Batch before Normal before Interactive (Interactive
    /// is never shed — it only sees its own queue's `QueueFull`).
    Shed(Priority),
    /// The submitting tenant is at its queue-depth quota
    /// ([`TenantQuota::max_queued`]) — the *tenant's* problem, not the
    /// service's.
    TenantQuota(TenantId),
    /// The service is draining or shut down.
    ShuttingDown,
    /// A blocking submission waited `queue_timeout` without space opening.
    Timeout,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull(p) => write!(f, "{p} queue is full"),
            AdmissionError::Shed(p) => write!(f, "{p} query shed under overload"),
            AdmissionError::TenantQuota(t) => write!(f, "{t} is at its queued-query quota"),
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
            AdmissionError::Timeout => write!(f, "timed out waiting for queue space"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a gated (borrowing) run produced no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateError {
    /// Refused at admission.
    Rejected(AdmissionError),
    /// Cancelled while queued.
    Cancelled,
    /// Deadline passed while queued.
    DeadlineExceeded,
}

impl GateError {
    /// Fold into the pipeline-level [`RunError`].
    pub fn into_run_error<E>(self) -> RunError<E> {
        match self {
            GateError::Rejected(a) => RunError::Rejected(a.to_string()),
            GateError::Cancelled => RunError::Cancelled,
            GateError::DeadlineExceeded => RunError::DeadlineExceeded,
        }
    }
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Rejected(a) => write!(f, "admission rejected: {a}"),
            GateError::Cancelled => write!(f, "cancelled while queued"),
            GateError::DeadlineExceeded => write!(f, "deadline passed while queued"),
        }
    }
}

/// Per-submission options: priority class, deadline, external cancel
/// token, and how long a *blocking* submission may wait for queue space.
#[derive(Debug, Clone, Default)]
pub struct SubmitOpts {
    /// The priority class.
    pub priority: Priority,
    /// Total deadline from admission: expiring in the queue refuses the
    /// query; expiring mid-run aborts it at the next morsel boundary.
    pub deadline: Option<Duration>,
    /// Cancel through an externally held token (a fresh one is created
    /// when absent; [`ServeHandle::cancel_token`] exposes it either way).
    pub cancel: Option<CancelToken>,
    /// For [`QueryService::submit`] and [`QueryService::run_gated`]: the
    /// longest wait for queue space (`None` = wait indefinitely).
    /// [`QueryService::try_submit`] never waits.
    pub queue_timeout: Option<Duration>,
    /// The tenant this query is attributed to (`None` = anonymous:
    /// exempt from tenant quotas, dispatched under the weight-1
    /// anonymous pseudo-tenant). Must come from the registry the service
    /// was built with.
    pub tenant: Option<TenantId>,
    /// Record this query's admission lifecycle and execution into a
    /// [`Trace`] (read back via [`ServeHandle::profile`] or
    /// [`Trace::profile`]). When absent, the submitting thread's ambient
    /// trace scope (if any) is inherited.
    pub trace: Option<Trace>,
}

impl SubmitOpts {
    /// Options for the given class.
    pub fn new(priority: Priority) -> SubmitOpts {
        SubmitOpts {
            priority,
            ..SubmitOpts::default()
        }
    }

    /// [`Priority::Interactive`] options.
    pub fn interactive() -> SubmitOpts {
        SubmitOpts::new(Priority::Interactive)
    }

    /// [`Priority::Normal`] options.
    pub fn normal() -> SubmitOpts {
        SubmitOpts::new(Priority::Normal)
    }

    /// [`Priority::Batch`] options.
    pub fn batch() -> SubmitOpts {
        SubmitOpts::new(Priority::Batch)
    }

    /// Set the deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOpts {
        self.deadline = Some(deadline);
        self
    }

    /// Attach an external cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> SubmitOpts {
        self.cancel = Some(token);
        self
    }

    /// Bound the blocking wait for queue space.
    pub fn with_queue_timeout(mut self, timeout: Duration) -> SubmitOpts {
        self.queue_timeout = Some(timeout);
        self
    }

    /// Attribute the query to a registered tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> SubmitOpts {
        self.tenant = Some(tenant);
        self
    }

    /// Record this query's admission lifecycle and execution into
    /// `trace`.
    pub fn with_trace(mut self, trace: Trace) -> SubmitOpts {
        self.trace = Some(trace);
        self
    }
}

// ---------------------------------------------------------------------------
// Pending queries and the dispatcher
// ---------------------------------------------------------------------------

/// What the dispatcher hands a pending query when its turn comes.
enum Launch<'a> {
    /// Dispatched: submit onto the scheduler (or release the gated
    /// caller). The hook must be invoked exactly once at completion.
    Run {
        scheduler: &'a Scheduler,
        on_done: DoneHook,
    },
    /// Refused while queued (cancelled, deadline passed, or drained).
    Refuse(CancelReason),
}

/// One queued query: the fairness metadata plus a type-erased launcher.
struct PendingQuery {
    priority: Priority,
    /// Tenant scheduling slot (`registry.len()` = anonymous).
    slot: usize,
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// The query's trace (admission events go to its control lane).
    trace: Option<Trace>,
    launch: Box<dyn FnOnce(Launch<'_>) + Send>,
}

/// Record a serve-layer lifecycle event on the query's control lane.
fn serve_event(trace: &Option<Trace>, kind: EventKind) {
    if let Some(t) = trace {
        t.record(obs::CONTROL_LANE, "serve", kind);
    }
}

/// Refusal-reason label for trace events.
fn cancel_reason_name(reason: CancelReason) -> &'static str {
    match reason {
        CancelReason::Cancelled => "cancelled",
        CancelReason::DeadlineExceeded => "deadline",
    }
}

struct ServeState {
    queues: FairQueues<PendingQuery>,
    /// Dispatched-but-unfinished queries: `(id, tenant slot, token)` so
    /// drain can cancel them and completion can release the tenant slot.
    running: Vec<(u64, usize, CancelToken)>,
    /// Per-tenant scheduling state, indexed by slot (last = anonymous).
    tenant_sched: Vec<TenantSched>,
    /// Largest tenant pass dispatched so far (no-banked-credit sync).
    tenant_global_pass: u64,
    /// The live concurrent-query limit (elastic between the config's
    /// `max_concurrent` floor and `max_concurrent_ceiling`).
    concurrent_limit: usize,
    /// Times the elastic limit grew / shrank (telemetry).
    grow_events: u64,
    shrink_events: u64,
    /// Consecutive terminal `QueueFull` rejections since the last
    /// escalation or recovery — the overload-shedding trigger.
    full_streak: u64,
    /// Current shed level: 0 = none, 1 = shed Batch, 2 = shed Batch and
    /// Normal. Interactive is never shed.
    shed_level: u8,
    next_id: u64,
    draining: bool,
    stopped: bool,
}

struct Inner {
    scheduler: Scheduler,
    state: Mutex<ServeState>,
    /// One condvar for every edge: queue space freed, work queued, a
    /// query finished, drain began. Broadcast; waiters re-check their own
    /// predicate.
    cv: Condvar,
    telemetry: Telemetry,
    tenants: TenantRegistry,
    /// Elasticity floor (the config's `max_concurrent`).
    concurrent_base: usize,
    /// Elasticity ceiling (≥ base; == base disables elasticity).
    concurrent_ceiling: usize,
    /// Sum of the three lanes' capacities (shed-recovery threshold).
    queue_capacity_total: usize,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, ServeState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Completion path for a dispatched query (the scheduler's `on_done`
    /// hook, or the gated caller's permit).
    fn complete(
        &self,
        id: u64,
        priority: Priority,
        slot: usize,
        admitted: Instant,
        kind: QueryOutcomeKind,
    ) {
        {
            let mut st = self.lock();
            if let Some(pos) = st.running.iter().position(|(rid, _, _)| *rid == id) {
                st.running.remove(pos);
                st.tenant_sched[slot].in_flight -= 1;
            }
        }
        let latency = admitted.elapsed();
        self.telemetry.record_outcome(priority, kind, latency);
        if let Some(c) = self.tenant_counters(slot) {
            c.record_outcome(kind, latency);
        }
        self.cv.notify_all();
    }

    /// Tenant counter block for a scheduling slot (`None` = anonymous).
    fn tenant_counters(&self, slot: usize) -> Option<&tenant::TenantCounters> {
        self.tenants.counters(slot)
    }

    /// Account a query refused while still queued.
    fn record_refusal(
        &self,
        priority: Priority,
        slot: usize,
        reason: CancelReason,
        admitted: Instant,
    ) {
        let kind = match reason {
            CancelReason::Cancelled => QueryOutcomeKind::Cancelled,
            CancelReason::DeadlineExceeded => QueryOutcomeKind::DeadlineExceeded,
        };
        let latency = admitted.elapsed();
        self.telemetry.record_outcome(priority, kind, latency);
        if let Some(c) = self.tenant_counters(slot) {
            c.record_outcome(kind, latency);
        }
    }
}

/// How long the dispatcher sleeps between sweeps while queries are
/// queued without deadlines: bounds how late a *queued* cancellation is
/// observed when no other event (completion, submission, deadline) wakes
/// the dispatcher. Running queries observe cancellation at morsel
/// boundaries regardless.
const QUEUED_CANCEL_SWEEP: Duration = Duration::from_millis(25);

/// Concurrency-elasticity heuristic (see `ServeConfig::max_concurrent_ceiling`):
/// the live limit **doubles** (up to the ceiling) when the backlog is at
/// least this many times the current limit while every slot is busy, and
/// **halves** (down to the floor) once the queues are empty and at most
/// half the slots are in use. Deep backlog + saturated slots means the
/// admission gate, not the worker pool, is the bottleneck — letting more
/// queries share the workers raises utilization without unbounding
/// memory; draining back keeps each query's share fat when load subsides.
const ELASTIC_GROW_BACKLOG_FACTOR: usize = 2;

/// Overload shedding: this many consecutive terminal `QueueFull`
/// rejections (without an intervening recovery) escalate the shed level
/// one step — level 1 sheds Batch, level 2 sheds Normal too. Interactive
/// is never shed. The level resets to 0 once a submission arrives with
/// the total backlog at or below ¼ of aggregate queue capacity.
const SHED_ESCALATE_AFTER: u64 = 8;

/// Shed-recovery threshold divisor: backlog ≤ capacity / this ⇒ pressure
/// is gone, shedding stops.
const SHED_RECOVER_DIV: usize = 4;

/// The dispatcher thread: adapt the concurrency limit, evict dead queued
/// entries, pop fairly (priority stride × tenant stride, skipping
/// tenants at their in-flight cap), check cancel/deadline, launch.
fn dispatch_loop(inner: &Arc<Inner>) {
    let mut st = inner.lock();
    loop {
        if st.stopped {
            return;
        }
        // Concurrency elasticity (no-op when ceiling == base).
        let backlog = st.queues.total();
        if st.concurrent_limit < inner.concurrent_ceiling
            && st.running.len() >= st.concurrent_limit
            && backlog >= ELASTIC_GROW_BACKLOG_FACTOR * st.concurrent_limit
        {
            st.concurrent_limit = (st.concurrent_limit * 2).min(inner.concurrent_ceiling);
            st.grow_events += 1;
        } else if st.concurrent_limit > inner.concurrent_base
            && backlog == 0
            && st.running.len() * 2 <= st.concurrent_limit
        {
            st.concurrent_limit = (st.concurrent_limit / 2).max(inner.concurrent_base);
            st.shrink_events += 1;
        }
        // Evict queued entries whose token fired or whose deadline
        // passed — from any queue position, even while every running
        // slot is taken — so a queued query's cancellation/deadline
        // resolves promptly instead of at its (possibly distant)
        // dispatch turn.
        let now = Instant::now();
        let dead = st.queues.take_dead(|p: &PendingQuery| {
            p.cancel.is_cancelled() || p.deadline.is_some_and(|dl| now >= dl)
        });
        if !dead.is_empty() {
            let mut refusals = Vec::with_capacity(dead.len());
            for (_, aged) in dead {
                let PendingQuery {
                    priority,
                    slot,
                    cancel,
                    trace,
                    launch,
                    ..
                } = aged.item;
                st.tenant_sched[slot].queued -= 1;
                let reason = match cancel.check() {
                    Err(reason) => reason,
                    Ok(()) => {
                        cancel.expire();
                        CancelReason::DeadlineExceeded
                    }
                };
                inner.record_refusal(priority, slot, reason, aged.enqueued);
                serve_event(
                    &trace,
                    EventKind::Refused {
                        priority: priority.name(),
                        reason: cancel_reason_name(reason),
                    },
                );
                refusals.push((launch, reason));
            }
            drop(st);
            for (launch, reason) in refusals {
                launch(Launch::Refuse(reason));
            }
            inner.cv.notify_all();
            st = inner.lock();
            continue;
        }
        if st.running.len() < st.concurrent_limit {
            // Two-level fair pop: the priority stride picks the lane (see
            // `queue`), and inside it the entry whose tenant has the
            // smallest tenant-pass wins (ties: FIFO). Entries of tenants
            // at their in-flight cap are skipped — they keep their place,
            // other tenants flow past them.
            let popped = {
                let ServeState {
                    queues,
                    tenant_sched,
                    ..
                } = &mut *st;
                queues.pop_where(|_, items| {
                    let mut best: Option<(u64, usize)> = None;
                    for (i, e) in items.iter().enumerate() {
                        let ts = &tenant_sched[e.item.slot];
                        if ts.in_flight >= ts.in_flight_cap {
                            continue;
                        }
                        if best.is_none_or(|(pass, _)| ts.pass < pass) {
                            best = Some((ts.pass, i));
                        }
                    }
                    best.map(|(_, i)| i)
                })
            };
            if let Some((_, aged)) = popped {
                let PendingQuery {
                    priority,
                    slot,
                    cancel,
                    deadline,
                    trace,
                    launch,
                } = aged.item;
                let ts = &mut st.tenant_sched[slot];
                ts.queued -= 1;
                ts.pass += ts.stride;
                st.tenant_global_pass = st.tenant_global_pass.max(st.tenant_sched[slot].pass);
                let admitted = aged.enqueued;
                // Pre-dispatch checkpoint: a query that died in the queue
                // never reaches the scheduler.
                let refuse = cancel.check().err().or_else(|| {
                    deadline.filter(|dl| Instant::now() >= *dl).map(|_| {
                        cancel.expire();
                        CancelReason::DeadlineExceeded
                    })
                });
                match refuse {
                    Some(reason) => {
                        inner.record_refusal(priority, slot, reason, admitted);
                        serve_event(
                            &trace,
                            EventKind::Refused {
                                priority: priority.name(),
                                reason: cancel_reason_name(reason),
                            },
                        );
                        drop(st);
                        launch(Launch::Refuse(reason));
                    }
                    None => {
                        let id = st.next_id;
                        st.next_id += 1;
                        st.running.push((id, slot, cancel.clone()));
                        st.tenant_sched[slot].in_flight += 1;
                        let wait = admitted.elapsed();
                        inner.telemetry.counters(priority).queue_wait.record(wait);
                        if let Some(c) = inner.tenant_counters(slot) {
                            c.queue_wait.record(wait);
                        }
                        if let Some(t) = &trace {
                            t.record(
                                obs::CONTROL_LANE,
                                "serve",
                                EventKind::Dispatched {
                                    priority: priority.name(),
                                    stride_lane: priority.index() as u8,
                                    queue_wait_ns: t.dur_ns(wait),
                                },
                            );
                        }
                        let hook_inner = inner.clone();
                        let hook_trace = trace.clone();
                        let on_done: DoneHook = Box::new(move |kind| {
                            if let Some(t) = &hook_trace {
                                t.record(
                                    obs::CONTROL_LANE,
                                    "serve",
                                    EventKind::Completed {
                                        outcome: kind.name(),
                                        latency_ns: t.dur_ns(admitted.elapsed()),
                                    },
                                );
                            }
                            hook_inner.complete(id, priority, slot, admitted, kind);
                        });
                        drop(st);
                        launch(Launch::Run {
                            scheduler: &inner.scheduler,
                            on_done,
                        });
                    }
                }
                // Queue space freed and/or running set changed.
                inner.cv.notify_all();
                st = inner.lock();
                continue;
            }
        }
        // Wait for the next event, bounded by the earliest queued
        // deadline (so expirations are refused on time) or by the sweep
        // interval while anything at all is queued (so queued
        // cancellations are observed promptly).
        let now = Instant::now();
        let next_deadline = st
            .queues
            .iter()
            .filter_map(|p| p.deadline)
            .min()
            .map(|dl| dl.saturating_duration_since(now));
        let wait = match next_deadline {
            Some(d) => Some(d.min(QUEUED_CANCEL_SWEEP)),
            None if !st.queues.is_empty() => Some(QUEUED_CANCEL_SWEEP),
            None => None,
        };
        st = match wait {
            Some(d) => {
                inner
                    .cv
                    .wait_timeout(st, d.max(Duration::from_millis(1)))
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
            None => inner.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
        };
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A handle to a query submitted through the service. Resolves in two
/// stages — dispatch (leaving the admission queue), then execution — both
/// folded into one [`join`](ServeHandle::join).
pub struct ServeHandle<R, E> {
    stage: Receiver<Result<QueryHandle<R, E>, CancelReason>>,
    cancel: CancelToken,
    priority: Priority,
    trace: Option<Trace>,
}

impl<R, E> ServeHandle<R, E> {
    /// The class the query was admitted under.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Request cancellation — effective both while queued (the dispatcher
    /// refuses it) and while running (workers abort at the next morsel
    /// boundary).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The query's cancel token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The merged execution profile so far (`None` when the query was
    /// submitted without a trace and no ambient scope was active).
    /// Non-destructive; call after [`ServeHandle::join`] for the full
    /// admission → completion event stream.
    pub fn profile(&self) -> Option<QueryProfile> {
        self.trace.as_ref().map(Trace::profile)
    }

    fn map_stage(
        stage: Result<QueryHandle<R, E>, CancelReason>,
    ) -> Result<QueryHandle<R, E>, QueryError<E>> {
        match stage {
            Ok(handle) => Ok(handle),
            Err(CancelReason::Cancelled) => Err(QueryError::Cancelled),
            Err(CancelReason::DeadlineExceeded) => Err(QueryError::DeadlineExceeded),
        }
    }

    /// Block until the query completes (or is refused from the queue).
    pub fn join(self) -> Result<R, QueryError<E>> {
        match self.stage.recv() {
            Ok(stage) => Self::map_stage(stage)?.join(),
            Err(_) => unreachable!("the service resolves every accepted submission"),
        }
    }

    /// [`ServeHandle::join`] with a bounded wait spanning both stages;
    /// `None` when the query had not completed in time. Remaining time is
    /// recomputed across retries (spurious-wakeup safe).
    pub fn join_deadline(self, timeout: Duration) -> Option<Result<R, QueryError<E>>> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.stage.recv_timeout(remaining) {
                Ok(stage) => {
                    return match Self::map_stage(stage) {
                        Ok(handle) => {
                            handle.join_deadline(deadline.saturating_duration_since(Instant::now()))
                        }
                        Err(e) => Some(Err(e)),
                    };
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("the service resolves every accepted submission")
                }
            }
        }
    }
}

/// Invokes a gated query's completion hook exactly once — with
/// [`QueryOutcomeKind::Panicked`] when the gated pipeline unwinds before
/// reporting — so the running slot is always released.
struct GateGuard {
    on_done: Option<DoneHook>,
}

impl GateGuard {
    fn finish(mut self, kind: QueryOutcomeKind) {
        if let Some(hook) = self.on_done.take() {
            hook(kind);
        }
    }
}

impl Drop for GateGuard {
    fn drop(&mut self) {
        if let Some(hook) = self.on_done.take() {
            hook(QueryOutcomeKind::Panicked);
        }
    }
}

/// What [`QueryService::drain`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Every queued and running query finished inside the timeout.
    pub clean: bool,
    /// Queued queries refused when the timeout expired.
    pub refused_queued: usize,
    /// Running queries cancelled when the timeout expired.
    pub cancelled_running: usize,
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// How long a blocking admission may wait.
enum Wait {
    No,
    Unbounded,
    Until(Instant),
}

/// The admission-controlled query service. See the [module docs](self)
/// for the full picture and a quickstart.
pub struct QueryService {
    inner: Arc<Inner>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl QueryService {
    /// Build a service (and its scheduler) from `config`, with no
    /// registered tenants (every submission is anonymous).
    pub fn new(config: ServeConfig) -> QueryService {
        QueryService::with_scheduler(Scheduler::new(config.workers), config)
    }

    /// Build a multi-tenant service: quotas, per-tenant fairness, and
    /// telemetry come from `tenants` (see [`TenantRegistry`]; the
    /// registry is immutable once the service owns it).
    pub fn with_tenants(config: ServeConfig, tenants: TenantRegistry) -> QueryService {
        QueryService::build(Scheduler::new(config.workers), config, tenants)
    }

    /// Build a service over an explicitly configured scheduler (the
    /// service takes ownership; it shuts the scheduler down on drain).
    pub fn with_scheduler(scheduler: Scheduler, config: ServeConfig) -> QueryService {
        QueryService::build(scheduler, config, TenantRegistry::new())
    }

    /// [`QueryService::with_scheduler`] plus a tenant registry.
    pub fn with_scheduler_and_tenants(
        scheduler: Scheduler,
        config: ServeConfig,
        tenants: TenantRegistry,
    ) -> QueryService {
        QueryService::build(scheduler, config, tenants)
    }

    fn build(scheduler: Scheduler, config: ServeConfig, tenants: TenantRegistry) -> QueryService {
        let base = config.max_concurrent.max(1);
        let ceiling = config.max_concurrent_ceiling.max(base);
        // One scheduling slot per tenant plus the anonymous pseudo-tenant.
        let tenant_sched: Vec<TenantSched> = tenants
            .ids()
            .map(|id| TenantSched::from_quota(tenants.quota(id)))
            .chain(std::iter::once(TenantSched::anonymous()))
            .collect();
        let inner = Arc::new(Inner {
            scheduler,
            state: Mutex::new(ServeState {
                queues: FairQueues::new(config.queue_capacity, config.age_rounds),
                running: Vec::new(),
                tenant_sched,
                tenant_global_pass: 0,
                concurrent_limit: base,
                grow_events: 0,
                shrink_events: 0,
                full_streak: 0,
                shed_level: 0,
                next_id: 0,
                draining: false,
                stopped: false,
            }),
            cv: Condvar::new(),
            telemetry: Telemetry::default(),
            tenants,
            concurrent_base: base,
            concurrent_ceiling: ceiling,
            queue_capacity_total: config.queue_capacity.max(1) * Priority::ALL.len(),
        });
        let dispatcher = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("adaptvm-serve-dispatch".into())
                .spawn(move || dispatch_loop(&inner))
                .expect("spawn serve dispatcher")
        };
        QueryService {
            inner,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// The underlying scheduler (for worker count, JIT cache, or direct
    /// non-admitted submission).
    pub fn scheduler(&self) -> &Scheduler {
        &self.inner.scheduler
    }

    /// The tenant registry this service was built with (empty when the
    /// service is single-tenant).
    pub fn tenants(&self) -> &TenantRegistry {
        &self.inner.tenants
    }

    /// Resolve a tenant to its scheduling slot, panicking on a foreign id
    /// (a `TenantId` only ever comes from a registry; using it against a
    /// different service is a caller bug worth failing loudly on).
    fn slot_of(&self, tenant: Option<TenantId>) -> usize {
        match tenant {
            Some(id) => {
                assert!(
                    id.0 < self.inner.tenants.len(),
                    "{id} is not registered with this service's TenantRegistry"
                );
                id.0
            }
            None => self.inner.tenants.len(),
        }
    }

    /// One coherent telemetry snapshot.
    pub fn stats(&self) -> ServiceStats {
        let (queue_depths, running, draining, gauges, limit, grow, shrink, shed) = {
            let st = self.inner.lock();
            (
                [
                    st.queues.depth(Priority::Interactive),
                    st.queues.depth(Priority::Normal),
                    st.queues.depth(Priority::Batch),
                ],
                st.running.len(),
                st.draining,
                st.tenant_sched
                    .iter()
                    .map(|t| (t.queued, t.in_flight))
                    .collect::<Vec<_>>(),
                st.concurrent_limit,
                st.grow_events,
                st.shrink_events,
                st.shed_level,
            )
        };
        let tenants = self
            .inner
            .tenants
            .ids()
            .map(|id| {
                let mut t = self.inner.tenants.snapshot(id);
                (t.queued, t.in_flight) = gauges[id.0];
                t
            })
            .collect();
        ServiceStats {
            per_priority: [
                self.inner
                    .telemetry
                    .snapshot_priority(Priority::Interactive),
                self.inner.telemetry.snapshot_priority(Priority::Normal),
                self.inner.telemetry.snapshot_priority(Priority::Batch),
            ],
            queue_depths,
            running,
            draining,
            tenants,
            concurrent_limit: limit,
            grow_events: grow,
            shrink_events: shrink,
            shed_level: shed,
            scheduler: self.inner.scheduler.stats(),
        }
    }

    /// Enqueue under admission control; `wait` decides what happens when
    /// the class queue (or the tenant's queue quota) is full. Exactly one
    /// terminal counter fires per submission — admitted, rejected
    /// (full/quota/shutdown), shed, or timeout — so per-priority and
    /// per-tenant accounting always balances.
    fn enqueue(&self, mut pending: PendingQuery, wait: Wait) -> Result<(), AdmissionError> {
        use std::sync::atomic::Ordering::Relaxed;
        let inner = &self.inner;
        let p = pending.priority;
        let slot = pending.slot;
        let trace = pending.trace.clone();
        let tc = inner.tenant_counters(slot);
        inner.telemetry.counters(p).submitted.fetch_add(1, Relaxed);
        if let Some(c) = tc {
            c.submitted.fetch_add(1, Relaxed);
        }
        serve_event(&trace, EventKind::Submitted { priority: p.name() });
        let mut st = inner.lock();
        loop {
            if st.draining || st.stopped {
                inner
                    .telemetry
                    .counters(p)
                    .rejected_shutdown
                    .fetch_add(1, Relaxed);
                if let Some(c) = tc {
                    c.rejected_shutdown.fetch_add(1, Relaxed);
                }
                serve_event(
                    &trace,
                    EventKind::Refused {
                        priority: p.name(),
                        reason: "shutdown",
                    },
                );
                return Err(AdmissionError::ShuttingDown);
            }
            // Shed recovery: once the backlog has drained to ≤ ¼ of
            // aggregate capacity, the overload is over.
            if st.shed_level > 0
                && st.queues.total() <= inner.queue_capacity_total / SHED_RECOVER_DIV
            {
                st.shed_level = 0;
                st.full_streak = 0;
            }
            // Overload shedding: Batch first (level ≥ 1), then Normal
            // (level ≥ 2). Interactive only ever sees its own QueueFull.
            let shed_at = match p {
                Priority::Batch => 1,
                Priority::Normal => 2,
                Priority::Interactive => u8::MAX,
            };
            if st.shed_level >= shed_at {
                inner.telemetry.counters(p).shed.fetch_add(1, Relaxed);
                if let Some(c) = tc {
                    c.shed.fetch_add(1, Relaxed);
                }
                serve_event(
                    &trace,
                    EventKind::Refused {
                        priority: p.name(),
                        reason: "shed",
                    },
                );
                return Err(AdmissionError::Shed(p));
            }
            // Tenant queue-depth quota (anonymous slot is uncapped).
            let over_quota = {
                let ts = &st.tenant_sched[slot];
                ts.queued >= ts.queued_cap
            };
            if !over_quota {
                match st.queues.push(p, pending) {
                    Ok(()) => {
                        let global_pass = st.tenant_global_pass;
                        let ts = &mut st.tenant_sched[slot];
                        if ts.queued == 0 {
                            // Re-entry after idleness: no banked credit,
                            // same rule as the priority lanes.
                            ts.pass = ts.pass.max(global_pass);
                        }
                        ts.queued += 1;
                        inner.telemetry.counters(p).admitted.fetch_add(1, Relaxed);
                        if let Some(c) = tc {
                            c.admitted.fetch_add(1, Relaxed);
                        }
                        serve_event(&trace, EventKind::Admitted { priority: p.name() });
                        drop(st);
                        inner.cv.notify_all();
                        return Ok(());
                    }
                    Err(back) => pending = back,
                }
            }
            // No room — either the class queue is full or the tenant is
            // at its quota. Wait (blocking flavors) or refuse typed.
            match wait {
                Wait::No => {
                    return if over_quota {
                        inner
                            .telemetry
                            .counters(p)
                            .rejected_quota
                            .fetch_add(1, Relaxed);
                        if let Some(c) = tc {
                            c.rejected_quota.fetch_add(1, Relaxed);
                        }
                        serve_event(
                            &trace,
                            EventKind::Refused {
                                priority: p.name(),
                                reason: "quota",
                            },
                        );
                        Err(AdmissionError::TenantQuota(TenantId(slot)))
                    } else {
                        // Sustained class-queue pressure escalates the
                        // shed level (see SHED_ESCALATE_AFTER).
                        st.full_streak += 1;
                        if st.full_streak >= SHED_ESCALATE_AFTER {
                            st.shed_level = (st.shed_level + 1).min(2);
                            st.full_streak = 0;
                        }
                        inner
                            .telemetry
                            .counters(p)
                            .rejected_full
                            .fetch_add(1, Relaxed);
                        if let Some(c) = tc {
                            c.rejected_full.fetch_add(1, Relaxed);
                        }
                        serve_event(
                            &trace,
                            EventKind::Refused {
                                priority: p.name(),
                                reason: "full",
                            },
                        );
                        Err(AdmissionError::QueueFull(p))
                    };
                }
                Wait::Unbounded => {
                    st = inner.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                Wait::Until(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        inner
                            .telemetry
                            .counters(p)
                            .admission_timeouts
                            .fetch_add(1, Relaxed);
                        if let Some(c) = tc {
                            c.admission_timeouts.fetch_add(1, Relaxed);
                        }
                        serve_event(
                            &trace,
                            EventKind::Refused {
                                priority: p.name(),
                                reason: "timeout",
                            },
                        );
                        return Err(AdmissionError::Timeout);
                    }
                    let (guard, _) = inner
                        .cv
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }

    fn make_pending<T, E, R, F, M>(
        &self,
        opts: &SubmitOpts,
        plan: MorselPlan,
        task: F,
        merge: M,
    ) -> (PendingQuery, ServeHandle<R, E>)
    where
        T: Send + 'static,
        E: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'static,
        M: FnOnce(Vec<T>, DispatchStats) -> R + Send + 'static,
    {
        let token = opts.cancel.clone().unwrap_or_default();
        let deadline = opts.deadline.map(|d| Instant::now() + d);
        // An explicit trace wins; otherwise inherit the submitting
        // thread's ambient scope.
        let trace = opts.trace.clone().or_else(obs::current);
        let (stx, srx) = channel();
        let launch_token = token.clone();
        let launch_trace = trace.clone();
        let launch = Box::new(move |launch: Launch<'_>| match launch {
            Launch::Run { scheduler, on_done } => {
                let mut sopts = SubmitOptions::default()
                    .with_cancel(launch_token)
                    .with_on_done(on_done);
                if let Some(dl) = deadline {
                    sopts = sopts.with_deadline(dl.saturating_duration_since(Instant::now()));
                }
                if let Some(t) = launch_trace {
                    sopts = sopts.with_trace(t);
                }
                let handle = scheduler
                    .submit_opts(plan, sopts, task, merge)
                    .expect("the service scheduler outlives its dispatcher");
                let _ = stx.send(Ok(handle));
            }
            Launch::Refuse(reason) => {
                let _ = stx.send(Err(reason));
            }
        });
        let pending = PendingQuery {
            priority: opts.priority,
            slot: self.slot_of(opts.tenant),
            cancel: token.clone(),
            deadline,
            trace: trace.clone(),
            launch,
        };
        let handle = ServeHandle {
            stage: srx,
            cancel: token,
            priority: opts.priority,
            trace,
        };
        (pending, handle)
    }

    /// Submit without waiting: refused immediately with a typed
    /// [`AdmissionError`] when the class queue is full or the service is
    /// draining — the backpressure edge.
    pub fn try_submit<T, E, R, F, M>(
        &self,
        opts: SubmitOpts,
        plan: MorselPlan,
        task: F,
        merge: M,
    ) -> Result<ServeHandle<R, E>, AdmissionError>
    where
        T: Send + 'static,
        E: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'static,
        M: FnOnce(Vec<T>, DispatchStats) -> R + Send + 'static,
    {
        let (pending, handle) = self.make_pending(&opts, plan, task, merge);
        self.enqueue(pending, Wait::No)?;
        Ok(handle)
    }

    /// Submit, blocking while the class queue is full: up to
    /// [`SubmitOpts::queue_timeout`] (then [`AdmissionError::Timeout`]),
    /// or indefinitely when no timeout is set.
    pub fn submit<T, E, R, F, M>(
        &self,
        opts: SubmitOpts,
        plan: MorselPlan,
        task: F,
        merge: M,
    ) -> Result<ServeHandle<R, E>, AdmissionError>
    where
        T: Send + 'static,
        E: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'static,
        M: FnOnce(Vec<T>, DispatchStats) -> R + Send + 'static,
    {
        let wait = match opts.queue_timeout {
            Some(t) => Wait::Until(Instant::now() + t),
            None => Wait::Unbounded,
        };
        let (pending, handle) = self.make_pending(&opts, plan, task, merge);
        self.enqueue(pending, wait)?;
        Ok(handle)
    }

    /// Admission-gate a **borrowing** run: wait (fairly, by priority) for
    /// a dispatch slot, then execute `f` on the calling thread against
    /// the service's scheduler, releasing the slot when `f` returns.
    ///
    /// This is how the relational pipelines — whose tasks borrow tables
    /// from the caller's stack — run through the service: see
    /// `Runner::Service` in [`crate::pool`]. The query's *results* are
    /// whatever `f` produces; the service only delays its start and
    /// counts its outcome. A deadline in `opts` bounds the queue wait;
    /// mid-run aborts are driven by the cancel token (checked at morsel
    /// boundaries inside `f`'s pipeline).
    pub fn run_gated<R>(
        &self,
        opts: SubmitOpts,
        f: impl FnOnce(&Scheduler) -> R,
    ) -> Result<R, GateError> {
        // Without visibility into `R`, the outcome is derived from the
        // cancel token: fired → cancelled/expired, otherwise completed.
        // Callers whose `R` distinguishes success from failure should use
        // [`QueryService::run_gated_with`] so task errors are counted as
        // such.
        let token = opts.cancel.clone().unwrap_or_default();
        let opts = SubmitOpts {
            cancel: Some(token.clone()),
            ..opts
        };
        self.run_gated_with(opts, f, move |_| match token.reason() {
            None => QueryOutcomeKind::Completed,
            Some(CancelReason::Cancelled) => QueryOutcomeKind::Cancelled,
            Some(CancelReason::DeadlineExceeded) => QueryOutcomeKind::DeadlineExceeded,
        })
    }

    /// [`QueryService::run_gated`] with an explicit outcome classifier:
    /// `outcome_of` inspects `f`'s return value and decides what the
    /// telemetry records (completed / task error / cancelled / …). If `f`
    /// panics, the dispatch slot is still released and the query is
    /// counted [`QueryOutcomeKind::Panicked`] before the panic resumes.
    pub fn run_gated_with<R>(
        &self,
        opts: SubmitOpts,
        f: impl FnOnce(&Scheduler) -> R,
        outcome_of: impl FnOnce(&R) -> QueryOutcomeKind,
    ) -> Result<R, GateError> {
        let token = opts.cancel.clone().unwrap_or_default();
        let trace = opts.trace.clone().or_else(obs::current);
        let (gtx, grx) = channel::<Result<DoneHook, CancelReason>>();
        let pending = PendingQuery {
            priority: opts.priority,
            slot: self.slot_of(opts.tenant),
            cancel: token.clone(),
            deadline: opts.deadline.map(|d| Instant::now() + d),
            trace: trace.clone(),
            launch: Box::new(move |launch| match launch {
                Launch::Run { on_done, .. } => {
                    let _ = gtx.send(Ok(on_done));
                }
                Launch::Refuse(reason) => {
                    let _ = gtx.send(Err(reason));
                }
            }),
        };
        let wait = match opts.queue_timeout {
            Some(t) => Wait::Until(Instant::now() + t),
            None => Wait::Unbounded,
        };
        self.enqueue(pending, wait).map_err(GateError::Rejected)?;
        match grx.recv() {
            Ok(Ok(on_done)) => {
                // The guard releases the running slot even if `f`
                // unwinds — a panicking gated pipeline must not wedge
                // drain() by leaking its slot.
                let guard = GateGuard {
                    on_done: Some(on_done),
                };
                // Enter the trace on the calling thread so the pipeline
                // inside `f` (and the scheduler runs it issues) inherits
                // this query's scope.
                let scope = trace.as_ref().map(|t| t.enter());
                let r = f(self.scheduler());
                drop(scope);
                guard.finish(outcome_of(&r));
                Ok(r)
            }
            Ok(Err(CancelReason::Cancelled)) => Err(GateError::Cancelled),
            Ok(Err(CancelReason::DeadlineExceeded)) => Err(GateError::DeadlineExceeded),
            Err(_) => Err(GateError::Rejected(AdmissionError::ShuttingDown)),
        }
    }

    /// Graceful drain: reject new work immediately, keep dispatching and
    /// finishing what was already accepted for up to `timeout`, then
    /// refuse whatever is still queued, cancel whatever is still running
    /// (cooperative — at morsel boundaries), wait for those to finalize,
    /// stop the dispatcher, and shut the scheduler down. Idempotent.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        let inner = &self.inner;
        {
            let mut st = inner.lock();
            st.draining = true;
        }
        inner.cv.notify_all();
        let deadline = Instant::now() + timeout;
        let mut st = inner.lock();
        while !(st.queues.is_empty() && st.running.is_empty()) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = inner
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        let clean = st.queues.is_empty() && st.running.is_empty();
        let mut refused_queued = 0;
        let mut cancelled_running = 0;
        if !clean {
            let leftovers = st.queues.drain();
            refused_queued = leftovers.len();
            for (_, aged) in &leftovers {
                st.tenant_sched[aged.item.slot].queued -= 1;
            }
            for (_, _, token) in &st.running {
                token.cancel();
            }
            cancelled_running = st.running.len();
            drop(st);
            for (priority, aged) in leftovers {
                // Cancel the token too, so handles and shared group
                // tokens observe the same state the refusal reports.
                aged.item.cancel.cancel();
                inner.record_refusal(
                    priority,
                    aged.item.slot,
                    CancelReason::Cancelled,
                    aged.enqueued,
                );
                serve_event(
                    &aged.item.trace,
                    EventKind::Refused {
                        priority: priority.name(),
                        reason: "cancelled",
                    },
                );
                (aged.item.launch)(Launch::Refuse(CancelReason::Cancelled));
            }
            inner.cv.notify_all();
            st = inner.lock();
            // Cancelled queries abort at their next morsel boundary; wait
            // them out (gated runs finish their pipeline normally).
            while !st.running.is_empty() {
                let (guard, _) = inner
                    .cv
                    .wait_timeout(st, Duration::from_millis(20))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
        st.stopped = true;
        drop(st);
        inner.cv.notify_all();
        if let Some(h) = self
            .dispatcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
        inner.scheduler.shutdown();
        DrainReport {
            clean,
            refused_queued,
            cancelled_running,
        }
    }

    /// [`QueryService::drain`] with a zero timeout: refuse the queue,
    /// cancel the running set, tear down.
    pub fn shutdown(&self) -> DrainReport {
        self.drain(Duration::ZERO)
    }
}

impl fmt::Debug for QueryService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("QueryService")
            .field("workers", &self.inner.scheduler.workers())
            .field("concurrent_limit", &st.concurrent_limit)
            .field("tenants", &self.inner.tenants.len())
            .field("queued", &st.queues.total())
            .field("running", &st.running.len())
            .field("draining", &st.draining)
            .finish()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        let live = self
            .dispatcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some();
        if live {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_query(
        service: &QueryService,
        opts: SubmitOpts,
        rows: usize,
    ) -> Result<ServeHandle<usize, ()>, AdmissionError> {
        service.try_submit(
            opts,
            MorselPlan::new(rows, 128),
            |_, m| Ok::<usize, ()>(m.len),
            |parts, _| parts.iter().sum::<usize>(),
        )
    }

    #[test]
    fn submit_runs_and_counts() {
        let service = QueryService::new(ServeConfig::default().with_workers(2));
        let handle = sum_query(&service, SubmitOpts::normal(), 10_000).unwrap();
        assert_eq!(handle.join().unwrap(), 10_000);
        let stats = service.stats();
        let p = stats.priority(Priority::Normal);
        assert_eq!(p.submitted, 1);
        assert_eq!(p.admitted, 1);
        assert_eq!(p.completed, 1);
        assert_eq!(p.latency.count, 1);
        assert_eq!(p.queue_wait.count, 1);
        assert_eq!(stats.running, 0);
        let report = service.shutdown();
        assert!(report.clean);
    }

    #[test]
    fn queue_full_is_counted_exactly() {
        // One slot running, one queued: every further try_submit must be
        // a counted QueueFull.
        let service = QueryService::new(
            ServeConfig::default()
                .with_workers(1)
                .with_max_concurrent(1)
                .with_queue_capacity(1),
        );
        // Plug the single running slot with a slow query.
        let plug = service
            .try_submit(
                SubmitOpts::normal(),
                MorselPlan::new(64, 1),
                |_, m| {
                    std::thread::sleep(Duration::from_millis(3));
                    Ok::<usize, ()>(m.len)
                },
                |parts, _| parts.len(),
            )
            .unwrap();
        // Fill the queue (dispatch may have already moved one into the
        // running slot, so push until a rejection appears).
        let mut queued = Vec::new();
        let mut rejected = 0;
        for _ in 0..12 {
            match sum_query(&service, SubmitOpts::normal(), 1_000) {
                Ok(h) => queued.push(h),
                Err(AdmissionError::QueueFull(Priority::Normal)) => rejected += 1,
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        assert!(rejected > 0, "bounded queue must reject under overload");
        let stats = service.stats();
        assert_eq!(
            stats.priority(Priority::Normal).rejected_full,
            rejected,
            "every QueueFull must be counted exactly once"
        );
        // Everything admitted still completes.
        assert_eq!(plug.join().unwrap(), 64);
        for h in queued {
            assert_eq!(h.join().unwrap(), 1_000);
        }
        let stats = service.stats();
        assert_eq!(
            stats.priority(Priority::Normal).finished(),
            stats.priority(Priority::Normal).admitted
        );
        service.shutdown();
    }

    #[test]
    fn try_submit_after_drain_is_rejected() {
        let service = QueryService::new(ServeConfig::default().with_workers(1));
        let report = service.drain(Duration::from_secs(5));
        assert!(report.clean);
        match sum_query(&service, SubmitOpts::interactive(), 100) {
            Err(AdmissionError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {:?}", other.err()),
        }
        assert_eq!(
            service
                .stats()
                .priority(Priority::Interactive)
                .rejected_shutdown,
            1
        );
    }

    #[test]
    fn gated_run_admits_and_completes() {
        let service = QueryService::new(ServeConfig::default().with_workers(2));
        let data: Vec<i64> = (0..10_000).collect();
        let plan = MorselPlan::new(data.len(), 512);
        let out = service
            .run_gated(SubmitOpts::interactive(), |s| {
                s.run(&plan, |_, m| {
                    Ok::<i64, ()>(data[m.start..m.end()].iter().sum())
                })
            })
            .unwrap()
            .unwrap();
        assert_eq!(out.0.iter().sum::<i64>(), data.iter().sum::<i64>());
        let stats = service.stats();
        assert_eq!(stats.priority(Priority::Interactive).completed, 1);
        service.shutdown();
    }

    #[test]
    fn queued_cancellation_never_reaches_the_scheduler() {
        let service = QueryService::new(
            ServeConfig::default()
                .with_workers(1)
                .with_max_concurrent(1),
        );
        // Plug the slot so the next submission stays queued.
        let plug = service
            .try_submit(
                SubmitOpts::normal(),
                MorselPlan::new(200, 1),
                |_, m| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok::<usize, ()>(m.len)
                },
                |parts, _| parts.len(),
            )
            .unwrap();
        let scheduler_queries_before = service.scheduler().stats().queries_submitted;
        let queued = sum_query(&service, SubmitOpts::batch(), 5_000).unwrap();
        queued.cancel();
        match queued.join() {
            Err(QueryError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        plug.join().unwrap();
        // Give the dispatcher a beat, then confirm the cancelled query
        // never consumed a scheduler slot.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.stats().running > 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            service.scheduler().stats().queries_submitted,
            scheduler_queries_before + 1,
            "only the plug reached the scheduler"
        );
        assert_eq!(service.stats().priority(Priority::Batch).cancelled, 1);
        service.shutdown();
    }

    #[test]
    fn drain_timeout_cancels_stragglers() {
        let service = QueryService::new(
            ServeConfig::default()
                .with_workers(1)
                .with_max_concurrent(1),
        );
        let slow = service
            .try_submit(
                SubmitOpts::normal(),
                MorselPlan::new(100_000, 1),
                |_, m| {
                    std::thread::sleep(Duration::from_millis(1));
                    Ok::<usize, ()>(m.len)
                },
                |parts, _| parts.len(),
            )
            .unwrap();
        let queued = sum_query(&service, SubmitOpts::batch(), 1_000).unwrap();
        let report = service.drain(Duration::from_millis(30));
        assert!(!report.clean);
        assert!(report.cancelled_running >= 1 || report.refused_queued >= 1);
        // Both handles resolve — nothing hangs, nothing is lost.
        for outcome in [slow.join(), queued.join()] {
            match outcome {
                Ok(_) | Err(QueryError::Cancelled) | Err(QueryError::DeadlineExceeded) => {}
                Err(QueryError::Task(())) => panic!("unexpected task error"),
            }
        }
        let stats = service.stats();
        assert_eq!(
            stats.scheduler.queries_submitted,
            stats.scheduler.queries_completed
        );
    }

    #[test]
    fn deadline_in_queue_expires_typed() {
        let service = QueryService::new(
            ServeConfig::default()
                .with_workers(1)
                .with_max_concurrent(1),
        );
        let plug = service
            .try_submit(
                SubmitOpts::normal(),
                MorselPlan::new(200, 1),
                |_, m| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok::<usize, ()>(m.len)
                },
                |parts, _| parts.len(),
            )
            .unwrap();
        let doomed = service
            .try_submit(
                SubmitOpts::batch().with_deadline(Duration::from_millis(1)),
                MorselPlan::new(1_000, 100),
                |_, m| Ok::<usize, ()>(m.len),
                |parts, _| parts.iter().sum::<usize>(),
            )
            .unwrap();
        match doomed.join() {
            Err(QueryError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        plug.join().unwrap();
        assert_eq!(
            service.stats().priority(Priority::Batch).deadline_expired,
            1
        );
        service.shutdown();
    }
}
