//! Work-stealing morsel dispatch.
//!
//! The [`Dispatcher`] hands morsels to workers HyPer-style: the plan is
//! pre-partitioned into contiguous per-worker runs (locality: a worker
//! streams adjacent morsels, so its table slices walk memory linearly),
//! and a worker whose run is exhausted **steals from the back** of the
//! most-loaded other queue. Stealing from the back takes the work
//! farthest from the victim's current position, minimizing cache
//! interference; under skew (one morsel much slower than the rest) the
//! other workers drain the rest of the plan instead of idling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::morsel::Morsel;

/// Per-run dispatch statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Morsels executed per worker.
    pub executed: Vec<u64>,
    /// Morsels obtained by stealing from another worker's queue.
    pub steals: u64,
}

/// A work-stealing morsel queue set for `workers` workers.
pub struct Dispatcher {
    queues: Vec<Mutex<VecDeque<Morsel>>>,
    executed: Vec<AtomicU64>,
    steals: AtomicU64,
    /// Morsels not yet handed to any worker. Kept as an atomic so
    /// [`Dispatcher::queued`] (polled per dispatch cycle by the scheduler's
    /// worker loop) costs one load instead of locking every queue.
    /// Decremented *after* a successful pop, so it never under-reports.
    undispatched: AtomicU64,
}

impl Dispatcher {
    /// Partition `morsels` into contiguous runs, one per worker. Workers
    /// may be more numerous than morsels; the surplus queues start empty
    /// (those workers go straight to stealing).
    pub fn new(morsels: &[Morsel], workers: usize) -> Dispatcher {
        let workers = workers.max(1);
        let per = morsels.len().div_ceil(workers.max(1)).max(1);
        let mut queues: Vec<Mutex<VecDeque<Morsel>>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = (w * per).min(morsels.len());
            let hi = ((w + 1) * per).min(morsels.len());
            queues.push(Mutex::new(morsels[lo..hi].iter().copied().collect()));
        }
        Dispatcher {
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: AtomicU64::new(0),
            undispatched: AtomicU64::new(morsels.len() as u64),
            queues,
        }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Take the next morsel for `worker`: own queue front first, then a
    /// steal from the back of the longest other queue. `None` means the
    /// whole plan is drained.
    pub fn next(&self, worker: usize) -> Option<Morsel> {
        self.next_from(worker).map(|(m, _)| m)
    }

    /// [`Dispatcher::next`], also reporting whether the morsel was stolen
    /// from another worker's queue (tracing attribution).
    pub fn next_from(&self, worker: usize) -> Option<(Morsel, bool)> {
        debug_assert!(worker < self.queues.len());
        if let Some(m) = self.lock(worker).pop_front() {
            self.executed[worker].fetch_add(1, Ordering::Relaxed);
            self.undispatched.fetch_sub(1, Ordering::Relaxed);
            return Some((m, false));
        }
        // Steal: pick the victim with the most remaining work. The length
        // survey is racy by design — a stale choice only means a second
        // probe, never lost or duplicated work (every pop holds the lock).
        loop {
            let victim = (0..self.queues.len())
                .filter(|&w| w != worker)
                .map(|w| (self.lock(w).len(), w))
                .max()
                .filter(|&(len, _)| len > 0)
                .map(|(_, w)| w)?;
            if let Some(m) = self.lock(victim).pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.executed[worker].fetch_add(1, Ordering::Relaxed);
                self.undispatched.fetch_sub(1, Ordering::Relaxed);
                return Some((m, true));
            }
            // The victim drained between survey and steal; survey again.
        }
    }

    /// Morsels still queued (not yet handed to any worker). Zero means the
    /// plan is fully dispatched — though handed-out morsels may still be
    /// executing. One atomic load (may transiently over-report by in-flight
    /// pops, never under-report).
    pub fn queued(&self) -> usize {
        self.undispatched.load(Ordering::Relaxed) as usize
    }

    /// Statistics so far.
    pub fn stats(&self) -> DispatchStats {
        DispatchStats {
            executed: self
                .executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    fn lock(&self, w: usize) -> std::sync::MutexGuard<'_, VecDeque<Morsel>> {
        self.queues[w].lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morsel::MorselPlan;

    #[test]
    fn single_worker_drains_in_order() {
        let plan = MorselPlan::new(10, 2);
        let d = Dispatcher::new(plan.morsels(), 1);
        let order: Vec<usize> = std::iter::from_fn(|| d.next(0)).map(|m| m.index).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(d.stats().steals, 0);
        assert_eq!(d.stats().executed, vec![5]);
    }

    #[test]
    fn all_morsels_dispatched_exactly_once() {
        let plan = MorselPlan::new(1000, 7);
        let d = Dispatcher::new(plan.morsels(), 4);
        let seen: Vec<Vec<usize>> = std::thread::scope(|s| {
            (0..4)
                .map(|w| {
                    let d = &d;
                    s.spawn(move || std::iter::from_fn(|| d.next(w)).map(|m| m.index).collect())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: Vec<usize> = seen.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..plan.len()).collect();
        assert_eq!(all, expect);
        let stats = d.stats();
        assert_eq!(stats.executed.iter().sum::<u64>(), plan.len() as u64);
    }

    #[test]
    fn idle_workers_steal() {
        // 2 workers, but worker 1 never calls next: worker 0 must steal
        // worker 1's whole run.
        let plan = MorselPlan::new(8, 1);
        let d = Dispatcher::new(plan.morsels(), 2);
        let got: Vec<usize> = std::iter::from_fn(|| d.next(0)).map(|m| m.index).collect();
        assert_eq!(got.len(), 8);
        assert!(d.stats().steals >= 4, "{:?}", d.stats());
    }

    #[test]
    fn more_workers_than_morsels() {
        let plan = MorselPlan::new(2, 1);
        let d = Dispatcher::new(plan.morsels(), 8);
        let got: usize = (0..8)
            .map(|w| std::iter::from_fn(|| d.next(w)).count())
            .sum();
        assert_eq!(got, 2);
    }
}
