//! The generic two-phase join driver: **partitioned build, shared probe**.
//!
//! Morsel-parallel hash joins decompose into two barriers, mirroring
//! HyPer's morsel-driven join pipeline (Leis et al., SIGMOD 2014):
//!
//! 1. **Build phase** — every build-side morsel is hashed independently
//!    into a private *partition* (no shared mutable state, no locks), then
//!    the partitions are merged — **in morsel order** — into one shared,
//!    read-only structure.
//! 2. **Probe phase** — every probe-side morsel probes that shared
//!    structure concurrently (reads only), and the per-morsel outputs are
//!    returned **in morsel order**.
//!
//! ## Exactness
//!
//! Because both phases run on [`crate::pool::run_morsels`], the same guarantees hold as
//! for every pipeline in this crate: a morsel's result depends only on its
//! row range, and both the partition merge and the output assembly happen
//! in morsel order. Hence the merged build structure and the probe outputs
//! are **independent of worker count and scheduling** — with a
//! deterministic `merge`, a run with 8 workers is observably identical to
//! a run with 1, which is itself the plain sequential loop.
//!
//! The driver is deliberately generic: the relational layer instantiates
//! `Part` with its hash-table partitions and `Shared` with the merged
//! multimap, but any two-phase build/probe shape (e.g. a Bloom filter
//! build + filtered scan) fits.

use std::marker::PhantomData;

use crate::budget::MemoryBudget;
use crate::dispatch::DispatchStats;
use crate::morsel::{Morsel, MorselPlan};
use crate::pool::Runner;
use crate::scheduler::{CancelToken, RunError};
use crate::spillable::{run_spillable, SpillableOp};

pub use crate::spillable::{SpillCheckpoint, SpillStats};

/// Dispatch statistics for the two phases of a build/probe run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildProbeStats {
    /// Work-stealing stats of the build phase.
    pub build: DispatchStats,
    /// Work-stealing stats of the probe phase.
    pub probe: DispatchStats,
    /// Build-side morsels hashed.
    pub build_morsels: usize,
    /// Probe-side morsels probed.
    pub probe_morsels: usize,
}

/// Run a partitioned build phase, merge the partitions, then a shared
/// probe phase; return the shared structure, the per-morsel probe outputs
/// **in morsel order**, and the per-phase dispatch stats.
///
/// * `build_morsel(worker, morsel)` hashes one build-side morsel into a
///   private partition.
/// * `merge(partitions)` folds the partitions — handed over in morsel
///   order — into the shared, read-only probe structure.
/// * `probe_morsel(worker, morsel, shared)` probes one probe-side morsel.
///
/// The first error from either phase aborts the run and is returned.
pub fn build_then_probe<Part, Shared, Out, E, BF, MF, PF>(
    workers: usize,
    build_plan: &MorselPlan,
    probe_plan: &MorselPlan,
    build_morsel: BF,
    merge: MF,
    probe_morsel: PF,
) -> Result<(Shared, Vec<Out>, BuildProbeStats), E>
where
    Part: Send,
    Shared: Sync,
    Out: Send,
    E: Send,
    BF: Fn(usize, &Morsel) -> Result<Part, E> + Send + Sync,
    MF: FnOnce(Vec<Part>) -> Shared,
    PF: Fn(usize, &Morsel, &Shared) -> Result<Out, E> + Send + Sync,
{
    build_then_probe_on(
        Runner::Scoped { workers },
        build_plan,
        probe_plan,
        build_morsel,
        merge,
        probe_morsel,
    )
}

/// [`build_then_probe`] over an explicit [`Runner`]: the same two-phase
/// driver, executing on either a scoped per-run pool or a long-lived
/// [`crate::scheduler::Scheduler`]. Results are identical either way (both
/// phases merge in morsel order).
pub fn build_then_probe_on<Part, Shared, Out, E, BF, MF, PF>(
    runner: Runner<'_>,
    build_plan: &MorselPlan,
    probe_plan: &MorselPlan,
    build_morsel: BF,
    merge: MF,
    probe_morsel: PF,
) -> Result<(Shared, Vec<Out>, BuildProbeStats), E>
where
    Part: Send,
    Shared: Sync,
    Out: Send,
    E: Send,
    BF: Fn(usize, &Morsel) -> Result<Part, E> + Send + Sync,
    MF: FnOnce(Vec<Part>) -> Shared,
    PF: Fn(usize, &Morsel, &Shared) -> Result<Out, E> + Send + Sync,
{
    match build_then_probe_with(
        runner,
        None,
        build_plan,
        probe_plan,
        build_morsel,
        merge,
        probe_morsel,
    ) {
        Ok(out) => Ok(out),
        Err(RunError::Task(e)) => Err(e),
        // Reachable without a caller token: a shut-down scheduler rejects
        // the run, and a draining service can refuse/cancel a queued
        // gated run. This legacy signature cannot express those.
        Err(RunError::Rejected(why)) => {
            panic!("build_then_probe cannot express an admission rejection ({why}); use build_then_probe_with")
        }
        Err(RunError::Cancelled | RunError::DeadlineExceeded) => {
            panic!("build_then_probe cannot express a drain-time cancellation; use build_then_probe_with")
        }
    }
}

/// [`build_then_probe_on`] with a cooperative [`CancelToken`] checked at
/// every morsel boundary of **both** phases: cancellation between the
/// phases skips the probe entirely; cancellation, deadlines, and admission
/// rejection surface as typed [`RunError`]s.
#[allow(clippy::too_many_arguments)]
pub fn build_then_probe_with<Part, Shared, Out, E, BF, MF, PF>(
    runner: Runner<'_>,
    cancel: Option<&CancelToken>,
    build_plan: &MorselPlan,
    probe_plan: &MorselPlan,
    build_morsel: BF,
    merge: MF,
    probe_morsel: PF,
) -> Result<(Shared, Vec<Out>, BuildProbeStats), RunError<E>>
where
    Part: Send,
    Shared: Sync,
    Out: Send,
    E: Send,
    BF: Fn(usize, &Morsel) -> Result<Part, E> + Send + Sync,
    MF: FnOnce(Vec<Part>) -> Shared,
    PF: Fn(usize, &Morsel, &Shared) -> Result<Out, E> + Send + Sync,
{
    let (partitions, build) = runner.run_with(build_plan, cancel, &build_morsel)?;
    let shared = merge(partitions);
    let (outputs, probe) =
        runner.run_with(probe_plan, cancel, |w, m| probe_morsel(w, m, &shared))?;
    Ok((
        shared,
        outputs,
        BuildProbeStats {
            build,
            probe,
            build_morsels: build_plan.len(),
            probe_morsels: probe_plan.len(),
        },
    ))
}

/// The **budget-aware** two-phase driver: [`build_then_probe_with`] grown
/// an out-of-core third act.
///
/// The morsel-parallel build and probe phases run exactly as in the
/// in-memory driver; what changes is around them:
///
/// * `merge` receives the [`MemoryBudget`] (and the [`SpillStats`] to
///   update) — it charges the budget for whatever it keeps resident and
///   **spills** the partitions that do not fit instead of materializing
///   them,
/// * `probe_morsel` probes the resident part and *defers* rows whose
///   partition spilled,
/// * `settle` runs once, sequentially, after the probe: it takes the
///   shared structure **by value** (so it can drop resident state and
///   return its budget charge), resolves every spilled partition —
///   recursively re-partitioning ones that still do not fit — and folds
///   the deferred rows into the final output. The [`SpillCheckpoint`]
///   must be consulted between spill runs so cancellation and deadlines
///   keep binding during long out-of-core tails.
///
/// With a budget that everything fits under, `merge` spills nothing,
/// `settle` has no deferred work, and the result is the in-memory
/// driver's — the grace-hash joins in `adaptvm_relational::spill` rely on
/// this to stay bit-identical to their in-memory counterparts whatever
/// the budget.
///
/// Since the out-of-core layer was unified behind
/// [`crate::spillable::SpillableOp`], this function is a thin adapter:
/// the four closures become the four protocol hooks of an anonymous
/// operator driven by [`run_spillable`] — the closure-based signature
/// stays for build/probe shapes that do not warrant a named operator
/// type.
#[allow(clippy::too_many_arguments)]
pub fn build_then_probe_spilling<Part, Shared, Out, Settled, E, BF, MF, PF, SF>(
    runner: Runner<'_>,
    cancel: Option<&CancelToken>,
    budget: &MemoryBudget,
    build_plan: &MorselPlan,
    probe_plan: &MorselPlan,
    build_morsel: BF,
    merge: MF,
    probe_morsel: PF,
    settle: SF,
) -> Result<(Settled, BuildProbeStats, SpillStats), RunError<E>>
where
    Part: Send,
    Shared: Sync,
    Out: Send,
    E: Send,
    BF: Fn(usize, &Morsel) -> Result<Part, E> + Send + Sync,
    MF: FnOnce(Vec<Part>, &MemoryBudget, &mut SpillStats) -> Result<Shared, E> + Sync,
    PF: Fn(usize, &Morsel, &Shared) -> Result<Out, E> + Send + Sync,
    SF: FnOnce(
            Shared,
            Vec<Out>,
            &MemoryBudget,
            &mut SpillStats,
            &SpillCheckpoint<'_>,
        ) -> Result<Settled, RunError<E>>
        + Sync,
{
    let mut op = ClosureSpillOp {
        build_plan,
        probe_plan,
        build_morsel,
        merge: Some(merge),
        probe_morsel,
        settle: Some(settle),
        _types: PhantomData,
    };
    run_spillable(&mut op, runner, cancel, budget)
}

/// The adapter behind [`build_then_probe_spilling`]: a [`SpillableOp`]
/// whose hooks are caller-supplied closures. The one-shot `merge` and
/// `settle` closures sit in `Option`s because the trait takes `&mut
/// self` where the legacy signature took `FnOnce` by value.
struct ClosureSpillOp<'p, Part, Shared, Out, Settled, E, BF, MF, PF, SF> {
    build_plan: &'p MorselPlan,
    probe_plan: &'p MorselPlan,
    build_morsel: BF,
    merge: Option<MF>,
    probe_morsel: PF,
    settle: Option<SF>,
    #[allow(clippy::type_complexity)]
    _types: PhantomData<fn() -> (Part, Shared, Out, Settled, E)>,
}

impl<Part, Shared, Out, Settled, E, BF, MF, PF, SF> SpillableOp
    for ClosureSpillOp<'_, Part, Shared, Out, Settled, E, BF, MF, PF, SF>
where
    Part: Send,
    Shared: Sync,
    Out: Send,
    E: Send,
    BF: Fn(usize, &Morsel) -> Result<Part, E> + Send + Sync,
    MF: FnOnce(Vec<Part>, &MemoryBudget, &mut SpillStats) -> Result<Shared, E> + Sync,
    PF: Fn(usize, &Morsel, &Shared) -> Result<Out, E> + Send + Sync,
    SF: FnOnce(
            Shared,
            Vec<Out>,
            &MemoryBudget,
            &mut SpillStats,
            &SpillCheckpoint<'_>,
        ) -> Result<Settled, RunError<E>>
        + Sync,
{
    type Partition = Part;
    type Shared = Shared;
    type Out = Out;
    type Settled = Settled;
    type Error = E;

    fn input_plan(&self) -> &MorselPlan {
        self.build_plan
    }

    fn consume_plan(&self) -> Option<&MorselPlan> {
        Some(self.probe_plan)
    }

    fn partition_morsel(&self, worker: usize, morsel: &Morsel) -> Result<Part, E> {
        (self.build_morsel)(worker, morsel)
    }

    fn charge(
        &mut self,
        partitions: Vec<Part>,
        budget: &MemoryBudget,
        stats: &mut SpillStats,
    ) -> Result<Shared, E> {
        let merge = self.merge.take().expect("charge runs once");
        merge(partitions, budget, stats)
    }

    fn consume_morsel(&self, worker: usize, morsel: &Morsel, shared: &Shared) -> Result<Out, E> {
        (self.probe_morsel)(worker, morsel, shared)
    }

    fn settle(
        &mut self,
        shared: Shared,
        outs: Vec<Out>,
        budget: &MemoryBudget,
        stats: &mut SpillStats,
        checkpoint: &SpillCheckpoint<'_>,
    ) -> Result<Settled, RunError<E>> {
        let settle = self.settle.take().expect("settle runs once");
        settle(shared, outs, budget, stats, checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A toy join: build a key→count map, probe counts the hits.
    fn toy_join(workers: usize) -> (HashMap<i64, usize>, Vec<usize>) {
        let build_keys: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let probe_keys: Vec<i64> = (0..2000).map(|i| i % 250).collect();
        let build_plan = MorselPlan::new(build_keys.len(), 64);
        let probe_plan = MorselPlan::new(probe_keys.len(), 128);
        let (shared, outs, stats) = build_then_probe(
            workers,
            &build_plan,
            &probe_plan,
            |_, m| {
                let mut part: HashMap<i64, usize> = HashMap::new();
                for &k in &build_keys[m.start..m.end()] {
                    *part.entry(k).or_default() += 1;
                }
                Ok::<_, ()>(part)
            },
            |parts| {
                let mut merged: HashMap<i64, usize> = HashMap::new();
                for p in parts {
                    for (k, c) in p {
                        *merged.entry(k).or_default() += c;
                    }
                }
                merged
            },
            |_, m, shared| {
                Ok(probe_keys[m.start..m.end()]
                    .iter()
                    .map(|k| shared.get(k).copied().unwrap_or(0))
                    .sum::<usize>())
            },
        )
        .unwrap();
        assert_eq!(stats.build_morsels, build_plan.len());
        assert_eq!(stats.probe_morsels, probe_plan.len());
        assert_eq!(
            stats.build.executed.iter().sum::<u64>(),
            build_plan.len() as u64
        );
        assert_eq!(
            stats.probe.executed.iter().sum::<u64>(),
            probe_plan.len() as u64
        );
        (shared, outs)
    }

    #[test]
    fn build_then_probe_is_worker_count_invariant() {
        let (shared1, outs1) = toy_join(1);
        for workers in [2, 4, 8] {
            let (shared, outs) = toy_join(workers);
            assert_eq!(shared, shared1, "workers={workers}");
            assert_eq!(outs, outs1, "workers={workers}");
        }
        // And the sequential reference agrees.
        assert_eq!(shared1.len(), 100);
        assert_eq!(
            outs1.iter().sum::<usize>(),
            (0..2000).filter(|i| i % 250 < 100).count() * 10
        );
    }

    #[test]
    fn spill_checkpoint_reports_token_state_typed() {
        let quiet = SpillCheckpoint::new(None);
        assert!(quiet.check::<()>().is_ok());
        let token = CancelToken::new();
        let live = SpillCheckpoint::new(Some(&token));
        assert!(live.check::<()>().is_ok());
        token.cancel();
        assert!(matches!(live.check::<()>(), Err(RunError::Cancelled)));
    }

    #[test]
    fn spilling_driver_threads_budget_and_stats() {
        // A merge that "spills" everything over a 2-entry budget and a
        // settle that folds the deferred half back in: the driver must
        // hand the same budget and stats through all three hooks and
        // return the in-memory-equivalent result.
        let budget = MemoryBudget::bytes(2 * 8);
        let data: Vec<i64> = (0..100).collect();
        let plan = MorselPlan::new(data.len(), 16);
        let ((resident, settled), stats, spill) = build_then_probe_spilling(
            Runner::Scoped { workers: 4 },
            None,
            &budget,
            &plan,
            &plan,
            |_, m| Ok::<_, ()>(data[m.start..m.end()].to_vec()),
            |parts, budget, stats| {
                // Keep what fits (2 rows), spill the rest.
                let all: Vec<i64> = parts.into_iter().flatten().collect();
                let mut kept = Vec::new();
                let mut spilled = Vec::new();
                for v in all {
                    if budget.try_charge(8).is_ok() {
                        kept.push(v);
                    } else {
                        stats.partitions_spilled += 1;
                        spilled.push(v);
                    }
                }
                Ok((kept, spilled))
            },
            |_, m, shared| Ok(shared.0.iter().take(m.len).sum::<i64>()),
            |shared, outs, budget, stats, checkpoint| {
                checkpoint.check()?;
                budget.release(8 * shared.0.len());
                stats.bytes_read += 1;
                Ok((outs.iter().sum::<i64>(), shared.1.len()))
            },
        )
        .unwrap();
        assert_eq!(
            resident, 7,
            "per morsel the 2 resident rows sum to 1, × 7 morsels"
        );
        assert_eq!(settled, 98, "98 rows deferred past the budget");
        assert_eq!(spill.partitions_spilled, 98);
        assert_eq!(spill.bytes_read, 1);
        assert_eq!(stats.build_morsels, 7);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn probe_phase_error_releases_lease_held_by_shared_state() {
        // The RAII contract the out-of-core joins rely on: when the probe
        // phase aborts, the driver drops the merged Shared structure —
        // any BudgetLease it holds must return its charge.
        let budget = MemoryBudget::bytes(1_000);
        let plan = MorselPlan::new(64, 8);
        struct Sides<'a> {
            _lease: crate::budget::BudgetLease<'a>,
        }
        let r = build_then_probe_spilling(
            Runner::Scoped { workers: 2 },
            None,
            &budget,
            &plan,
            &plan,
            |_, _| Ok::<_, &str>(()),
            |_, _, _| {
                Ok(Sides {
                    _lease: budget.lease(600).expect("fits"),
                })
            },
            |_, m, _shared: &Sides<'_>| {
                if m.index == 3 {
                    Err("probe blew up")
                } else {
                    Ok(())
                }
            },
            |_, _, _, _, _| Ok(()),
        );
        assert!(matches!(r, Err(RunError::Task("probe blew up"))));
        assert_eq!(budget.used(), 0, "dropped Shared must release its lease");
    }

    #[test]
    fn build_error_aborts_before_probe() {
        let plan = MorselPlan::new(100, 10);
        let probed = std::sync::atomic::AtomicBool::new(false);
        let r = build_then_probe(
            4,
            &plan,
            &plan,
            |_, m| {
                if m.index == 3 {
                    Err("bad build")
                } else {
                    Ok(())
                }
            },
            |_parts| (),
            |_, _, _shared| {
                probed.store(true, std::sync::atomic::Ordering::Relaxed);
                Ok(())
            },
        );
        assert_eq!(r.unwrap_err(), "bad build");
        assert!(!probed.load(std::sync::atomic::Ordering::Relaxed));
    }
}
