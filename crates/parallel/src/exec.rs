//! Morsel-parallel execution of DSL programs on the adaptive VM.
//!
//! [`ParallelVm`] runs one program instance per morsel, each on its own
//! [`adaptvm_vm::Env`]/interpreter (workers share **no** mutable query
//! state), while two things are deliberately shared across the whole run:
//!
//! * the **JIT code cache** ([`adaptvm_jit::CodeCache`]): the first worker
//!   to hit a hot fragment compiles it; every later morsel — on any
//!   worker — injects the cached trace without paying the compile cost
//!   (visible as `trace_cache_hits` in the report),
//! * the **profile**: per-morsel [`Profile`]s are merged in morsel order,
//!   so §III's adaptive decisions see the combined signal of all workers
//!   (many workers feeding one profile sharpens hot-path detection).
//!
//! Results are merged in morsel order, which makes a parallel run's
//! output independent of worker count and scheduling; see the crate docs
//! for the determinism argument.

use std::sync::Arc;

use adaptvm_jit::cache::CacheStats;
use adaptvm_jit::CodeCache;
use adaptvm_vm::{Buffers, Profile, RunReport, Vm, VmConfig, VmError};

use crate::dispatch::DispatchStats;
use crate::morsel::{Morsel, MorselPlan};
use crate::pool::run_morsels_with;
use crate::scheduler::{CancelToken, ProfileWindow, RunError, Scheduler};

/// Fold the runner-level error into a [`VmError`]: task errors pass
/// through, cancellation/deadline/rejection become [`VmError::Cancelled`].
fn vm_run_err(e: RunError<VmError>) -> VmError {
    match e {
        RunError::Task(e) => e,
        RunError::Cancelled | RunError::DeadlineExceeded | RunError::Rejected(_) => {
            VmError::Cancelled
        }
    }
}

/// Capacity of the auto-installed shared code cache. Generously sized:
/// a query pipeline yields a handful of fragments; 256 holds many queries'
/// worth of specialized traces.
const SHARED_CACHE_CAPACITY: usize = 256;

/// What one parallel run did, aggregated over all morsels.
#[derive(Debug, Clone, Default)]
pub struct ParallelRunReport {
    /// Worker threads used.
    pub workers: usize,
    /// Morsels executed.
    pub morsels: usize,
    /// Merged run profile (all workers' signal combined).
    pub profile: Profile,
    /// Total chunk-loop iterations across morsels.
    pub iterations: u64,
    /// Traces injected into morsel plans (fresh compiles *and* shared-
    /// cache hits; the hits alone are `trace_cache_hits`).
    pub injected_traces: usize,
    /// Traces injected straight from the shared cache (no compile paid).
    pub trace_cache_hits: u64,
    /// Total modeled compile cost (ns) actually paid (cache hits cost 0).
    pub compile_ns_total: u64,
    /// Trace-step executions across morsels.
    pub trace_executions: u64,
    /// Trace-step executions served by native machine code across morsels
    /// (a subset of `trace_executions`).
    pub native_trace_executions: u64,
    /// Native guard deopts across morsels (chunk re-run on the
    /// interpreted tier; not counted under `fallbacks`).
    pub native_deopts: u64,
    /// Interpretation fallbacks across morsels.
    pub fallbacks: u64,
    /// Morsels stolen across worker queues.
    pub steals: u64,
    /// Morsels executed per worker.
    pub per_worker_morsels: Vec<u64>,
    /// Shared-cache statistics at the end of the run.
    pub cache_stats: CacheStats,
    /// Wall-clock nanoseconds for the whole parallel run.
    pub wall_ns: u64,
}

/// A morsel-driven parallel VM: `workers` threads, one shared JIT.
pub struct ParallelVm {
    workers: usize,
    config: VmConfig,
    cache: Arc<CodeCache>,
}

impl ParallelVm {
    /// A parallel VM with `workers` threads over `config`. When the config
    /// carries no code cache, a shared one is installed — every worker
    /// compiles into / injects from the same cache.
    pub fn new(workers: usize, mut config: VmConfig) -> ParallelVm {
        let cache = match &config.code_cache {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(CodeCache::new(SHARED_CACHE_CAPACITY));
                config.code_cache = Some(c.clone());
                c
            }
        };
        ParallelVm {
            workers: workers.max(1),
            config,
            cache,
        }
    }

    /// The shared code cache (inspect its stats, or pass the same cache to
    /// several `ParallelVm`s to share traces across queries).
    pub fn cache(&self) -> &Arc<CodeCache> {
        &self.cache
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The per-worker VM configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Run `make(morsel)`-built program instances over the plan. Returns
    /// per-morsel output buffers **in morsel order** plus the aggregated
    /// report. The caller merges outputs (ordered reduction) — see
    /// `adaptvm_relational::parallel` for complete pipelines.
    pub fn run_morsels<F>(
        &self,
        plan: &MorselPlan,
        make: F,
    ) -> Result<(Vec<Buffers>, ParallelRunReport), VmError>
    where
        F: Fn(&Morsel) -> (adaptvm_dsl::ast::Program, Buffers) + Sync,
    {
        self.run_morsels_with(plan, None, make)
    }

    /// [`ParallelVm::run_morsels`] with a cooperative [`CancelToken`]
    /// checked before every morsel: on cancellation/deadline the run
    /// aborts with [`VmError::Cancelled`].
    pub fn run_morsels_with<F>(
        &self,
        plan: &MorselPlan,
        cancel: Option<&CancelToken>,
        make: F,
    ) -> Result<(Vec<Buffers>, ParallelRunReport), VmError>
    where
        F: Fn(&Morsel) -> (adaptvm_dsl::ast::Program, Buffers) + Sync,
    {
        let wall = std::time::Instant::now();
        let vm = Vm::new(self.config.clone());
        let (outcomes, dispatch) = run_morsels_with(self.workers, plan, cancel, |_w, m| {
            let (program, buffers) = make(m);
            vm.run(&program, buffers)
        })
        .map_err(vm_run_err)?;
        Ok(assemble_report(
            outcomes,
            dispatch,
            self.workers,
            plan.len(),
            &self.cache,
            wall,
        ))
    }

    /// Bind this VM to a long-lived [`Scheduler`]: the returned
    /// [`ScheduledVm`] runs the same morsel pipelines on the scheduler's
    /// parked workers instead of spawning scoped threads, and swaps the
    /// VM's JIT world for the scheduler's — the shared code cache (traces
    /// survive across queries) and, for `async_compile` configs, the
    /// shared background [`adaptvm_jit::CompileServer`]. Results are
    /// unchanged (same per-morsel programs, same morsel-ordered merge);
    /// only where the work runs and where traces live differ.
    pub fn on<'a>(&'a self, scheduler: &'a Scheduler) -> ScheduledVm<'a> {
        ScheduledVm {
            vm: self,
            scheduler,
        }
    }
}

/// A [`ParallelVm`] bound to a [`Scheduler`] (see [`ParallelVm::on`]).
pub struct ScheduledVm<'a> {
    vm: &'a ParallelVm,
    scheduler: &'a Scheduler,
}

impl ScheduledVm<'_> {
    /// The scheduler this VM runs on.
    pub fn scheduler(&self) -> &Scheduler {
        self.scheduler
    }

    /// The scheduler flavor of [`ParallelVm::run_morsels`]: identical
    /// outputs, but executed by the long-lived pool, with traces compiled
    /// into the scheduler's shared cache (repeated fragments — later
    /// morsels, later queries — surface as `trace_cache_hits`). After the
    /// run, the merged profile window feeds the scheduler's morsel
    /// elasticity.
    pub fn run_morsels<F>(
        &self,
        plan: &MorselPlan,
        make: F,
    ) -> Result<(Vec<Buffers>, ParallelRunReport), VmError>
    where
        F: Fn(&Morsel) -> (adaptvm_dsl::ast::Program, Buffers) + Send + Sync,
    {
        self.run_morsels_with(plan, None, make)
    }

    /// [`ScheduledVm::run_morsels`] with a cooperative [`CancelToken`]
    /// checked at every morsel boundary by the scheduler's workers:
    /// cancellation, deadline, or a shut-down pool abort the run with
    /// [`VmError::Cancelled`] — other queries on the scheduler are
    /// untouched.
    pub fn run_morsels_with<F>(
        &self,
        plan: &MorselPlan,
        cancel: Option<&CancelToken>,
        make: F,
    ) -> Result<(Vec<Buffers>, ParallelRunReport), VmError>
    where
        F: Fn(&Morsel) -> (adaptvm_dsl::ast::Program, Buffers) + Send + Sync,
    {
        let wall = std::time::Instant::now();
        let mut config = self.vm.config().clone();
        config.code_cache = Some(self.scheduler.cache().clone());
        if config.async_compile && config.compile_server.is_none() {
            config.compile_server = Some(self.scheduler.compile_server().clone());
        }
        let vm = Vm::new(config);
        let (outcomes, dispatch) = self
            .scheduler
            .run_with(plan, cancel, |_w, m| {
                let (program, buffers) = make(m);
                vm.run(&program, buffers)
            })
            .map_err(vm_run_err)?;
        let (buffers, report) = assemble_report(
            outcomes,
            dispatch,
            self.scheduler.workers(),
            plan.len(),
            self.scheduler.cache(),
            wall,
        );
        self.scheduler.observe_window(&ProfileWindow {
            morsels: report.morsels,
            steals: report.steals,
            trace_executions: report.trace_executions,
            fallbacks: report.fallbacks,
        });
        Ok((buffers, report))
    }
}

/// Fold per-morsel `(Buffers, RunReport)` outcomes into the aggregate
/// parallel report (shared by the scoped and scheduled paths).
fn assemble_report(
    outcomes: Vec<(Buffers, RunReport)>,
    dispatch: DispatchStats,
    workers: usize,
    morsels: usize,
    cache: &CodeCache,
    wall: std::time::Instant,
) -> (Vec<Buffers>, ParallelRunReport) {
    let mut report = ParallelRunReport {
        workers,
        morsels,
        ..ParallelRunReport::default()
    };
    let mut buffers = Vec::with_capacity(outcomes.len());
    for (out, run) in outcomes {
        buffers.push(out);
        report.profile.merge(&run.profile);
        report.iterations += run.iterations;
        report.injected_traces += run.injected_traces;
        report.trace_cache_hits += run.trace_cache_hits;
        report.compile_ns_total += run.compile_ns_total;
        report.trace_executions += run.trace_executions;
        report.native_trace_executions += run.native_trace_executions;
        report.native_deopts += run.native_deopts;
        report.fallbacks += run.fallbacks;
    }
    report.steals = dispatch.steals;
    report.per_worker_morsels = dispatch.executed;
    report.cache_stats = cache.stats();
    report.wall_ns = wall.elapsed().as_nanos() as u64;
    (buffers, report)
}

impl ParallelRunReport {
    /// The dispatch view of this run.
    pub fn dispatch_stats(&self) -> DispatchStats {
        DispatchStats {
            executed: self.per_worker_morsels.clone(),
            steals: self.steals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_dsl::programs;
    use adaptvm_storage::Array;
    use adaptvm_vm::Strategy;

    /// Fig. 2 over a morsel: double every element, keep positives.
    fn fig2_task(data: &[i64], m: &Morsel) -> (adaptvm_dsl::ast::Program, Buffers) {
        let slice: Vec<i64> = data[m.start..m.end()].to_vec();
        (
            programs::fig2_with_limit(slice.len() as i64),
            Buffers::new().with_input("some_data", Array::from(slice)),
        )
    }

    fn reference_v(data: &[i64]) -> Vec<i64> {
        data.iter().map(|&x| 2 * x).collect()
    }

    #[test]
    fn parallel_outputs_merge_in_morsel_order() {
        let data: Vec<i64> = (0..40_000).map(|i| (i % 11) - 5).collect();
        let plan = MorselPlan::new(data.len(), 4096);
        for workers in [1, 2, 4] {
            let pvm = ParallelVm::new(
                workers,
                VmConfig {
                    strategy: Strategy::Interpret,
                    ..VmConfig::default()
                },
            );
            let (outs, report) = pvm.run_morsels(&plan, |m| fig2_task(&data, m)).unwrap();
            let mut v = Vec::new();
            for out in &outs {
                v.extend(out.output("v").unwrap().to_i64_vec().unwrap());
            }
            assert_eq!(v, reference_v(&data), "workers={workers}");
            assert_eq!(report.morsels, plan.len());
            assert_eq!(
                report.per_worker_morsels.iter().sum::<u64>(),
                plan.len() as u64
            );
        }
    }

    #[test]
    fn shared_cache_compiles_once_per_fragment() {
        let data: Vec<i64> = (0..131_072).map(|i| (i % 11) - 5).collect();
        // Equal-size morsels → identical programs → identical fragment
        // fingerprints: only the first morsel's regions compile.
        let plan = MorselPlan::new(data.len(), 16_384);
        let pvm = ParallelVm::new(
            4,
            VmConfig {
                strategy: Strategy::CompiledPipeline,
                ..VmConfig::default()
            },
        );
        let (_, report) = pvm.run_morsels(&plan, |m| fig2_task(&data, m)).unwrap();
        assert_eq!(plan.len(), 8);
        assert!(
            report.trace_cache_hits >= 1,
            "later morsels must hit the shared cache: {report:?}"
        );
        // Every morsel injects one trace; hits are the subset of those
        // injections that paid no compile.
        assert_eq!(
            report.injected_traces,
            plan.len(),
            "every morsel injects a trace: {report:?}"
        );
        assert!(
            (report.trace_cache_hits as usize) < plan.len(),
            "the first morsel's compile is never a hit: {report:?}"
        );
        // The profile merged signal from every morsel.
        assert_eq!(report.iterations as usize, plan.len() * (16_384 / 1024));
    }

    #[test]
    fn adaptive_strategy_profiles_across_workers() {
        let data: Vec<i64> = (0..65_536).map(|i| (i % 7) - 3).collect();
        let plan = MorselPlan::new(data.len(), 16_384);
        let pvm = ParallelVm::new(
            2,
            VmConfig {
                strategy: Strategy::Adaptive,
                hot_threshold: 4,
                ..VmConfig::default()
            },
        );
        let (outs, report) = pvm.run_morsels(&plan, |m| fig2_task(&data, m)).unwrap();
        let total: usize = outs.iter().map(|o| o.output("v").unwrap().len()).sum();
        assert_eq!(total, data.len());
        // Each morsel crossed the hot threshold (16 chunks > 4), so traces
        // were injected, and the merged profile saw every morsel's loop.
        assert!(report.injected_traces > 0);
        assert_eq!(report.iterations, 64);
        assert!(report.profile.iterations == 64);
    }
}
