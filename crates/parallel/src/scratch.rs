//! Pooled partition scratch arenas: **reset only what you touched**.
//!
//! The out-of-core settle paths re-partition spilled runs frame by
//! frame: for every frame they need [fan-out] bucket buffers, fill a
//! handful of them, flush, and start over. Allocating those buffers per
//! frame (let alone per query) is pure churn in steady-state serving, so
//! this module pools them process-wide:
//!
//! * [`PartitionScratch`] / [`StrScratch`] keep one buffer per bucket
//!   plus a *touched list*; [`PartitionScratch::reset`] clears **only
//!   the touched buckets** (the sfuzz dirty-reset idiom — untouched
//!   buckets cost nothing) and every clear retains capacity, so a warmed
//!   arena appends without allocating.
//! * [`acquire_partition`] / [`acquire_str`] hand out pooled arenas as
//!   RAII leases that reset and return themselves on drop. The pool is
//!   a mutex-guarded free list — the settle phases that use it are
//!   sequential, so there is no contention to speak of.
//! * [`scratch_stats`] exposes created-vs-reused counters; the spill
//!   bench prints them next to allocation counts to show steady-state
//!   serving reusing buffers across queries.
//!
//! [fan-out]: https://docs.rs/adaptvm-relational

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use adaptvm_storage::spill::StrBatch;

/// Fan-out bucket buffers of `(i64, i64)` rows with touched-bucket
/// tracking.
#[derive(Debug, Default)]
pub struct PartitionScratch {
    buckets: Vec<(Vec<i64>, Vec<i64>)>,
    touched: Vec<u32>,
    dirty: Vec<bool>,
}

impl PartitionScratch {
    /// Grow to at least `fanout` buckets (never shrinks — capacity is
    /// the point).
    pub fn ensure_fanout(&mut self, fanout: usize) {
        if self.buckets.len() < fanout {
            self.buckets.resize_with(fanout, Default::default);
            self.dirty.resize(fanout, false);
        }
    }

    /// Append one row to `bucket`.
    #[inline]
    pub fn push(&mut self, bucket: usize, key: i64, value: i64) {
        if !self.dirty[bucket] {
            self.dirty[bucket] = true;
            self.touched.push(bucket as u32);
        }
        self.buckets[bucket].0.push(key);
        self.buckets[bucket].1.push(value);
    }

    /// The two columns of `bucket`.
    pub fn bucket(&self, bucket: usize) -> (&[i64], &[i64]) {
        (&self.buckets[bucket].0, &self.buckets[bucket].1)
    }

    /// Buckets pushed to since the last reset, in first-touch order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Clear **only the touched buckets** (retaining their capacity) and
    /// the touched list itself.
    pub fn reset(&mut self) {
        for &b in &self.touched {
            let b = b as usize;
            self.buckets[b].0.clear();
            self.buckets[b].1.clear();
            self.dirty[b] = false;
        }
        self.touched.clear();
    }
}

/// The Utf8 sibling of [`PartitionScratch`]: fan-out [`StrBatch`]
/// buckets with the same touched-only reset.
#[derive(Debug, Default)]
pub struct StrScratch {
    buckets: Vec<StrBatch>,
    touched: Vec<u32>,
    dirty: Vec<bool>,
}

impl StrScratch {
    /// Grow to at least `fanout` buckets.
    pub fn ensure_fanout(&mut self, fanout: usize) {
        if self.buckets.len() < fanout {
            self.buckets.resize_with(fanout, Default::default);
            self.dirty.resize(fanout, false);
        }
    }

    /// Append one row to `bucket`.
    #[inline]
    pub fn push(&mut self, bucket: usize, key: &str, value: i64) {
        if !self.dirty[bucket] {
            self.dirty[bucket] = true;
            self.touched.push(bucket as u32);
        }
        self.buckets[bucket].push(key, value);
    }

    /// The batch of `bucket`.
    pub fn bucket(&self, bucket: usize) -> &StrBatch {
        &self.buckets[bucket]
    }

    /// Buckets pushed to since the last reset, in first-touch order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Clear only the touched buckets, retaining capacity.
    pub fn reset(&mut self) {
        for &b in &self.touched {
            let b = b as usize;
            self.buckets[b].clear();
            self.dirty[b] = false;
        }
        self.touched.clear();
    }
}

static INT_POOL: Mutex<Vec<PartitionScratch>> = Mutex::new(Vec::new());
static STR_POOL: Mutex<Vec<StrScratch>> = Mutex::new(Vec::new());
static CREATED: AtomicU64 = AtomicU64::new(0);
static REUSED: AtomicU64 = AtomicU64::new(0);

/// How often the scratch pools created a fresh arena vs reused a warmed
/// one. Counters are process-wide and monotonic; the spill bench prints
/// deltas around runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Arenas allocated fresh because the pool was empty.
    pub created: u64,
    /// Arenas handed out from the pool (buffers already warm).
    pub reused: u64,
}

/// Snapshot the pool counters.
pub fn scratch_stats() -> ScratchStats {
    ScratchStats {
        created: CREATED.load(Ordering::Relaxed),
        reused: REUSED.load(Ordering::Relaxed),
    }
}

/// An RAII lease on a pooled [`PartitionScratch`]; resets and returns
/// the arena to the pool on drop.
#[derive(Debug)]
pub struct PartitionScratchLease {
    inner: Option<PartitionScratch>,
}

impl Deref for PartitionScratchLease {
    type Target = PartitionScratch;
    fn deref(&self) -> &PartitionScratch {
        self.inner.as_ref().expect("present until drop")
    }
}

impl DerefMut for PartitionScratchLease {
    fn deref_mut(&mut self) -> &mut PartitionScratch {
        self.inner.as_mut().expect("present until drop")
    }
}

impl Drop for PartitionScratchLease {
    fn drop(&mut self) {
        if let Some(mut scratch) = self.inner.take() {
            scratch.reset();
            INT_POOL
                .lock()
                .expect("scratch pool poisoned")
                .push(scratch);
        }
    }
}

/// Lease a `(i64, i64)` partition scratch with at least `fanout`
/// buckets, warmed from the pool when possible.
pub fn acquire_partition(fanout: usize) -> PartitionScratchLease {
    let pooled = INT_POOL.lock().expect("scratch pool poisoned").pop();
    let reused = pooled.is_some();
    crate::obs::emit(crate::obs::EventKind::ScratchAcquire { reused });
    let mut scratch = match pooled {
        Some(s) => {
            REUSED.fetch_add(1, Ordering::Relaxed);
            s
        }
        None => {
            CREATED.fetch_add(1, Ordering::Relaxed);
            PartitionScratch::default()
        }
    };
    scratch.ensure_fanout(fanout);
    PartitionScratchLease {
        inner: Some(scratch),
    }
}

/// An RAII lease on a pooled [`StrScratch`]; resets and returns the
/// arena to the pool on drop.
#[derive(Debug)]
pub struct StrScratchLease {
    inner: Option<StrScratch>,
}

impl Deref for StrScratchLease {
    type Target = StrScratch;
    fn deref(&self) -> &StrScratch {
        self.inner.as_ref().expect("present until drop")
    }
}

impl DerefMut for StrScratchLease {
    fn deref_mut(&mut self) -> &mut StrScratch {
        self.inner.as_mut().expect("present until drop")
    }
}

impl Drop for StrScratchLease {
    fn drop(&mut self) {
        if let Some(mut scratch) = self.inner.take() {
            scratch.reset();
            STR_POOL
                .lock()
                .expect("scratch pool poisoned")
                .push(scratch);
        }
    }
}

/// Lease a Utf8 partition scratch with at least `fanout` buckets.
pub fn acquire_str(fanout: usize) -> StrScratchLease {
    let pooled = STR_POOL.lock().expect("scratch pool poisoned").pop();
    let reused = pooled.is_some();
    crate::obs::emit(crate::obs::EventKind::ScratchAcquire { reused });
    let mut scratch = match pooled {
        Some(s) => {
            REUSED.fetch_add(1, Ordering::Relaxed);
            s
        }
        None => {
            CREATED.fetch_add(1, Ordering::Relaxed);
            StrScratch::default()
        }
    };
    scratch.ensure_fanout(fanout);
    StrScratchLease {
        inner: Some(scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears_only_touched_buckets_and_keeps_capacity() {
        let mut s = PartitionScratch::default();
        s.ensure_fanout(16);
        s.push(3, 1, 10);
        s.push(3, 2, 20);
        s.push(7, 5, 50);
        assert_eq!(s.touched(), &[3, 7]);
        assert_eq!(s.bucket(3), (&[1, 2][..], &[10, 20][..]));
        assert_eq!(s.bucket(7), (&[5][..], &[50][..]));
        let cap_before = s.buckets[3].0.capacity();
        s.reset();
        assert!(s.touched().is_empty());
        assert!(s.bucket(3).0.is_empty());
        assert!(s.buckets[3].0.capacity() >= cap_before, "capacity retained");
        // Touch again after reset: tracking restarts cleanly.
        s.push(3, 9, 90);
        assert_eq!(s.touched(), &[3]);
        assert_eq!(s.bucket(3), (&[9][..], &[90][..]));
    }

    #[test]
    fn str_scratch_mirrors_int_semantics() {
        let mut s = StrScratch::default();
        s.ensure_fanout(4);
        s.push(1, "a", 1);
        s.push(1, "bb", 2);
        assert_eq!(s.touched(), &[1]);
        assert_eq!(s.bucket(1).len(), 2);
        assert_eq!(s.bucket(1).key(1), "bb");
        s.reset();
        assert!(s.bucket(1).is_empty());
    }

    #[test]
    fn pool_reuses_returned_arenas() {
        let before = scratch_stats();
        {
            let mut lease = acquire_partition(16);
            lease.push(0, 1, 1);
        } // drop: reset + return to pool
        {
            let lease = acquire_str(16);
            let _ = lease.bucket(0);
        }
        let first = scratch_stats();
        assert!(first.created + first.reused > before.created + before.reused);
        // Second acquisition must come from the pool (tests in this
        // process may race on the shared counters, so assert on reuse
        // growth, which returning arenas guarantees).
        {
            let lease = acquire_partition(16);
            assert!(lease.touched().is_empty(), "arena comes back reset");
        }
        let second = scratch_stats();
        assert!(second.reused > before.reused, "pooled arena was reused");
    }
}
