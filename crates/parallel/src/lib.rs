//! Morsel-driven parallel execution for the adaptive VM.
//!
//! The paper's engine (see [`adaptvm_vm`]) is chunk-at-a-time, which is
//! already morsel-shaped: columnar row ranges are natural work units. This
//! crate adds the missing intra-query parallelism in the style of HyPer's
//! morsel-driven parallelism (Leis et al., SIGMOD 2014):
//!
//! * [`budget`] — [`MemoryBudget`]: the byte-accounted, shareable memory
//!   budget out-of-core operators charge before materializing state (and
//!   spill against when the charge fails typed),
//! * [`morsel`] — [`Morsel`]/[`MorselPlan`]: fixed-size, order-indexed
//!   horizontal slices of tables/columns/selections,
//! * [`dispatch`] — [`Dispatcher`]: contiguous per-worker runs with
//!   back-of-queue work stealing (locality first, no idle workers under
//!   skew),
//! * [`join`] — [`build_then_probe`]: the generic two-phase join driver
//!   (partitioned build merged in morsel order, shared read-only probe),
//!   and its budget-aware sibling [`build_then_probe_spilling`] whose
//!   merge phase may spill partitions to disk and whose sequential settle
//!   phase resolves them afterwards,
//! * [`spillable`] — [`SpillableOp`]/[`run_spillable`]: the
//!   **operator-generic out-of-core driver** behind every budgeted
//!   operator (grace-hash joins with probe-side spill, out-of-core
//!   aggregation, external merge sort): morsel-parallel partitioning,
//!   a sequential charge phase that spills what the budget refuses, an
//!   optional consume phase, and a sequential settle phase resolving
//!   spilled runs ([`SpillStats`], with cancellation checked between
//!   spill runs via [`spillable::SpillCheckpoint`]),
//! * [`scratch`] — pooled partition scratch arenas with touched-only
//!   reset (steady-state serving re-partitions spilled runs without
//!   per-frame allocation),
//! * [`pool`] — [`run_morsels`]: scoped worker threads, results assembled
//!   in morsel order, first error aborts; [`Runner`] abstracts over the
//!   scoped pool and the long-lived scheduler,
//! * [`scheduler`] — [`Scheduler`]: a **long-lived** worker pool (threads
//!   created once, parked between queries) with a query submission queue,
//!   concurrent multi-query execution, per-query [`CancelToken`]s and
//!   deadlines checked at morsel boundaries, explicit shutdown with typed
//!   submission errors, one shared JIT cache + background
//!   [`adaptvm_jit::CompileServer`] across all queries, and profile-driven
//!   morsel-size elasticity,
//! * [`serve`] — [`serve::QueryService`]: the **admission-controlled
//!   serving layer** over a scheduler — bounded per-priority queues
//!   (Interactive/Normal/Batch) with typed backpressure, weighted-fair
//!   stride dispatch with aging (Batch never starves, Interactive wins
//!   under load), cancellation and deadlines for queued *and* running
//!   queries, graceful drain, per-priority latency/rejection telemetry —
//!   and **multi-tenancy** ([`serve::tenant`]): per-tenant quotas
//!   (weighted admission share, in-flight and queue-depth caps, shared
//!   [`MemoryBudget`]s), overload shedding (Batch before Normal before
//!   Interactive), elastic concurrency, and a plain-text metrics
//!   exposition ([`serve::telemetry::render_text`]),
//! * [`obs`] — [`Trace`]/[`QueryProfile`]: the opt-in query tracing
//!   subsystem — per-worker lock-free event rings recording typed spans
//!   (morsels, JIT decisions, spill I/O, budget traffic, admission),
//!   merged post-query in deterministic `(lane, seq)` order, exported as
//!   Chrome trace-event JSON or a text summary,
//! * [`exec`] — [`ParallelVm`]: one program instance per morsel, each on a
//!   private `Env`/interpreter, all sharing one JIT code cache (compile
//!   once, inject everywhere) and merging their profiles into one run
//!   profile; [`ParallelVm::on`] runs the same pipelines on a
//!   [`Scheduler`] instead of scoped threads.
//!
//! ## Determinism
//!
//! Parallel results are **independent of worker count and scheduling**:
//! a morsel's result depends only on its row range (workers share no
//! mutable query state), and every merge — output buffers, aggregate
//! partials, profiles — happens in morsel order. With chunk-aligned
//! morsels ([`MorselPlan::chunk_aligned`]) a parallel run reproduces the
//! *same chunk boundaries* as a sequential run, so even floating-point
//! accumulations are bit-identical to single-threaded execution; see
//! `adaptvm_relational::parallel` for the TPC-H pipelines built on this.
//!
//! ## What is shared, what is not
//!
//! Shared (thread-safe, `Arc`): the JIT [`adaptvm_jit::CodeCache`], the
//! [`adaptvm_jit::CompileServer`], the [`Dispatcher`]. Per-worker: the
//! `Env`, the interpreter, flavor policies, per-morsel buffers. The
//! profile is per-morsel during execution and merged afterwards —
//! contention-free profiling with a single combined signal for the
//! adaptive machinery.

pub mod budget;
pub mod dispatch;
pub mod exec;
pub mod join;
pub mod morsel;
pub mod obs;
pub mod pool;
pub mod scheduler;
pub mod scratch;
pub mod serve;
pub mod spillable;

pub use budget::{BudgetExceeded, BudgetLease, MemoryBudget};
pub use dispatch::{DispatchStats, Dispatcher};
pub use exec::{ParallelRunReport, ParallelVm, ScheduledVm};
pub use join::{
    build_then_probe, build_then_probe_on, build_then_probe_spilling, build_then_probe_with,
    BuildProbeStats,
};
pub use morsel::{Morsel, MorselPlan, DEFAULT_MORSEL_ROWS};
pub use obs::{ClockMode, EventKind, ProfileRollup, QueryProfile, Trace, TraceEvent};
pub use pool::{run_morsels, run_morsels_with, Runner};
pub use scheduler::{
    CancelReason, CancelToken, ElasticityConfig, MorselElasticity, ProfileWindow, QueryError,
    QueryHandle, QueryOutcomeKind, RunError, Scheduler, SchedulerStats, SubmitError, SubmitOptions,
};
pub use scratch::{
    acquire_partition, acquire_str, scratch_stats, PartitionScratch, PartitionScratchLease,
    ScratchStats, StrScratch, StrScratchLease,
};
pub use serve::{
    render_text, AdmissionError, DrainReport, GateError, Priority, PriorityStats, QueryService,
    ServeConfig, ServeHandle, ServiceStats, SubmitOpts, TenantId, TenantQuota, TenantRegistry,
    TenantStats,
};
pub use spillable::{run_spillable, SpillCheckpoint, SpillStats, SpillableOp};
