//! The operator-generic out-of-core driver: **[`SpillableOp`]**.
//!
//! PR 5 taught the join driver to spill; this module factors that
//! charge → spill → settle protocol out of the join so *any*
//! memory-hungry operator — grace-hash joins, out-of-core hash
//! aggregation, external merge sort — speaks one budget protocol and the
//! serve layer can hand any query shape a per-tenant [`MemoryBudget`].
//!
//! ## The protocol
//!
//! [`run_spillable`] drives an operator through four steps:
//!
//! 1. **Partition** (morsel-parallel) — [`SpillableOp::partition_morsel`]
//!    turns each input morsel into a private partition fragment; the
//!    fragments are handed over **in morsel order**.
//! 2. **Charge** (sequential) — [`SpillableOp::charge`] folds the
//!    fragments into the operator's shared state, charging the
//!    [`MemoryBudget`] for whatever it keeps resident and **spilling**
//!    what does not fit to run files ([`adaptvm_storage::spill`]),
//!    recording what happened in [`SpillStats`].
//! 3. **Consume** (morsel-parallel, optional) — when
//!    [`SpillableOp::consume_plan`] returns a plan, every morsel of a
//!    second input probes the shared state read-only
//!    ([`SpillableOp::consume_morsel`]); joins probe here, while
//!    aggregation and sort have no second input and skip the phase
//!    entirely (no admission round-trip, no barrier).
//! 4. **Settle** (sequential) — [`SpillableOp::settle`] takes the shared
//!    state **by value** (so it can drop resident structures and return
//!    their budget charges), resolves every spilled run — recursively
//!    re-partitioning what still does not fit — and folds everything
//!    into the final output. The [`SpillCheckpoint`] must be consulted
//!    between spill runs so cancellation and serve-layer deadlines keep
//!    binding through long out-of-core tails.
//!
//! ## Exactness
//!
//! The driver adds no nondeterminism of its own: partition fragments
//! arrive at `charge` in morsel order and consume outputs arrive at
//! `settle` in morsel order, exactly like the in-memory
//! [`crate::join::build_then_probe`] driver. An operator whose hooks are
//! deterministic functions of those ordered inputs is bit-identical to
//! its sequential oracle at any budget, worker count, and morsel size —
//! the invariant every implementation in `adaptvm_relational`
//! (`spill`, `sort`) is tested against.
//!
//! ## Error and budget safety
//!
//! The first error from any phase aborts the run; the shared state (and
//! any [`crate::budget::BudgetLease`]s it holds) is dropped on every
//! exit path, so an aborted query returns its whole charge.

use crate::budget::MemoryBudget;
use crate::dispatch::DispatchStats;
use crate::join::BuildProbeStats;
use crate::morsel::{Morsel, MorselPlan};
use crate::pool::Runner;
use crate::scheduler::{CancelReason, CancelToken, RunError};

/// What the out-of-core path of a budgeted operator did: how much
/// spilled, how much disk traffic it cost, and how deep the grace-hash
/// recursion went. All zero when everything fit in memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Partitions whose build/input rows went to disk instead of a
    /// resident structure (counting recursive sub-partitions; for the
    /// external sort, sorted runs written to disk).
    pub partitions_spilled: usize,
    /// Probe-side partitions whose deferred rows went to disk because
    /// even the row-index list did not fit the budget (joins only).
    pub probe_partitions_spilled: usize,
    /// Run files written.
    pub runs_written: usize,
    /// Bytes appended to run files.
    pub bytes_written: u64,
    /// Bytes read back from run files.
    pub bytes_read: u64,
    /// Deepest grace-hash recursion level reached (0 = no recursion:
    /// every spilled partition fit on its first rebuild).
    pub max_recursion_depth: usize,
    /// Partitions built despite a failing budget charge because they
    /// could not be split further (all rows share one hash) or the
    /// recursion bottomed out.
    pub forced_builds: usize,
}

impl SpillStats {
    /// True when any partition spilled (either side).
    pub fn spilled(&self) -> bool {
        self.partitions_spilled > 0 || self.probe_partitions_spilled > 0
    }
}

/// The cooperative interruption check a settle phase runs **between spill
/// runs**: out-of-core settling happens after the morsel-parallel phases,
/// so the per-morsel cancellation checks no longer fire — this is their
/// sequential counterpart, keeping serve-layer deadlines binding while an
/// operator grinds through spilled partitions.
#[derive(Debug, Clone, Copy)]
pub struct SpillCheckpoint<'a> {
    cancel: Option<&'a CancelToken>,
}

impl<'a> SpillCheckpoint<'a> {
    /// A checkpoint over an optional token (no token = never fires).
    pub fn new(cancel: Option<&'a CancelToken>) -> SpillCheckpoint<'a> {
        SpillCheckpoint { cancel }
    }

    /// Fail typed once the token fired.
    pub fn check<E>(&self) -> Result<(), RunError<E>> {
        match self.cancel.map(CancelToken::check) {
            Some(Err(CancelReason::Cancelled)) => Err(RunError::Cancelled),
            Some(Err(CancelReason::DeadlineExceeded)) => Err(RunError::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

/// One memory-governed operator under the charge → spill → settle
/// protocol; [`run_spillable`] is the only driver. See the module docs
/// for the phase contract each hook must uphold.
pub trait SpillableOp {
    /// A private per-morsel partition fragment (phase 1 output).
    type Partition: Send;
    /// The merged shared state probed read-only by phase 3; holds the
    /// RAII budget leases of everything resident.
    type Shared: Sync;
    /// One consume-morsel output (phase 3).
    type Out: Send;
    /// The settled final output (phase 4).
    type Settled;
    /// The operator's error type.
    type Error: Send;

    /// The morsel plan of the primary input (partitioned in phase 1).
    fn input_plan(&self) -> &MorselPlan;

    /// The morsel plan of the secondary input (probed in phase 3), or
    /// `None` when the operator has no consume phase (aggregation,
    /// sort) — the driver then skips phase 3 entirely.
    fn consume_plan(&self) -> Option<&MorselPlan> {
        None
    }

    /// Phase 1: turn one input morsel into a private partition fragment.
    fn partition_morsel(
        &self,
        worker: usize,
        morsel: &Morsel,
    ) -> Result<Self::Partition, Self::Error>;

    /// Phase 2: fold the fragments (in morsel order) into the shared
    /// state, charging `budget` for whatever stays resident and spilling
    /// the rest.
    fn charge(
        &mut self,
        partitions: Vec<Self::Partition>,
        budget: &MemoryBudget,
        stats: &mut SpillStats,
    ) -> Result<Self::Shared, Self::Error>;

    /// Phase 3: probe the shared state with one morsel of the secondary
    /// input. Only called when [`SpillableOp::consume_plan`] returns a
    /// plan; the default panics to catch drivers calling it anyway.
    fn consume_morsel(
        &self,
        _worker: usize,
        _morsel: &Morsel,
        _shared: &Self::Shared,
    ) -> Result<Self::Out, Self::Error> {
        unreachable!("operator declared no consume phase (consume_plan() == None)")
    }

    /// Phase 4: take the shared state by value, resolve every spilled
    /// run (consulting `checkpoint` between runs), and fold the consume
    /// outputs (in morsel order) into the final result.
    fn settle(
        &mut self,
        shared: Self::Shared,
        outs: Vec<Self::Out>,
        budget: &MemoryBudget,
        stats: &mut SpillStats,
        checkpoint: &SpillCheckpoint<'_>,
    ) -> Result<Self::Settled, RunError<Self::Error>>;
}

/// Drive one [`SpillableOp`] through partition → charge → consume →
/// settle on `runner`, with `cancel` checked at every morsel boundary of
/// the parallel phases and between spill runs of the settle phase.
///
/// Returns the settled output, the per-phase dispatch stats (the consume
/// phase reads all-zero when the operator has none), and the
/// [`SpillStats`].
pub fn run_spillable<Op>(
    op: &mut Op,
    runner: Runner<'_>,
    cancel: Option<&CancelToken>,
    budget: &MemoryBudget,
) -> Result<(Op::Settled, BuildProbeStats, SpillStats), RunError<Op::Error>>
where
    Op: SpillableOp + Sync,
{
    let mut spill = SpillStats::default();
    let input_morsels = op.input_plan().len();
    let (partitions, build) = {
        let op: &Op = op;
        runner.run_with(op.input_plan(), cancel, |w, m| op.partition_morsel(w, m))?
    };
    let shared = op
        .charge(partitions, budget, &mut spill)
        .map_err(RunError::Task)?;
    let (outs, probe, consume_morsels) = {
        let op: &Op = op;
        match op.consume_plan() {
            Some(plan) => {
                let (outs, stats) =
                    runner.run_with(plan, cancel, |w, m| op.consume_morsel(w, m, &shared))?;
                let n = plan.len();
                (outs, stats, n)
            }
            None => (Vec::new(), DispatchStats::default(), 0),
        }
    };
    let checkpoint = SpillCheckpoint::new(cancel);
    let settled = op.settle(shared, outs, budget, &mut spill, &checkpoint)?;
    Ok((
        settled,
        BuildProbeStats {
            build,
            probe,
            build_morsels: input_morsels,
            probe_morsels: consume_morsels,
        },
        spill,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy consume-less operator: sums its input, "spilling" (counting)
    /// every value the budget refuses.
    struct SumOp {
        data: Vec<i64>,
        plan: MorselPlan,
    }

    impl SpillableOp for SumOp {
        type Partition = i64;
        type Shared = (i64, usize);
        type Out = ();
        type Settled = (i64, usize);
        type Error = ();

        fn input_plan(&self) -> &MorselPlan {
            &self.plan
        }

        fn partition_morsel(&self, _w: usize, m: &Morsel) -> Result<i64, ()> {
            Ok(self.data[m.start..m.end()].iter().sum())
        }

        fn charge(
            &mut self,
            parts: Vec<i64>,
            budget: &MemoryBudget,
            stats: &mut SpillStats,
        ) -> Result<(i64, usize), ()> {
            let mut sum = 0;
            let mut refused = 0;
            for p in parts {
                if budget.try_charge(8).is_ok() {
                    sum += p;
                } else {
                    stats.partitions_spilled += 1;
                    refused += 1;
                    sum += p;
                }
            }
            Ok((sum, refused))
        }

        fn settle(
            &mut self,
            shared: (i64, usize),
            outs: Vec<()>,
            budget: &MemoryBudget,
            _stats: &mut SpillStats,
            checkpoint: &SpillCheckpoint<'_>,
        ) -> Result<(i64, usize), RunError<()>> {
            checkpoint.check()?;
            assert!(outs.is_empty(), "no consume phase was declared");
            budget.release(budget.used());
            Ok(shared)
        }
    }

    #[test]
    fn consume_less_op_skips_phase_three() {
        let budget = MemoryBudget::bytes(2 * 8);
        let data: Vec<i64> = (0..100).collect();
        let plan = MorselPlan::new(data.len(), 10);
        let mut op = SumOp { data, plan };
        let ((sum, refused), stats, spill) =
            run_spillable(&mut op, Runner::Scoped { workers: 4 }, None, &budget).unwrap();
        assert_eq!(sum, (0..100).sum::<i64>());
        assert_eq!(refused, 8, "10 morsels, 2 fit the budget");
        assert_eq!(spill.partitions_spilled, 8);
        assert!(spill.spilled());
        assert_eq!(stats.build_morsels, 10);
        assert_eq!(stats.probe_morsels, 0, "no consume phase");
        assert_eq!(stats.probe, DispatchStats::default());
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn pre_cancelled_run_fails_typed_before_charging() {
        let budget = MemoryBudget::bytes(1 << 20);
        let token = CancelToken::new();
        token.cancel();
        let mut op = SumOp {
            data: vec![1; 64],
            plan: MorselPlan::new(64, 8),
        };
        let r = run_spillable(
            &mut op,
            Runner::Scoped { workers: 2 },
            Some(&token),
            &budget,
        );
        assert!(matches!(r, Err(RunError::Cancelled)));
        assert_eq!(budget.used(), 0);
    }
}
