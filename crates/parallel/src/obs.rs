//! Unified query tracing: per-worker lock-free event sinks, merged
//! post-query into a [`QueryProfile`].
//!
//! The adaptive strategy lives on runtime feedback — which traces got
//! JIT-compiled, where deopts fired, what spilled, how long queries
//! queued — but that evidence is scattered across per-layer report
//! structs. This module records it as one stream of typed
//! [`TraceEvent`]s per query:
//!
//! * **Opt-in.** Nothing is recorded unless a [`Trace`] is attached to
//!   the query (via `ParallelOpts::trace` in `adaptvm_relational`, or
//!   [`SubmitOptions::with_trace`] / [`SubmitOpts::with_trace`] on the
//!   scheduler/serve layers). The disabled path is **one relaxed atomic
//!   load** per event site ([`emit`] checks a global count of live
//!   traces before touching anything else); the overhead is
//!   bench-asserted in `adaptvm-bench`'s `engine` bench.
//! * **Lock-free sinks.** Each trace owns up to [`MAX_WORKER_LANES`]
//!   worker lanes plus one control lane ([`CONTROL_LANE`]), each a
//!   bounded ring of events. Writers claim a slot with one
//!   `fetch_add`, fill it, and release-publish a ready flag; a full
//!   lane drops new events (counted, never blocking).
//! * **Deterministic merge.** [`Trace::profile`] merges all lanes in
//!   `(lane, seq)` order — each event's `seq` is its slot index, so the
//!   merged order is a pure function of what each lane recorded.
//! * **Determinism-preserving.** Recording never feeds back into
//!   execution: traced runs are bit-identical to untraced runs
//!   (regression-tested in `tests/obs_trace.rs`).
//!
//! Event *sites* in lower crates (`adaptvm_vm` JIT decisions,
//! `adaptvm_storage` spill frame I/O) cannot see this module, so they
//! expose tiny global hooks ([`adaptvm_vm::install_jit_hook`],
//! [`adaptvm_storage::spill::install_io_hook`]); creating the first
//! [`Trace`] installs closures that route those events through [`emit`],
//! which attributes them to the calling thread's current scope — threads
//! not executing a traced query drop them at the gate.
//!
//! ## Clocks and golden tests
//!
//! A trace records wall-clock timestamps by default. [`Trace::logical`]
//! switches to a **logical clock**: timestamps become per-lane sequence
//! numbers and measured durations are suppressed to zero, so a
//! single-worker run produces a byte-stable [Chrome trace-event
//! JSON](QueryProfile::chrome_trace) export — that is what the golden
//! test pins.
//!
//! [`SubmitOptions::with_trace`]: crate::scheduler::SubmitOptions::with_trace
//! [`SubmitOpts::with_trace`]: crate::serve::SubmitOpts::with_trace

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once, OnceLock};
use std::time::{Duration, Instant};

/// Worker lanes per trace; worker ids at or above this share the last
/// lane (determinism of the merge is unaffected — only attribution
/// coarsens).
pub const MAX_WORKER_LANES: usize = 64;

/// The control lane: admission/dispatch/completion events and everything
/// recorded outside a worker (coordinator phases, budget charges on the
/// calling thread).
pub const CONTROL_LANE: u16 = MAX_WORKER_LANES as u16;

const LANES: usize = MAX_WORKER_LANES + 1;

/// Events one lane can hold before dropping (drops are counted in the
/// profile, recording never blocks).
pub const LANE_CAPACITY: usize = 1 << 14;

/// How a trace stamps time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Nanoseconds since the trace was created.
    #[default]
    Wall,
    /// Per-lane sequence numbers; measured durations suppressed to zero.
    /// Byte-stable exports for golden tests (single-worker runs).
    Logical,
}

/// One typed span/event. `Copy` so the ring slots never allocate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A morsel executed (`dur_ns` is zero under a logical clock).
    Morsel {
        /// Morsel index in plan order.
        index: u32,
        /// Rows in the morsel.
        rows: u32,
        /// Stolen from another worker's queue.
        stolen: bool,
        /// Task wall time, nanoseconds.
        dur_ns: u64,
    },
    /// A fragment was injected from a shared code cache.
    JitCacheHit,
    /// A fragment compiled synchronously (modeled cost).
    JitCompile {
        /// Modeled compile cost, nanoseconds.
        cost_ns: u64,
    },
    /// A fragment was submitted to a background compile server.
    JitSubmit,
    /// A background compile landed and was injected.
    JitPublish {
        /// Modeled compile cost, nanoseconds.
        cost_ns: u64,
    },
    /// A fragment failed to build/compile/run: trace-fallback deopt.
    JitDeopt,
    /// An injected trace carries a native machine-code body.
    JitNativeInstall,
    /// A native execution guard-deopted; the chunk re-ran interpreted.
    JitNativeDeopt,
    /// One frame written to a spill run.
    SpillWrite {
        /// Operator label (`join-build`, `agg`, `sort`, …).
        op: &'static str,
        /// Partition / run index within the operator.
        partition: u16,
        /// Recursion level (0 = first spill).
        level: u16,
        /// Encoded frame bytes.
        bytes: u64,
        /// Rows in the frame.
        rows: u64,
    },
    /// One frame read back from a spill run.
    SpillRead {
        /// Operator label.
        op: &'static str,
        /// Partition / run index within the operator.
        partition: u16,
        /// Recursion level.
        level: u16,
        /// Encoded frame bytes.
        bytes: u64,
        /// Rows in the frame.
        rows: u64,
    },
    /// A memory-budget charge succeeded.
    BudgetCharge {
        /// Bytes charged.
        bytes: u64,
    },
    /// A memory-budget charge was refused (the operator will spill).
    BudgetRefused {
        /// Bytes requested.
        bytes: u64,
    },
    /// A memory-budget release.
    BudgetRelease {
        /// Bytes released.
        bytes: u64,
    },
    /// A pooled scratch arena was acquired.
    ScratchAcquire {
        /// Reused from the pool (vs freshly created).
        reused: bool,
    },
    /// The scheduler's morsel elasticity resized the preferred morsel
    /// length.
    MorselResize {
        /// Previous preferred chunks per morsel.
        from: u32,
        /// New preferred chunks per morsel.
        to: u32,
    },
    /// A query was submitted to the serving layer.
    Submitted {
        /// Priority-class name.
        priority: &'static str,
    },
    /// The query entered the admission queue.
    Admitted {
        /// Priority-class name.
        priority: &'static str,
    },
    /// The query was refused (queue full, tenant quota, shed, shutdown,
    /// admission timeout) or evicted while queued.
    Refused {
        /// Priority-class name.
        priority: &'static str,
        /// Refusal reason (`full`, `quota`, `shed`, `shutdown`,
        /// `timeout`, `cancelled`, `deadline`).
        reason: &'static str,
    },
    /// The dispatcher launched the query (`queue_wait_ns` is zero under
    /// a logical clock).
    Dispatched {
        /// Priority-class name.
        priority: &'static str,
        /// Stride-scheduler lane (priority index).
        stride_lane: u8,
        /// Admission → dispatch wait, nanoseconds.
        queue_wait_ns: u64,
    },
    /// The query reached a terminal outcome (`latency_ns` is zero under
    /// a logical clock).
    Completed {
        /// Outcome name (`completed`, `task_error`, `panicked`,
        /// `cancelled`, `deadline`).
        outcome: &'static str,
        /// Admission → completion latency, nanoseconds.
        latency_ns: u64,
    },
}

impl EventKind {
    /// Short stable name (Chrome export, summaries).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Morsel { .. } => "morsel",
            EventKind::JitCacheHit => "jit-cache-hit",
            EventKind::JitCompile { .. } => "jit-compile",
            EventKind::JitSubmit => "jit-submit",
            EventKind::JitPublish { .. } => "jit-publish",
            EventKind::JitDeopt => "jit-deopt",
            EventKind::JitNativeInstall => "jit-native-install",
            EventKind::JitNativeDeopt => "jit-native-deopt",
            EventKind::SpillWrite { .. } => "spill-write",
            EventKind::SpillRead { .. } => "spill-read",
            EventKind::BudgetCharge { .. } => "budget-charge",
            EventKind::BudgetRefused { .. } => "budget-refused",
            EventKind::BudgetRelease { .. } => "budget-release",
            EventKind::ScratchAcquire { .. } => "scratch-acquire",
            EventKind::MorselResize { .. } => "morsel-resize",
            EventKind::Submitted { .. } => "submitted",
            EventKind::Admitted { .. } => "admitted",
            EventKind::Refused { .. } => "refused",
            EventKind::Dispatched { .. } => "dispatched",
            EventKind::Completed { .. } => "completed",
        }
    }

    /// Chrome trace-event category.
    fn category(&self) -> &'static str {
        match self {
            EventKind::Morsel { .. } => "exec",
            EventKind::JitCacheHit
            | EventKind::JitCompile { .. }
            | EventKind::JitSubmit
            | EventKind::JitPublish { .. }
            | EventKind::JitDeopt
            | EventKind::JitNativeInstall
            | EventKind::JitNativeDeopt => "jit",
            EventKind::SpillWrite { .. } | EventKind::SpillRead { .. } => "spill",
            EventKind::BudgetCharge { .. }
            | EventKind::BudgetRefused { .. }
            | EventKind::BudgetRelease { .. } => "budget",
            EventKind::ScratchAcquire { .. } => "scratch",
            EventKind::MorselResize { .. } => "sched",
            EventKind::Submitted { .. }
            | EventKind::Admitted { .. }
            | EventKind::Refused { .. }
            | EventKind::Dispatched { .. }
            | EventKind::Completed { .. } => "serve",
        }
    }
}

/// One merged profile entry: where and when, plus the typed payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Worker lane (or [`CONTROL_LANE`]).
    pub lane: u16,
    /// Slot index within the lane — the per-lane sequence number.
    pub seq: u32,
    /// Timestamp: nanoseconds since trace start, or the sequence number
    /// under a logical clock.
    pub ts_ns: u64,
    /// Pipeline stage active at the event site (`"query"`, `"build"`,
    /// `"probe"`, …).
    pub stage: &'static str,
    /// The typed payload.
    pub kind: EventKind,
}

/// What a lane slot stores (lane and seq are implied by position).
#[derive(Clone, Copy)]
struct Rec {
    ts_ns: u64,
    stage: &'static str,
    kind: EventKind,
}

struct Slot {
    ready: AtomicBool,
    cell: UnsafeCell<MaybeUninit<Rec>>,
}

use std::cell::UnsafeCell;

/// One lane: a bounded lock-free multi-producer ring. Producers claim a
/// slot by `fetch_add`, write it, then release-publish `ready`; slots
/// past the capacity are dropped (counted). Reads ([`Ring::snapshot`])
/// only look at acquire-loaded ready slots, so they race with nothing.
struct Ring {
    next: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let slots = (0..capacity)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                cell: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots,
        }
    }

    fn push(&self, rec: Rec) {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[i];
        // Safety: `fetch_add` hands out each index exactly once, so this
        // thread is the only writer of `slot.cell`; readers wait for the
        // release-store of `ready`.
        unsafe { (*slot.cell.get()).write(rec) };
        slot.ready.store(true, Ordering::Release);
    }

    /// Non-destructive read of every published slot, in slot order.
    fn snapshot(&self) -> (Vec<(u32, Rec)>, u64) {
        let n = self.next.load(Ordering::Acquire).min(self.slots.len());
        let mut out = Vec::with_capacity(n);
        for (i, slot) in self.slots.iter().take(n).enumerate() {
            if slot.ready.load(Ordering::Acquire) {
                // Safety: `ready` was release-stored after the write.
                let rec = unsafe { (*slot.cell.get()).assume_init_read() };
                out.push((i as u32, rec));
            }
        }
        (out, self.dropped.load(Ordering::Relaxed))
    }
}

/// Live traces in the process: the [`emit`] gate. Zero ⇒ every event
/// site is one relaxed load and a branch.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide morsel-elasticity resize counters (always on; feed the
/// metrics-v2 `engine_morsel_{grow,shrink}_total` families).
static MORSEL_GROW: AtomicU64 = AtomicU64::new(0);
static MORSEL_SHRINK: AtomicU64 = AtomicU64::new(0);

/// `(grow, shrink)` morsel-elasticity resize totals since process start.
pub fn morsel_resize_counters() -> (u64, u64) {
    (
        MORSEL_GROW.load(Ordering::Relaxed),
        MORSEL_SHRINK.load(Ordering::Relaxed),
    )
}

/// Record a morsel-elasticity resize: bumps the process-wide counters
/// and emits [`EventKind::MorselResize`] into the current scope, if any.
pub fn morsel_resized(from: usize, to: usize) {
    if to > from {
        MORSEL_GROW.fetch_add(1, Ordering::Relaxed);
    } else {
        MORSEL_SHRINK.fetch_add(1, Ordering::Relaxed);
    }
    emit(EventKind::MorselResize {
        from: from as u32,
        to: to as u32,
    });
}

struct TraceShared {
    start: Instant,
    clock: ClockMode,
    lanes: [OnceLock<Ring>; LANES],
}

impl Drop for TraceShared {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A handle to one query's event sinks. Cheap to clone (an `Arc`);
/// attach it to a query via `ParallelOpts::trace`,
/// [`SubmitOptions::with_trace`], or [`SubmitOpts::with_trace`], then
/// read the merged result with [`Trace::profile`].
///
/// [`SubmitOptions::with_trace`]: crate::scheduler::SubmitOptions::with_trace
/// [`SubmitOpts::with_trace`]: crate::serve::SubmitOpts::with_trace
#[derive(Clone)]
pub struct Trace(Arc<TraceShared>);

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("clock", &self.0.clock)
            .finish()
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new()
    }
}

impl Trace {
    /// A wall-clock trace.
    pub fn new() -> Trace {
        Trace::with_clock(ClockMode::Wall)
    }

    /// A logical-clock trace (byte-stable exports; see the module docs).
    pub fn logical() -> Trace {
        Trace::with_clock(ClockMode::Logical)
    }

    /// A trace with an explicit clock mode.
    pub fn with_clock(clock: ClockMode) -> Trace {
        install_hooks();
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        Trace(Arc::new(TraceShared {
            start: Instant::now(),
            clock,
            lanes: std::array::from_fn(|_| OnceLock::new()),
        }))
    }

    /// The clock mode.
    pub fn clock(&self) -> ClockMode {
        self.0.clock
    }

    /// Convert a measured duration for a payload field: identity on a
    /// wall clock, zero on a logical clock.
    pub fn dur_ns(&self, d: Duration) -> u64 {
        match self.0.clock {
            ClockMode::Wall => d.as_nanos() as u64,
            ClockMode::Logical => 0,
        }
    }

    fn now_ns(&self) -> u64 {
        match self.0.clock {
            // Logical timestamps are assigned at merge time (the slot
            // index); record zero here.
            ClockMode::Logical => 0,
            ClockMode::Wall => self.0.start.elapsed().as_nanos() as u64,
        }
    }

    /// Record an event directly into `lane` (serving-layer control
    /// events use this — no thread-local scope required).
    pub fn record(&self, lane: u16, stage: &'static str, kind: EventKind) {
        let lane = (lane as usize).min(LANES - 1);
        let ring = self.0.lanes[lane].get_or_init(|| Ring::new(LANE_CAPACITY));
        ring.push(Rec {
            ts_ns: self.now_ns(),
            stage,
            kind,
        });
    }

    /// Enter this trace on the current thread (control lane, stage
    /// `"query"`): ambient [`emit`] calls attribute here until the guard
    /// drops.
    pub fn enter(&self) -> ScopeGuard {
        self.enter_lane(CONTROL_LANE, "query")
    }

    /// [`Trace::enter`] with an explicit stage label.
    pub fn enter_stage(&self, stage: &'static str) -> ScopeGuard {
        self.enter_lane(CONTROL_LANE, stage)
    }

    /// Enter this trace on the current thread with an explicit lane
    /// (workers use their worker id).
    pub fn enter_lane(&self, lane: u16, stage: &'static str) -> ScopeGuard {
        let pushed = SCOPES
            .try_with(|s| {
                s.borrow_mut().push(Scope {
                    trace: self.clone(),
                    lane,
                    stage,
                });
            })
            .is_ok();
        ScopeGuard { pushed }
    }

    /// Merge every lane's events in `(lane, seq)` order.
    pub fn profile(&self) -> QueryProfile {
        let mut events = Vec::new();
        let mut dropped = 0;
        for (lane, cell) in self.0.lanes.iter().enumerate() {
            let Some(ring) = cell.get() else { continue };
            let (recs, d) = ring.snapshot();
            dropped += d;
            for (seq, rec) in recs {
                let ts_ns = match self.0.clock {
                    ClockMode::Logical => u64::from(seq),
                    ClockMode::Wall => rec.ts_ns,
                };
                events.push(TraceEvent {
                    lane: lane as u16,
                    seq,
                    ts_ns,
                    stage: rec.stage,
                    kind: rec.kind,
                });
            }
        }
        QueryProfile { events, dropped }
    }
}

/// The thread's scope stack: which trace/lane/stage ambient events
/// attribute to.
struct Scope {
    trace: Trace,
    lane: u16,
    stage: &'static str,
}

thread_local! {
    static SCOPES: RefCell<Vec<Scope>> = const { RefCell::new(Vec::new()) };
    static SPILL_CTX: Cell<SpillCtx> = const {
        Cell::new(SpillCtx { op: "spill", partition: 0, level: 0 })
    };
}

/// RAII guard for an entered scope (see [`Trace::enter_lane`]).
#[must_use = "the scope ends when the guard drops"]
pub struct ScopeGuard {
    pushed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.pushed {
            let _ = SCOPES.try_with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Re-enter the innermost scope under a new stage label (no-op without
/// one). Coordinators bracket pipeline phases with this, so worker-side
/// events inherit the right strategy/stage name.
pub fn stage(stage: &'static str) -> ScopeGuard {
    let pushed = SCOPES
        .try_with(|s| {
            let mut s = s.borrow_mut();
            match s.last() {
                Some(top) => {
                    let scope = Scope {
                        trace: top.trace.clone(),
                        lane: top.lane,
                        stage,
                    };
                    s.push(scope);
                    true
                }
                None => false,
            }
        })
        .unwrap_or(false);
    ScopeGuard { pushed }
}

/// The innermost trace entered on this thread, if any.
pub fn current() -> Option<Trace> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SCOPES
        .try_with(|s| s.borrow().last().map(|sc| sc.trace.clone()))
        .ok()
        .flatten()
}

/// The innermost `(trace, stage)` on this thread — executors capture
/// this before fanning out to workers.
pub(crate) fn current_scope() -> Option<(Trace, &'static str)> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SCOPES
        .try_with(|s| s.borrow().last().map(|sc| (sc.trace.clone(), sc.stage)))
        .ok()
        .flatten()
}

/// Record `kind` into the current thread's scope. **The** event site:
/// with no live trace anywhere this is one relaxed load and a branch;
/// with live traces but none on this thread, one thread-local read more.
#[inline]
pub fn emit(kind: EventKind) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    emit_slow(kind);
}

#[cold]
fn emit_slow(kind: EventKind) {
    let _ = SCOPES.try_with(|s| {
        if let Some(scope) = s.borrow().last() {
            scope.trace.record(scope.lane, scope.stage, kind);
        }
    });
}

/// Spill-site attribution: which operator/partition/level the frames
/// the storage layer is about to move belong to.
#[derive(Debug, Clone, Copy)]
struct SpillCtx {
    op: &'static str,
    partition: u16,
    level: u16,
}

/// RAII guard labelling spill I/O (see [`spill_scope`]).
#[must_use = "the spill label ends when the guard drops"]
pub struct SpillScopeGuard {
    prev: SpillCtx,
}

impl Drop for SpillScopeGuard {
    fn drop(&mut self) {
        let _ = SPILL_CTX.try_with(|c| c.set(self.prev));
    }
}

/// Label subsequent spill frame I/O on this thread with an operator
/// name, partition, and recursion level. The out-of-core operators
/// bracket their run writes/reads with this so storage-layer events
/// carry operator attribution.
pub fn spill_scope(op: &'static str, partition: u16, level: u16) -> SpillScopeGuard {
    let ctx = SpillCtx {
        op,
        partition,
        level,
    };
    let prev = SPILL_CTX.try_with(|c| c.replace(ctx)).unwrap_or(SpillCtx {
        op: "spill",
        partition: 0,
        level: 0,
    });
    SpillScopeGuard { prev }
}

/// Install the cross-crate hooks (idempotent; first [`Trace`] wins the
/// race). Events from untraced threads stop at [`emit`]'s gate.
fn install_hooks() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        adaptvm_vm::install_jit_hook(Box::new(|ev| {
            emit(match ev {
                adaptvm_vm::JitEvent::CacheHit => EventKind::JitCacheHit,
                adaptvm_vm::JitEvent::Compile { cost_ns } => EventKind::JitCompile { cost_ns },
                adaptvm_vm::JitEvent::AsyncSubmit => EventKind::JitSubmit,
                adaptvm_vm::JitEvent::Publish { cost_ns } => EventKind::JitPublish { cost_ns },
                adaptvm_vm::JitEvent::Deopt => EventKind::JitDeopt,
                adaptvm_vm::JitEvent::NativeInstall => EventKind::JitNativeInstall,
                adaptvm_vm::JitEvent::NativeDeopt => EventKind::JitNativeDeopt,
            })
        }));
        adaptvm_storage::spill::install_io_hook(Box::new(|ev| {
            if ACTIVE.load(Ordering::Relaxed) == 0 {
                return;
            }
            let ctx = SPILL_CTX.try_with(Cell::get).unwrap_or(SpillCtx {
                op: "spill",
                partition: 0,
                level: 0,
            });
            emit(if ev.write {
                EventKind::SpillWrite {
                    op: ctx.op,
                    partition: ctx.partition,
                    level: ctx.level,
                    bytes: ev.bytes,
                    rows: ev.rows,
                }
            } else {
                EventKind::SpillRead {
                    op: ctx.op,
                    partition: ctx.partition,
                    level: ctx.level,
                    bytes: ev.bytes,
                    rows: ev.rows,
                }
            })
        }));
    });
}

// ---------------------------------------------------------------------------
// The merged profile and its exports
// ---------------------------------------------------------------------------

/// One query's merged event stream, in deterministic `(lane, seq)`
/// order.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// All recorded events.
    pub events: Vec<TraceEvent>,
    /// Events dropped because a lane overflowed.
    pub dropped: u64,
}

/// Single-pass aggregate of a [`QueryProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfileRollup {
    /// Morsels executed.
    pub morsels: u64,
    /// Morsels executed after being stolen.
    pub stolen: u64,
    /// Rows across all morsels.
    pub rows: u64,
    /// Total morsel task time, nanoseconds.
    pub morsel_ns: u64,
    /// Synchronous + published compiles.
    pub jit_compiles: u64,
    /// Code-cache hits.
    pub jit_cache_hits: u64,
    /// Background compile submissions.
    pub jit_submits: u64,
    /// Trace-fallback deopts.
    pub jit_deopts: u64,
    /// Traces injected with a native machine-code body.
    pub jit_native_installs: u64,
    /// Native guard deopts (chunk re-run on the interpreted tier).
    pub jit_native_deopts: u64,
    /// Total modeled compile cost, nanoseconds.
    pub compile_ns: u64,
    /// Spill frames written.
    pub spill_writes: u64,
    /// Spill frames read.
    pub spill_reads: u64,
    /// Spill bytes written.
    pub spill_bytes_written: u64,
    /// Spill bytes read.
    pub spill_bytes_read: u64,
    /// Budget charges granted.
    pub budget_charges: u64,
    /// Budget charges refused.
    pub budget_refusals: u64,
    /// Bytes granted across all charges.
    pub budget_bytes: u64,
    /// Scratch arenas acquired fresh.
    pub scratch_created: u64,
    /// Scratch arenas reused from the pool.
    pub scratch_reused: u64,
    /// Morsel-elasticity resizes.
    pub resizes: u64,
    /// Serve-layer submissions.
    pub submitted: u64,
    /// Serve-layer admissions.
    pub admitted: u64,
    /// Serve-layer refusals.
    pub refused: u64,
    /// Serve-layer dispatches.
    pub dispatched: u64,
    /// Terminal outcomes.
    pub completed: u64,
    /// Total admission → dispatch wait, nanoseconds.
    pub queue_wait_ns: u64,
    /// Total admission → completion latency, nanoseconds.
    pub latency_ns: u64,
}

impl QueryProfile {
    /// Aggregate every event into one [`ProfileRollup`].
    pub fn rollup(&self) -> ProfileRollup {
        let mut r = ProfileRollup::default();
        for e in &self.events {
            match e.kind {
                EventKind::Morsel {
                    rows,
                    stolen,
                    dur_ns,
                    ..
                } => {
                    r.morsels += 1;
                    r.stolen += u64::from(stolen);
                    r.rows += u64::from(rows);
                    r.morsel_ns += dur_ns;
                }
                EventKind::JitCacheHit => r.jit_cache_hits += 1,
                EventKind::JitCompile { cost_ns } => {
                    r.jit_compiles += 1;
                    r.compile_ns += cost_ns;
                }
                EventKind::JitSubmit => r.jit_submits += 1,
                EventKind::JitPublish { cost_ns } => {
                    r.jit_compiles += 1;
                    r.compile_ns += cost_ns;
                }
                EventKind::JitDeopt => r.jit_deopts += 1,
                EventKind::JitNativeInstall => r.jit_native_installs += 1,
                EventKind::JitNativeDeopt => r.jit_native_deopts += 1,
                EventKind::SpillWrite { bytes, .. } => {
                    r.spill_writes += 1;
                    r.spill_bytes_written += bytes;
                }
                EventKind::SpillRead { bytes, .. } => {
                    r.spill_reads += 1;
                    r.spill_bytes_read += bytes;
                }
                EventKind::BudgetCharge { bytes } => {
                    r.budget_charges += 1;
                    r.budget_bytes += bytes;
                }
                EventKind::BudgetRefused { .. } => r.budget_refusals += 1,
                EventKind::BudgetRelease { .. } => {}
                EventKind::ScratchAcquire { reused } => {
                    if reused {
                        r.scratch_reused += 1;
                    } else {
                        r.scratch_created += 1;
                    }
                }
                EventKind::MorselResize { .. } => r.resizes += 1,
                EventKind::Submitted { .. } => r.submitted += 1,
                EventKind::Admitted { .. } => r.admitted += 1,
                EventKind::Refused { .. } => r.refused += 1,
                EventKind::Dispatched { queue_wait_ns, .. } => {
                    r.dispatched += 1;
                    r.queue_wait_ns += queue_wait_ns;
                }
                EventKind::Completed { latency_ns, .. } => {
                    r.completed += 1;
                    r.latency_ns += latency_ns;
                }
            }
        }
        r
    }

    /// `true` if any event matches `pred`.
    pub fn any(&self, pred: impl Fn(&EventKind) -> bool) -> bool {
        self.events.iter().any(|e| pred(&e.kind))
    }

    /// Chrome trace-event JSON (load in `chrome://tracing` or Perfetto):
    /// morsels as complete (`"X"`) spans, everything else as instant
    /// (`"i"`) events; `tid` is the lane, timestamps in microseconds.
    /// Deterministic for a given profile — under a logical clock the
    /// whole export is byte-stable and golden-testable.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 160);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph = match e.kind {
                EventKind::Morsel { .. } => "X",
                _ => "i",
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\
                 \"ts\":{}",
                e.kind.name(),
                e.kind.category(),
                e.lane,
                format_us(e.ts_ns),
            );
            if let EventKind::Morsel { dur_ns, .. } = e.kind {
                let _ = write!(out, ",\"dur\":{}", format_us(dur_ns));
            }
            if ph == "i" {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":{");
            let _ = write!(out, "\"stage\":\"{}\"", escape_json(e.stage));
            write_args(&mut out, &e.kind);
            out.push_str("}}");
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped
        );
        out
    }

    /// A human-readable profile summary: totals, per-family rollups, and
    /// the longest morsels.
    pub fn summary(&self) -> String {
        let r = self.rollup();
        let lanes: std::collections::BTreeSet<u16> = self.events.iter().map(|e| e.lane).collect();
        let wall_ns = self.events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query profile: {} events ({} dropped) on {} lanes, span {:.3} ms",
            self.events.len(),
            self.dropped,
            lanes.len(),
            wall_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "  morsels: {} ({} stolen), {} rows, {:.3} ms task time",
            r.morsels,
            r.stolen,
            r.rows,
            r.morsel_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "  jit: {} compiles ({:.3} ms modeled), {} cache hits, {} submits, {} deopts, \
             {} native installs, {} native deopts",
            r.jit_compiles,
            r.compile_ns as f64 / 1e6,
            r.jit_cache_hits,
            r.jit_submits,
            r.jit_deopts,
            r.jit_native_installs,
            r.jit_native_deopts
        );
        let _ = writeln!(
            out,
            "  spill: {} writes / {} reads, {} B out, {} B in",
            r.spill_writes, r.spill_reads, r.spill_bytes_written, r.spill_bytes_read
        );
        let _ = writeln!(
            out,
            "  budget: {} charges ({} B), {} refusals; scratch: {} created, {} reused",
            r.budget_charges,
            r.budget_bytes,
            r.budget_refusals,
            r.scratch_created,
            r.scratch_reused
        );
        let _ = writeln!(
            out,
            "  serve: {} submitted, {} admitted, {} refused, {} dispatched, {} completed; \
             queue wait {:.3} ms, latency {:.3} ms",
            r.submitted,
            r.admitted,
            r.refused,
            r.dispatched,
            r.completed,
            r.queue_wait_ns as f64 / 1e6,
            r.latency_ns as f64 / 1e6
        );
        let mut top: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Morsel { .. }))
            .collect();
        top.sort_by_key(|e| match e.kind {
            EventKind::Morsel { dur_ns, .. } => std::cmp::Reverse(dur_ns),
            _ => std::cmp::Reverse(0),
        });
        for e in top.iter().take(5) {
            if let EventKind::Morsel {
                index,
                rows,
                stolen,
                dur_ns,
            } = e.kind
            {
                let _ = writeln!(
                    out,
                    "  top morsel: lane {} #{index} [{}] {rows} rows {:.3} ms{}",
                    e.lane,
                    e.stage,
                    dur_ns as f64 / 1e6,
                    if stolen { " (stolen)" } else { "" }
                );
            }
        }
        out
    }

    /// The canonical **deterministic fingerprint**: one line per event
    /// whose fields are a pure function of the query (morsel index/rows,
    /// spill frames, budget traffic, admission outcomes), sorted —
    /// identical across repeated runs, worker counts, and clock modes.
    /// Timing-dependent fields (worker attribution, steal flags,
    /// queue waits, async-JIT interleavings, cross-query scratch reuse)
    /// are masked.
    pub fn fingerprint(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::Morsel { index, rows, .. } => {
                    lines.push(format!("morsel {} {index} {rows}", e.stage))
                }
                EventKind::SpillWrite {
                    op,
                    partition,
                    level,
                    bytes,
                    rows,
                } => lines.push(format!(
                    "spill-write {op} {partition} {level} {bytes} {rows}"
                )),
                EventKind::SpillRead {
                    op,
                    partition,
                    level,
                    bytes,
                    rows,
                } => lines.push(format!(
                    "spill-read {op} {partition} {level} {bytes} {rows}"
                )),
                EventKind::BudgetCharge { bytes } => lines.push(format!("budget-charge {bytes}")),
                EventKind::BudgetRefused { bytes } => lines.push(format!("budget-refused {bytes}")),
                EventKind::BudgetRelease { bytes } => lines.push(format!("budget-release {bytes}")),
                EventKind::Submitted { priority } => lines.push(format!("submitted {priority}")),
                EventKind::Admitted { priority } => lines.push(format!("admitted {priority}")),
                EventKind::Refused { priority, reason } => {
                    lines.push(format!("refused {priority} {reason}"))
                }
                EventKind::Completed { outcome, .. } => lines.push(format!("completed {outcome}")),
                // Masked: timing-dependent or cross-query state (native
                // install/deopt additionally depends on the host arch).
                EventKind::JitCacheHit
                | EventKind::JitCompile { .. }
                | EventKind::JitSubmit
                | EventKind::JitPublish { .. }
                | EventKind::JitDeopt
                | EventKind::JitNativeInstall
                | EventKind::JitNativeDeopt
                | EventKind::ScratchAcquire { .. }
                | EventKind::MorselResize { .. }
                | EventKind::Dispatched { .. } => {}
            }
        }
        lines.sort_unstable();
        lines
    }
}

/// Nanoseconds → microseconds with fixed 3-decimal formatting (stable
/// across platforms; Chrome's `ts`/`dur` unit).
fn format_us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    format!("{whole}.{frac:03}")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Append the kind-specific `"args"` fields (leading comma included).
fn write_args(out: &mut String, kind: &EventKind) {
    match *kind {
        EventKind::Morsel {
            index,
            rows,
            stolen,
            ..
        } => {
            let _ = write!(
                out,
                ",\"index\":{index},\"rows\":{rows},\"stolen\":{stolen}"
            );
        }
        EventKind::JitCompile { cost_ns } | EventKind::JitPublish { cost_ns } => {
            let _ = write!(out, ",\"cost_ns\":{cost_ns}");
        }
        EventKind::JitCacheHit
        | EventKind::JitSubmit
        | EventKind::JitDeopt
        | EventKind::JitNativeInstall
        | EventKind::JitNativeDeopt => {}
        EventKind::SpillWrite {
            op,
            partition,
            level,
            bytes,
            rows,
        }
        | EventKind::SpillRead {
            op,
            partition,
            level,
            bytes,
            rows,
        } => {
            let _ = write!(
                out,
                ",\"op\":\"{}\",\"partition\":{partition},\"level\":{level},\
                 \"bytes\":{bytes},\"rows\":{rows}",
                escape_json(op)
            );
        }
        EventKind::BudgetCharge { bytes }
        | EventKind::BudgetRefused { bytes }
        | EventKind::BudgetRelease { bytes } => {
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        EventKind::ScratchAcquire { reused } => {
            let _ = write!(out, ",\"reused\":{reused}");
        }
        EventKind::MorselResize { from, to } => {
            let _ = write!(out, ",\"from\":{from},\"to\":{to}");
        }
        EventKind::Submitted { priority } | EventKind::Admitted { priority } => {
            let _ = write!(out, ",\"priority\":\"{}\"", escape_json(priority));
        }
        EventKind::Refused { priority, reason } => {
            let _ = write!(
                out,
                ",\"priority\":\"{}\",\"reason\":\"{}\"",
                escape_json(priority),
                escape_json(reason)
            );
        }
        EventKind::Dispatched {
            priority,
            stride_lane,
            queue_wait_ns,
        } => {
            let _ = write!(
                out,
                ",\"priority\":\"{}\",\"stride_lane\":{stride_lane},\"queue_wait_ns\":{queue_wait_ns}",
                escape_json(priority)
            );
        }
        EventKind::Completed {
            outcome,
            latency_ns,
        } => {
            let _ = write!(
                out,
                ",\"outcome\":\"{}\",\"latency_ns\":{latency_ns}",
                escape_json(outcome)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untraced_emit_is_a_noop() {
        // No scope on this thread: emit must not panic or record.
        emit(EventKind::JitCacheHit);
    }

    #[test]
    fn scoped_events_merge_in_lane_seq_order() {
        let trace = Trace::new();
        {
            let _g = trace.enter();
            emit(EventKind::BudgetCharge { bytes: 10 });
            emit(EventKind::BudgetRelease { bytes: 10 });
        }
        trace.record(3, "probe", EventKind::JitCacheHit);
        let p = trace.profile();
        assert_eq!(p.events.len(), 3);
        // Lane 3 sorts before the control lane.
        assert_eq!(p.events[0].lane, 3);
        assert_eq!(p.events[1].lane, CONTROL_LANE);
        assert_eq!(p.events[1].seq, 0);
        assert_eq!(p.events[2].seq, 1);
        assert_eq!(p.events[1].stage, "query");
        let r = p.rollup();
        assert_eq!(r.budget_charges, 1);
        assert_eq!(r.jit_cache_hits, 1);
    }

    #[test]
    fn nested_stage_scopes_restore() {
        let trace = Trace::new();
        let _g = trace.enter();
        {
            let _s = stage("build");
            emit(EventKind::JitSubmit);
        }
        emit(EventKind::JitDeopt);
        let p = trace.profile();
        assert_eq!(p.events[0].stage, "build");
        assert_eq!(p.events[1].stage, "query");
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let ring = Ring::new(4);
        for i in 0..10 {
            ring.push(Rec {
                ts_ns: i,
                stage: "t",
                kind: EventKind::JitCacheHit,
            });
        }
        let (recs, dropped) = ring.snapshot();
        assert_eq!(recs.len(), 4);
        assert_eq!(dropped, 6);
    }

    #[test]
    fn concurrent_pushes_keep_every_event_once() {
        let ring = std::sync::Arc::new(Ring::new(LANE_CAPACITY));
        std::thread::scope(|s| {
            for t in 0..4 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100 {
                        ring.push(Rec {
                            ts_ns: t * 1000 + i,
                            stage: "t",
                            kind: EventKind::BudgetCharge { bytes: i },
                        });
                    }
                });
            }
        });
        let (recs, dropped) = ring.snapshot();
        assert_eq!(recs.len(), 400);
        assert_eq!(dropped, 0);
        // Slot indices are unique and dense.
        let seqs: std::collections::BTreeSet<u32> = recs.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs.len(), 400);
    }

    #[test]
    fn logical_clock_makes_ts_the_seq() {
        let trace = Trace::logical();
        trace.record(0, "q", EventKind::JitCacheHit);
        trace.record(0, "q", EventKind::JitDeopt);
        let p = trace.profile();
        assert_eq!(p.events[0].ts_ns, 0);
        assert_eq!(p.events[1].ts_ns, 1);
        assert_eq!(
            trace.dur_ns(Duration::from_millis(5)),
            0,
            "logical clocks suppress measured durations"
        );
    }

    #[test]
    fn chrome_trace_shape() {
        let trace = Trace::logical();
        trace.record(
            0,
            "q",
            EventKind::Morsel {
                index: 0,
                rows: 1024,
                stolen: false,
                dur_ns: 0,
            },
        );
        trace.record(
            CONTROL_LANE,
            "q",
            EventKind::Completed {
                outcome: "completed",
                latency_ns: 0,
            },
        );
        let json = trace.profile().chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"rows\":1024"));
        assert!(json.contains("\"outcome\":\"completed\""));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn fingerprint_masks_timing_and_sorts() {
        let trace = Trace::new();
        trace.record(
            2,
            "probe",
            EventKind::Morsel {
                index: 7,
                rows: 100,
                stolen: true,
                dur_ns: 12345,
            },
        );
        trace.record(0, "probe", EventKind::JitCacheHit);
        trace.record(
            CONTROL_LANE,
            "q",
            EventKind::Dispatched {
                priority: "normal",
                stride_lane: 1,
                queue_wait_ns: 55,
            },
        );
        let fp = trace.profile().fingerprint();
        assert_eq!(fp, vec!["morsel probe 7 100".to_string()]);
    }

    #[test]
    fn format_us_is_fixed_point() {
        assert_eq!(format_us(0), "0.000");
        assert_eq!(format_us(1_500), "1.500");
        assert_eq!(format_us(999), "0.999");
        assert_eq!(format_us(2_000_001), "2000.001");
    }
}
