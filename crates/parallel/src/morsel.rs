//! Morsels: fixed-size horizontal work units over columnar data.
//!
//! A [`Morsel`] is a row range `[start, start+len)` of some table or
//! column set, tagged with its position in the global order. Morsels are
//! the unit of scheduling (HyPer's morsel-driven parallelism): small
//! enough that workers finishing early can steal meaningful work, large
//! enough that per-morsel dispatch overhead vanishes. Because each morsel
//! records its `index`, results can always be merged **in morsel order**,
//! which is what makes parallel runs deterministic: the merge tree does
//! not depend on worker count or scheduling.

use adaptvm_storage::array::Array;
use adaptvm_storage::schema::Table;
use adaptvm_storage::sel::SelVec;
use adaptvm_storage::DEFAULT_CHUNK;

/// Default morsel size: 16 vectorized chunks. Big enough to amortize
/// per-morsel setup (an `Env`, buffer slices), small enough that 8 workers
/// see >100 morsels on a 20M-row table.
pub const DEFAULT_MORSEL_ROWS: usize = 16 * DEFAULT_CHUNK;

/// One unit of parallel work: rows `[start, start+len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Position in the global morsel order (merge key).
    pub index: usize,
    /// First row of the range.
    pub start: usize,
    /// Number of rows.
    pub len: usize,
}

impl Morsel {
    /// One past the last row.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Slice a table to this morsel's rows.
    pub fn slice_table(&self, table: &Table) -> Table {
        table.slice(self.start, self.len)
    }

    /// Slice a column to this morsel's rows.
    pub fn slice_array(&self, array: &Array) -> Array {
        array.slice(self.start, self.len)
    }

    /// Restrict a selection vector to this morsel (indices rebased).
    pub fn slice_sel(&self, sel: &SelVec) -> SelVec {
        sel.slice_domain(self.start, self.len)
    }
}

/// The morsel decomposition of a row range.
#[derive(Debug, Clone)]
pub struct MorselPlan {
    morsels: Vec<Morsel>,
    total_rows: usize,
    morsel_rows: usize,
}

impl MorselPlan {
    /// Slice `total_rows` into morsels of `morsel_rows` (the last may be
    /// short). `morsel_rows = 0` is clamped to 1.
    pub fn new(total_rows: usize, morsel_rows: usize) -> MorselPlan {
        let morsel_rows = morsel_rows.max(1);
        let mut morsels = Vec::with_capacity(total_rows.div_ceil(morsel_rows));
        let mut start = 0;
        let mut index = 0;
        while start < total_rows {
            let len = morsel_rows.min(total_rows - start);
            morsels.push(Morsel { index, start, len });
            start += len;
            index += 1;
        }
        MorselPlan {
            morsels,
            total_rows,
            morsel_rows,
        }
    }

    /// Like [`MorselPlan::new`], but with `morsel_rows` rounded up to a
    /// multiple of `chunk_rows`. Chunk-aligned morsels make a parallel
    /// chunk-at-a-time run see exactly the chunk boundaries a sequential
    /// run sees, which is what keeps floating-point accumulation
    /// bit-identical between the two (same partial sums, merged in order).
    pub fn chunk_aligned(total_rows: usize, morsel_rows: usize, chunk_rows: usize) -> MorselPlan {
        let chunk = chunk_rows.max(1);
        let aligned = morsel_rows.max(1).div_ceil(chunk) * chunk;
        MorselPlan::new(total_rows, aligned)
    }

    /// The morsels, in global order.
    pub fn morsels(&self) -> &[Morsel] {
        &self.morsels
    }

    /// Number of morsels.
    pub fn len(&self) -> usize {
        self.morsels.len()
    }

    /// True when the plan has no work.
    pub fn is_empty(&self) -> bool {
        self.morsels.is_empty()
    }

    /// Rows covered by the plan.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// The (possibly aligned) morsel size used.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_tiles_exactly() {
        for (rows, size) in [
            (0usize, 4usize),
            (1, 4),
            (4, 4),
            (10, 4),
            (10, 3),
            (10, 100),
        ] {
            let plan = MorselPlan::new(rows, size);
            let covered: usize = plan.morsels().iter().map(|m| m.len).sum();
            assert_eq!(covered, rows, "rows={rows} size={size}");
            // Contiguous, ordered, indexed.
            let mut expect_start = 0;
            for (i, m) in plan.morsels().iter().enumerate() {
                assert_eq!(m.index, i);
                assert_eq!(m.start, expect_start);
                assert!(m.len > 0);
                expect_start = m.end();
            }
        }
    }

    #[test]
    fn zero_morsel_rows_is_clamped() {
        let plan = MorselPlan::new(3, 0);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn chunk_alignment_rounds_up() {
        let plan = MorselPlan::chunk_aligned(10_000, 1000, 1024);
        assert_eq!(plan.morsel_rows(), 1024);
        assert!(plan.morsels()[..plan.len() - 1]
            .iter()
            .all(|m| m.len % 1024 == 0));
    }

    #[test]
    fn morsel_slices_table_and_sel() {
        use adaptvm_storage::schema::{Field, Schema};
        use adaptvm_storage::ScalarType;

        let t = Table::new(
            Schema::new(vec![Field::new("x", ScalarType::I64)]),
            vec![Array::from((0..10).collect::<Vec<i64>>())],
        )
        .unwrap();
        let m = Morsel {
            index: 1,
            start: 4,
            len: 3,
        };
        let s = m.slice_table(&t);
        assert_eq!(
            s.column_by_name("x").unwrap(),
            &Array::from(vec![4i64, 5, 6])
        );
        let sel = SelVec::new(vec![0, 4, 5, 9]);
        assert_eq!(m.slice_sel(&sel).indices(), &[0, 1]);
    }
}
