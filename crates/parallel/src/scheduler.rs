//! The long-lived worker pool and query scheduler.
//!
//! [`crate::pool::run_morsels`] spawns scoped threads per run — fine for a
//! benchmark, wrong for serving: thread spawn/join on every query, no way
//! to overlap two queries, and a fresh JIT world each time. A
//! [`Scheduler`] instead creates its workers **once** and parks them
//! between queries:
//!
//! * [`Scheduler::submit`] enqueues a query — a [`MorselPlan`] plus a task
//!   closure plus a merge closure — and returns a [`QueryHandle`] that
//!   joins on the morsel-ordered, merged result,
//! * [`Scheduler::run`] is the borrowing (scoped) flavor of the same path:
//!   it blocks the calling thread until the query drains, which is what
//!   lets the task capture plain references (the relational pipelines and
//!   [`crate::exec::ParallelVm::on`] use this),
//! * multiple in-flight queries share the worker set morsel-by-morsel:
//!   workers rotate across the active queries, so one long scan cannot
//!   starve a short one,
//! * one [`CodeCache`] + one *publishing* [`CompileServer`] are owned by
//!   the scheduler and shared by every query that runs on it: hot
//!   fragments are compiled once in the background and picked up by later
//!   morsels — of the same query or of any other (see
//!   `adaptvm_vm::VmConfig::compile_server`),
//! * a [`MorselElasticity`] controller adapts the preferred morsel size
//!   from merged profile windows: grow while compiled traces dominate and
//!   stealing is rare (fewer per-morsel setups on the fast path), shrink
//!   when steal counts indicate imbalance (finer stealing granularity).
//!
//! ## Determinism
//!
//! Scheduling changes nothing observable: a morsel's result depends only
//! on its row range, results are stored at their morsel index and handed
//! back **in morsel order**, and the merge closure runs once over that
//! ordered vector. A query's output is therefore identical whatever the
//! worker count, however many queries run beside it, and identical to the
//! scoped pool (`run_morsels`) over the same plan.
//!
//! ## Quickstart
//!
//! ```
//! use adaptvm_parallel::{MorselPlan, Scheduler};
//!
//! let scheduler = Scheduler::new(4); // workers created once, parked when idle
//! let data: Vec<i64> = (0..100_000).collect();
//!
//! // Async submission: handle joins on the morsel-ordered, merged result.
//! let plan = MorselPlan::new(data.len(), 4096);
//! let shared = std::sync::Arc::new(data);
//! let d = shared.clone();
//! let handle = scheduler.submit(
//!     plan,
//!     move |_worker, m| Ok::<i64, ()>(d[m.start..m.end()].iter().sum()),
//!     |parts, _stats| parts.iter().sum::<i64>(),
//! );
//! assert_eq!(handle.join().unwrap(), (0..100_000).sum::<i64>());
//!
//! // Scoped flavor: borrows freely, blocks until the query completes.
//! let plan = MorselPlan::new(shared.len(), 4096);
//! let (parts, stats) = scheduler
//!     .run(&plan, |_w, m| Ok::<i64, ()>(shared[m.start..m.end()].iter().sum()))
//!     .unwrap();
//! assert_eq!(parts.iter().sum::<i64>(), (0..100_000).sum::<i64>());
//! assert_eq!(stats.executed.iter().sum::<u64>(), plan.len() as u64);
//! ```

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use adaptvm_jit::cache::GENERIC_SITUATION;
use adaptvm_jit::compiler::{CompileServer, CostModel};
use adaptvm_jit::CodeCache;
use adaptvm_storage::DEFAULT_CHUNK;

use crate::dispatch::{DispatchStats, Dispatcher};
use crate::morsel::{Morsel, MorselPlan, DEFAULT_MORSEL_ROWS};

/// Capacity of the scheduler's shared code cache (many queries' worth of
/// specialized traces; mirrors `exec::SHARED_CACHE_CAPACITY`).
const SCHEDULER_CACHE_CAPACITY: usize = 256;

// ---------------------------------------------------------------------------
// Elasticity
// ---------------------------------------------------------------------------

/// Bounds and granularity for [`MorselElasticity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticityConfig {
    /// Smallest morsel the controller will shrink to (floor: stealing
    /// granularity).
    pub min_rows: usize,
    /// Largest morsel the controller will grow to (ceiling: merge latency
    /// and steal-ability).
    pub max_rows: usize,
    /// Morsel sizes stay multiples of this (chunk alignment keeps parallel
    /// chunk boundaries identical to sequential ones).
    pub align_rows: usize,
}

impl Default for ElasticityConfig {
    fn default() -> ElasticityConfig {
        ElasticityConfig {
            min_rows: DEFAULT_CHUNK,
            max_rows: 64 * DEFAULT_CHUNK,
            align_rows: DEFAULT_CHUNK,
        }
    }
}

/// One merged observation window: what a completed run (or batch) saw.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileWindow {
    /// Morsels executed in the window.
    pub morsels: usize,
    /// Morsels obtained by stealing.
    pub steals: u64,
    /// Trace-step executions (compiled-code work).
    pub trace_executions: u64,
    /// Interpretation fallbacks.
    pub fallbacks: u64,
}

/// Profile-driven morsel sizing (the §III adaptivity loop, applied to the
/// scheduling granularity itself).
///
/// After each merged profile window:
/// * **shrink** when steals cover ≥¼ of the window's morsels — heavy
///   stealing means the initial partition was imbalanced, and smaller
///   morsels redistribute more evenly;
/// * **grow** when compiled traces dominate (`trace_executions` strictly
///   positive and ≥ `fallbacks`) *and* stealing is rare (≤⅛ of morsels) —
///   the per-morsel setup cost is pure overhead on a fast compiled path;
/// * otherwise hold.
///
/// Sizes move by powers of two between `min_rows` and `max_rows`, aligned
/// to `align_rows`. The controller only ever changes the size **between**
/// plans, so any individual query still covers every row exactly once (see
/// the `MorselPlan` proptests).
#[derive(Debug)]
pub struct MorselElasticity {
    config: ElasticityConfig,
    rows: AtomicUsize,
}

impl MorselElasticity {
    /// A controller starting at `start_rows` (clamped/aligned to config).
    pub fn new(config: ElasticityConfig, start_rows: usize) -> MorselElasticity {
        let e = MorselElasticity {
            config,
            rows: AtomicUsize::new(0),
        };
        e.rows.store(e.clamp(start_rows), Ordering::Relaxed);
        e
    }

    fn clamp(&self, rows: usize) -> usize {
        let align = self.config.align_rows.max(1);
        let aligned = rows.max(1).div_ceil(align) * align;
        aligned.clamp(
            self.config.min_rows.max(align),
            self.config.max_rows.max(self.config.min_rows).max(align),
        )
    }

    /// The current preferred morsel size.
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Fold one window into the controller; returns the (possibly new)
    /// preferred morsel size.
    pub fn record(&self, window: &ProfileWindow) -> usize {
        let current = self.rows();
        if window.morsels == 0 {
            return current;
        }
        let morsels = window.morsels as u64;
        let next = if window.steals * 4 >= morsels {
            // Imbalance: a quarter or more of the work moved queues.
            self.clamp(current / 2)
        } else if window.trace_executions > 0
            && window.trace_executions >= window.fallbacks
            && window.steals * 8 <= morsels
        {
            // Compiled traces dominate and the partition held: bigger
            // morsels amortize per-morsel setup.
            self.clamp(current.saturating_mul(2))
        } else {
            current
        };
        self.rows.store(next, Ordering::Relaxed);
        next
    }
}

// ---------------------------------------------------------------------------
// Query plumbing
// ---------------------------------------------------------------------------

/// Why a query did not produce a result.
enum Abort<E> {
    /// The task returned an error (first error wins).
    Error(E),
    /// A task or merge panicked; the payload is re-raised on join.
    Panic(Box<dyn Any + Send + 'static>),
}

type Outcome<R, E> = Result<R, Abort<E>>;

/// Did `run_unit` find a morsel to account?
enum Unit {
    /// A morsel was executed (or skipped-after-stop) and accounted.
    Ran,
    /// This query's dispatcher is drained; nothing left to hand out.
    Empty,
}

/// Object-safe face of a typed in-flight query.
trait Job: Send + Sync {
    /// Pop and account one morsel for `worker`.
    fn run_unit(&self, worker: usize) -> Unit;
    /// True when no morsel remains to hand out (in-flight ones may still
    /// be executing).
    fn drained(&self) -> bool;
}

/// A boxed per-morsel task (the `'env` lifetime is the borrow scope of
/// whatever the closure captures).
type TaskFn<'env, T, E> = Box<dyn Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'env>;

/// A boxed once-only merge over the morsel-ordered results.
type MergeFn<'env, T, R> = Box<dyn FnOnce(Vec<T>, DispatchStats) -> R + Send + 'env>;

/// The merge + completion channel, taken exactly once by the finalizer.
struct Finish<'env, T, E, R> {
    merge: MergeFn<'env, T, R>,
    tx: Sender<Outcome<R, E>>,
}

/// One in-flight query: its private dispatcher, its result slots, and the
/// bookkeeping that triggers the single finalize. The `'env` lifetime is
/// the task's borrow scope: `'static` for submitted queries, the caller's
/// stack for [`Scheduler::run`].
struct QueryCore<'env, T, E, R> {
    dispatcher: Dispatcher,
    task: TaskFn<'env, T, E>,
    results: Mutex<Vec<Option<T>>>,
    /// Morsels not yet accounted; the worker that takes it to zero
    /// finalizes.
    remaining: AtomicUsize,
    stop: AtomicBool,
    failure: Mutex<Option<Abort<E>>>,
    finish: Mutex<Option<Finish<'env, T, E, R>>>,
    counters: Arc<Counters>,
}

impl<T: Send, E: Send, R: Send> QueryCore<'_, T, E, R> {
    fn finalize(&self) {
        let Some(Finish { merge, tx }) =
            self.finish.lock().unwrap_or_else(|e| e.into_inner()).take()
        else {
            return;
        };
        let failure = self
            .failure
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let outcome = match failure {
            Some(abort) => Err(abort),
            None => {
                let values: Vec<T> = self
                    .results
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter_mut()
                    .map(|slot| slot.take().expect("all morsels stored on success"))
                    .collect();
                let stats = self.dispatcher.stats();
                match catch_unwind(AssertUnwindSafe(move || merge(values, stats))) {
                    Ok(r) => Ok(r),
                    Err(p) => Err(Abort::Panic(p)),
                }
            }
        };
        self.counters
            .queries_completed
            .fetch_add(1, Ordering::Relaxed);
        // A dropped handle is fine: the send just returns an error.
        let _ = tx.send(outcome);
    }
}

impl<T: Send, E: Send, R: Send> Job for QueryCore<'_, T, E, R> {
    fn run_unit(&self, worker: usize) -> Unit {
        let Some(m) = self.dispatcher.next(worker) else {
            return Unit::Empty;
        };
        if !self.stop.load(Ordering::Acquire) {
            match catch_unwind(AssertUnwindSafe(|| (self.task)(worker, &m))) {
                Ok(Ok(value)) => {
                    self.results.lock().unwrap_or_else(|e| e.into_inner())[m.index] = Some(value);
                }
                Ok(Err(e)) => {
                    let mut failure = self.failure.lock().unwrap_or_else(|e| e.into_inner());
                    if failure.is_none() {
                        *failure = Some(Abort::Error(e));
                    }
                    self.stop.store(true, Ordering::Release);
                }
                Err(p) => {
                    let mut failure = self.failure.lock().unwrap_or_else(|e| e.into_inner());
                    if failure.is_none() {
                        *failure = Some(Abort::Panic(p));
                    }
                    self.stop.store(true, Ordering::Release);
                }
            }
        }
        self.counters
            .morsels_executed
            .fetch_add(1, Ordering::Relaxed);
        // Account the morsel last: `remaining == 0` must imply every task
        // call has returned and stored its result.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finalize();
        }
        Unit::Ran
    }

    fn drained(&self) -> bool {
        self.dispatcher.queued() == 0
    }
}

/// A handle to a submitted query. Join it to get the merged result; errors
/// and panics from the query's task (or merge) surface here.
pub struct QueryHandle<R, E> {
    rx: Receiver<Outcome<R, E>>,
    morsels: usize,
}

impl<R, E> QueryHandle<R, E> {
    /// Morsels the query was planned into.
    pub fn morsels(&self) -> usize {
        self.morsels
    }

    /// Block until the query completes. A task panic resumes unwinding
    /// here, on the joining thread.
    pub fn join(self) -> Result<R, E> {
        match self.rx.recv() {
            Ok(Ok(r)) => Ok(r),
            Ok(Err(Abort::Error(e))) => Err(e),
            Ok(Err(Abort::Panic(p))) => resume_unwind(p),
            Err(_) => unreachable!("scheduler drains every accepted query before exiting"),
        }
    }

    /// Like [`QueryHandle::join`], but give up after `timeout`. `None`
    /// means the query had not completed in time (the handle is consumed;
    /// stress tests use this as their deadlock bound).
    pub fn join_deadline(self, timeout: Duration) -> Option<Result<R, E>> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(r)) => Some(Ok(r)),
            Ok(Err(Abort::Error(e))) => Some(Err(e)),
            Ok(Err(Abort::Panic(p))) => resume_unwind(p),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                unreachable!("scheduler drains every accepted query before exiting")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------------

/// Aggregate counters over the scheduler's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Queries accepted by `submit`/`run`.
    pub queries_submitted: u64,
    /// Queries finalized (result or error delivered).
    pub queries_completed: u64,
    /// Morsels accounted across all queries.
    pub morsels_executed: u64,
}

#[derive(Default)]
struct Counters {
    queries_submitted: AtomicU64,
    queries_completed: AtomicU64,
    morsels_executed: AtomicU64,
}

struct Registry {
    /// Active queries, in submission order. Entries are removed once their
    /// dispatcher drains (their in-flight morsels finish on the workers
    /// that hold them).
    active: Vec<Arc<dyn Job>>,
    shutdown: bool,
}

struct Shared {
    registry: Mutex<Registry>,
    work_ready: Condvar,
    /// Round-robin cursor so concurrent queries share the workers.
    rr: AtomicUsize,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A long-lived worker pool with a query submission queue. See the module
/// docs for the full picture.
pub struct Scheduler {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
    cache: Arc<CodeCache>,
    compile_server: Arc<CompileServer>,
    elasticity: MorselElasticity,
    counters: Arc<Counters>,
}

impl Scheduler {
    /// A scheduler with `workers` long-lived threads (clamped to ≥1), an
    /// untimed compile-cost model, and default elasticity bounds.
    pub fn new(workers: usize) -> Scheduler {
        Scheduler::with_config(workers, CostModel::untimed(), ElasticityConfig::default())
    }

    /// Full-control constructor: compile-cost model for the background
    /// compile server, and elasticity bounds for morsel sizing.
    pub fn with_config(
        workers: usize,
        cost_model: CostModel,
        elasticity: ElasticityConfig,
    ) -> Scheduler {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            registry: Mutex::new(Registry {
                active: Vec::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            rr: AtomicUsize::new(0),
        });
        let threads = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("adaptvm-worker-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        let cache = Arc::new(CodeCache::new(SCHEDULER_CACHE_CAPACITY));
        let compile_server = Arc::new(CompileServer::with_cache(
            cost_model,
            cache.clone(),
            GENERIC_SITUATION,
        ));
        Scheduler {
            shared,
            threads,
            workers,
            cache,
            compile_server,
            elasticity: MorselElasticity::new(elasticity, DEFAULT_MORSEL_ROWS),
            counters: Arc::new(Counters::default()),
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared JIT code cache every query on this scheduler uses.
    pub fn cache(&self) -> &Arc<CodeCache> {
        &self.cache
    }

    /// The shared background compile server (publishing into
    /// [`Scheduler::cache`]).
    pub fn compile_server(&self) -> &Arc<CompileServer> {
        &self.compile_server
    }

    /// The elasticity-preferred morsel size right now.
    pub fn morsel_rows(&self) -> usize {
        self.elasticity.rows()
    }

    /// Feed a merged profile window into the elasticity controller (done
    /// automatically by `ParallelVm::on` runs; manual pipelines may report
    /// their own windows).
    pub fn observe_window(&self, window: &ProfileWindow) -> usize {
        self.elasticity.record(window)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            queries_submitted: self.counters.queries_submitted.load(Ordering::Relaxed),
            queries_completed: self.counters.queries_completed.load(Ordering::Relaxed),
            morsels_executed: self.counters.morsels_executed.load(Ordering::Relaxed),
        }
    }

    /// Queries currently registered (drained in-flight ones may already be
    /// removed).
    pub fn active_queries(&self) -> usize {
        self.shared.lock().active.len()
    }

    fn register(&self, job: Arc<dyn Job>) {
        let mut reg = self.shared.lock();
        reg.active.push(job);
        drop(reg);
        self.shared.work_ready.notify_all();
    }

    fn make_core<'env, T, E, R>(
        &self,
        plan: &MorselPlan,
        task: TaskFn<'env, T, E>,
        merge: MergeFn<'env, T, R>,
    ) -> (QueryCore<'env, T, E, R>, Receiver<Outcome<R, E>>)
    where
        T: Send,
        E: Send,
        R: Send,
    {
        self.counters
            .queries_submitted
            .fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();
        let mut results = Vec::with_capacity(plan.len());
        results.resize_with(plan.len(), || None);
        let core = QueryCore {
            dispatcher: Dispatcher::new(plan.morsels(), self.workers),
            task,
            results: Mutex::new(results),
            remaining: AtomicUsize::new(plan.len()),
            stop: AtomicBool::new(false),
            failure: Mutex::new(None),
            finish: Mutex::new(Some(Finish { merge, tx })),
            counters: self.counters.clone(),
        };
        (core, rx)
    }

    /// Enqueue a query: run `task` over every morsel of `plan` on the
    /// shared workers, then `merge` the morsel-ordered results (on the
    /// worker that completes the last morsel). Returns immediately;
    /// multiple submitted queries execute concurrently.
    pub fn submit<T, E, R, F, M>(&self, plan: MorselPlan, task: F, merge: M) -> QueryHandle<R, E>
    where
        T: Send + 'static,
        E: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'static,
        M: FnOnce(Vec<T>, DispatchStats) -> R + Send + 'static,
    {
        let morsels = plan.len();
        let (core, rx) = self.make_core(&plan, Box::new(task), Box::new(merge));
        if morsels == 0 {
            // Nothing to dispatch: finalize inline (merge of an empty vec).
            core.finalize();
            return QueryHandle { rx, morsels };
        }
        self.register(Arc::new(core));
        QueryHandle { rx, morsels }
    }

    /// Run a query to completion on the pool, **blocking the calling
    /// thread**, with a task that may borrow from the caller's stack —
    /// the drop-in scheduler replacement for [`crate::pool::run_morsels`]
    /// (same result contract: morsel-ordered results + dispatch stats,
    /// first error aborts, panics propagate).
    ///
    /// Do not call from inside a scheduler task: a worker blocking on its
    /// own pool can deadlock once every worker does it.
    pub fn run<'env, T, E, F>(
        &self,
        plan: &MorselPlan,
        task: F,
    ) -> Result<(Vec<T>, DispatchStats), E>
    where
        T: Send + 'env,
        E: Send + 'env,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'env,
    {
        if plan.is_empty() {
            return Ok((
                Vec::new(),
                DispatchStats {
                    executed: vec![0; self.workers],
                    steals: 0,
                },
            ));
        }
        type ScopedMerge<T> = fn(Vec<T>, DispatchStats) -> (Vec<T>, DispatchStats);
        let merge: ScopedMerge<T> = |values, stats| (values, stats);
        let (core, rx) = self.make_core(plan, Box::new(task), Box::new(merge));
        let core = Arc::new(core);
        // SAFETY: the registry requires `'static` jobs because workers
        // outlive any particular caller, but this query's task/results only
        // borrow from `'env`. Soundness is restored by the protocol below:
        // (1) `rx.recv()` only returns once `remaining == 0`, i.e. after
        //     every task invocation has returned — no worker calls into the
        //     closure after that point (workers that still see the query
        //     only probe its drained dispatcher);
        // (2) before returning we spin until our `Arc` is the last strong
        //     reference, so no worker even *holds* the erased job once
        //     `'env` data can go out of scope. Workers drop their clone
        //     after every unit, and drained queries leave the registry on
        //     the next scan, so the wait is bounded by one morsel. The
        //     uniqueness check is `Arc::get_mut`, not `strong_count`: the
        //     former pairs an Acquire load with the workers' Release drops,
        //     establishing happens-before between their final accesses to
        //     the job and our return (a relaxed `strong_count` spin would
        //     not).
        let mut core = core;
        let job: Arc<dyn Job + 'env> = core.clone();
        let job: Arc<dyn Job> =
            unsafe { std::mem::transmute::<Arc<dyn Job + 'env>, Arc<dyn Job + 'static>>(job) };
        self.register(job);
        let outcome = rx.recv().expect("query finalizes exactly once");
        while Arc::get_mut(&mut core).is_none() {
            std::thread::yield_now();
        }
        match outcome {
            Ok(r) => Ok(r),
            Err(Abort::Error(e)) => Err(e),
            Err(Abort::Panic(p)) => resume_unwind(p),
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers)
            .field("active_queries", &self.active_queries())
            .field("morsel_rows", &self.morsel_rows())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut reg = self.shared.lock();
            reg.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The worker main loop: pick an active query round-robin, execute one
/// morsel, repeat; park when the registry is empty; exit on shutdown after
/// the registry drains.
fn worker_loop(worker: usize, shared: &Shared) {
    loop {
        let job: Arc<dyn Job> = {
            let mut reg = shared.lock();
            loop {
                // Retire drained queries first (their in-flight morsels
                // finish on whichever workers hold them).
                reg.active.retain(|j| !j.drained());
                if !reg.active.is_empty() {
                    let idx = shared.rr.fetch_add(1, Ordering::Relaxed) % reg.active.len();
                    break reg.active[idx].clone();
                }
                if reg.shutdown {
                    return;
                }
                reg = shared
                    .work_ready
                    .wait(reg)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Run one unit then rescan: the rotation keeps concurrent queries
        // progressing together instead of draining one before the next.
        let _ = job.run_unit(worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_run_matches_scoped_pool() {
        let data: Vec<i64> = (0..50_000).map(|i| (i * 17) % 1000 - 500).collect();
        let plan = MorselPlan::new(data.len(), 1024);
        let (seq, _) = crate::pool::run_morsels(1, &plan, |_, m| {
            Ok::<i64, ()>(data[m.start..m.end()].iter().sum())
        })
        .unwrap();
        for workers in [1, 2, 4, 8] {
            let scheduler = Scheduler::new(workers);
            let (parts, stats) = scheduler
                .run(&plan, |_, m| {
                    Ok::<i64, ()>(data[m.start..m.end()].iter().sum())
                })
                .unwrap();
            assert_eq!(parts, seq, "workers={workers}");
            assert_eq!(stats.executed.iter().sum::<u64>(), plan.len() as u64);
        }
    }

    #[test]
    fn submit_joins_merged_result() {
        let scheduler = Scheduler::new(4);
        let data: Arc<Vec<i64>> = Arc::new((0..10_000).collect());
        let plan = MorselPlan::new(data.len(), 256);
        let morsels = plan.len();
        let d = data.clone();
        let handle = scheduler.submit(
            plan,
            move |_, m| Ok::<i64, ()>(d[m.start..m.end()].iter().sum()),
            |parts, stats| (parts.iter().sum::<i64>(), stats),
        );
        assert_eq!(handle.morsels(), morsels);
        let (total, stats) = handle.join().unwrap();
        assert_eq!(total, data.iter().sum::<i64>());
        assert_eq!(stats.executed.iter().sum::<u64>(), morsels as u64);
    }

    #[test]
    fn concurrent_queries_share_the_pool() {
        let scheduler = Scheduler::new(4);
        let handles: Vec<_> = (0..6)
            .map(|q| {
                let base = q as i64 * 1000;
                scheduler.submit(
                    MorselPlan::new(5_000, 128),
                    move |_, m| Ok::<i64, ()>(base + m.len as i64),
                    |parts, _| parts.iter().sum::<i64>(),
                )
            })
            .collect();
        for (q, h) in handles.into_iter().enumerate() {
            let morsels = 5_000usize.div_ceil(128) as i64;
            let expect = q as i64 * 1000 * morsels + 5_000;
            assert_eq!(h.join().unwrap(), expect, "query {q}");
        }
        let stats = scheduler.stats();
        assert_eq!(stats.queries_submitted, 6);
        assert_eq!(stats.queries_completed, 6);
        assert_eq!(stats.morsels_executed, 6 * 5_000u64.div_ceil(128));
    }

    #[test]
    fn errors_abort_and_surface() {
        let scheduler = Scheduler::new(4);
        let plan = MorselPlan::new(64, 1);
        let r = scheduler.run(&plan, |_, m| {
            if m.index == 13 {
                Err("boom")
            } else {
                Ok(m.index)
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
        // The pool survives an aborted query.
        let plan = MorselPlan::new(10, 2);
        let (v, _) = scheduler
            .run(&plan, |_, m| Ok::<usize, ()>(m.index))
            .unwrap();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn task_panic_resumes_on_joiner() {
        let scheduler = Scheduler::new(2);
        let plan = MorselPlan::new(16, 1);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = scheduler.run(&plan, |_, m| {
                if m.index == 7 {
                    panic!("task exploded");
                }
                Ok::<usize, ()>(m.index)
            });
        }));
        assert!(caught.is_err());
        // Workers are intact afterwards.
        let (v, _) = scheduler
            .run(&MorselPlan::new(4, 1), |_, m| Ok::<usize, ()>(m.index))
            .unwrap();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn empty_plan_completes_immediately() {
        let scheduler = Scheduler::new(2);
        let handle = scheduler.submit(
            MorselPlan::new(0, 8),
            |_, _| Ok::<usize, ()>(0),
            |parts, _| parts.len(),
        );
        assert_eq!(handle.join().unwrap(), 0);
        let (v, stats) = scheduler
            .run(&MorselPlan::new(0, 8), |_, _| Ok::<usize, ()>(0))
            .unwrap();
        assert!(v.is_empty());
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn join_deadline_bounds_the_wait() {
        let scheduler = Scheduler::new(2);
        let handle = scheduler.submit(
            MorselPlan::new(1_000, 10),
            |_, m| Ok::<usize, ()>(m.len),
            |parts, _| parts.iter().sum::<usize>(),
        );
        let joined = handle.join_deadline(Duration::from_secs(30));
        assert_eq!(joined, Some(Ok(1_000)));
    }

    #[test]
    fn elasticity_grows_and_shrinks_within_bounds() {
        let e = MorselElasticity::new(ElasticityConfig::default(), DEFAULT_MORSEL_ROWS);
        let grow = ProfileWindow {
            morsels: 64,
            steals: 0,
            trace_executions: 100,
            fallbacks: 0,
        };
        let mut last = e.rows();
        for _ in 0..10 {
            let now = e.record(&grow);
            assert!(now >= last);
            assert!(now <= ElasticityConfig::default().max_rows);
            last = now;
        }
        assert_eq!(e.rows(), ElasticityConfig::default().max_rows);
        let shrink = ProfileWindow {
            morsels: 16,
            steals: 8,
            trace_executions: 0,
            fallbacks: 4,
        };
        for _ in 0..12 {
            e.record(&shrink);
        }
        assert_eq!(e.rows(), ElasticityConfig::default().min_rows);
        // Hold: interpreted, balanced window.
        let hold = ProfileWindow {
            morsels: 64,
            steals: 1,
            trace_executions: 0,
            fallbacks: 10,
        };
        let before = e.rows();
        e.record(&hold);
        assert_eq!(e.rows(), before);
    }

    #[test]
    fn scheduler_is_debuggable_and_counts() {
        let scheduler = Scheduler::new(3);
        assert_eq!(scheduler.workers(), 3);
        let _ = format!("{scheduler:?}");
        let (_, stats) = scheduler
            .run(&MorselPlan::new(100, 10), |_, m| Ok::<usize, ()>(m.len))
            .unwrap();
        assert_eq!(stats.executed.len(), 3);
        assert_eq!(scheduler.stats().morsels_executed, 10);
    }
}
