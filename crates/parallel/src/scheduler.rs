//! The long-lived worker pool and query scheduler.
//!
//! [`crate::pool::run_morsels`] spawns scoped threads per run — fine for a
//! benchmark, wrong for serving: thread spawn/join on every query, no way
//! to overlap two queries, and a fresh JIT world each time. A
//! [`Scheduler`] instead creates its workers **once** and parks them
//! between queries:
//!
//! * [`Scheduler::submit`] enqueues a query — a [`MorselPlan`] plus a task
//!   closure plus a merge closure — and returns a [`QueryHandle`] that
//!   joins on the morsel-ordered, merged result,
//! * [`Scheduler::run`] is the borrowing (scoped) flavor of the same path:
//!   it blocks the calling thread until the query drains, which is what
//!   lets the task capture plain references (the relational pipelines and
//!   [`crate::exec::ParallelVm::on`] use this),
//! * multiple in-flight queries share the worker set morsel-by-morsel:
//!   workers rotate across the active queries, so one long scan cannot
//!   starve a short one,
//! * every query carries a [`CancelToken`] checked at **morsel
//!   boundaries**: [`QueryHandle::cancel`] (or a per-query deadline via
//!   [`SubmitOptions`]) aborts only that query — remaining morsels are
//!   skipped, in-flight ones finish, accounting stays exact, and the
//!   joiner sees [`QueryError::Cancelled`]/[`QueryError::DeadlineExceeded`],
//! * [`Scheduler::shutdown`] is the explicit teardown: new submissions get
//!   a typed [`SubmitError::ShutDown`], in-flight queries finish, workers
//!   join. `Drop` calls the same path, so the silent-drop behavior and the
//!   explicit one are identical,
//! * one [`CodeCache`] + one *publishing* [`CompileServer`] are owned by
//!   the scheduler and shared by every query that runs on it: hot
//!   fragments are compiled once in the background and picked up by later
//!   morsels — of the same query or of any other (see
//!   `adaptvm_vm::VmConfig::compile_server`),
//! * a [`MorselElasticity`] controller adapts the preferred morsel size
//!   from merged profile windows: grow while compiled traces dominate and
//!   stealing is rare (fewer per-morsel setups on the fast path), shrink
//!   when steal counts indicate imbalance (finer stealing granularity).
//!
//! The admission-controlled serving front end — bounded priority queues,
//! weighted-fair dispatch, graceful drain, telemetry — lives one layer up
//! in [`crate::serve`].
//!
//! ## Determinism
//!
//! Scheduling changes nothing observable: a morsel's result depends only
//! on its row range, results are stored at their morsel index and handed
//! back **in morsel order**, and the merge closure runs once over that
//! ordered vector. A query's output is therefore identical whatever the
//! worker count, however many queries run beside it, and identical to the
//! scoped pool (`run_morsels`) over the same plan.
//!
//! ## Quickstart
//!
//! ```
//! use adaptvm_parallel::{MorselPlan, Scheduler};
//!
//! let scheduler = Scheduler::new(4); // workers created once, parked when idle
//! let data: Vec<i64> = (0..100_000).collect();
//!
//! // Async submission: handle joins on the morsel-ordered, merged result.
//! let plan = MorselPlan::new(data.len(), 4096);
//! let shared = std::sync::Arc::new(data);
//! let d = shared.clone();
//! let handle = scheduler
//!     .submit(
//!         plan,
//!         move |_worker, m| Ok::<i64, ()>(d[m.start..m.end()].iter().sum()),
//!         |parts, _stats| parts.iter().sum::<i64>(),
//!     )
//!     .expect("scheduler is accepting");
//! assert_eq!(handle.join().unwrap(), (0..100_000).sum::<i64>());
//!
//! // Scoped flavor: borrows freely, blocks until the query completes.
//! let plan = MorselPlan::new(shared.len(), 4096);
//! let (parts, stats) = scheduler
//!     .run(&plan, |_w, m| Ok::<i64, ()>(shared[m.start..m.end()].iter().sum()))
//!     .unwrap();
//! assert_eq!(parts.iter().sum::<i64>(), (0..100_000).sum::<i64>());
//! assert_eq!(stats.executed.iter().sum::<u64>(), plan.len() as u64);
//!
//! // Explicit teardown: later submissions get a typed error.
//! scheduler.shutdown();
//! assert!(scheduler
//!     .submit(
//!         MorselPlan::new(8, 1),
//!         |_, m| Ok::<usize, ()>(m.len),
//!         |parts, _| parts.len(),
//!     )
//!     .is_err());
//! ```

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use adaptvm_jit::cache::GENERIC_SITUATION;
use adaptvm_jit::compiler::{CompileServer, CostModel};
use adaptvm_jit::CodeCache;
use adaptvm_storage::DEFAULT_CHUNK;

use crate::dispatch::{DispatchStats, Dispatcher};
use crate::morsel::{Morsel, MorselPlan, DEFAULT_MORSEL_ROWS};
use crate::obs::{self, EventKind, QueryProfile, Trace};

/// Capacity of the scheduler's shared code cache (many queries' worth of
/// specialized traces; mirrors `exec::SHARED_CACHE_CAPACITY`).
const SCHEDULER_CACHE_CAPACITY: usize = 256;

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// Why a query stopped before completing its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Someone called [`CancelToken::cancel`] / [`QueryHandle::cancel`].
    Cancelled,
    /// The query's deadline passed.
    DeadlineExceeded,
}

const TOKEN_LIVE: u8 = 0;
const TOKEN_CANCELLED: u8 = 1;
const TOKEN_EXPIRED: u8 = 2;

/// A shared, cloneable cancellation flag, checked **cooperatively at
/// morsel boundaries**: a worker finishes the morsel it holds, then skips
/// every remaining one of the cancelled query. Other queries on the same
/// pool are untouched.
///
/// Tokens are cheap (`Arc<AtomicU8>`); every scheduler query gets one
/// (yours via [`SubmitOptions::cancel`], or a fresh one otherwise) and the
/// [`QueryHandle`] exposes it. The same token can be shared by several
/// queries to cancel them as a group.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A live token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; a token that already expired by
    /// deadline keeps reporting [`CancelReason::DeadlineExceeded`].
    pub fn cancel(&self) {
        let _ = self.state.compare_exchange(
            TOKEN_LIVE,
            TOKEN_CANCELLED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Mark the token expired by deadline (the scheduler does this when a
    /// query's deadline trips, so every holder observes the same state).
    pub(crate) fn expire(&self) {
        let _ = self.state.compare_exchange(
            TOKEN_LIVE,
            TOKEN_EXPIRED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// `Err(reason)` once the token fired — the per-morsel checkpoint.
    pub fn check(&self) -> Result<(), CancelReason> {
        match self.state.load(Ordering::Acquire) {
            TOKEN_CANCELLED => Err(CancelReason::Cancelled),
            TOKEN_EXPIRED => Err(CancelReason::DeadlineExceeded),
            _ => Ok(()),
        }
    }

    /// True once cancelled or expired.
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// The reason the token fired, if it has.
    pub fn reason(&self) -> Option<CancelReason> {
        self.check().err()
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why the scheduler refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// [`Scheduler::shutdown`] ran (or `Drop` began): the pool no longer
    /// accepts queries.
    ShutDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::ShutDown => write!(f, "scheduler is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a joined query produced no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError<E> {
    /// The query's task returned an error (first error wins).
    Task(E),
    /// The query was cancelled via its [`CancelToken`].
    Cancelled,
    /// The query's deadline passed before it completed.
    DeadlineExceeded,
}

impl<E: fmt::Display> fmt::Display for QueryError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Task(e) => write!(f, "query task failed: {e}"),
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

/// Why a blocking [`Scheduler::run_with`] (or a [`crate::pool::Runner`]
/// pipeline) returned no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError<E> {
    /// The task returned an error (first error wins).
    Task(E),
    /// The run's [`CancelToken`] fired.
    Cancelled,
    /// The run's deadline passed.
    DeadlineExceeded,
    /// The executor refused the run (scheduler shut down, service
    /// draining, queue full, or admission timed out) — the reason string
    /// is human-readable; the *typed* admission errors live on the
    /// submission APIs themselves ([`SubmitError`],
    /// [`crate::serve::AdmissionError`]).
    Rejected(String),
}

impl<E: fmt::Display> fmt::Display for RunError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Task(e) => write!(f, "task failed: {e}"),
            RunError::Cancelled => write!(f, "run cancelled"),
            RunError::DeadlineExceeded => write!(f, "run deadline exceeded"),
            RunError::Rejected(why) => write!(f, "run rejected: {why}"),
        }
    }
}

/// How a finalized query ended (the argument of the completion hook the
/// serving layer installs via [`SubmitOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcomeKind {
    /// Merge ran, result delivered.
    Completed,
    /// The task errored.
    TaskError,
    /// A task or merge panicked (payload re-raised on the joiner).
    Panicked,
    /// Cancelled via token.
    Cancelled,
    /// Deadline passed mid-query.
    DeadlineExceeded,
}

impl QueryOutcomeKind {
    /// Stable lowercase name (trace events, metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            QueryOutcomeKind::Completed => "completed",
            QueryOutcomeKind::TaskError => "task_error",
            QueryOutcomeKind::Panicked => "panicked",
            QueryOutcomeKind::Cancelled => "cancelled",
            QueryOutcomeKind::DeadlineExceeded => "deadline",
        }
    }
}

/// A completion hook: runs exactly once, on the worker that finalizes the
/// query, right after the result is handed to the joiner.
pub(crate) type DoneHook = Box<dyn FnOnce(QueryOutcomeKind) + Send + 'static>;

/// Per-submission options for [`Scheduler::submit_opts`].
#[derive(Default)]
pub struct SubmitOptions {
    /// Cancel this query through an externally held token (a fresh token
    /// is created when absent; the handle exposes it either way).
    pub cancel: Option<CancelToken>,
    /// Abort the query once this much time passes after submission;
    /// checked at morsel boundaries (cooperative, never mid-morsel).
    pub deadline: Option<Duration>,
    /// Record this query's execution into a [`Trace`] (morsel spans, JIT
    /// decisions, spill I/O); read it back via [`QueryHandle::profile`].
    /// When absent, the submitting thread's ambient trace scope (if any)
    /// is inherited.
    pub trace: Option<Trace>,
    /// Completion hook for the serving layer (telemetry + slot release).
    pub(crate) on_done: Option<DoneHook>,
}

impl SubmitOptions {
    /// Attach an external cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> SubmitOptions {
        self.cancel = Some(token);
        self
    }

    /// Set a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Record this query's execution into `trace`.
    pub fn with_trace(mut self, trace: Trace) -> SubmitOptions {
        self.trace = Some(trace);
        self
    }

    pub(crate) fn with_on_done(mut self, hook: DoneHook) -> SubmitOptions {
        self.on_done = Some(hook);
        self
    }
}

impl fmt::Debug for SubmitOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubmitOptions")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("trace", &self.trace.is_some())
            .field("on_done", &self.on_done.is_some())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Elasticity
// ---------------------------------------------------------------------------

/// Bounds and granularity for [`MorselElasticity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticityConfig {
    /// Smallest morsel the controller will shrink to (floor: stealing
    /// granularity).
    pub min_rows: usize,
    /// Largest morsel the controller will grow to (ceiling: merge latency
    /// and steal-ability).
    pub max_rows: usize,
    /// Morsel sizes stay multiples of this (chunk alignment keeps parallel
    /// chunk boundaries identical to sequential ones).
    pub align_rows: usize,
}

impl Default for ElasticityConfig {
    fn default() -> ElasticityConfig {
        ElasticityConfig {
            min_rows: DEFAULT_CHUNK,
            max_rows: 64 * DEFAULT_CHUNK,
            align_rows: DEFAULT_CHUNK,
        }
    }
}

/// One merged observation window: what a completed run (or batch) saw.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileWindow {
    /// Morsels executed in the window.
    pub morsels: usize,
    /// Morsels obtained by stealing.
    pub steals: u64,
    /// Trace-step executions (compiled-code work).
    pub trace_executions: u64,
    /// Interpretation fallbacks.
    pub fallbacks: u64,
}

/// Profile-driven morsel sizing (the §III adaptivity loop, applied to the
/// scheduling granularity itself).
///
/// After each merged profile window:
/// * **shrink** when steals cover ≥¼ of the window's morsels — heavy
///   stealing means the initial partition was imbalanced, and smaller
///   morsels redistribute more evenly;
/// * **grow** when compiled traces dominate (`trace_executions` strictly
///   positive and ≥ `fallbacks`) *and* stealing is rare (≤⅛ of morsels) —
///   the per-morsel setup cost is pure overhead on a fast compiled path;
/// * otherwise hold.
///
/// Sizes move by powers of two between `min_rows` and `max_rows`, aligned
/// to `align_rows`. The controller only ever changes the size **between**
/// plans, so any individual query still covers every row exactly once (see
/// the `MorselPlan` proptests).
#[derive(Debug)]
pub struct MorselElasticity {
    config: ElasticityConfig,
    rows: AtomicUsize,
}

impl MorselElasticity {
    /// A controller starting at `start_rows` (clamped/aligned to config).
    pub fn new(config: ElasticityConfig, start_rows: usize) -> MorselElasticity {
        let e = MorselElasticity {
            config,
            rows: AtomicUsize::new(0),
        };
        e.rows.store(e.clamp(start_rows), Ordering::Relaxed);
        e
    }

    fn clamp(&self, rows: usize) -> usize {
        let align = self.config.align_rows.max(1);
        let aligned = rows.max(1).div_ceil(align) * align;
        aligned.clamp(
            self.config.min_rows.max(align),
            self.config.max_rows.max(self.config.min_rows).max(align),
        )
    }

    /// The current preferred morsel size.
    pub fn rows(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Fold one window into the controller; returns the (possibly new)
    /// preferred morsel size.
    pub fn record(&self, window: &ProfileWindow) -> usize {
        let current = self.rows();
        if window.morsels == 0 {
            return current;
        }
        let morsels = window.morsels as u64;
        let next = if window.steals * 4 >= morsels {
            // Imbalance: a quarter or more of the work moved queues.
            self.clamp(current / 2)
        } else if window.trace_executions > 0
            && window.trace_executions >= window.fallbacks
            && window.steals * 8 <= morsels
        {
            // Compiled traces dominate and the partition held: bigger
            // morsels amortize per-morsel setup.
            self.clamp(current.saturating_mul(2))
        } else {
            current
        };
        if next != current {
            obs::morsel_resized(current, next);
        }
        self.rows.store(next, Ordering::Relaxed);
        next
    }
}

// ---------------------------------------------------------------------------
// Query plumbing
// ---------------------------------------------------------------------------

/// Why a query did not produce a result.
enum Abort<E> {
    /// The task returned an error (first error wins).
    Error(E),
    /// A task or merge panicked; the payload is re-raised on join.
    Panic(Box<dyn Any + Send + 'static>),
    /// The query's token fired (cancel or deadline).
    Cancelled(CancelReason),
}

type Outcome<R, E> = Result<R, Abort<E>>;

/// Did `run_unit` find a morsel to account?
enum Unit {
    /// A morsel was executed (or skipped-after-stop) and accounted.
    Ran,
    /// This query's dispatcher is drained; nothing left to hand out.
    Empty,
}

/// Object-safe face of a typed in-flight query.
trait Job: Send + Sync {
    /// Pop and account one morsel for `worker`.
    fn run_unit(&self, worker: usize) -> Unit;
    /// True when no morsel remains to hand out (in-flight ones may still
    /// be executing).
    fn drained(&self) -> bool;
}

/// A boxed per-morsel task (the `'env` lifetime is the borrow scope of
/// whatever the closure captures).
type TaskFn<'env, T, E> = Box<dyn Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'env>;

/// A boxed once-only merge over the morsel-ordered results.
type MergeFn<'env, T, R> = Box<dyn FnOnce(Vec<T>, DispatchStats) -> R + Send + 'env>;

/// The merge + completion channel (+ optional completion hook), taken
/// exactly once by the finalizer.
struct Finish<'env, T, E, R> {
    merge: MergeFn<'env, T, R>,
    tx: Sender<Outcome<R, E>>,
    on_done: Option<DoneHook>,
}

/// One in-flight query: its private dispatcher, its result slots, and the
/// bookkeeping that triggers the single finalize. The `'env` lifetime is
/// the task's borrow scope: `'static` for submitted queries, the caller's
/// stack for [`Scheduler::run`].
struct QueryCore<'env, T, E, R> {
    dispatcher: Dispatcher,
    task: TaskFn<'env, T, E>,
    results: Mutex<Vec<Option<T>>>,
    /// Morsels not yet accounted; the worker that takes it to zero
    /// finalizes.
    remaining: AtomicUsize,
    stop: AtomicBool,
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// Morsels whose task actually ran to completion for this query.
    executed: Arc<AtomicU64>,
    failure: Mutex<Option<Abort<E>>>,
    finish: Mutex<Option<Finish<'env, T, E, R>>>,
    counters: Arc<Counters>,
    /// Trace scope workers enter around each morsel of this query
    /// (explicit [`SubmitOptions::trace`] or the submitter's ambient
    /// scope).
    scope: Option<(Trace, &'static str)>,
}

impl<T: Send, E: Send, R: Send> QueryCore<'_, T, E, R> {
    /// Record the first failure and stop handing work to the task.
    fn abort_with(&self, abort: Abort<E>) {
        let mut failure = self.failure.lock().unwrap_or_else(|e| e.into_inner());
        if failure.is_none() {
            *failure = Some(abort);
        }
        drop(failure);
        self.stop.store(true, Ordering::Release);
    }

    /// The morsel-boundary cancellation checkpoint.
    fn cancelled_now(&self) -> Option<CancelReason> {
        if let Err(reason) = self.cancel.check() {
            return Some(reason);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                // Propagate to every token holder (handle, serving layer).
                self.cancel.expire();
                return Some(CancelReason::DeadlineExceeded);
            }
        }
        None
    }

    fn finalize(&self) {
        let Some(Finish { merge, tx, on_done }) =
            self.finish.lock().unwrap_or_else(|e| e.into_inner()).take()
        else {
            return;
        };
        let failure = self
            .failure
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let (outcome, kind) = match failure {
            Some(Abort::Error(e)) => (Err(Abort::Error(e)), QueryOutcomeKind::TaskError),
            Some(Abort::Panic(p)) => (Err(Abort::Panic(p)), QueryOutcomeKind::Panicked),
            Some(Abort::Cancelled(reason)) => (
                Err(Abort::Cancelled(reason)),
                match reason {
                    CancelReason::Cancelled => QueryOutcomeKind::Cancelled,
                    CancelReason::DeadlineExceeded => QueryOutcomeKind::DeadlineExceeded,
                },
            ),
            None => {
                let values: Vec<T> = self
                    .results
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter_mut()
                    .map(|slot| slot.take().expect("all morsels stored on success"))
                    .collect();
                let stats = self.dispatcher.stats();
                match catch_unwind(AssertUnwindSafe(move || merge(values, stats))) {
                    Ok(r) => (Ok(r), QueryOutcomeKind::Completed),
                    Err(p) => (Err(Abort::Panic(p)), QueryOutcomeKind::Panicked),
                }
            }
        };
        self.counters
            .queries_completed
            .fetch_add(1, Ordering::Relaxed);
        // Fire the completion hook *before* unblocking the joiner, so a
        // joiner that immediately reads service telemetry sees this query
        // already accounted.
        if let Some(hook) = on_done {
            hook(kind);
        }
        // A dropped handle is fine: the send just returns an error.
        let _ = tx.send(outcome);
    }
}

impl<T: Send, E: Send, R: Send> Job for QueryCore<'_, T, E, R> {
    fn run_unit(&self, worker: usize) -> Unit {
        let Some((m, stolen)) = self.dispatcher.next_from(worker) else {
            return Unit::Empty;
        };
        if !self.stop.load(Ordering::Acquire) {
            if let Some(reason) = self.cancelled_now() {
                self.abort_with(Abort::Cancelled(reason));
            } else {
                let _lane = self
                    .scope
                    .as_ref()
                    .map(|(t, st)| t.enter_lane(crate::pool::worker_lane(worker), st));
                let t0 = self.scope.as_ref().map(|_| Instant::now());
                match catch_unwind(AssertUnwindSafe(|| (self.task)(worker, &m))) {
                    Ok(Ok(value)) => {
                        if let Some((trace, _)) = &self.scope {
                            obs::emit(EventKind::Morsel {
                                index: m.index as u32,
                                rows: m.len as u32,
                                stolen,
                                dur_ns: trace.dur_ns(t0.expect("timed when traced").elapsed()),
                            });
                        }
                        self.results.lock().unwrap_or_else(|e| e.into_inner())[m.index] =
                            Some(value);
                        self.executed.fetch_add(1, Ordering::Relaxed);
                        self.counters
                            .morsels_executed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(Err(e)) => self.abort_with(Abort::Error(e)),
                    Err(p) => self.abort_with(Abort::Panic(p)),
                }
            }
        }
        // Account the morsel last: `remaining == 0` must imply every task
        // call has returned and stored its result.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finalize();
        }
        Unit::Ran
    }

    fn drained(&self) -> bool {
        self.dispatcher.queued() == 0
    }
}

/// A handle to a submitted query. Join it to get the merged result; task
/// errors, cancellation and deadlines surface as [`QueryError`]; task or
/// merge panics resume on the joiner.
pub struct QueryHandle<R, E> {
    rx: Receiver<Outcome<R, E>>,
    morsels: usize,
    cancel: CancelToken,
    executed: Arc<AtomicU64>,
    trace: Option<Trace>,
}

impl<R, E> QueryHandle<R, E> {
    /// Morsels the query was planned into.
    pub fn morsels(&self) -> usize {
        self.morsels
    }

    /// Morsels whose task actually ran so far (`≤` [`Self::morsels`];
    /// strictly less when the query was cancelled mid-flight).
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Request cancellation: workers finish the morsels they hold and skip
    /// the rest; the join returns [`QueryError::Cancelled`] (unless the
    /// query had already finished).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The query's cancel token (shareable; see [`CancelToken`]).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The merged execution profile so far (`None` when the query was
    /// submitted without a trace). Non-destructive and callable at any
    /// time; call after [`QueryHandle::join`] for the complete profile.
    pub fn profile(&self) -> Option<QueryProfile> {
        self.trace.as_ref().map(Trace::profile)
    }

    fn map(outcome: Outcome<R, E>) -> Result<R, QueryError<E>> {
        match outcome {
            Ok(r) => Ok(r),
            Err(Abort::Error(e)) => Err(QueryError::Task(e)),
            Err(Abort::Cancelled(CancelReason::Cancelled)) => Err(QueryError::Cancelled),
            Err(Abort::Cancelled(CancelReason::DeadlineExceeded)) => {
                Err(QueryError::DeadlineExceeded)
            }
            Err(Abort::Panic(p)) => resume_unwind(p),
        }
    }

    /// Block until the query completes. A task panic resumes unwinding
    /// here, on the joining thread.
    pub fn join(self) -> Result<R, QueryError<E>> {
        match self.rx.recv() {
            Ok(outcome) => Self::map(outcome),
            Err(_) => unreachable!("scheduler drains every accepted query before exiting"),
        }
    }

    /// Like [`QueryHandle::join`], but give up after `timeout`. `None`
    /// means the query had not completed in time (the handle is consumed;
    /// stress tests use this as their deadlock bound).
    ///
    /// The wait is anchored to an absolute deadline and the remaining time
    /// is recomputed on every retry, so a `recv_timeout` that returns
    /// early (spurious wakeup) neither fires the deadline early nor
    /// extends it.
    pub fn join_deadline(self, timeout: Duration) -> Option<Result<R, QueryError<E>>> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(outcome) => return Some(Self::map(outcome)),
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return None;
                    }
                    // Woke before the deadline: recompute and wait again.
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("scheduler drains every accepted query before exiting")
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------------

/// Aggregate counters over the scheduler's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Queries accepted by `submit`/`run`.
    pub queries_submitted: u64,
    /// Queries finalized (result, error, or cancellation delivered).
    pub queries_completed: u64,
    /// Morsels whose task ran to completion, across all queries (skipped
    /// morsels of aborted/cancelled queries are *not* counted, so this is
    /// always ≤ the morsels planned).
    pub morsels_executed: u64,
}

#[derive(Default)]
struct Counters {
    queries_submitted: AtomicU64,
    queries_completed: AtomicU64,
    morsels_executed: AtomicU64,
}

struct Registry {
    /// Active queries, in submission order. Entries are removed once their
    /// dispatcher drains (their in-flight morsels finish on the workers
    /// that hold them).
    active: Vec<Arc<dyn Job>>,
    shutdown: bool,
}

struct Shared {
    registry: Mutex<Registry>,
    work_ready: Condvar,
    /// Round-robin cursor so concurrent queries share the workers.
    rr: AtomicUsize,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A long-lived worker pool with a query submission queue. See the module
/// docs for the full picture.
pub struct Scheduler {
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
    cache: Arc<CodeCache>,
    compile_server: Arc<CompileServer>,
    elasticity: MorselElasticity,
    counters: Arc<Counters>,
}

impl Scheduler {
    /// A scheduler with `workers` long-lived threads (clamped to ≥1), an
    /// untimed compile-cost model, and default elasticity bounds.
    pub fn new(workers: usize) -> Scheduler {
        Scheduler::with_config(workers, CostModel::untimed(), ElasticityConfig::default())
    }

    /// Full-control constructor: compile-cost model for the background
    /// compile server, and elasticity bounds for morsel sizing.
    pub fn with_config(
        workers: usize,
        cost_model: CostModel,
        elasticity: ElasticityConfig,
    ) -> Scheduler {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            registry: Mutex::new(Registry {
                active: Vec::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            rr: AtomicUsize::new(0),
        });
        let threads = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("adaptvm-worker-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        let cache = Arc::new(CodeCache::new(SCHEDULER_CACHE_CAPACITY));
        let compile_server = Arc::new(CompileServer::with_cache(
            cost_model,
            cache.clone(),
            GENERIC_SITUATION,
        ));
        Scheduler {
            shared,
            threads: Mutex::new(threads),
            workers,
            cache,
            compile_server,
            elasticity: MorselElasticity::new(elasticity, DEFAULT_MORSEL_ROWS),
            counters: Arc::new(Counters::default()),
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared JIT code cache every query on this scheduler uses.
    pub fn cache(&self) -> &Arc<CodeCache> {
        &self.cache
    }

    /// The shared background compile server (publishing into
    /// [`Scheduler::cache`]).
    pub fn compile_server(&self) -> &Arc<CompileServer> {
        &self.compile_server
    }

    /// The elasticity-preferred morsel size right now.
    pub fn morsel_rows(&self) -> usize {
        self.elasticity.rows()
    }

    /// Feed a merged profile window into the elasticity controller (done
    /// automatically by `ParallelVm::on` runs; manual pipelines may report
    /// their own windows).
    pub fn observe_window(&self, window: &ProfileWindow) -> usize {
        self.elasticity.record(window)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            queries_submitted: self.counters.queries_submitted.load(Ordering::Relaxed),
            queries_completed: self.counters.queries_completed.load(Ordering::Relaxed),
            morsels_executed: self.counters.morsels_executed.load(Ordering::Relaxed),
        }
    }

    /// Queries currently registered (drained in-flight ones may already be
    /// removed).
    pub fn active_queries(&self) -> usize {
        self.shared.lock().active.len()
    }

    /// True once [`Scheduler::shutdown`] ran (or `Drop` began).
    pub fn is_shut_down(&self) -> bool {
        self.shared.lock().shutdown
    }

    /// Tear the pool down explicitly: new submissions are refused with
    /// [`SubmitError::ShutDown`], every already-accepted query runs to its
    /// finalize (no lost or leaked queries), and the worker threads are
    /// joined before this returns. Idempotent; `Drop` calls the same path,
    /// so dropping without an explicit shutdown behaves identically.
    ///
    /// Must not be called from a scheduler worker (a worker joining its
    /// own pool would deadlock).
    pub fn shutdown(&self) {
        {
            let mut reg = self.shared.lock();
            reg.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let threads: Vec<_> = {
            let mut guard = self.threads.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for t in threads {
            let _ = t.join();
        }
    }

    /// Admission check + registration under one lock: a query is either
    /// counted *and* visible to workers, or refused — never half-admitted.
    fn admit(&self, job: Option<Arc<dyn Job>>) -> Result<(), SubmitError> {
        let mut reg = self.shared.lock();
        if reg.shutdown {
            return Err(SubmitError::ShutDown);
        }
        self.counters
            .queries_submitted
            .fetch_add(1, Ordering::Relaxed);
        if let Some(job) = job {
            reg.active.push(job);
            drop(reg);
            self.shared.work_ready.notify_all();
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn make_core<'env, T, E, R>(
        &self,
        plan: &MorselPlan,
        cancel: CancelToken,
        deadline: Option<Instant>,
        trace: Option<Trace>,
        on_done: Option<DoneHook>,
        task: TaskFn<'env, T, E>,
        merge: MergeFn<'env, T, R>,
    ) -> (QueryCore<'env, T, E, R>, Receiver<Outcome<R, E>>)
    where
        T: Send,
        E: Send,
        R: Send,
    {
        let (tx, rx) = channel();
        let mut results = Vec::with_capacity(plan.len());
        results.resize_with(plan.len(), || None);
        // An explicit trace wins; otherwise inherit the submitting
        // thread's scope so nested runs land in the enclosing query's
        // profile. One relaxed load when tracing is off.
        let scope = trace.map(|t| (t, "query")).or_else(obs::current_scope);
        let core = QueryCore {
            dispatcher: Dispatcher::new(plan.morsels(), self.workers),
            task,
            results: Mutex::new(results),
            remaining: AtomicUsize::new(plan.len()),
            stop: AtomicBool::new(false),
            cancel,
            deadline,
            executed: Arc::new(AtomicU64::new(0)),
            failure: Mutex::new(None),
            finish: Mutex::new(Some(Finish { merge, tx, on_done })),
            counters: self.counters.clone(),
            scope,
        };
        (core, rx)
    }

    /// Enqueue a query: run `task` over every morsel of `plan` on the
    /// shared workers, then `merge` the morsel-ordered results (on the
    /// worker that completes the last morsel). Returns immediately;
    /// multiple submitted queries execute concurrently. Refused with
    /// [`SubmitError::ShutDown`] after [`Scheduler::shutdown`].
    pub fn submit<T, E, R, F, M>(
        &self,
        plan: MorselPlan,
        task: F,
        merge: M,
    ) -> Result<QueryHandle<R, E>, SubmitError>
    where
        T: Send + 'static,
        E: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'static,
        M: FnOnce(Vec<T>, DispatchStats) -> R + Send + 'static,
    {
        self.submit_opts(plan, SubmitOptions::default(), task, merge)
    }

    /// [`Scheduler::submit`] with per-query [`SubmitOptions`]: an external
    /// cancel token, a deadline, and (internally) a completion hook.
    pub fn submit_opts<T, E, R, F, M>(
        &self,
        plan: MorselPlan,
        opts: SubmitOptions,
        task: F,
        merge: M,
    ) -> Result<QueryHandle<R, E>, SubmitError>
    where
        T: Send + 'static,
        E: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'static,
        M: FnOnce(Vec<T>, DispatchStats) -> R + Send + 'static,
    {
        let morsels = plan.len();
        let SubmitOptions {
            cancel,
            deadline,
            trace,
            on_done,
        } = opts;
        let token = cancel.unwrap_or_default();
        let deadline = deadline.map(|d| Instant::now() + d);
        let (core, rx) = self.make_core(
            &plan,
            token.clone(),
            deadline,
            trace,
            on_done,
            Box::new(task),
            Box::new(merge),
        );
        let executed = core.executed.clone();
        let handle_trace = core.scope.as_ref().map(|(t, _)| t.clone());
        if morsels == 0 {
            // Nothing to dispatch: finalize inline (merge of an empty vec).
            self.admit(None)?;
            core.finalize();
        } else {
            self.admit(Some(Arc::new(core)))?;
        }
        Ok(QueryHandle {
            rx,
            morsels,
            cancel: token,
            executed,
            trace: handle_trace,
        })
    }

    /// Run a query to completion on the pool, **blocking the calling
    /// thread**, with a task that may borrow from the caller's stack —
    /// the drop-in scheduler replacement for [`crate::pool::run_morsels`]
    /// (same result contract: morsel-ordered results + dispatch stats,
    /// first error aborts, panics propagate).
    ///
    /// After [`Scheduler::shutdown`] the pool is gone, and this falls back
    /// to inline sequential execution on the calling thread — same results
    /// (the single-threaded loop is the determinism anchor), no lost
    /// queries. Use [`Scheduler::run_with`] to observe the rejection
    /// instead.
    ///
    /// Do not call from inside a scheduler task: a worker blocking on its
    /// own pool can deadlock once every worker does it.
    pub fn run<'env, T, E, F>(
        &self,
        plan: &MorselPlan,
        task: F,
    ) -> Result<(Vec<T>, DispatchStats), E>
    where
        T: Send + 'env,
        E: Send + 'env,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'env,
    {
        match self.run_with(plan, None, &task) {
            Ok(out) => Ok(out),
            Err(RunError::Task(e)) => Err(e),
            Err(RunError::Rejected(_)) => crate::pool::run_morsels(1, plan, task),
            Err(RunError::Cancelled | RunError::DeadlineExceeded) => {
                unreachable!("no cancel token was attached")
            }
        }
    }

    /// The cancellable flavor of [`Scheduler::run`]: the token is checked
    /// at every morsel boundary, and cancellation/deadline/rejection
    /// surface as typed [`RunError`]s instead of panics or fallbacks.
    pub fn run_with<'env, T, E, F>(
        &self,
        plan: &MorselPlan,
        cancel: Option<&CancelToken>,
        task: F,
    ) -> Result<(Vec<T>, DispatchStats), RunError<E>>
    where
        T: Send + 'env,
        E: Send + 'env,
        F: Fn(usize, &Morsel) -> Result<T, E> + Send + Sync + 'env,
    {
        if plan.is_empty() {
            return Ok((
                Vec::new(),
                DispatchStats {
                    executed: vec![0; self.workers],
                    steals: 0,
                },
            ));
        }
        let token = cancel.cloned().unwrap_or_default();
        type ScopedMerge<T> = fn(Vec<T>, DispatchStats) -> (Vec<T>, DispatchStats);
        let merge: ScopedMerge<T> = |values, stats| (values, stats);
        let (core, rx) = self.make_core(
            plan,
            token,
            None,
            None,
            None,
            Box::new(task),
            Box::new(merge),
        );
        let core = Arc::new(core);
        // SAFETY: the registry requires `'static` jobs because workers
        // outlive any particular caller, but this query's task/results only
        // borrow from `'env`. Soundness is restored by the protocol below:
        // (1) `rx.recv()` only returns once `remaining == 0`, i.e. after
        //     every task invocation has returned — no worker calls into the
        //     closure after that point (workers that still see the query
        //     only probe its drained dispatcher);
        // (2) before returning we spin until our `Arc` is the last strong
        //     reference, so no worker even *holds* the erased job once
        //     `'env` data can go out of scope. Workers drop their clone
        //     after every unit, and drained queries leave the registry on
        //     the next scan, so the wait is bounded by one morsel. The
        //     uniqueness check is `Arc::get_mut`, not `strong_count`: the
        //     former pairs an Acquire load with the workers' Release drops,
        //     establishing happens-before between their final accesses to
        //     the job and our return (a relaxed `strong_count` spin would
        //     not).
        // A rejected admission never registers the job, so the transmuted
        // clone drops right here, before `'env` can end.
        let mut core = core;
        let job: Arc<dyn Job + 'env> = core.clone();
        let job: Arc<dyn Job> =
            unsafe { std::mem::transmute::<Arc<dyn Job + 'env>, Arc<dyn Job + 'static>>(job) };
        if self.admit(Some(job)).is_err() {
            while Arc::get_mut(&mut core).is_none() {
                std::thread::yield_now();
            }
            return Err(RunError::Rejected("scheduler is shut down".into()));
        }
        let outcome = rx.recv().expect("query finalizes exactly once");
        while Arc::get_mut(&mut core).is_none() {
            std::thread::yield_now();
        }
        match outcome {
            Ok(r) => Ok(r),
            Err(Abort::Error(e)) => Err(RunError::Task(e)),
            Err(Abort::Cancelled(CancelReason::Cancelled)) => Err(RunError::Cancelled),
            Err(Abort::Cancelled(CancelReason::DeadlineExceeded)) => {
                Err(RunError::DeadlineExceeded)
            }
            Err(Abort::Panic(p)) => resume_unwind(p),
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers)
            .field("active_queries", &self.active_queries())
            .field("morsel_rows", &self.morsel_rows())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker main loop: pick an active query round-robin, execute one
/// morsel, repeat; park when the registry is empty; exit on shutdown after
/// the registry drains.
fn worker_loop(worker: usize, shared: &Shared) {
    loop {
        let job: Arc<dyn Job> = {
            let mut reg = shared.lock();
            loop {
                // Retire drained queries first (their in-flight morsels
                // finish on whichever workers hold them).
                reg.active.retain(|j| !j.drained());
                if !reg.active.is_empty() {
                    let idx = shared.rr.fetch_add(1, Ordering::Relaxed) % reg.active.len();
                    break reg.active[idx].clone();
                }
                if reg.shutdown {
                    return;
                }
                reg = shared
                    .work_ready
                    .wait(reg)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Run one unit then rescan: the rotation keeps concurrent queries
        // progressing together instead of draining one before the next.
        let _ = job.run_unit(worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_run_matches_scoped_pool() {
        let data: Vec<i64> = (0..50_000).map(|i| (i * 17) % 1000 - 500).collect();
        let plan = MorselPlan::new(data.len(), 1024);
        let (seq, _) = crate::pool::run_morsels(1, &plan, |_, m| {
            Ok::<i64, ()>(data[m.start..m.end()].iter().sum())
        })
        .unwrap();
        for workers in [1, 2, 4, 8] {
            let scheduler = Scheduler::new(workers);
            let (parts, stats) = scheduler
                .run(&plan, |_, m| {
                    Ok::<i64, ()>(data[m.start..m.end()].iter().sum())
                })
                .unwrap();
            assert_eq!(parts, seq, "workers={workers}");
            assert_eq!(stats.executed.iter().sum::<u64>(), plan.len() as u64);
        }
    }

    #[test]
    fn submit_joins_merged_result() {
        let scheduler = Scheduler::new(4);
        let data: Arc<Vec<i64>> = Arc::new((0..10_000).collect());
        let plan = MorselPlan::new(data.len(), 256);
        let morsels = plan.len();
        let d = data.clone();
        let handle = scheduler
            .submit(
                plan,
                move |_, m| Ok::<i64, ()>(d[m.start..m.end()].iter().sum()),
                |parts, stats| (parts.iter().sum::<i64>(), stats),
            )
            .unwrap();
        assert_eq!(handle.morsels(), morsels);
        let (total, stats) = handle.join().unwrap();
        assert_eq!(total, data.iter().sum::<i64>());
        assert_eq!(stats.executed.iter().sum::<u64>(), morsels as u64);
    }

    #[test]
    fn concurrent_queries_share_the_pool() {
        let scheduler = Scheduler::new(4);
        let handles: Vec<_> = (0..6)
            .map(|q| {
                let base = q as i64 * 1000;
                scheduler
                    .submit(
                        MorselPlan::new(5_000, 128),
                        move |_, m| Ok::<i64, ()>(base + m.len as i64),
                        |parts, _| parts.iter().sum::<i64>(),
                    )
                    .unwrap()
            })
            .collect();
        for (q, h) in handles.into_iter().enumerate() {
            let morsels = 5_000usize.div_ceil(128) as i64;
            let expect = q as i64 * 1000 * morsels + 5_000;
            assert_eq!(h.join().unwrap(), expect, "query {q}");
        }
        let stats = scheduler.stats();
        assert_eq!(stats.queries_submitted, 6);
        assert_eq!(stats.queries_completed, 6);
        assert_eq!(stats.morsels_executed, 6 * 5_000u64.div_ceil(128));
    }

    #[test]
    fn errors_abort_and_surface() {
        let scheduler = Scheduler::new(4);
        let plan = MorselPlan::new(64, 1);
        let r = scheduler.run(&plan, |_, m| {
            if m.index == 13 {
                Err("boom")
            } else {
                Ok(m.index)
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
        // The pool survives an aborted query.
        let plan = MorselPlan::new(10, 2);
        let (v, _) = scheduler
            .run(&plan, |_, m| Ok::<usize, ()>(m.index))
            .unwrap();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn task_panic_resumes_on_joiner() {
        let scheduler = Scheduler::new(2);
        let plan = MorselPlan::new(16, 1);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = scheduler.run(&plan, |_, m| {
                if m.index == 7 {
                    panic!("task exploded");
                }
                Ok::<usize, ()>(m.index)
            });
        }));
        assert!(caught.is_err());
        // Workers are intact afterwards.
        let (v, _) = scheduler
            .run(&MorselPlan::new(4, 1), |_, m| Ok::<usize, ()>(m.index))
            .unwrap();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn empty_plan_completes_immediately() {
        let scheduler = Scheduler::new(2);
        let handle = scheduler
            .submit(
                MorselPlan::new(0, 8),
                |_, _| Ok::<usize, ()>(0),
                |parts, _| parts.len(),
            )
            .unwrap();
        assert_eq!(handle.join().unwrap(), 0);
        let (v, stats) = scheduler
            .run(&MorselPlan::new(0, 8), |_, _| Ok::<usize, ()>(0))
            .unwrap();
        assert!(v.is_empty());
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn join_deadline_bounds_the_wait() {
        let scheduler = Scheduler::new(2);
        let handle = scheduler
            .submit(
                MorselPlan::new(1_000, 10),
                |_, m| Ok::<usize, ()>(m.len),
                |parts, _| parts.iter().sum::<usize>(),
            )
            .unwrap();
        let joined = handle.join_deadline(Duration::from_secs(30));
        assert_eq!(joined, Some(Ok(1_000)));
    }

    #[test]
    fn cancel_skips_remaining_morsels_and_surfaces() {
        let scheduler = Scheduler::new(2);
        // A slow query: each morsel sleeps, so cancellation lands while
        // most of the plan is still queued.
        let plan = MorselPlan::new(400, 1);
        let planned = plan.len() as u64;
        let handle = scheduler
            .submit(
                plan,
                |_, m| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok::<usize, ()>(m.len)
                },
                |parts, _| parts.len(),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        handle.cancel();
        assert!(handle.cancel_token().is_cancelled());
        let executed_view = handle.executed.clone();
        match handle.join() {
            Err(QueryError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(
            executed_view.load(Ordering::Relaxed) < planned,
            "cancellation must skip some of the {planned} morsels"
        );
        // The pool is intact: a follow-up query completes exactly.
        let (v, _) = scheduler
            .run(&MorselPlan::new(10, 2), |_, m| Ok::<usize, ()>(m.index))
            .unwrap();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn deadline_aborts_only_the_slow_query() {
        let scheduler = Scheduler::new(2);
        let slow = scheduler
            .submit_opts(
                MorselPlan::new(200, 1),
                SubmitOptions::default().with_deadline(Duration::from_millis(20)),
                |_, m| {
                    std::thread::sleep(Duration::from_millis(3));
                    Ok::<usize, ()>(m.len)
                },
                |parts, _| parts.len(),
            )
            .unwrap();
        let quick = scheduler
            .submit(
                MorselPlan::new(100, 10),
                |_, m| Ok::<usize, ()>(m.len),
                |parts, _| parts.iter().sum::<usize>(),
            )
            .unwrap();
        assert_eq!(quick.join().unwrap(), 100, "concurrent query unaffected");
        match slow.join() {
            Err(QueryError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn submit_after_shutdown_is_a_typed_error() {
        let scheduler = Scheduler::new(2);
        let before = scheduler
            .submit(
                MorselPlan::new(1_000, 50),
                |_, m| Ok::<usize, ()>(m.len),
                |parts, _| parts.iter().sum::<usize>(),
            )
            .unwrap();
        scheduler.shutdown();
        assert!(scheduler.is_shut_down());
        // In-flight work finished (no lost queries), new work is refused.
        assert_eq!(before.join().unwrap(), 1_000);
        let refused = scheduler.submit(
            MorselPlan::new(10, 1),
            |_, m| Ok::<usize, ()>(m.len),
            |parts, _| parts.len(),
        );
        assert_eq!(refused.err(), Some(SubmitError::ShutDown));
        let stats = scheduler.stats();
        assert_eq!(stats.queries_submitted, stats.queries_completed);
        // run() degrades to inline execution rather than losing the query…
        let (v, _) = scheduler
            .run(&MorselPlan::new(6, 2), |_, m| Ok::<usize, ()>(m.index))
            .unwrap();
        assert_eq!(v, vec![0, 1, 2]);
        // …while run_with reports the rejection.
        match scheduler.run_with(&MorselPlan::new(6, 2), None, |_, m| {
            Ok::<usize, ()>(m.index)
        }) {
            Err(RunError::Rejected(_)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        // Shutdown is idempotent and Drop after shutdown is a no-op.
        scheduler.shutdown();
    }

    #[test]
    fn elasticity_grows_and_shrinks_within_bounds() {
        let e = MorselElasticity::new(ElasticityConfig::default(), DEFAULT_MORSEL_ROWS);
        let grow = ProfileWindow {
            morsels: 64,
            steals: 0,
            trace_executions: 100,
            fallbacks: 0,
        };
        let mut last = e.rows();
        for _ in 0..10 {
            let now = e.record(&grow);
            assert!(now >= last);
            assert!(now <= ElasticityConfig::default().max_rows);
            last = now;
        }
        assert_eq!(e.rows(), ElasticityConfig::default().max_rows);
        let shrink = ProfileWindow {
            morsels: 16,
            steals: 8,
            trace_executions: 0,
            fallbacks: 4,
        };
        for _ in 0..12 {
            e.record(&shrink);
        }
        assert_eq!(e.rows(), ElasticityConfig::default().min_rows);
        // Hold: interpreted, balanced window.
        let hold = ProfileWindow {
            morsels: 64,
            steals: 1,
            trace_executions: 0,
            fallbacks: 10,
        };
        let before = e.rows();
        e.record(&hold);
        assert_eq!(e.rows(), before);
    }

    #[test]
    fn scheduler_is_debuggable_and_counts() {
        let scheduler = Scheduler::new(3);
        assert_eq!(scheduler.workers(), 3);
        let _ = format!("{scheduler:?}");
        let (_, stats) = scheduler
            .run(&MorselPlan::new(100, 10), |_, m| Ok::<usize, ()>(m.len))
            .unwrap();
        assert_eq!(stats.executed.len(), 3);
        assert_eq!(scheduler.stats().morsels_executed, 10);
    }
}
