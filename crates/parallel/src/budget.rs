//! Byte-accounted memory budgets for out-of-core execution.
//!
//! A [`MemoryBudget`] is the contract between an operator that wants to
//! materialize state — a hash-join build side, an aggregation table —
//! and the memory the system is willing to grant it. Operators **charge**
//! the budget before materializing and **release** when done; a charge
//! that would overshoot the limit fails with a typed [`BudgetExceeded`],
//! and the operator reacts by *spilling* instead (see
//! `adaptvm_relational::spill` for the grace-hash join built on this).
//!
//! The budget is interior-mutable (atomics), so one instance can be
//! shared by reference across worker threads or wrapped in an
//! [`std::sync::Arc`] and shared across concurrent queries — all charges
//! land in the same byte account either way.
//!
//! ```
//! use adaptvm_parallel::MemoryBudget;
//!
//! let budget = MemoryBudget::bytes(1024);
//! assert_eq!(budget.remaining(), 1024);
//!
//! // Charges are byte-accounted and fail typed once the limit would be
//! // overshot — the caller spills instead of allocating.
//! budget.try_charge(1000).unwrap();
//! let err = budget.try_charge(100).unwrap_err();
//! assert_eq!(err.requested, 100);
//! assert_eq!(err.in_use, 1000);
//! assert_eq!(err.limit, 1024);
//!
//! budget.release(1000);
//! assert_eq!(budget.used(), 0);
//!
//! // The RAII flavor releases on drop.
//! {
//!     let lease = budget.lease(512).unwrap();
//!     assert_eq!(lease.bytes(), 512);
//!     assert_eq!(budget.used(), 512);
//! }
//! assert_eq!(budget.used(), 0);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A charge would overshoot the budget's limit. The operator should spill
/// (or shed) instead of materializing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes the failed charge asked for.
    pub requested: usize,
    /// Bytes already charged when the request was made.
    pub in_use: usize,
    /// The budget's limit.
    pub limit: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory budget exceeded: requested {} bytes with {} of {} in use",
            self.requested, self.in_use, self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A byte-accounted memory budget shared by the operators of one query
/// (or, via [`std::sync::Arc`], by many queries): charges either fit
/// under the limit atomically or fail with [`BudgetExceeded`].
#[derive(Debug)]
pub struct MemoryBudget {
    limit: usize,
    in_use: AtomicUsize,
}

impl MemoryBudget {
    /// A budget of `limit` bytes.
    pub const fn bytes(limit: usize) -> MemoryBudget {
        MemoryBudget {
            limit,
            in_use: AtomicUsize::new(0),
        }
    }

    /// A budget that never rejects a charge (limit = `usize::MAX`).
    /// Charging is still accounted, so [`MemoryBudget::used`] reports the
    /// would-be footprint.
    pub const fn unlimited() -> MemoryBudget {
        MemoryBudget::bytes(usize::MAX)
    }

    /// The limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.in_use.load(Ordering::Acquire)
    }

    /// Bytes still chargeable before the limit.
    pub fn remaining(&self) -> usize {
        self.limit.saturating_sub(self.used())
    }

    /// Charge `bytes` against the budget, or fail typed if the charge
    /// would overshoot the limit. Success must be paired with a
    /// [`MemoryBudget::release`] of the same amount (or use
    /// [`MemoryBudget::lease`] for the RAII form).
    pub fn try_charge(&self, bytes: usize) -> Result<(), BudgetExceeded> {
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(bytes);
            if next > self.limit {
                crate::obs::emit(crate::obs::EventKind::BudgetRefused {
                    bytes: bytes as u64,
                });
                return Err(BudgetExceeded {
                    requested: bytes,
                    in_use: current,
                    limit: self.limit,
                });
            }
            match self.in_use.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    crate::obs::emit(crate::obs::EventKind::BudgetCharge {
                        bytes: bytes as u64,
                    });
                    return Ok(());
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// Return `bytes` to the budget. Releasing more than is in use clamps
    /// to zero (a double-release bug should not poison the account).
    pub fn release(&self, bytes: usize) {
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.in_use.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    crate::obs::emit(crate::obs::EventKind::BudgetRelease {
                        bytes: bytes as u64,
                    });
                    return;
                }
                Err(actual) => current = actual,
            }
        }
    }

    /// The RAII form of [`MemoryBudget::try_charge`]: the returned lease
    /// releases its bytes when dropped.
    pub fn lease(&self, bytes: usize) -> Result<BudgetLease<'_>, BudgetExceeded> {
        self.try_charge(bytes)?;
        Ok(BudgetLease {
            budget: self,
            bytes,
        })
    }
}

/// A held charge against a [`MemoryBudget`], released on drop.
#[derive(Debug)]
pub struct BudgetLease<'a> {
    budget: &'a MemoryBudget,
    bytes: usize,
}

impl BudgetLease<'_> {
    /// Bytes this lease holds.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn charge_release_roundtrip() {
        let b = MemoryBudget::bytes(100);
        assert_eq!(b.limit(), 100);
        b.try_charge(60).unwrap();
        assert_eq!(b.used(), 60);
        assert_eq!(b.remaining(), 40);
        let err = b.try_charge(41).unwrap_err();
        assert_eq!(
            err,
            BudgetExceeded {
                requested: 41,
                in_use: 60,
                limit: 100
            }
        );
        assert!(err.to_string().contains("41"));
        b.try_charge(40).unwrap();
        b.release(100);
        assert_eq!(b.used(), 0);
        // Over-release clamps instead of wrapping.
        b.release(7);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn unlimited_accounts_without_rejecting() {
        let b = MemoryBudget::unlimited();
        b.try_charge(usize::MAX / 2).unwrap();
        b.try_charge(usize::MAX / 2).unwrap();
        assert!(b.used() > 0);
    }

    #[test]
    fn lease_releases_on_drop_and_shares_across_threads() {
        let b = Arc::new(MemoryBudget::bytes(1_000_000));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let lease = b.lease(13).unwrap();
                        assert!(b.used() >= lease.bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(b.used(), 0);
    }
}
