//! TPC-H-style data and the paper's flagship queries.
//!
//! §I stakes the motivation on TPC-H Q1: "HyPer claims the fastest time
//! whereas [Gubner & Boncz, ADMS'17] vectorized execution can beat a
//! program similar to HyPer's statically generated code by applying a mix
//! of optimizations (i.e. smaller data types and an adaptively triggered
//! pre-aggregation)". This module reproduces that experiment's structure:
//!
//! * [`lineitem`] — a deterministic TPC-H-shaped `lineitem` generator,
//! * Q1 in three engine styles: [`q1_vectorized`] (X100-style chunked
//!   kernels + hash agg), [`q1_fused`] (the single fused loop a HyPer-style
//!   whole-pipeline codegen emits), [`q1_adaptive`] (vectorized + compact
//!   data types + adaptive pre-aggregation — the paper's "mix"),
//! * Q6 as a *DSL program* ([`q6_program`]) so the full adaptive VM
//!   (interpret / JIT / tuple-at-a-time) runs it end to end, plus
//!   [`q6_reference`] for validation,
//! * a Q3-style join query ([`q3_hash`]): `lineitem ⋈ orders` revenue
//!   through the multimap [`HashTable`](crate::join::HashTable) in three
//!   probe styles ([`JoinStrategy`]), with exact integer fixed-point
//!   revenue — bit-identical across strategies, chunk sizes, and (via
//!   `crate::parallel::q3_parallel`) worker counts.

use adaptvm_dsl::ast::Program;
use adaptvm_dsl::parser::parse_program;
use adaptvm_storage::array::Array;
use adaptvm_storage::gen as datagen;
use adaptvm_storage::schema::{Field, Schema, Table};
use adaptvm_storage::ScalarType;

use crate::agg::{AdaptiveAggregator, PreAgg};

/// Q1's grouping: `l_returnflag` (3 values) × `l_linestatus` (2 values).
pub const Q1_GROUPS: i64 = 6;

/// Shipdate domain: days since epoch, 1992-01-01..1998-12-01 ≈ 0..2520.
pub const SHIPDATE_MAX: i64 = 2520;

/// Q1's date predicate (`l_shipdate <= DATE '1998-09-02'` ≈ day 2430).
pub const Q1_SHIPDATE: i64 = 2430;

/// Generate a TPC-H-shaped `lineitem` table with `n` rows.
///
/// Columns (types chosen wide, as a generic engine would store them;
/// the compact-types optimization narrows them adaptively):
/// `l_quantity` i64 (1..=50), `l_extendedprice` f64, `l_discount` f64
/// (0.00..=0.10), `l_tax` f64 (0.00..=0.08), `l_group` i64
/// (returnflag×2+linestatus, 0..6), `l_shipdate` i64 (days).
pub fn lineitem(n: usize, seed: u64) -> Table {
    Table::new(
        Schema::new(vec![
            Field::new("l_quantity", ScalarType::I64),
            Field::new("l_extendedprice", ScalarType::F64),
            Field::new("l_discount", ScalarType::F64),
            Field::new("l_tax", ScalarType::F64),
            Field::new("l_group", ScalarType::I64),
            Field::new("l_shipdate", ScalarType::I64),
        ]),
        vec![
            datagen::uniform_i64(n, 1, 50, seed),
            // Prices are DECIMAL(12,2) in TPC-H: generate whole cents.
            scale_down(datagen::uniform_i64(
                n,
                90_000,
                10_500_000,
                seed.wrapping_add(1),
            )),
            // Discounts/taxes come in whole cents.
            scale_down(datagen::uniform_i64(n, 0, 10, seed.wrapping_add(2))),
            scale_down(datagen::uniform_i64(n, 0, 8, seed.wrapping_add(3))),
            datagen::uniform_i64(n, 0, Q1_GROUPS - 1, seed.wrapping_add(4)),
            datagen::uniform_i64(n, 0, SHIPDATE_MAX, seed.wrapping_add(5)),
        ],
    )
    .expect("generator produces consistent columns")
}

fn scale_down(ints: Array) -> Array {
    Array::from(
        ints.to_i64_vec()
            .expect("integer input")
            .into_iter()
            .map(|v| v as f64 / 100.0)
            .collect::<Vec<f64>>(),
    )
}

/// One Q1 result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Q1Row {
    /// returnflag×2+linestatus.
    pub group: i64,
    /// `sum(l_quantity)`.
    pub sum_qty: f64,
    /// `sum(l_extendedprice)`.
    pub sum_base: f64,
    /// `sum(l_extendedprice · (1 − l_discount))`.
    pub sum_disc_price: f64,
    /// `sum(l_extendedprice · (1 − l_discount) · (1 + l_tax))`.
    pub sum_charge: f64,
    /// `count(*)`.
    pub count: i64,
}

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() / scale < 1e-9
}

/// Compare two Q1 results with floating-point tolerance (the strategies
/// sum in different orders).
pub fn q1_results_match(a: &[Q1Row], b: &[Q1Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.group == y.group
                && x.count == y.count
                && close(x.sum_qty, y.sum_qty)
                && close(x.sum_base, y.sum_base)
                && close(x.sum_disc_price, y.sum_disc_price)
                && close(x.sum_charge, y.sum_charge)
        })
}

pub(crate) struct Q1Acc {
    pub(crate) sum_qty: f64,
    pub(crate) sum_base: f64,
    pub(crate) sum_disc_price: f64,
    pub(crate) sum_charge: f64,
    pub(crate) count: i64,
}

impl Q1Acc {
    /// Merge a partial accumulator into this one. Merging per-chunk
    /// partials **in chunk order** reproduces the sequential fold's
    /// floating-point addition tree exactly — the determinism hook the
    /// parallel pipelines rely on.
    pub(crate) fn merge(&mut self, other: &Q1Acc) {
        self.sum_qty += other.sum_qty;
        self.sum_base += other.sum_base;
        self.sum_disc_price += other.sum_disc_price;
        self.sum_charge += other.sum_charge;
        self.count += other.count;
    }
}

pub(crate) fn q1_rows(accs: Vec<Q1Acc>) -> Vec<Q1Row> {
    accs.into_iter()
        .enumerate()
        .filter(|(_, a)| a.count > 0)
        .map(|(g, a)| Q1Row {
            group: g as i64,
            sum_qty: a.sum_qty,
            sum_base: a.sum_base,
            sum_disc_price: a.sum_disc_price,
            sum_charge: a.sum_charge,
            count: a.count,
        })
        .collect()
}

pub(crate) fn new_accs() -> Vec<Q1Acc> {
    (0..Q1_GROUPS)
        .map(|_| Q1Acc {
            sum_qty: 0.0,
            sum_base: 0.0,
            sum_disc_price: 0.0,
            sum_charge: 0.0,
            count: 0,
        })
        .collect()
}

/// One chunk's Q1 partial accumulators, X100-style: filter, then one
/// kernel call per operation, materializing every intermediate (the X100
/// cost structure). Rows `[offset, offset+len)`.
pub(crate) fn q1_vectorized_chunk(table: &Table, offset: usize, len: usize) -> Vec<Q1Acc> {
    use adaptvm_dsl::ast::ScalarOp;
    use adaptvm_kernels::{filter_cmp, map_apply, FilterFlavor, MapMode, Operand};
    use adaptvm_storage::scalar::Scalar;

    let qty = table.column_by_name("l_quantity").expect("schema");
    let price = table.column_by_name("l_extendedprice").expect("schema");
    let disc = table.column_by_name("l_discount").expect("schema");
    let tax = table.column_by_name("l_tax").expect("schema");
    let group = table.column_by_name("l_group").expect("schema");
    let ship = table.column_by_name("l_shipdate").expect("schema");

    let (qty_c, price_c, disc_c, tax_c, group_c, ship_c) = (
        qty.slice(offset, len),
        price.slice(offset, len),
        disc.slice(offset, len),
        tax.slice(offset, len),
        group.slice(offset, len),
        ship.slice(offset, len),
    );

    let mut accs = new_accs();
    let sel = filter_cmp(
        ScalarOp::Le,
        &[
            Operand::Col(&ship_c),
            Operand::Const(Scalar::I64(Q1_SHIPDATE)),
        ],
        None,
        FilterFlavor::SelVecLoop,
    )
    .expect("comparison kernel");
    let one_minus_disc = map_apply(
        ScalarOp::Sub,
        &[Operand::Const(Scalar::F64(1.0)), Operand::Col(&disc_c)],
        Some(&sel),
        MapMode::Selective,
    )
    .expect("map kernel");
    let disc_price = map_apply(
        ScalarOp::Mul,
        &[Operand::Col(&price_c), Operand::Col(&one_minus_disc)],
        Some(&sel),
        MapMode::Selective,
    )
    .expect("map kernel");
    let one_plus_tax = map_apply(
        ScalarOp::Add,
        &[Operand::Const(Scalar::F64(1.0)), Operand::Col(&tax_c)],
        Some(&sel),
        MapMode::Selective,
    )
    .expect("map kernel");
    let charge = map_apply(
        ScalarOp::Mul,
        &[Operand::Col(&disc_price), Operand::Col(&one_plus_tax)],
        Some(&sel),
        MapMode::Selective,
    )
    .expect("map kernel");

    let groups = group_c.as_i64().expect("i64 column");
    let qtys = qty_c.as_i64().expect("i64 column");
    let prices = price_c.as_f64().expect("f64 column");
    let dp = disc_price.as_f64().expect("f64 result");
    let ch = charge.as_f64().expect("f64 result");
    for &i in sel.indices() {
        let i = i as usize;
        let a = &mut accs[groups[i] as usize];
        a.sum_qty += qtys[i] as f64;
        a.sum_base += prices[i];
        a.sum_disc_price += dp[i];
        a.sum_charge += ch[i];
        a.count += 1;
    }
    accs
}

/// Q1, X100-style: chunked vectorized kernels, per-chunk partial
/// accumulators merged in chunk order. (The chunk-ordered merge is what
/// `parallel::q1_parallel_vectorized` reproduces bit-for-bit.)
pub fn q1_vectorized(table: &Table, chunk_rows: usize) -> Vec<Q1Row> {
    let chunk_rows = chunk_rows.max(1);
    let mut accs = new_accs();
    let mut offset = 0;
    while offset < table.rows() {
        let n = chunk_rows.min(table.rows() - offset);
        let partial = q1_vectorized_chunk(table, offset, n);
        for (a, p) in accs.iter_mut().zip(&partial) {
            a.merge(p);
        }
        offset += n;
    }
    q1_rows(accs)
}

/// Q1 partials over rows `[start, start+len)`, HyPer-style: the fused
/// tuple-at-a-time loop a whole-pipeline code generator emits (no
/// intermediates, one pass, branch per tuple).
pub(crate) fn q1_fused_range(table: &Table, start: usize, len: usize) -> Vec<Q1Acc> {
    let qty = table
        .column_by_name("l_quantity")
        .expect("schema")
        .as_i64()
        .expect("i64");
    let price = table
        .column_by_name("l_extendedprice")
        .expect("schema")
        .as_f64()
        .expect("f64");
    let disc = table
        .column_by_name("l_discount")
        .expect("schema")
        .as_f64()
        .expect("f64");
    let tax = table
        .column_by_name("l_tax")
        .expect("schema")
        .as_f64()
        .expect("f64");
    let group = table
        .column_by_name("l_group")
        .expect("schema")
        .as_i64()
        .expect("i64");
    let ship = table
        .column_by_name("l_shipdate")
        .expect("schema")
        .as_i64()
        .expect("i64");

    let mut accs = new_accs();
    let end = (start + len).min(qty.len());
    for i in start..end {
        if ship[i] <= Q1_SHIPDATE {
            let dp = price[i] * (1.0 - disc[i]);
            let a = &mut accs[group[i] as usize];
            a.sum_qty += qty[i] as f64;
            a.sum_base += price[i];
            a.sum_disc_price += dp;
            a.sum_charge += dp * (1.0 + tax[i]);
            a.count += 1;
        }
    }
    accs
}

/// Q1, HyPer-style: the single fused tuple-at-a-time loop over the whole
/// table.
pub fn q1_fused(table: &Table) -> Vec<Q1Row> {
    q1_rows(q1_fused_range(table, 0, table.rows()))
}

/// The compact-typed lineitem columns (the storage a compact-data-types
/// engine keeps): quantity/discount/tax/group as `i8` (discount and tax in
/// whole cents), shipdate as `i16`. Narrowing happens once at load time —
/// [`CompactLineitem::from_table`] — not per query.
pub struct CompactLineitem {
    /// Quantity, 1..=50.
    pub qty: Vec<i8>,
    /// Extended price in whole cents (`i32`: the fixed-point compact type).
    pub price_c: Vec<i32>,
    /// Discount in whole cents.
    pub disc_c: Vec<i8>,
    /// Tax in whole cents.
    pub tax_c: Vec<i8>,
    /// returnflag×2+linestatus.
    pub group: Vec<i8>,
    /// Shipdate in days.
    pub ship: Vec<i16>,
}

impl CompactLineitem {
    /// Narrow a wide lineitem table (done once, at load time).
    pub fn from_table(table: &Table) -> CompactLineitem {
        CompactLineitem {
            qty: table
                .column_by_name("l_quantity")
                .expect("schema")
                .to_i64_vec()
                .expect("i64")
                .iter()
                .map(|&v| v as i8)
                .collect(),
            price_c: table
                .column_by_name("l_extendedprice")
                .expect("schema")
                .as_f64()
                .expect("f64")
                .iter()
                .map(|&p| (p * 100.0).round() as i32)
                .collect(),
            disc_c: table
                .column_by_name("l_discount")
                .expect("schema")
                .as_f64()
                .expect("f64")
                .iter()
                .map(|&d| (d * 100.0).round() as i8)
                .collect(),
            tax_c: table
                .column_by_name("l_tax")
                .expect("schema")
                .as_f64()
                .expect("f64")
                .iter()
                .map(|&t| (t * 100.0).round() as i8)
                .collect(),
            group: table
                .column_by_name("l_group")
                .expect("schema")
                .to_i64_vec()
                .expect("i64")
                .iter()
                .map(|&g| g as i8)
                .collect(),
            ship: table
                .column_by_name("l_shipdate")
                .expect("schema")
                .to_i64_vec()
                .expect("i64")
                .iter()
                .map(|&s| s as i16)
                .collect(),
        }
    }
}

/// Q1 with the paper's "mix of optimizations" (§I, citing ADMS'17):
/// **compact data types** — prices as `i32` cents, discount/tax as `i8`
/// cents, shipdate as `i16` — with all aggregate arithmetic in exact
/// 64-bit *integer* fixed point (scaled back to decimals once at the end),
/// the §III-C selectivity adaptation (inline filter at high pass rates,
/// selection vector at low ones), and the adaptively triggered
/// pre-aggregation (6 groups → direct-indexed local accumulators).
pub fn q1_adaptive(compact: &CompactLineitem, chunk_rows: usize) -> Vec<Q1Row> {
    let iaccs = q1_adaptive_range(compact, 0, compact.qty.len(), chunk_rows);
    q1_adaptive_rows(&iaccs)
}

/// The exact integer Q1 accumulators over rows `[start, start+len)`.
///
/// All aggregate arithmetic is 64-bit integer fixed point, so the
/// accumulators are **associative**: merging per-range results with
/// [`q1_adaptive_merge`] gives bit-identical sums in any split — the
/// parallel adaptive Q1 is exactly the sequential one.
pub(crate) fn q1_adaptive_range(
    compact: &CompactLineitem,
    start: usize,
    len: usize,
    chunk_rows: usize,
) -> [[i64; 5]; Q1_GROUPS as usize] {
    let mut agg = AdaptiveAggregator::new(PreAgg::Adaptive);
    let n = (start + len).min(compact.qty.len());
    let cutoff = Q1_SHIPDATE as i16;
    // Integer accumulators per group: qty, price (c), disc_price (c·1e2),
    // charge (c·1e4), count.
    let mut iaccs = [[0i64; 5]; Q1_GROUPS as usize];
    let mut offset = start;
    let mut sel: Vec<u32> = Vec::with_capacity(chunk_rows);
    let mut sample_keys: Vec<i64> = Vec::with_capacity(64);
    let mut zeros: Vec<f64> = Vec::with_capacity(64);
    let mut pass_rate = 0.5f64;

    /// # Safety
    /// `i < compact.qty.len()` and all compact columns have equal length
    /// (enforced by `CompactLineitem::from_table`); `group[i]` ∈ 0..6 by
    /// the generator's domain.
    #[inline(always)]
    unsafe fn accumulate(compact: &CompactLineitem, i: usize, iaccs: &mut [[i64; 5]; 6]) {
        // SAFETY: see above — the scan loop bounds `i` by the common
        // column length.
        unsafe {
            let price = *compact.price_c.get_unchecked(i) as i64;
            let dp = price * (100 - *compact.disc_c.get_unchecked(i) as i64); // cents·1e2
            let charge = dp * (100 + *compact.tax_c.get_unchecked(i) as i64); // cents·1e4
            let g = (*compact.group.get_unchecked(i) as usize) % 6;
            let a = iaccs.get_unchecked_mut(g);
            a[0] += *compact.qty.get_unchecked(i) as i64;
            a[1] += price;
            a[2] += dp;
            a[3] += charge;
            a[4] += 1;
        }
    }

    while offset < n {
        let end = (offset + chunk_rows).min(n);
        let chunk_len = end - offset;
        let mut passed = 0usize;
        // Sample the chunk prefix for the pre-aggregation trigger (kept
        // out of the hot loops).
        sample_keys.clear();
        sample_keys.extend(
            compact.group[offset..(offset + 64).min(end)]
                .iter()
                .map(|&g| g as i64),
        );
        if pass_rate > 0.8 {
            // Close-to-non-selective regime (§III-C): evaluate inline over
            // the narrow columns — no selection vector at all.
            for (i, &ship) in compact.ship[offset..end].iter().enumerate() {
                if ship <= cutoff {
                    // SAFETY: offset + i < n = common column length.
                    unsafe { accumulate(compact, offset + i, &mut iaccs) };
                    passed += 1;
                }
            }
        } else {
            // Selective regime: narrow filter first, math on survivors.
            sel.clear();
            for i in offset..end {
                if compact.ship[i] <= cutoff {
                    sel.push(i as u32);
                }
            }
            passed = sel.len();
            for &iu in &sel {
                // SAFETY: sel indices come from the bounded filter loop.
                unsafe { accumulate(compact, iu as usize, &mut iaccs) };
            }
        }
        let rate = passed as f64 / chunk_len.max(1) as f64;
        pass_rate = 0.3 * rate + 0.7 * pass_rate;
        // The pre-aggregation trigger keeps deciding (sampled keys only).
        zeros.resize(sample_keys.len(), 0.0);
        agg.push_chunk(&sample_keys, &zeros[..sample_keys.len()]);
        offset = end;
    }
    debug_assert_eq!(agg.preagg_used(), agg.chunks());
    iaccs
}

/// Merge integer Q1 accumulators (exact; associative and commutative).
pub(crate) fn q1_adaptive_merge(
    into: &mut [[i64; 5]; Q1_GROUPS as usize],
    other: &[[i64; 5]; Q1_GROUPS as usize],
) {
    for (a, b) in into.iter_mut().zip(other) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
    }
}

/// Scale the exact integer sums back to decimals once, at the very end.
pub(crate) fn q1_adaptive_rows(iaccs: &[[i64; 5]; Q1_GROUPS as usize]) -> Vec<Q1Row> {
    let mut accs = new_accs();
    for (g, ia) in iaccs.iter().enumerate() {
        accs[g] = Q1Acc {
            sum_qty: ia[0] as f64,
            sum_base: ia[1] as f64 / 1e2,
            sum_disc_price: ia[2] as f64 / 1e4,
            sum_charge: ia[3] as f64 / 1e6,
            count: ia[4],
        };
    }
    q1_rows(accs)
}

/// Reference Q1 (independent implementation for validation).
pub fn q1_reference(table: &Table) -> Vec<Q1Row> {
    q1_fused(table)
}

/// TPC-H Q6-style revenue query as a DSL program, runnable by the full VM:
///
/// ```sql
/// SELECT sum(l_extendedprice * l_discount) FROM lineitem
/// WHERE l_shipdate >= d AND l_shipdate < d+365
///   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
/// ```
///
/// Buffers: `l_price`, `l_disc`, `l_qty`, `l_ship` (all f64/i64 as in the
/// schema); the revenue accumulates in `rev` and is written to `revenue`.
pub fn q6_program(rows: i64, date_lo: i64) -> Program {
    let date_hi = date_lo + 365;
    let src = format!(
        r#"
        mut i
        mut rev
        i := 0
        rev := 0.0
        loop {{
          let price = read i l_price in {{
            let disc = read i l_disc in {{
              let qty = read i l_qty in {{
                let ship = read i l_ship in {{
                  let t = filter (\p s d q -> s >= {date_lo} && s < {date_hi} && d >= 0.05 && d <= 0.07 && q < 24) price ship disc qty in {{
                    let r = map (\p d -> p * d) t disc in {{
                      let s = fold sum 0.0 r in {{
                        rev := rev + s
                        i := i + len(price)
                      }}
                    }}
                  }}
                }}
              }}
            }}
          }}
          if i >= {rows} then {{ break }}
        }}
        write revenue 0 rev
        "#
    );
    parse_program(&src).expect("q6 source is well-formed")
}

/// TPC-H Q18's HAVING clause as a DSL program:
/// `sum(total for total in sums where total > threshold)` over the
/// aggregated per-order quantity sums, chunked through the same
/// loop/read/filter/fold shape as [`q6_program`] so the adaptive VM
/// treats it as a hot loop (interpret → trace → JIT per the configured
/// strategy). Buffer: `sums` (f64); the kept-quantity total is written
/// to `kept`.
///
/// Quantity sums are integer-valued f64 far below 2^53, so the chunked
/// fold is bit-identical to any other summation order —
/// [`crate::parallel::q18_parallel_vm`] exploits this to cross-check the
/// VM against the host filter exactly.
pub fn q18_having_program(rows: i64, threshold: f64) -> Program {
    let src = format!(
        r#"
        mut i
        mut tot
        i := 0
        tot := 0.0
        loop {{
          let s = read i sums in {{
            let t = filter (\x -> x > {threshold:?}) s in {{
              let k = fold sum 0.0 t in {{
                tot := tot + k
                i := i + len(s)
              }}
            }}
          }}
          if i >= {rows} then {{ break }}
        }}
        write kept 0 tot
        "#
    );
    parse_program(&src).expect("q18 HAVING source is well-formed")
}

/// Q6 input buffers from a lineitem table.
pub fn q6_buffers(table: &Table) -> adaptvm_vm::Buffers {
    adaptvm_vm::Buffers::new()
        .with_input(
            "l_price",
            table
                .column_by_name("l_extendedprice")
                .expect("schema")
                .clone(),
        )
        .with_input(
            "l_disc",
            table.column_by_name("l_discount").expect("schema").clone(),
        )
        .with_input(
            "l_qty",
            table.column_by_name("l_quantity").expect("schema").clone(),
        )
        .with_input(
            "l_ship",
            table.column_by_name("l_shipdate").expect("schema").clone(),
        )
}

/// Reference Q6.
pub fn q6_reference(table: &Table, date_lo: i64) -> f64 {
    let price = table
        .column_by_name("l_extendedprice")
        .expect("schema")
        .as_f64()
        .expect("f64");
    let disc = table
        .column_by_name("l_discount")
        .expect("schema")
        .as_f64()
        .expect("f64");
    let qty = table
        .column_by_name("l_quantity")
        .expect("schema")
        .as_i64()
        .expect("i64");
    let ship = table
        .column_by_name("l_shipdate")
        .expect("schema")
        .as_i64()
        .expect("i64");
    let date_hi = date_lo + 365;
    let mut rev = 0.0;
    for i in 0..price.len() {
        if ship[i] >= date_lo
            && ship[i] < date_hi
            && disc[i] >= 0.05
            && disc[i] <= 0.07
            && qty[i] < 24
        {
            rev += price[i] * disc[i];
        }
    }
    rev
}

/// TPC-H-shaped `orders` for the Q3-style join: dense unique
/// `o_orderkey` in `0..n` plus a uniform `o_orderdate` (days, same domain
/// as `l_shipdate`).
pub fn orders(n: usize, seed: u64) -> Table {
    Table::new(
        Schema::new(vec![
            Field::new("o_orderkey", ScalarType::I64),
            Field::new("o_orderdate", ScalarType::I64),
        ]),
        vec![
            Array::from((0..n as i64).collect::<Vec<i64>>()),
            datagen::uniform_i64(n, 0, SHIPDATE_MAX, seed.wrapping_add(100)),
        ],
    )
    .expect("generator produces consistent columns")
}

/// The lineitem slice the Q3-style join reads: `l_orderkey` drawn from
/// twice the orders key domain (so roughly half the probes miss — the
/// selective-join regime Bloom pre-filtering targets), plus price,
/// discount, and shipdate as in [`lineitem`].
pub fn lineitem_q3(n: usize, n_orders: usize, seed: u64) -> Table {
    Table::new(
        Schema::new(vec![
            Field::new("l_orderkey", ScalarType::I64),
            Field::new("l_extendedprice", ScalarType::F64),
            Field::new("l_discount", ScalarType::F64),
            Field::new("l_shipdate", ScalarType::I64),
        ]),
        vec![
            datagen::uniform_i64(n, 0, (2 * n_orders.max(1) - 1) as i64, seed),
            scale_down(datagen::uniform_i64(
                n,
                90_000,
                10_500_000,
                seed.wrapping_add(1),
            )),
            scale_down(datagen::uniform_i64(n, 0, 10, seed.wrapping_add(2))),
            datagen::uniform_i64(n, 0, SHIPDATE_MAX, seed.wrapping_add(5)),
        ],
    )
    .expect("generator produces consistent columns")
}

/// How the Q3-style join probes the build side (§I's three engine
/// styles, applied to a join pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// X100-style: per chunk, materialize the shipdate selection vector,
    /// then probe the survivors.
    Vectorized,
    /// HyPer-style: one fused tuple-at-a-time loop, filter and probe
    /// per row.
    Fused,
    /// The adaptive mix: per-chunk pass-rate tracking flips between the
    /// inline (fused-style) and selection-vector regimes, §III-C style.
    Adaptive,
}

impl JoinStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [JoinStrategy; 3] = [
        JoinStrategy::Vectorized,
        JoinStrategy::Fused,
        JoinStrategy::Adaptive,
    ];
}

/// The extracted, fixed-point probe-side columns of the Q3-style join:
/// prices and discounts in whole cents so every revenue accumulator is
/// exact 64-bit integer arithmetic (associative — the exactness anchor).
pub(crate) struct Q3Cols {
    pub(crate) key: Vec<i64>,
    pub(crate) price_c: Vec<i64>,
    pub(crate) disc_c: Vec<i64>,
    pub(crate) ship: Vec<i64>,
}

impl Q3Cols {
    pub(crate) fn from_table(lineitem: &Table) -> crate::ops::OpResult<Q3Cols> {
        let cents_col = |name: &str| -> crate::ops::OpResult<Vec<i64>> {
            Ok(lineitem
                .column_by_name(name)
                .map_err(adaptvm_kernels::KernelError::Storage)?
                .as_f64()
                .ok_or_else(|| {
                    adaptvm_kernels::KernelError::Precondition(format!("{name} must be f64"))
                })?
                .iter()
                .map(|&v| (v * 100.0).round() as i64)
                .collect())
        };
        Ok(Q3Cols {
            key: crate::ops::int_column(lineitem, "l_orderkey")?,
            price_c: cents_col("l_extendedprice")?,
            disc_c: cents_col("l_discount")?,
            ship: crate::ops::int_column(lineitem, "l_shipdate")?,
        })
    }
}

/// Build the Q3 build side: orders with `o_orderdate < date`, keyed by
/// `o_orderkey` with `o_orderdate` as payload.
pub fn q3_build_orders(
    orders: &Table,
    date: i64,
    bloom: bool,
) -> crate::ops::OpResult<crate::join::HashTable> {
    let keys = crate::ops::int_column(orders, "o_orderkey")?;
    let dates = crate::ops::int_column(orders, "o_orderdate")?;
    let mut bk = Vec::new();
    let mut bp = Vec::new();
    for (k, d) in keys.into_iter().zip(dates) {
        if d < date {
            bk.push(k);
            bp.push(d);
        }
    }
    let table = crate::join::HashTable::from_rows(&bk, &bp);
    Ok(if bloom { table.with_bloom() } else { table })
}

/// Exact fixed-point Q3 revenue over probe rows `[start, start+len)`,
/// chunk-at-a-time in the given probe style.
///
/// Per matched (lineitem, order) pair the revenue contribution is
/// `price_c · (100 − disc_c)` — cents × 1e2, an exact `i64`. Integer
/// addition is associative, so every strategy, chunk size, and range
/// split produces the **same** total: the hook `q3_parallel` uses to be
/// bit-identical to the sequential run for any worker count.
pub(crate) fn q3_probe_range(
    cols: &Q3Cols,
    table: &crate::join::HashTable,
    date: i64,
    strategy: JoinStrategy,
    start: usize,
    len: usize,
    chunk_rows: usize,
) -> i64 {
    let chunk_rows = chunk_rows.max(1);
    let end = (start + len).min(cols.key.len());
    let mut revenue = 0i64;
    // One matched pair's contribution (multiplicity-aware: duplicate
    // build keys contribute one term per match).
    let pair = |i: usize| cols.price_c[i] * (100 - cols.disc_c[i]);
    match strategy {
        JoinStrategy::Fused => {
            for i in start..end {
                if cols.ship[i] > date {
                    let matches = table.matches(cols.key[i]).len() as i64;
                    if matches > 0 {
                        revenue += matches * pair(i);
                    }
                }
            }
        }
        JoinStrategy::Vectorized => {
            let mut sel: Vec<u32> = Vec::with_capacity(chunk_rows);
            let mut offset = start;
            while offset < end {
                let chunk_end = (offset + chunk_rows).min(end);
                sel.clear();
                for i in offset..chunk_end {
                    if cols.ship[i] > date {
                        sel.push(i as u32);
                    }
                }
                for &i in &sel {
                    let i = i as usize;
                    let matches = table.matches(cols.key[i]).len() as i64;
                    if matches > 0 {
                        revenue += matches * pair(i);
                    }
                }
                offset = chunk_end;
            }
        }
        JoinStrategy::Adaptive => {
            // §III-C regime switch on the date filter's pass rate: inline
            // evaluation when nearly nothing is filtered out, selection
            // vector when the filter is selective.
            let mut sel: Vec<u32> = Vec::with_capacity(chunk_rows);
            let mut pass_rate = 0.5f64;
            let mut offset = start;
            while offset < end {
                let chunk_end = (offset + chunk_rows).min(end);
                let chunk_len = chunk_end - offset;
                let passed;
                if pass_rate > 0.8 {
                    let mut n = 0usize;
                    for i in offset..chunk_end {
                        if cols.ship[i] > date {
                            n += 1;
                            let matches = table.matches(cols.key[i]).len() as i64;
                            if matches > 0 {
                                revenue += matches * pair(i);
                            }
                        }
                    }
                    passed = n;
                } else {
                    sel.clear();
                    for i in offset..chunk_end {
                        if cols.ship[i] > date {
                            sel.push(i as u32);
                        }
                    }
                    passed = sel.len();
                    for &i in &sel {
                        let i = i as usize;
                        let matches = table.matches(cols.key[i]).len() as i64;
                        if matches > 0 {
                            revenue += matches * pair(i);
                        }
                    }
                }
                pass_rate = 0.3 * (passed as f64 / chunk_len.max(1) as f64) + 0.7 * pass_rate;
                offset = chunk_end;
            }
        }
    }
    revenue
}

/// Scale the exact fixed-point revenue (cents × 1e2) back to decimal.
pub(crate) fn q3_revenue_f64(fixed: i64) -> f64 {
    fixed as f64 / 1e4
}

/// The Q3-style join query, sequential:
///
/// ```sql
/// SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
/// FROM lineitem JOIN orders ON l_orderkey = o_orderkey
/// WHERE o_orderdate < :date AND l_shipdate > :date
/// ```
///
/// All revenue arithmetic is exact integer fixed point, so the result is
/// bit-identical across strategies, chunk sizes, and the morsel-parallel
/// `crate::parallel::q3_parallel`.
pub fn q3_hash(
    lineitem: &Table,
    orders: &Table,
    date: i64,
    strategy: JoinStrategy,
    chunk_rows: usize,
    bloom: bool,
) -> crate::ops::OpResult<f64> {
    let table = q3_build_orders(orders, date, bloom)?;
    let cols = Q3Cols::from_table(lineitem)?;
    Ok(q3_revenue_f64(q3_probe_range(
        &cols,
        &table,
        date,
        strategy,
        0,
        lineitem.rows(),
        chunk_rows,
    )))
}

/// Reference Q3 (independent nested-hash implementation in plain f64,
/// for validation within float tolerance).
pub fn q3_reference(lineitem: &Table, orders: &Table, date: i64) -> f64 {
    use std::collections::HashMap;
    let okey = orders
        .column_by_name("o_orderkey")
        .expect("schema")
        .to_i64_vec()
        .expect("i64");
    let odate = orders
        .column_by_name("o_orderdate")
        .expect("schema")
        .to_i64_vec()
        .expect("i64");
    let mut matching: HashMap<i64, usize> = HashMap::new();
    for (k, d) in okey.into_iter().zip(odate) {
        if d < date {
            *matching.entry(k).or_default() += 1;
        }
    }
    let lkey = lineitem
        .column_by_name("l_orderkey")
        .expect("schema")
        .to_i64_vec()
        .expect("i64");
    let price = lineitem
        .column_by_name("l_extendedprice")
        .expect("schema")
        .as_f64()
        .expect("f64");
    let disc = lineitem
        .column_by_name("l_discount")
        .expect("schema")
        .as_f64()
        .expect("f64");
    let ship = lineitem
        .column_by_name("l_shipdate")
        .expect("schema")
        .to_i64_vec()
        .expect("i64");
    let mut revenue = 0.0;
    for i in 0..lkey.len() {
        if ship[i] > date {
            if let Some(&m) = matching.get(&lkey[i]) {
                revenue += m as f64 * price[i] * (1.0 - disc[i]);
            }
        }
    }
    revenue
}

// ---------------------------------------------------------------------
// Skewed key distributions (Q18 / Q9 / stress generators)
// ---------------------------------------------------------------------

/// How a generated key column is distributed over its domain. The skewed
/// mode is what drives the hot-group / hot-key regimes the adaptive
/// operators exist for: pre-aggregation (Q1-style), grace-hash spilling
/// with recursion-depth limits, and Bloom pre-filtering all behave
/// qualitatively differently under Zipfian keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Uniform over `[0, domain)`.
    Uniform,
    /// Zipf-ish (exponent ~1) over `[0, domain)` — key 0 is hottest.
    Zipf,
}

impl KeyDist {
    /// Sample `n` keys over `[0, domain)` (domain clamped to ≥ 1).
    pub fn sample(self, n: usize, domain: usize, seed: u64) -> Array {
        let domain = domain.max(1);
        match self {
            KeyDist::Uniform => datagen::uniform_i64(n, 0, domain as i64 - 1, seed),
            KeyDist::Zipf => datagen::zipf_i64(n, domain, seed),
        }
    }
}

/// The lineitem slice Q18 reads: `l_orderkey` drawn from `dist` over the
/// orders key domain and an integer-valued `l_quantity` (stored f64, the
/// aggregate's value column). Under [`KeyDist::Zipf`] a few hot orders
/// absorb most lineitems — the regime that stresses spill partitioning.
pub fn lineitem_q18(n: usize, n_orders: usize, dist: KeyDist, seed: u64) -> Table {
    Table::new(
        Schema::new(vec![
            Field::new("l_orderkey", ScalarType::I64),
            Field::new("l_quantity", ScalarType::F64),
        ]),
        vec![
            dist.sample(n, n_orders, seed),
            datagen::uniform_i64(n, 1, 50, seed.wrapping_add(7))
                .cast(ScalarType::F64)
                .expect("i64 casts to f64"),
        ],
    )
    .expect("generator produces consistent columns")
}

/// [`lineitem_q3`] with a selectable key distribution (same schema; keys
/// drawn from `dist` over twice the orders domain, so the selective-join
/// miss rate is preserved under skew).
pub fn lineitem_q3_dist(n: usize, n_orders: usize, dist: KeyDist, seed: u64) -> Table {
    Table::new(
        Schema::new(vec![
            Field::new("l_orderkey", ScalarType::I64),
            Field::new("l_extendedprice", ScalarType::F64),
            Field::new("l_discount", ScalarType::F64),
            Field::new("l_shipdate", ScalarType::I64),
        ]),
        vec![
            dist.sample(n, 2 * n_orders.max(1), seed),
            scale_down(datagen::uniform_i64(
                n,
                90_000,
                10_500_000,
                seed.wrapping_add(1),
            )),
            scale_down(datagen::uniform_i64(n, 0, 10, seed.wrapping_add(2))),
            datagen::uniform_i64(n, 0, SHIPDATE_MAX, seed.wrapping_add(5)),
        ],
    )
    .expect("generator produces consistent columns")
}

// ---------------------------------------------------------------------
// TPC-H Q18 (large-volume customer): big group-by feeding a join
// ---------------------------------------------------------------------

/// One Q18 output row: an order whose total quantity exceeds the
/// threshold, joined back to `orders` for its date.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Q18Row {
    /// The order key (group key of the aggregate).
    pub o_orderkey: i64,
    /// The joined order date.
    pub o_orderdate: i64,
    /// `sum(l_quantity)` for the order.
    pub total_qty: f64,
    /// Lineitems contributing to the order.
    pub line_count: i64,
}

/// Sequential Q18 oracle: hash-aggregate `l_quantity` by `l_orderkey`
/// ([`crate::agg::aggregate_rows`] — the same fold the spilling
/// aggregate is bit-identical to), keep groups with
/// `sum > threshold`, and join the survivors to `orders`. Output sorted
/// by order key.
pub fn q18_reference(lineitem: &Table, orders: &Table, threshold: f64) -> Vec<Q18Row> {
    use std::collections::HashMap;
    let keys = lineitem
        .column_by_name("l_orderkey")
        .expect("schema")
        .to_i64_vec()
        .expect("i64");
    let qty = lineitem
        .column_by_name("l_quantity")
        .expect("schema")
        .to_f64_vec()
        .expect("f64");
    let okey = orders
        .column_by_name("o_orderkey")
        .expect("schema")
        .to_i64_vec()
        .expect("i64");
    let odate = orders
        .column_by_name("o_orderdate")
        .expect("schema")
        .to_i64_vec()
        .expect("i64");
    let dates: HashMap<i64, i64> = okey.into_iter().zip(odate).collect();
    crate::agg::aggregate_rows(&keys, &qty)
        .into_iter()
        .filter(|(_, g)| g.sum > threshold)
        .filter_map(|(k, g)| {
            dates.get(&k).map(|&d| Q18Row {
                o_orderkey: k,
                o_orderdate: d,
                total_qty: g.sum,
                line_count: g.count,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// TPC-H Q9 (product-type profit): a mixed-key multi-join chain
// ---------------------------------------------------------------------

/// Generated inputs for the Q9-style profit query: three build sides
/// (two integer-keyed — the selective *part* filter and the *supplier*
/// side — and one Utf8-keyed *brand* side) plus the probe columns of the
/// lineitem stream. Payloads are whole-cent integers so every profit
/// accumulator is exact.
#[derive(Debug, Clone)]
pub struct Q9Data {
    /// Surviving part keys (the `p_name like '%green%'` stand-in: only
    /// half the part domain is present, so the join is selective).
    pub part_keys: Vec<i64>,
    /// Per-part payload (cents) folded into the profit projection.
    pub part_payload: Vec<i64>,
    /// All supplier keys (dense `0..n_supps`).
    pub supp_keys: Vec<i64>,
    /// Per-supplier payload (cents) folded into the profit projection.
    pub supp_payload: Vec<i64>,
    /// Nation of each supplier (index = supplier key).
    pub supp_nation: Vec<i64>,
    /// Surviving brand keys (Utf8; half the brand domain).
    pub brand_keys: Vec<String>,
    /// Per-brand payload (zero — the Utf8 side filters, the integer
    /// sides carry the projection).
    pub brand_payload: Vec<i64>,
    /// Probe: part key per lineitem (drawn from `dist` over the *full*
    /// part domain, so skew concentrates probes on hot parts).
    pub l_partkey: Vec<i64>,
    /// Probe: supplier key per lineitem.
    pub l_suppkey: Vec<i64>,
    /// Probe: brand per lineitem.
    pub l_brand: Vec<String>,
    /// Revenue cents per lineitem.
    pub l_price_c: Vec<i64>,
    /// Cost cents per lineitem.
    pub l_cost_c: Vec<i64>,
}

/// Number of distinct brands in [`q9_data`]'s Utf8 side domain.
pub const Q9_BRANDS: usize = 20;

/// Generate Q9-style inputs: `n` lineitems over `n_parts` parts,
/// `n_supps` suppliers, and `n_nations` nations, with `l_partkey` drawn
/// from `dist`.
pub fn q9_data(
    n: usize,
    n_parts: usize,
    n_supps: usize,
    n_nations: usize,
    dist: KeyDist,
    seed: u64,
) -> Q9Data {
    let n_parts = n_parts.max(2);
    let n_supps = n_supps.max(1);
    let n_nations = n_nations.max(1);
    let part_keys: Vec<i64> = (0..(n_parts / 2) as i64).collect();
    let part_payload: Vec<i64> = part_keys.iter().map(|k| 100 + (k % 900)).collect();
    let supp_keys: Vec<i64> = (0..n_supps as i64).collect();
    let supp_payload: Vec<i64> = supp_keys.iter().map(|k| 50 + (k % 500)).collect();
    let supp_nation: Vec<i64> = supp_keys.iter().map(|k| k % n_nations as i64).collect();
    let brand_keys: Vec<String> = (0..Q9_BRANDS / 2).map(|b| format!("BRAND#{b}")).collect();
    let brand_payload = vec![0i64; brand_keys.len()];
    let l_partkey = dist
        .sample(n, n_parts, seed)
        .to_i64_vec()
        .expect("i64 keys");
    let l_suppkey = datagen::uniform_i64(n, 0, n_supps as i64 - 1, seed.wrapping_add(11))
        .to_i64_vec()
        .expect("i64 keys");
    let l_brand = datagen::uniform_i64(n, 0, Q9_BRANDS as i64 - 1, seed.wrapping_add(12))
        .to_i64_vec()
        .expect("i64")
        .into_iter()
        .map(|b| format!("BRAND#{b}"))
        .collect();
    let l_price_c = datagen::uniform_i64(n, 90_000, 10_500_000, seed.wrapping_add(13))
        .to_i64_vec()
        .expect("i64");
    let l_cost_c = datagen::uniform_i64(n, 10_000, 90_000, seed.wrapping_add(14))
        .to_i64_vec()
        .expect("i64");
    Q9Data {
        part_keys,
        part_payload,
        supp_keys,
        supp_payload,
        supp_nation,
        brand_keys,
        brand_payload,
        l_partkey,
        l_suppkey,
        l_brand,
        l_price_c,
        l_cost_c,
    }
}

/// One Q9 output row: exact whole-cent profit per nation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q9Row {
    /// Nation id.
    pub nation: i64,
    /// `sum(l_price_c - l_cost_c + matched payloads)` over surviving
    /// lineitems of the nation's suppliers — exact integer cents.
    pub profit_c: i64,
    /// Surviving lineitems contributing to the nation.
    pub rows: i64,
}

/// Sequential Q9 oracle: a lineitem survives when its part key is in the
/// surviving part set, its supplier exists, and its brand is in the
/// surviving brand set; its profit is
/// `l_price_c - l_cost_c + Σ matched build payloads` (every duplicate
/// build match contributes, mirroring the chain's payload projection).
/// Profits group by the supplier's nation; output sorted by nation.
pub fn q9_reference(data: &Q9Data) -> Vec<Q9Row> {
    use std::collections::HashMap;
    let mut part_pay: HashMap<i64, i64> = HashMap::new();
    for (k, p) in data.part_keys.iter().zip(&data.part_payload) {
        *part_pay.entry(*k).or_default() += p;
    }
    let mut supp_pay: HashMap<i64, i64> = HashMap::new();
    for (k, p) in data.supp_keys.iter().zip(&data.supp_payload) {
        *supp_pay.entry(*k).or_default() += p;
    }
    let mut brand_pay: HashMap<&str, i64> = HashMap::new();
    for (k, p) in data.brand_keys.iter().zip(&data.brand_payload) {
        *brand_pay.entry(k.as_str()).or_default() += p;
    }
    let mut groups: HashMap<i64, (i64, i64)> = HashMap::new();
    for i in 0..data.l_partkey.len() {
        let (Some(pp), Some(sp), Some(bp)) = (
            part_pay.get(&data.l_partkey[i]),
            supp_pay.get(&data.l_suppkey[i]),
            brand_pay.get(data.l_brand[i].as_str()),
        ) else {
            continue;
        };
        let nation = data.supp_nation[data.l_suppkey[i] as usize];
        let profit = data.l_price_c[i] - data.l_cost_c[i] + pp + sp + bp;
        let slot = groups.entry(nation).or_default();
        slot.0 += profit;
        slot.1 += 1;
    }
    let mut out: Vec<Q9Row> = groups
        .into_iter()
        .map(|(nation, (profit_c, rows))| Q9Row {
            nation,
            profit_c,
            rows,
        })
        .collect();
    out.sort_by_key(|r| r.nation);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_vm::{Strategy, Vm, VmConfig};

    #[test]
    fn lineitem_shape() {
        let t = lineitem(1000, 42);
        assert_eq!(t.rows(), 1000);
        assert_eq!(t.schema().len(), 6);
        let qty = t
            .column_by_name("l_quantity")
            .unwrap()
            .to_i64_vec()
            .unwrap();
        assert!(qty.iter().all(|&q| (1..=50).contains(&q)));
        let disc = t.column_by_name("l_discount").unwrap().as_f64().unwrap();
        assert!(disc.iter().all(|&d| (0.0..=0.10).contains(&d)));
        // Deterministic.
        assert_eq!(lineitem(100, 7), lineitem(100, 7));
    }

    #[test]
    fn q1_strategies_agree() {
        let t = lineitem(20_000, 1);
        let reference = q1_fused(&t);
        assert_eq!(reference.len(), Q1_GROUPS as usize);
        let vectorized = q1_vectorized(&t, 1024);
        let adaptive = q1_adaptive(&CompactLineitem::from_table(&t), 1024);
        assert!(
            q1_results_match(&reference, &vectorized),
            "vectorized diverged"
        );
        // Compact types quantize discount/tax to cents — exact in this
        // generator (values are generated in cents), so results match.
        assert!(q1_results_match(&reference, &adaptive), "adaptive diverged");
        // Sanity: the filter keeps most rows (~96%).
        let total: i64 = reference.iter().map(|r| r.count).sum();
        assert!(total > 18_000, "Q1 keeps most rows, got {total}");
    }

    #[test]
    fn q1_group_counts_partition_input() {
        let t = lineitem(5000, 3);
        let rows = q1_vectorized(&t, 512);
        let counted: i64 = rows.iter().map(|r| r.count).sum();
        let ship = t
            .column_by_name("l_shipdate")
            .unwrap()
            .to_i64_vec()
            .unwrap();
        let expected = ship.iter().filter(|&&s| s <= Q1_SHIPDATE).count() as i64;
        assert_eq!(counted, expected);
    }

    #[test]
    fn q6_through_every_vm_strategy() {
        let t = lineitem(30_000, 9);
        let expected = q6_reference(&t, 1000);
        for strategy in [
            Strategy::Interpret,
            Strategy::CompiledPipeline,
            Strategy::Adaptive,
        ] {
            let config = VmConfig {
                strategy,
                hot_threshold: 3,
                ..VmConfig::default()
            };
            let vm = Vm::new(config);
            let program = q6_program(t.rows() as i64, 1000);
            let (out, report) = vm.run(&program, q6_buffers(&t)).unwrap();
            let rev = out.output("revenue").unwrap().as_f64().unwrap()[0];
            assert!(
                (rev - expected).abs() / expected.abs().max(1.0) < 1e-9,
                "{strategy:?}: {rev} vs {expected}"
            );
            if strategy == Strategy::CompiledPipeline {
                assert_eq!(report.injected_traces, 1, "Q6 must fuse into one trace");
            }
        }
    }

    #[test]
    fn q3_strategies_bit_identical_and_match_reference() {
        let li = lineitem_q3(30_000, 5_000, 17);
        let ord = orders(5_000, 17);
        let date = SHIPDATE_MAX / 2;
        let expected = q3_reference(&li, &ord, date);
        assert!(expected > 0.0);
        let mut bits: Option<u64> = None;
        for strategy in JoinStrategy::ALL {
            for bloom in [false, true] {
                for chunk_rows in [256, 1024, 7777] {
                    let rev = q3_hash(&li, &ord, date, strategy, chunk_rows, bloom).unwrap();
                    assert!(
                        (rev - expected).abs() / expected.abs().max(1.0) < 1e-9,
                        "{strategy:?} bloom={bloom} chunk={chunk_rows}: {rev} vs {expected}"
                    );
                    // Exact fixed point: every strategy/chunking/bloom
                    // combination returns the very same bits.
                    match bits {
                        None => bits = Some(rev.to_bits()),
                        Some(b) => assert_eq!(
                            rev.to_bits(),
                            b,
                            "{strategy:?} bloom={bloom} chunk={chunk_rows}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn q3_build_side_filters_orders() {
        let ord = orders(2_000, 3);
        let date = SHIPDATE_MAX / 3;
        let table = q3_build_orders(&ord, date, false).unwrap();
        let odate = ord
            .column_by_name("o_orderdate")
            .unwrap()
            .to_i64_vec()
            .unwrap();
        let expected = odate.iter().filter(|&&d| d < date).count();
        assert_eq!(table.len(), expected);
        assert_eq!(table.distinct_keys(), expected, "orderkeys are unique");
    }

    #[test]
    fn q6_revenue_is_plausible() {
        let t = lineitem(10_000, 5);
        let rev = q6_reference(&t, 1000);
        // Selectivity ≈ (365/2520)·(3/11)·(23/50) ≈ 1.8%; revenue strictly
        // positive on 10k rows.
        assert!(rev > 0.0);
    }
}
