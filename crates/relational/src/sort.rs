//! External merge sort: **sorted run generation + k-way merge** on the
//! [`SpillableOp`] protocol.
//!
//! Order-by and top-k need the whole input ordered, which the in-memory
//! engine does with one big sort — fine until the input outgrows memory.
//! This module sorts out-of-core under the same [`MemoryBudget`] regime
//! as the grace-hash joins and the spilled aggregation
//! ([`crate::spill`]):
//!
//! 1. **Run generation** (morsel-parallel) — every input morsel sorts
//!    its `(key, payload)` rows stably by key, independently of all
//!    others.
//! 2. **Charge** (sequential, in morsel order) — each sorted run charges
//!    [`SORT_ROW_BYTES`] per row; runs that fit stay resident, runs that
//!    do not **spill** to run files ([`adaptvm_storage::spill`]), frame
//!    by frame.
//! 3. **K-way merge** (sequential) — a binary heap merges all runs,
//!    streaming spilled ones row by row through [`RunCursor`]s. Ties
//!    break on run index, and runs are ordered by morsel: the output is
//!    exactly the **stable sort** of the input ([`sort_rows`]), bit for
//!    bit, at any budget, worker count, and morsel size. The
//!    cancellation token is re-checked every [few thousand][spill] output
//!    rows, so serve-layer deadlines keep binding through long merges.
//!
//! [`external_top_k`] is the same machinery stopping after `k` rows —
//! the heap never materializes more than one row per run, so top-k over
//! a spilled input reads only what it needs from the run prefixes.
//!
//! [spill]: crate::spill

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use adaptvm_kernels::KernelError;
use adaptvm_parallel::{
    obs, run_spillable, BudgetLease, MemoryBudget, Morsel, MorselPlan, RunError, SpillCheckpoint,
    SpillStats, SpillableOp,
};
use adaptvm_storage::spill::{IntRun, IntRunWriter, RunCursor, SpillDir};

use crate::ops::OpResult;
use crate::parallel::{kernel_run_err, ParallelOpts};
use crate::spill::{storage_err, UNLIMITED};

/// Estimated resident bytes per row of a sorted run (16 data bytes plus
/// buffer slack) — what a run charges against the [`MemoryBudget`] to
/// stay in memory.
pub const SORT_ROW_BYTES: usize = 32;

/// Rows between cancellation checks during the k-way merge.
const MERGE_CHECK_ROWS: usize = 4096;

/// Sorted output: the key column and its parallel payload column.
pub type SortedRows = (Vec<i64>, Vec<i64>);

/// The sequential **stable-sort oracle**: `(key, payload)` rows sorted
/// stably by key (equal keys keep their input order). The external sort
/// is bit-identical to this at any budget, worker count, and morsel
/// size.
pub fn sort_rows(keys: &[i64], payloads: &[i64]) -> (Vec<i64>, Vec<i64>) {
    assert_eq!(keys.len(), payloads.len());
    let mut rows: Vec<(i64, i64)> = keys.iter().copied().zip(payloads.iter().copied()).collect();
    rows.sort_by_key(|&(k, _)| k);
    rows.into_iter().unzip()
}

/// One sorted run feeding the k-way merge: resident (under a budget
/// lease) or streamed from disk one frame at a time.
enum SortSource<'a> {
    Mem {
        keys: Vec<i64>,
        payloads: Vec<i64>,
        pos: usize,
        _lease: Option<BudgetLease<'a>>,
    },
    Disk(RunCursor),
}

impl SortSource<'_> {
    fn next_row(&mut self) -> Result<Option<(i64, i64)>, RunError<KernelError>> {
        match self {
            SortSource::Mem {
                keys,
                payloads,
                pos,
                ..
            } => {
                if *pos < keys.len() {
                    let row = (keys[*pos], payloads[*pos]);
                    *pos += 1;
                    Ok(Some(row))
                } else {
                    Ok(None)
                }
            }
            SortSource::Disk(cursor) => cursor.next_row().map_err(storage_err),
        }
    }
}

/// The shared state between charge and settle: one source per input
/// morsel, in morsel order.
struct SortSides<'a> {
    sources: Vec<SortSource<'a>>,
    _dir: Option<SpillDir>,
}

/// External merge sort as a consume-less [`SpillableOp`].
struct SortOp<'a> {
    keys: &'a [i64],
    payloads: &'a [i64],
    limit: Option<usize>,
    budget: &'a MemoryBudget,
    plan: MorselPlan,
}

impl<'a> SpillableOp for SortOp<'a> {
    type Partition = (Vec<i64>, Vec<i64>);
    type Shared = SortSides<'a>;
    type Out = ();
    type Settled = (Vec<i64>, Vec<i64>);
    type Error = KernelError;

    fn input_plan(&self) -> &MorselPlan {
        &self.plan
    }

    // Run generation: stable-sort this morsel's rows by key.
    fn partition_morsel(&self, _w: usize, m: &Morsel) -> Result<Self::Partition, KernelError> {
        let mut rows: Vec<(i64, i64)> = (m.start..m.end())
            .map(|i| (self.keys[i], self.payloads[i]))
            .collect();
        rows.sort_by_key(|&(k, _)| k);
        Ok(rows.into_iter().unzip())
    }

    // Charge: each run stays resident under a lease or spills whole, in
    // morsel order (which fixes the merge's tie-break order).
    fn charge(
        &mut self,
        parts: Vec<Self::Partition>,
        _budget: &MemoryBudget,
        stats: &mut SpillStats,
    ) -> Result<SortSides<'a>, KernelError> {
        let mut dir: Option<SpillDir> = None;
        let mut sources = Vec::with_capacity(parts.len());
        for (r, (keys, payloads)) in parts.into_iter().enumerate() {
            if keys.is_empty() {
                continue;
            }
            match self.budget.lease(keys.len() * SORT_ROW_BYTES) {
                Ok(lease) => sources.push(SortSource::Mem {
                    keys,
                    payloads,
                    pos: 0,
                    _lease: Some(lease),
                }),
                Err(_) => {
                    if dir.is_none() {
                        dir = Some(SpillDir::new().map_err(KernelError::Storage)?);
                    }
                    let d = dir.as_ref().expect("just created");
                    let _io = obs::spill_scope("sort", r.min(u16::MAX as usize) as u16, 0);
                    let mut w = IntRunWriter::create(d.run_path(&format!("sort-r{r}")))
                        .map_err(KernelError::Storage)?;
                    for lo in (0..keys.len()).step_by(crate::spill::SPILL_FRAME_ROWS) {
                        let hi = (lo + crate::spill::SPILL_FRAME_ROWS).min(keys.len());
                        w.append(&keys[lo..hi], &payloads[lo..hi])
                            .map_err(KernelError::Storage)?;
                    }
                    let run: IntRun = w.finish().map_err(KernelError::Storage)?;
                    stats.partitions_spilled += 1;
                    stats.runs_written += 1;
                    stats.bytes_written += run.bytes();
                    // The merge streams the whole run (or, for top-k, a
                    // prefix); count it as read when opened.
                    stats.bytes_read += run.bytes();
                    sources.push(SortSource::Disk(
                        run.cursor().map_err(KernelError::Storage)?,
                    ));
                }
            }
        }
        Ok(SortSides { sources, _dir: dir })
    }

    // K-way merge: pop the least (key, run index) row until the input is
    // drained (or `limit` rows are out).
    fn settle(
        &mut self,
        shared: SortSides<'a>,
        outs: Vec<()>,
        _budget: &MemoryBudget,
        _stats: &mut SpillStats,
        checkpoint: &SpillCheckpoint<'_>,
    ) -> Result<Self::Settled, RunError<KernelError>> {
        debug_assert!(outs.is_empty(), "sort has no consume phase");
        checkpoint.check()?;
        // The k-way merge streams every disk run; label its frame reads.
        let _io = obs::spill_scope("sort-merge", 0, 0);
        let SortSides { mut sources, _dir } = shared;
        let total = self.keys.len();
        let cap = self.limit.map_or(total, |k| k.min(total));
        let mut out_keys = Vec::with_capacity(cap);
        let mut out_pays = Vec::with_capacity(cap);
        // Ties break on the run index: runs are in morsel order and each
        // run is internally stable, so the merge reproduces the global
        // stable sort. (At most one row per run is in the heap, so the
        // payload component never decides.)
        let mut heap: BinaryHeap<Reverse<(i64, usize, i64)>> = BinaryHeap::new();
        for (s, source) in sources.iter_mut().enumerate() {
            if let Some((k, p)) = source.next_row()? {
                heap.push(Reverse((k, s, p)));
            }
        }
        while out_keys.len() < cap {
            let Some(Reverse((k, s, p))) = heap.pop() else {
                break;
            };
            out_keys.push(k);
            out_pays.push(p);
            if out_keys.len() % MERGE_CHECK_ROWS == 0 {
                checkpoint.check()?;
            }
            if let Some((k2, p2)) = sources[s].next_row()? {
                heap.push(Reverse((k2, s, p2)));
            }
        }
        Ok((out_keys, out_pays))
    }
}

fn run_sort(
    keys: &[i64],
    payloads: &[i64],
    limit: Option<usize>,
    opts: ParallelOpts<'_>,
) -> OpResult<(SortedRows, SpillStats)> {
    let _stage = opts.stage("sort");
    if keys.len() != payloads.len() {
        return Err(KernelError::Precondition(format!(
            "sort keys and payloads must have equal lengths ({} vs {})",
            keys.len(),
            payloads.len()
        )));
    }
    let budget = opts.effective_budget().unwrap_or(&UNLIMITED);
    let mut op = SortOp {
        keys,
        payloads,
        limit,
        budget,
        plan: MorselPlan::new(keys.len(), opts.effective_morsel_rows()),
    };
    let (sorted, _stats, spill) =
        run_spillable(&mut op, opts.runner(), opts.cancel, budget).map_err(kernel_run_err)?;
    Ok((sorted, spill))
}

/// Memory-governed external merge sort of `(key, payload)` rows,
/// ascending and **stable** by key: sorted run generation is
/// morsel-parallel, runs charge [`ParallelOpts::effective_budget`] — an
/// explicit budget, else the submitting tenant's registered budget, else
/// unlimited — at [`SORT_ROW_BYTES`] a row to stay resident and spill to
/// disk otherwise, and a sequential k-way merge streams them back
/// together. The output is bit-identical to [`sort_rows`] for any
/// budget, worker count, and morsel size; [`SpillStats`] reports what
/// the out-of-core path did.
///
/// ```
/// use adaptvm_parallel::MemoryBudget;
/// use adaptvm_relational::parallel::ParallelOpts;
/// use adaptvm_relational::sort::{external_sort, sort_rows};
///
/// let keys: Vec<i64> = (0..10_000).map(|i| (i * 37) % 1_000).collect();
/// let payloads: Vec<i64> = (0..10_000).collect();
///
/// // A budget far below the input's footprint: runs spill to disk...
/// let budget = MemoryBudget::bytes(8 * 1024);
/// let opts = ParallelOpts::new(2, 1_000).with_budget(&budget);
/// let ((k, p), spill) = external_sort(&keys, &payloads, opts).unwrap();
/// assert!(spill.spilled());
///
/// // ...and the merge reproduces the stable in-memory sort exactly.
/// assert_eq!((k, p), sort_rows(&keys, &payloads));
/// assert_eq!(budget.used(), 0, "all charges released");
/// ```
pub fn external_sort(
    keys: &[i64],
    payloads: &[i64],
    opts: ParallelOpts<'_>,
) -> OpResult<(SortedRows, SpillStats)> {
    run_sort(keys, payloads, None, opts)
}

/// The first `k` rows of [`external_sort`]'s output (the `k` smallest
/// keys, stable): the merge stops after `k` rows, so a spilled input
/// only streams the run prefixes the answer needs.
pub fn external_top_k(
    keys: &[i64],
    payloads: &[i64],
    k: usize,
    opts: ParallelOpts<'_>,
) -> OpResult<(SortedRows, SpillStats)> {
    run_sort(keys, payloads, Some(k), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_stable() {
        let keys = vec![3, 1, 3, 1, 2];
        let pays = vec![10, 11, 12, 13, 14];
        let (k, p) = sort_rows(&keys, &pays);
        assert_eq!(k, vec![1, 1, 2, 3, 3]);
        // Equal keys keep input order.
        assert_eq!(p, vec![11, 13, 14, 10, 12]);
    }

    #[test]
    fn in_memory_sort_matches_oracle() {
        let keys: Vec<i64> = (0..5_000).map(|i| (i * 131) % 997).collect();
        let pays: Vec<i64> = (0..5_000).collect();
        let (got, spill) = external_sort(&keys, &pays, ParallelOpts::new(4, 512)).unwrap();
        assert!(!spill.spilled(), "unlimited budget must not spill");
        assert_eq!(got, sort_rows(&keys, &pays));
    }

    #[test]
    fn length_mismatch_fails_typed() {
        let r = external_sort(&[1, 2], &[1], ParallelOpts::new(1, 64));
        assert!(matches!(r, Err(KernelError::Precondition(_))));
    }

    #[test]
    fn top_k_is_a_prefix_of_the_full_sort() {
        let keys: Vec<i64> = (0..2_000).map(|i| (i * 7919) % 503).collect();
        let pays: Vec<i64> = (0..2_000).collect();
        let (full, _) = external_sort(&keys, &pays, ParallelOpts::new(2, 256)).unwrap();
        let ((tk, tp), _) = external_top_k(&keys, &pays, 100, ParallelOpts::new(2, 256)).unwrap();
        assert_eq!(tk.as_slice(), &full.0[..100]);
        assert_eq!(tp.as_slice(), &full.1[..100]);
        // k larger than the input degrades to the full sort.
        let ((ak, ap), _) =
            external_top_k(&keys, &pays, 10_000, ParallelOpts::new(2, 256)).unwrap();
        assert_eq!((ak, ap), full);
    }
}
