//! Hash aggregation with adaptively triggered pre-aggregation.
//!
//! The paper (§I, citing its \[12\]) credits part of the vectorized TPC-H Q1
//! win to "an adaptively triggered pre-aggregation": when the group count
//! observed in recent chunks is small, each chunk first aggregates into a
//! tiny local table (cache-resident, branch-predictable) that is then
//! merged into the global one; when groups are many, chunks go straight to
//! the global hash table. [`AdaptiveAggregator`] makes that decision per
//! chunk from observed distinct-group counts.

use std::collections::HashMap;

/// Aggregate state per group.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupState {
    /// Row count.
    pub count: i64,
    /// Sum of the value column.
    pub sum: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl GroupState {
    /// Fold one value into the state.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Merge another partial state (used by pre-aggregation and by the
    /// partitioned parallel aggregation's final merge phase).
    pub fn merge(&mut self, other: &GroupState) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fold one value stored as raw `f64` bits in an `i64` column — the
    /// encoding the out-of-core aggregation's spill runs use
    /// (`f64::to_bits` roundtrips NaNs and signed zeros exactly, so a
    /// spilled group observes bit-identical values in the same order as
    /// a resident one).
    #[inline]
    pub fn observe_bits(&mut self, bits: i64) {
        self.observe(f64::from_bits(bits as u64));
    }

    /// Average value.
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The sequential **row-order aggregation oracle**: every row observed in
/// input order into its group's [`GroupState`], results sorted by key.
/// The out-of-core aggregation (`crate::spill`) is bit-identical to this
/// fold at any budget, worker count, and morsel size, because each group's
/// rows are observed one by one in global row order no matter which
/// partition they land in or whether that partition spilled.
pub fn aggregate_rows(keys: &[i64], values: &[f64]) -> Vec<(i64, GroupState)> {
    assert_eq!(keys.len(), values.len());
    let mut global: HashMap<i64, GroupState> = HashMap::new();
    for (&k, &v) in keys.iter().zip(values) {
        global.entry(k).or_default().observe(v);
    }
    let mut out: Vec<(i64, GroupState)> = global.into_iter().collect();
    out.sort_by_key(|&(k, _)| k);
    out
}

/// Pre-aggregation decision modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreAgg {
    /// Never pre-aggregate.
    Off,
    /// Always pre-aggregate.
    On,
    /// Decide per chunk from the observed group count (the paper's
    /// "adaptively triggered" variant).
    Adaptive,
}

/// Group count below which local pre-aggregation pays off.
const PREAGG_GROUP_LIMIT: usize = 64;

/// A grouped aggregator over (key, value) chunk pairs.
#[derive(Debug)]
pub struct AdaptiveAggregator {
    mode: PreAgg,
    global: HashMap<i64, GroupState>,
    /// EWMA of per-chunk distinct group counts.
    group_estimate: f64,
    chunks: u64,
    preagg_used: u64,
}

impl AdaptiveAggregator {
    /// Aggregator in the given mode.
    pub fn new(mode: PreAgg) -> AdaptiveAggregator {
        AdaptiveAggregator {
            mode,
            global: HashMap::new(),
            group_estimate: 0.0,
            chunks: 0,
            preagg_used: 0,
        }
    }

    /// Feed one chunk.
    pub fn push_chunk(&mut self, keys: &[i64], values: &[f64]) {
        assert_eq!(keys.len(), values.len());
        self.chunks += 1;
        let use_preagg = match self.mode {
            PreAgg::Off => false,
            PreAgg::On => true,
            PreAgg::Adaptive => {
                // Until we have evidence, try pre-aggregation; afterwards,
                // require a small observed group count.
                self.chunks == 1 || self.group_estimate <= PREAGG_GROUP_LIMIT as f64
            }
        };
        let distinct = if use_preagg {
            self.preagg_used += 1;
            // Local pre-aggregation into a small table, then merge.
            let mut local: HashMap<i64, GroupState> = HashMap::new();
            for (&k, &v) in keys.iter().zip(values) {
                local.entry(k).or_default().observe(v);
            }
            let distinct = local.len();
            for (k, s) in local {
                self.global.entry(k).or_default().merge(&s);
            }
            distinct
        } else {
            // Straight to the global table; estimate distinct cheaply by
            // sampling the chunk.
            for (&k, &v) in keys.iter().zip(values) {
                self.global.entry(k).or_default().observe(v);
            }
            estimate_distinct(keys)
        };
        let alpha = 0.3;
        self.group_estimate = if self.chunks == 1 {
            distinct as f64
        } else {
            alpha * distinct as f64 + (1.0 - alpha) * self.group_estimate
        };
    }

    /// Results sorted by key.
    pub fn finish(&self) -> Vec<(i64, GroupState)> {
        let mut v: Vec<_> = self.global.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// How many chunks used local pre-aggregation.
    pub fn preagg_used(&self) -> u64 {
        self.preagg_used
    }

    /// Total chunks consumed.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }
}

/// Cheap distinct estimate: exact over a 256-row sample prefix.
fn estimate_distinct(keys: &[i64]) -> usize {
    let sample = &keys[..keys.len().min(256)];
    let mut seen: Vec<i64> = sample.to_vec();
    seen.sort_unstable();
    seen.dedup();
    if sample.len() == keys.len() {
        seen.len()
    } else {
        // Scale the sample estimate, capped by the sample's information.
        (seen.len() as f64 * (keys.len() as f64 / sample.len() as f64).sqrt()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(mode: PreAgg, keys: &[i64], values: &[f64], chunk: usize) -> AdaptiveAggregator {
        let mut agg = AdaptiveAggregator::new(mode);
        let mut i = 0;
        while i < keys.len() {
            let end = (i + chunk).min(keys.len());
            agg.push_chunk(&keys[i..end], &values[i..end]);
            i = end;
        }
        agg
    }

    fn workload(n: usize, groups: i64) -> (Vec<i64>, Vec<f64>) {
        let keys: Vec<i64> = (0..n as i64).map(|i| i % groups).collect();
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        (keys, values)
    }

    #[test]
    fn all_modes_agree() {
        let (keys, values) = workload(10_000, 7);
        let reference = feed(PreAgg::Off, &keys, &values, 1024).finish();
        for mode in [PreAgg::On, PreAgg::Adaptive] {
            let result = feed(mode, &keys, &values, 1024).finish();
            assert_eq!(result, reference, "{mode:?}");
        }
        assert_eq!(reference.len(), 7);
        let total: i64 = reference.iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn group_state_math() {
        let (keys, values) = workload(100, 4);
        let agg = feed(PreAgg::Off, &keys, &values, 32);
        let results = agg.finish();
        let (k0, s0) = results[0];
        assert_eq!(k0, 0);
        assert_eq!(s0.count, 25);
        assert_eq!(s0.min, 0.0);
        assert_eq!(s0.max, 96.0);
        let expected_sum: f64 = (0..100).filter(|i| i % 4 == 0).map(|i| i as f64).sum();
        assert_eq!(s0.sum, expected_sum);
        assert!((s0.avg() - expected_sum / 25.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_uses_preagg_for_few_groups() {
        let (keys, values) = workload(50_000, 6);
        let agg = feed(PreAgg::Adaptive, &keys, &values, 1024);
        // After the first probe chunk, every chunk should pre-aggregate.
        assert_eq!(agg.preagg_used(), agg.chunks());
    }

    #[test]
    fn adaptive_disables_preagg_for_many_groups() {
        // Every key distinct: pre-aggregation is pure overhead.
        let keys: Vec<i64> = (0..50_000).collect();
        let values: Vec<f64> = keys.iter().map(|&k| k as f64).collect();
        let agg = feed(PreAgg::Adaptive, &keys, &values, 1024);
        assert!(
            agg.preagg_used() <= 2,
            "high-cardinality groups must disable pre-aggregation (used {} of {})",
            agg.preagg_used(),
            agg.chunks()
        );
        // Still correct.
        assert_eq!(agg.finish().len(), 50_000);
    }

    #[test]
    fn adaptive_reacts_to_group_count_shift() {
        let mut agg = AdaptiveAggregator::new(PreAgg::Adaptive);
        // Phase 1: many groups → preagg off.
        for c in 0..20 {
            let keys: Vec<i64> = (0..1024).map(|i| c * 10_000 + i).collect();
            let values = vec![1.0; 1024];
            agg.push_chunk(&keys, &values);
        }
        let used_phase1 = agg.preagg_used();
        // Phase 2: few groups → estimate decays → preagg back on.
        for _ in 0..30 {
            let keys: Vec<i64> = (0..1024).map(|i| i % 4).collect();
            let values = vec![1.0; 1024];
            agg.push_chunk(&keys, &values);
        }
        assert!(
            agg.preagg_used() > used_phase1,
            "pre-aggregation should re-enable after the shift"
        );
    }

    #[test]
    fn empty_chunks_are_fine() {
        let mut agg = AdaptiveAggregator::new(PreAgg::Adaptive);
        agg.push_chunk(&[], &[]);
        assert!(agg.finish().is_empty());
    }
}
