//! Relational layer over the adaptive VM.
//!
//! The paper plans to integrate its framework into a database system
//! (Peloton/PostgreSQL/MonetDB, §IV); this crate is the self-contained
//! equivalent: a columnar operator layer whose pipelines exercise the VM,
//! the kernels and the JIT on realistic query shapes.
//!
//! * [`ops`] — chunk-level physical operators: scans, selections (flavored,
//!   micro-adaptive), projections, in-chunk arithmetic,
//! * [`join`] — multimap hash joins (one output row per build match, on
//!   integer *and* arena-backed Utf8 keys) with cardinality-sized Bloom
//!   pre-filtering, the §III-C adaptive join-order chain — including
//!   mixed-key chains ([`join::JoinSide`]) — and per-morsel build
//!   partitions for the parallel partitioned build,
//! * [`agg`] — hash aggregation with adaptively-triggered pre-aggregation
//!   (the TPC-H Q1 optimization of the paper's \[12\]),
//! * [`compressed_exec`] — scan strategies over per-block compressed
//!   columns: always-decompress, compressed execution, and the adaptive
//!   mix that reacts to block-by-block scheme changes (§I, §III-C),
//! * [`tpch`] — TPC-H-style data generation plus Q1 and Q6 in every
//!   execution strategy (vectorized / fused-compiled / adaptive, with
//!   compact-data-type variants) and a Q3-style `lineitem ⋈ orders`
//!   revenue query in three probe strategies,
//! * [`parallel`] — morsel-parallel pipelines over the same operators:
//!   parallel scan/filter/projection, partitioned hash aggregation with a
//!   final merge phase, partitioned-build/shared-probe hash joins (plus
//!   the parallel adaptive join chain), and parallel Q1/Q3/Q6, built on
//!   [`adaptvm_parallel`]'s work-stealing dispatcher and shared JIT cache,
//! * [`spill`] — the **out-of-core** regime on the operator-generic
//!   [`adaptvm_parallel::SpillableOp`] protocol: memory-governed
//!   grace-hash joins (with probe-side spill) and out-of-core hash
//!   aggregation, whose partitions charge a shared
//!   [`adaptvm_parallel::MemoryBudget`] and spill to disk runs when it is
//!   exhausted, recursively re-partitioned until they fit —
//!   bit-identical to the in-memory operators at every budget and worker
//!   count,
//! * [`sort`] — external merge sort on the same protocol: morsel-parallel
//!   sorted-run generation, budget-charged resident runs, spilled runs
//!   streamed through a k-way merge that reproduces the stable in-memory
//!   sort bit for bit (plus budgeted top-k),
//! * [`workload`] — the DSL→engine bridge: compile DSL *text* against a
//!   buffer schema (parse → typecheck → normalize → re-check) into a
//!   [`workload::Workload`] runnable under any VM strategy × any executor
//!   (scoped pool / [`adaptvm_parallel::Scheduler`] /
//!   [`adaptvm_parallel::QueryService`] with tenant + priority) ×
//!   optional [`adaptvm_parallel::MemoryBudget`], with results
//!   bit-identical across all of them.

pub mod agg;
pub mod compressed_exec;
pub mod join;
pub mod ops;
pub mod parallel;
pub mod sort;
pub mod spill;
pub mod tpch;
pub mod workload;
