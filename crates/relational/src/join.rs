//! Hash joins, Bloom pre-filtering, and the §III-C adaptive join chain.
//!
//! "Consider a chain of two HashJoin operators A and B. We could filter the
//! tuples using A first and later B (essentially executing the SemiJoin
//! first), when A eliminates more tuples from the flow." —
//! [`AdaptiveJoinChain`] implements exactly that, driven by
//! [`adaptvm_vm::reorder::ReorderController`].
//!
//! [`HashTable`] is a true multimap: duplicate build keys keep every
//! payload (contiguous, in build-row order, in one arena), and
//! [`HashTable::probe`] emits **one output row per build match** — the
//! inner-join cardinality a nested-loop join would produce. Build sides
//! can also be assembled from per-morsel [`JoinPartition`]s (see
//! [`HashTable::from_partitions`]), which is what the morsel-parallel
//! partitioned build in `crate::parallel` uses.

use std::collections::HashMap;
use std::ops::Range;
use std::time::Instant;

use adaptvm_storage::Array;
use adaptvm_vm::reorder::ReorderController;

/// Bloom-style pre-filter: a bitmask sized from build cardinality
/// (~8 bits per distinct key, rounded up to a power of two), with two
/// probe bits per key derived by double hashing. At 8 bits/key and two
/// probes the false-positive rate stays below ~10% at any build size —
/// unlike a fixed-size mask, which saturates once the build outgrows it.
#[derive(Debug, Clone)]
struct Bloom {
    bits: Vec<u64>,
    mask: u64,
}

impl Bloom {
    /// An empty filter sized for `distinct_keys` entries.
    fn sized_for(distinct_keys: usize) -> Bloom {
        let nbits = distinct_keys.saturating_mul(8).next_power_of_two().max(64) as u64;
        Bloom {
            bits: vec![0u64; (nbits / 64) as usize],
            mask: nbits - 1,
        }
    }

    /// The two probe positions for `key` (Kirsch–Mitzenmacher double
    /// hashing over the halves of the 64-bit multiplicative hash; the
    /// high half leads because multiplicative hashing mixes high bits
    /// best).
    #[inline]
    fn positions(&self, key: i64) -> (u64, u64) {
        let h = adaptvm_kernels::map::hash_i64(key) as u64;
        let h1 = h >> 32;
        let h2 = (h & 0xffff_ffff) | 1; // odd: never a no-op step
        (h1 & self.mask, h1.wrapping_add(h2) & self.mask)
    }

    fn insert(&mut self, key: i64) {
        let (a, b) = self.positions(key);
        self.bits[(a / 64) as usize] |= 1 << (a % 64);
        self.bits[(b / 64) as usize] |= 1 << (b % 64);
    }

    #[inline]
    fn maybe_contains(&self, key: i64) -> bool {
        let (a, b) = self.positions(key);
        self.bits[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
    }
}

/// A build-side hash table from join key to payloads (a multimap).
#[derive(Debug, Clone)]
pub struct HashTable {
    /// key → `(start, len)` into [`Self::payloads`]: every payload for a
    /// key is contiguous, in build-row order.
    map: HashMap<i64, (u32, u32)>,
    /// The payload arena.
    payloads: Vec<i64>,
    /// Optional Bloom-style pre-filter.
    bloom: Option<Bloom>,
}

impl HashTable {
    /// Build from parallel key/payload arrays. Duplicate keys keep every
    /// payload (in build-row order): probing emits one output row per
    /// build match. Returns `None` on non-integer columns or a length
    /// mismatch.
    pub fn build(keys: &Array, payloads: &Array) -> Option<HashTable> {
        let k = keys.to_i64_vec()?;
        let p = payloads.to_i64_vec()?;
        if k.len() != p.len() {
            return None;
        }
        Some(HashTable::from_rows(&k, &p))
    }

    /// Build from key/payload slices (infallible form of [`Self::build`]).
    /// Panics if the slices differ in length.
    pub fn from_rows(keys: &[i64], payloads: &[i64]) -> HashTable {
        HashTable::from_partitions([JoinPartition::from_rows(keys, payloads)])
    }

    /// Merge per-morsel partitions (in iteration order) into one table.
    ///
    /// Feeding the partitions **in morsel order** concatenates each key's
    /// payload list in global build-row order, so the merged table is
    /// observably identical to a sequential [`Self::build`] over the whole
    /// column — the contract the morsel-parallel partitioned build relies
    /// on.
    pub fn from_partitions<I>(partitions: I) -> HashTable
    where
        I: IntoIterator<Item = JoinPartition>,
    {
        let mut merged: HashMap<i64, Vec<i64>> = HashMap::new();
        for partition in partitions {
            for (key, payloads) in partition.map {
                merged.entry(key).or_default().extend(payloads);
            }
        }
        let total: usize = merged.values().map(Vec::len).sum();
        assert!(
            total <= u32::MAX as usize,
            "hash-table payload arena exceeds u32 addressing ({total} rows)"
        );
        let mut map = HashMap::with_capacity(merged.len());
        let mut arena = Vec::with_capacity(total);
        for (key, payloads) in merged {
            map.insert(key, (arena.len() as u32, payloads.len() as u32));
            arena.extend(payloads);
        }
        HashTable {
            map,
            payloads: arena,
            bloom: None,
        }
    }

    /// Attach a Bloom pre-filter (useful for selective joins, §IV:
    /// "the applicability of Bloom-filters in selective hash-joins").
    /// The bitmask is sized from the build cardinality (~8 bits per
    /// distinct key) and probes two derived bits per key.
    pub fn with_bloom(mut self) -> HashTable {
        let mut bloom = Bloom::sized_for(self.map.len());
        for &k in self.map.keys() {
            bloom.insert(k);
        }
        self.bloom = Some(bloom);
        self
    }

    /// Number of build-side rows (counting duplicates).
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Number of distinct build-side keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Bits in the attached Bloom filter (0 when none is attached).
    pub fn bloom_bits(&self) -> usize {
        self.bloom.as_ref().map_or(0, |b| (b.mask + 1) as usize)
    }

    #[inline]
    fn maybe_contains(&self, key: i64) -> bool {
        match &self.bloom {
            None => true,
            Some(bloom) => bloom.maybe_contains(key),
        }
    }

    /// All build payloads matching `key`, in build-row order (empty when
    /// the key misses).
    #[inline]
    pub fn matches(&self, key: i64) -> &[i64] {
        if !self.maybe_contains(key) {
            return &[];
        }
        match self.map.get(&key) {
            Some(&(start, len)) => &self.payloads[start as usize..(start + len) as usize],
            None => &[],
        }
    }

    /// Probe with a key column: one output row **per build match** — the
    /// probe index repeats for duplicate build keys, paired with each
    /// matching payload in build-row order.
    pub fn probe(&self, keys: &[i64]) -> (Vec<u32>, Vec<i64>) {
        let mut idx = Vec::new();
        let mut payload = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            for &p in self.matches(k) {
                idx.push(i as u32);
                payload.push(p);
            }
        }
        (idx, payload)
    }

    /// Membership check for one key (Bloom pre-filter + table lookup).
    pub fn contains(&self, key: i64) -> bool {
        self.maybe_contains(key) && self.map.contains_key(&key)
    }

    /// Semi-join: which probe keys match at all.
    pub fn semi(&self, keys: &[i64]) -> Vec<bool> {
        keys.iter().map(|&k| self.contains(k)).collect()
    }
}

/// A hash table over **byte/string keys**: the Utf8 sibling of
/// [`HashTable`], with the same multimap semantics (duplicate build keys
/// keep every payload in build-row order; probing emits one output row
/// per build match).
///
/// Layout: keys live contiguously in one byte **arena** (no per-key
/// allocation in the built table) and payloads in another; the map goes
/// from the 64-bit string hash ([`adaptvm_kernels::map::hash_str`]) to
/// the entries sharing that hash, and a probe confirms a candidate by
/// comparing key bytes — hash collisions cost an extra memcmp, never a
/// wrong join result. The same Bloom pre-filter as the integer table sits
/// in front (fed with the string hash).
#[derive(Debug, Clone)]
pub struct StrHashTable {
    /// `hash_str(key)` → entries whose key has that hash.
    map: HashMap<i64, Vec<StrEntry>>,
    /// The key-bytes arena.
    keys: Vec<u8>,
    /// The payload arena.
    payloads: Vec<i64>,
    /// Optional Bloom-style pre-filter over the key hashes.
    bloom: Option<Bloom>,
}

/// One distinct key's slot: where its bytes and payloads live.
#[derive(Debug, Clone, Copy)]
struct StrEntry {
    key_start: u32,
    key_len: u32,
    pay_start: u32,
    pay_len: u32,
}

impl StrHashTable {
    /// Build from a Utf8 key column and an integer payload column.
    /// Returns `None` on non-string keys, non-integer payloads, or a
    /// length mismatch.
    pub fn build(keys: &Array, payloads: &Array) -> Option<StrHashTable> {
        let k = keys.as_str()?;
        let p = payloads.to_i64_vec()?;
        if k.len() != p.len() {
            return None;
        }
        Some(StrHashTable::from_rows(k, &p))
    }

    /// Build from key/payload slices (infallible form of [`Self::build`]).
    /// Panics if the slices differ in length.
    pub fn from_rows(keys: &[String], payloads: &[i64]) -> StrHashTable {
        StrHashTable::from_partitions([StrJoinPartition::from_rows(keys, payloads)])
    }

    /// Build from `(key, payload)` row pairs with **borrowed** keys (the
    /// table copies the bytes into its arena) — the allocation-light path
    /// the out-of-core join uses when rebuilding a spilled partition from
    /// an arena-backed run batch. Same multimap semantics as
    /// [`Self::from_rows`]: duplicate keys keep every payload in row
    /// order.
    pub fn from_pairs<'a, I>(rows: I) -> StrHashTable
    where
        I: IntoIterator<Item = (&'a str, i64)>,
    {
        let mut merged: HashMap<String, Vec<i64>> = HashMap::new();
        for (k, p) in rows {
            match merged.get_mut(k) {
                Some(v) => v.push(p),
                None => {
                    merged.insert(k.to_owned(), vec![p]);
                }
            }
        }
        StrHashTable::from_merged(merged)
    }

    /// Merge per-morsel partitions (in iteration order) into one table —
    /// the same morsel-order contract as [`HashTable::from_partitions`]:
    /// feeding partitions in morsel order concatenates each key's payload
    /// list in global build-row order.
    pub fn from_partitions<I>(partitions: I) -> StrHashTable
    where
        I: IntoIterator<Item = StrJoinPartition>,
    {
        let mut merged: HashMap<String, Vec<i64>> = HashMap::new();
        for partition in partitions {
            for (key, payloads) in partition.map {
                merged.entry(key).or_default().extend(payloads);
            }
        }
        StrHashTable::from_merged(merged)
    }

    /// Lay a merged key → payloads multimap out into the arena form.
    fn from_merged(merged: HashMap<String, Vec<i64>>) -> StrHashTable {
        let total_pay: usize = merged.values().map(Vec::len).sum();
        let total_key: usize = merged.keys().map(String::len).sum();
        assert!(
            total_pay <= u32::MAX as usize && total_key <= u32::MAX as usize,
            "string hash-table arenas exceed u32 addressing \
             ({total_pay} payload rows, {total_key} key bytes)"
        );
        let mut map: HashMap<i64, Vec<StrEntry>> = HashMap::with_capacity(merged.len());
        let mut key_arena = Vec::with_capacity(total_key);
        let mut pay_arena = Vec::with_capacity(total_pay);
        for (key, payloads) in merged {
            let entry = StrEntry {
                key_start: key_arena.len() as u32,
                key_len: key.len() as u32,
                pay_start: pay_arena.len() as u32,
                pay_len: payloads.len() as u32,
            };
            key_arena.extend_from_slice(key.as_bytes());
            pay_arena.extend(payloads);
            map.entry(adaptvm_kernels::map::hash_str(&key))
                .or_default()
                .push(entry);
        }
        StrHashTable {
            map,
            keys: key_arena,
            payloads: pay_arena,
            bloom: None,
        }
    }

    /// Attach a Bloom pre-filter over the key hashes (sized from build
    /// cardinality, like the integer table's).
    pub fn with_bloom(mut self) -> StrHashTable {
        let mut bloom = Bloom::sized_for(self.distinct_keys());
        for &h in self.map.keys() {
            bloom.insert(h);
        }
        self.bloom = Some(bloom);
        self
    }

    /// Number of build-side rows (counting duplicates).
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Number of distinct build-side keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Bits in the attached Bloom filter (0 when none is attached).
    pub fn bloom_bits(&self) -> usize {
        self.bloom.as_ref().map_or(0, |b| (b.mask + 1) as usize)
    }

    fn entry_key(&self, e: &StrEntry) -> &[u8] {
        &self.keys[e.key_start as usize..(e.key_start + e.key_len) as usize]
    }

    /// All build payloads matching `key`, in build-row order (empty when
    /// the key misses).
    #[inline]
    pub fn matches(&self, key: &str) -> &[i64] {
        let h = adaptvm_kernels::map::hash_str(key);
        if let Some(bloom) = &self.bloom {
            if !bloom.maybe_contains(h) {
                return &[];
            }
        }
        let Some(entries) = self.map.get(&h) else {
            return &[];
        };
        for e in entries {
            if self.entry_key(e) == key.as_bytes() {
                return &self.payloads[e.pay_start as usize..(e.pay_start + e.pay_len) as usize];
            }
        }
        &[]
    }

    /// Probe with a key column: one output row **per build match**, probe
    /// indices ascending, payloads in build-row order per probe row —
    /// exactly [`HashTable::probe`]'s contract over strings.
    pub fn probe<S: AsRef<str>>(&self, keys: &[S]) -> (Vec<u32>, Vec<i64>) {
        let mut idx = Vec::new();
        let mut payload = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            for &p in self.matches(k.as_ref()) {
                idx.push(i as u32);
                payload.push(p);
            }
        }
        (idx, payload)
    }

    /// Membership check for one key.
    pub fn contains(&self, key: &str) -> bool {
        !self.matches(key).is_empty()
    }

    /// Semi-join: which probe keys match at all.
    pub fn semi<S: AsRef<str>>(&self, keys: &[S]) -> Vec<bool> {
        keys.iter().map(|k| self.contains(k.as_ref())).collect()
    }
}

/// A build-side partition over one morsel's **string-keyed** rows — the
/// Utf8 sibling of [`JoinPartition`], merged in morsel order by
/// [`StrHashTable::from_partitions`].
#[derive(Debug, Clone, Default)]
pub struct StrJoinPartition {
    map: HashMap<String, Vec<i64>>,
    rows: usize,
}

impl StrJoinPartition {
    /// Hash one morsel's key/payload rows into a local multimap. Panics
    /// if the slices differ in length.
    pub fn from_rows(keys: &[String], payloads: &[i64]) -> StrJoinPartition {
        assert_eq!(
            keys.len(),
            payloads.len(),
            "build keys and payloads must have equal lengths"
        );
        let mut map: HashMap<String, Vec<i64>> = HashMap::new();
        for (k, &p) in keys.iter().zip(payloads) {
            map.entry(k.clone()).or_default().push(p);
        }
        StrJoinPartition {
            map,
            rows: keys.len(),
        }
    }

    /// Build rows hashed into this partition.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// A build-side partition over one morsel's rows: a local multimap that
/// [`HashTable::from_partitions`] merges (in morsel order) into the one
/// shared, read-only probe table. Partitions are cheap to build
/// independently — that is the parallel half of "partitioned build,
/// shared probe".
#[derive(Debug, Clone, Default)]
pub struct JoinPartition {
    map: HashMap<i64, Vec<i64>>,
    rows: usize,
}

impl JoinPartition {
    /// Hash one morsel's key/payload rows into a local multimap. Panics if
    /// the slices differ in length.
    pub fn from_rows(keys: &[i64], payloads: &[i64]) -> JoinPartition {
        assert_eq!(
            keys.len(),
            payloads.len(),
            "build keys and payloads must have equal lengths"
        );
        let mut map: HashMap<i64, Vec<i64>> = HashMap::new();
        for (&k, &p) in keys.iter().zip(payloads) {
            map.entry(k).or_default().push(p);
        }
        JoinPartition {
            map,
            rows: keys.len(),
        }
    }

    /// Build rows hashed into this partition.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// One per-join observation from probing a chunk/morsel: how many rows the
/// join saw, how many passed, and how long it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinObservation {
    /// Which join in the chain.
    pub join: usize,
    /// Rows flowing into the join.
    pub input: usize,
    /// Rows surviving the join.
    pub output: usize,
    /// Elapsed nanoseconds.
    pub ns: u64,
}

/// One build side of a (possibly mixed-key) join chain: integer-keyed or
/// Utf8-keyed. A Q3-style plan can chain an orders⋈lineitem join on
/// `i64 o_orderkey` with a customer⋈orders join on a Utf8 market-segment
/// key — the adaptive reorder controller treats both uniformly.
#[derive(Debug, Clone)]
pub enum JoinSide {
    /// An integer-keyed build side.
    Int(HashTable),
    /// A Utf8-keyed build side.
    Str(StrHashTable),
}

impl JoinSide {
    /// Build-side rows (counting duplicates).
    pub fn len(&self) -> usize {
        match self {
            JoinSide::Int(t) => t.len(),
            JoinSide::Str(t) => t.len(),
        }
    }

    /// True when the build side is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn kind(&self) -> &'static str {
        match self {
            JoinSide::Int(_) => "i64",
            JoinSide::Str(_) => "utf8",
        }
    }
}

/// A borrowed probe key column for one join of a mixed chain; its kind
/// must match the [`JoinSide`] it probes.
#[derive(Debug, Clone, Copy)]
pub enum KeyColumn<'a> {
    /// Integer probe keys.
    Int(&'a [i64]),
    /// Utf8 probe keys.
    Str(&'a [String]),
}

impl KeyColumn<'_> {
    /// Rows in the column.
    pub fn len(&self) -> usize {
        match self {
            KeyColumn::Int(k) => k.len(),
            KeyColumn::Str(k) => k.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn kind(&self) -> &'static str {
        match self {
            KeyColumn::Int(_) => "i64",
            KeyColumn::Str(_) => "utf8",
        }
    }
}

/// Probe rows `range` of the (possibly mixed-key) columns through
/// `sides` in the fixed `order`, with no controller interaction: the
/// morsel-level worker step the parallel join chain runs, and the core
/// of [`AdaptiveJoinChain::probe_chunk_mixed`]. Returns the survivors
/// (indices are **global** row numbers into the columns) and one
/// [`JoinObservation`] per join, in probe order.
///
/// `keys[j]`'s kind must match `sides[j]` (validated up front, clear
/// panic on mismatch, like unequal column lengths or an out-of-range
/// `order`). The kind dispatch is hoisted out of the row loops — each
/// join's probe
/// runs the same monomorphic inner loop as the integer-only path.
pub fn probe_chunk_with_order_mixed(
    sides: &[JoinSide],
    order: &[usize],
    keys: &[KeyColumn<'_>],
    range: Range<usize>,
) -> (ChainResult, Vec<JoinObservation>) {
    let n = validate_mixed_columns(sides, keys);
    assert!(
        range.end <= n,
        "probe range {range:?} exceeds the key columns' {n} rows"
    );
    for &j in order {
        assert!(j < sides.len(), "order names join {j} of {}", sides.len());
    }
    let mut alive: Vec<u32> = (range.start as u32..range.end as u32).collect();
    let mut observations = Vec::with_capacity(order.len());
    for &j in order {
        let t0 = Instant::now();
        let input = alive.len();
        match (&sides[j], keys[j]) {
            (JoinSide::Int(t), KeyColumn::Int(k)) => alive.retain(|&i| t.contains(k[i as usize])),
            (JoinSide::Str(t), KeyColumn::Str(k)) => alive.retain(|&i| t.contains(&k[i as usize])),
            _ => unreachable!("kinds validated up front"),
        }
        observations.push(JoinObservation {
            join: j,
            input,
            output: alive.len(),
            ns: t0.elapsed().as_nanos() as u64,
        });
    }
    // Payload projection, one monomorphic pass per join over the
    // survivors (duplicate build keys contribute every match).
    let mut payload_sum = vec![0i64; alive.len()];
    for (side, col) in sides.iter().zip(keys) {
        match (side, *col) {
            (JoinSide::Int(t), KeyColumn::Int(k)) => {
                for (slot, &i) in payload_sum.iter_mut().zip(&alive) {
                    *slot += t.matches(k[i as usize]).iter().sum::<i64>();
                }
            }
            (JoinSide::Str(t), KeyColumn::Str(k)) => {
                for (slot, &i) in payload_sum.iter_mut().zip(&alive) {
                    *slot += t.matches(&k[i as usize]).iter().sum::<i64>();
                }
            }
            _ => unreachable!("kinds validated up front"),
        }
    }
    (
        ChainResult {
            indices: alive,
            payload_sum,
        },
        observations,
    )
}

/// Panic with a clear message unless every mixed key column matches its
/// side's kind and all columns have the same length. Returns the row
/// count.
pub(crate) fn validate_mixed_columns(sides: &[JoinSide], keys: &[KeyColumn<'_>]) -> usize {
    assert_eq!(keys.len(), sides.len(), "one key column per join");
    let n = keys.first().map_or(0, KeyColumn::len);
    for (j, (side, column)) in sides.iter().zip(keys).enumerate() {
        assert_eq!(
            column.len(),
            n,
            "join key columns must have equal lengths: column {j} has {} rows, column 0 has {n}",
            column.len(),
        );
        assert_eq!(
            side.kind(),
            column.kind(),
            "join {j} is {}-keyed but its probe column is {}",
            side.kind(),
            column.kind(),
        );
    }
    n
}

/// A chain of hash joins probed in adaptive order: the semi-join of the
/// most selective table runs first, shrinking the flow for the rest.
/// Sides may mix integer and Utf8 keys (see [`JoinSide`]); the historical
/// integer-only constructors and probes still work unchanged.
pub struct AdaptiveJoinChain {
    sides: Vec<JoinSide>,
    controller: ReorderController,
}

/// The result of probing a chunk through the chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainResult {
    /// Indices of probe rows surviving every join.
    pub indices: Vec<u32>,
    /// Payload sums per surviving row (a stand-in projection; duplicate
    /// build keys contribute every matching payload).
    pub payload_sum: Vec<i64>,
}

impl AdaptiveJoinChain {
    /// Chain over integer-keyed build sides, re-evaluating order every
    /// `every` chunks.
    pub fn new(tables: Vec<HashTable>, every: u64) -> AdaptiveJoinChain {
        AdaptiveJoinChain::new_mixed(tables.into_iter().map(JoinSide::Int).collect(), every)
    }

    /// Chain over possibly mixed-key build sides (integer and Utf8), re-
    /// evaluating order every `every` chunks.
    pub fn new_mixed(sides: Vec<JoinSide>, every: u64) -> AdaptiveJoinChain {
        let n = sides.len();
        AdaptiveJoinChain {
            sides,
            controller: ReorderController::new(n, every),
        }
    }

    /// The current probe order.
    pub fn order(&self) -> &[usize] {
        self.controller.current_order()
    }

    /// Times the order changed so far.
    pub fn reorders(&self) -> u64 {
        self.controller.reorders()
    }

    /// Probe one chunk of integer key columns (`keys[j]` is the probe key
    /// column for join `j`). All key columns must have equal length
    /// (validated up front, with a clear panic message on mismatch).
    /// Panics if a side is Utf8-keyed — mixed chains probe through
    /// [`Self::probe_chunk_mixed`].
    pub fn probe_chunk(&mut self, keys: &[Vec<i64>]) -> ChainResult {
        let columns: Vec<KeyColumn<'_>> = keys.iter().map(|k| KeyColumn::Int(k)).collect();
        self.probe_chunk_mixed(&columns)
    }

    /// Probe one chunk of mixed key columns: `keys[j]`'s kind must match
    /// side `j` (validated up front). Selectivity observations feed the
    /// same reorder controller whatever the key types, so a selective
    /// string join learns to lead an unselective integer one and vice
    /// versa.
    pub fn probe_chunk_mixed(&mut self, keys: &[KeyColumn<'_>]) -> ChainResult {
        let n = validate_mixed_columns(&self.sides, keys);
        let order = self.controller.current_order().to_vec();
        let (result, observations) = probe_chunk_with_order_mixed(&self.sides, &order, keys, 0..n);
        for o in observations {
            self.controller.record(o.join, o.input, o.output, o.ns);
        }
        self.controller.next_order();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_keys(keys: &[i64]) -> HashTable {
        let k = Array::from(keys.to_vec());
        let p = Array::from(keys.iter().map(|x| x * 100).collect::<Vec<_>>());
        HashTable::build(&k, &p).unwrap()
    }

    #[test]
    fn build_and_probe() {
        let t = table_with_keys(&[1, 2, 3]);
        assert_eq!(t.len(), 3);
        let (idx, pay) = t.probe(&[5, 2, 1, 2]);
        assert_eq!(idx, vec![1, 2, 3]);
        assert_eq!(pay, vec![200, 100, 200]);
        assert_eq!(t.semi(&[3, 9]), vec![true, false]);
    }

    #[test]
    fn duplicate_build_keys_emit_one_row_per_match() {
        // Key 7 appears three times, key 8 once.
        let keys = Array::from(vec![7i64, 8, 7, 7]);
        let pays = Array::from(vec![70i64, 80, 71, 72]);
        let t = HashTable::build(&keys, &pays).unwrap();
        assert_eq!(t.len(), 4, "all build rows retained");
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.matches(7), &[70, 71, 72], "build-row order");
        let (idx, pay) = t.probe(&[8, 7, 9]);
        assert_eq!(idx, vec![0, 1, 1, 1]);
        assert_eq!(pay, vec![80, 70, 71, 72]);
    }

    #[test]
    fn partitioned_build_matches_sequential_build() {
        let keys: Vec<i64> = (0..500).map(|i| i % 37).collect();
        let pays: Vec<i64> = (0..500).collect();
        let whole = HashTable::from_rows(&keys, &pays);
        // Split into uneven morsels, merge in morsel order.
        let parts = [0..123, 123..200, 200..500]
            .map(|r: Range<usize>| JoinPartition::from_rows(&keys[r.clone()], &pays[r.clone()]));
        assert_eq!(parts.iter().map(JoinPartition::rows).sum::<usize>(), 500);
        let merged = HashTable::from_partitions(parts);
        let probes: Vec<i64> = (-5..45).collect();
        assert_eq!(whole.probe(&probes), merged.probe(&probes));
        assert_eq!(whole.len(), merged.len());
        assert_eq!(whole.distinct_keys(), merged.distinct_keys());
    }

    #[test]
    fn bloom_filter_never_drops_matches() {
        let keys: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let plain = table_with_keys(&keys);
        let bloomed = table_with_keys(&keys).with_bloom();
        let probes: Vec<i64> = (0..3000).collect();
        assert_eq!(plain.probe(&probes), bloomed.probe(&probes));
    }

    #[test]
    fn bloom_scales_with_build_cardinality() {
        // ~8 bits/key, power of two, with a floor for tiny builds.
        let small = table_with_keys(&(0..10).collect::<Vec<_>>()).with_bloom();
        assert_eq!(small.bloom_bits(), 128);
        let big_keys: Vec<i64> = (0..100_000).collect();
        let big = table_with_keys(&big_keys).with_bloom();
        assert_eq!(big.bloom_bits(), (100_000usize * 8).next_power_of_two());
        // False-positive rate stays useful beyond the old fixed 2^16 mask:
        // probe 100k keys that are all misses and require <25% to pass.
        let misses: Vec<i64> = (1_000_000..1_100_000).collect();
        let passed = misses.iter().filter(|&&k| big.contains(k)).count();
        assert_eq!(passed, 0, "contains() consults the table after the bloom");
        let fp =
            misses.iter().filter(|&&k| big.maybe_contains(k)).count() as f64 / misses.len() as f64;
        assert!(fp < 0.25, "false-positive rate collapsed: {fp}");
    }

    #[test]
    fn empty_table() {
        let t = table_with_keys(&[]);
        assert!(t.is_empty());
        let (idx, _) = t.probe(&[1, 2]);
        assert!(idx.is_empty());
    }

    fn str_keys(vals: &[i64]) -> Vec<String> {
        vals.iter().map(|v| format!("key-{v}")).collect()
    }

    #[test]
    fn str_table_matches_int_table_semantics() {
        // Same key structure as the integer duplicate test, via strings.
        let keys = str_keys(&[7, 8, 7, 7]);
        let pays = [70i64, 80, 71, 72];
        let t = StrHashTable::from_rows(&keys, &pays);
        assert_eq!(t.len(), 4);
        assert_eq!(t.distinct_keys(), 2);
        assert_eq!(t.matches("key-7"), &[70, 71, 72], "build-row order");
        assert_eq!(t.matches("key-9"), &[] as &[i64]);
        let probes = str_keys(&[8, 7, 9]);
        let (idx, pay) = t.probe(&probes);
        assert_eq!(idx, vec![0, 1, 1, 1]);
        assert_eq!(pay, vec![80, 70, 71, 72]);
        assert_eq!(t.semi(&probes), vec![true, true, false]);
    }

    #[test]
    fn str_partitioned_build_matches_sequential_build() {
        let key_ids: Vec<i64> = (0..500).map(|i| i % 37).collect();
        let keys = str_keys(&key_ids);
        let pays: Vec<i64> = (0..500).collect();
        let whole = StrHashTable::from_rows(&keys, &pays);
        let parts = [0..123, 123..200, 200..500]
            .map(|r: Range<usize>| StrJoinPartition::from_rows(&keys[r.clone()], &pays[r.clone()]));
        assert_eq!(parts.iter().map(StrJoinPartition::rows).sum::<usize>(), 500);
        let merged = StrHashTable::from_partitions(parts);
        let probes = str_keys(&(-5..45).collect::<Vec<_>>());
        assert_eq!(whole.probe(&probes), merged.probe(&probes));
        assert_eq!(whole.len(), merged.len());
        assert_eq!(whole.distinct_keys(), merged.distinct_keys());
    }

    #[test]
    fn str_bloom_never_drops_matches_and_scales() {
        let key_ids: Vec<i64> = (0..2_000).map(|i| i * 3).collect();
        let keys = str_keys(&key_ids);
        let pays: Vec<i64> = (0..2_000).collect();
        let plain = StrHashTable::from_rows(&keys, &pays);
        let bloomed = StrHashTable::from_rows(&keys, &pays).with_bloom();
        assert_eq!(
            bloomed.bloom_bits(),
            (2_000usize * 8).next_power_of_two(),
            "mask sized from build cardinality"
        );
        let probes = str_keys(&(0..6_000).collect::<Vec<_>>());
        assert_eq!(plain.probe(&probes), bloomed.probe(&probes));
    }

    #[test]
    fn str_build_rejects_mismatch() {
        let two_keys = Array::from(vec!["a".to_string(), "b".to_string()]);
        assert!(StrHashTable::build(&two_keys, &Array::from(vec![1i64])).is_none());
        assert!(StrHashTable::build(&Array::from(vec![1i64]), &Array::from(vec![1i64])).is_none());
        let t = StrHashTable::build(&two_keys, &Array::from(vec![10i64, 20])).unwrap();
        assert_eq!(t.matches("b"), &[20]);
        assert!(StrHashTable::from_rows(&[], &[]).is_empty());
    }

    #[test]
    fn build_rejects_mismatch() {
        assert!(HashTable::build(&Array::from(vec![1i64]), &Array::from(vec![1i64, 2])).is_none());
        assert!(HashTable::build(&Array::from(vec![1.5f64]), &Array::from(vec![1i64])).is_none());
    }

    #[test]
    #[should_panic(expected = "join key columns must have equal lengths")]
    fn chain_rejects_unequal_key_columns() {
        let mut chain =
            AdaptiveJoinChain::new(vec![table_with_keys(&[1]), table_with_keys(&[2])], 2);
        chain.probe_chunk(&[vec![1, 2, 3], vec![1, 2]]);
    }

    #[test]
    fn chain_learns_selective_join_first() {
        // Join 0 matches almost everything; join 1 matches 10%.
        let t0 = table_with_keys(&(0..1000).collect::<Vec<_>>());
        let t1 = table_with_keys(&(0..100).collect::<Vec<_>>());
        let mut chain = AdaptiveJoinChain::new(vec![t0, t1], 2);
        let keys0: Vec<i64> = (0..1000).collect();
        let keys1: Vec<i64> = (0..1000).collect();
        for _ in 0..20 {
            let r = chain.probe_chunk(&[keys0.clone(), keys1.clone()]);
            // Survivors: keys < 100 in join 1.
            assert_eq!(r.indices.len(), 100);
        }
        assert_eq!(chain.order(), &[1, 0], "selective join should lead");
    }

    #[test]
    fn chain_reorders_after_shift() {
        let t0 = table_with_keys(&(0..100).collect::<Vec<_>>());
        let t1 = table_with_keys(&(0..100).collect::<Vec<_>>());
        let mut chain = AdaptiveJoinChain::new(vec![t0, t1], 2);
        // Phase 1: probe keys make join 0 selective.
        let phase1_k0: Vec<i64> = (0..1000).collect(); // 10% match
        let phase1_k1: Vec<i64> = (0..1000).map(|i| i % 100).collect(); // all match
        for _ in 0..20 {
            chain.probe_chunk(&[phase1_k0.clone(), phase1_k1.clone()]);
        }
        assert_eq!(chain.order(), &[0, 1]);
        // Phase 2: selectivities swap.
        for _ in 0..30 {
            chain.probe_chunk(&[phase1_k1.clone(), phase1_k0.clone()]);
        }
        assert_eq!(chain.order(), &[1, 0]);
        assert!(chain.reorders() >= 1);
    }

    #[test]
    fn chain_results_are_order_independent() {
        let t0 = table_with_keys(&(0..50).collect::<Vec<_>>());
        let t1 = table_with_keys(&(25..75).collect::<Vec<_>>());
        let keys: Vec<i64> = (0..100).collect();
        let mut a = AdaptiveJoinChain::new(
            vec![
                table_with_keys(&(0..50).collect::<Vec<_>>()),
                table_with_keys(&(25..75).collect::<Vec<_>>()),
            ],
            1,
        );
        let mut results = Vec::new();
        for _ in 0..10 {
            results.push(a.probe_chunk(&[keys.clone(), keys.clone()]));
        }
        // Survivors are always 25..50 regardless of probe order.
        for r in &results {
            assert_eq!(
                r.indices,
                (25u32..50).collect::<Vec<_>>(),
                "survivors independent of order"
            );
        }
        let _ = (t0, t1);
    }

    #[test]
    fn str_from_pairs_matches_from_rows() {
        let keys = str_keys(&[7, 8, 7, 7]);
        let pays = [70i64, 80, 71, 72];
        let by_rows = StrHashTable::from_rows(&keys, &pays);
        let by_pairs =
            StrHashTable::from_pairs(keys.iter().map(String::as_str).zip(pays.iter().copied()));
        let probes = str_keys(&(0..12).collect::<Vec<_>>());
        assert_eq!(by_pairs.probe(&probes), by_rows.probe(&probes));
        assert_eq!(by_pairs.len(), by_rows.len());
        assert_eq!(by_pairs.distinct_keys(), by_rows.distinct_keys());
    }

    #[test]
    fn mixed_chain_learns_selective_string_join_first() {
        // Join 0: integer, matches everything. Join 1: string, matches 10%.
        let t0 = JoinSide::Int(table_with_keys(&(0..1000).collect::<Vec<_>>()));
        let str_build = str_keys(&(0..100).collect::<Vec<_>>());
        let str_pays: Vec<i64> = (0..100).map(|i| i * 7).collect();
        let t1 = JoinSide::Str(StrHashTable::from_rows(&str_build, &str_pays));
        assert_eq!(t1.len(), 100);
        assert!(!t1.is_empty());
        let mut chain = AdaptiveJoinChain::new_mixed(vec![t0, t1], 2);
        let int_probe: Vec<i64> = (0..1000).collect();
        let str_probe = str_keys(&(0..1000).collect::<Vec<_>>());
        for _ in 0..20 {
            let r =
                chain.probe_chunk_mixed(&[KeyColumn::Int(&int_probe), KeyColumn::Str(&str_probe)]);
            assert_eq!(r.indices.len(), 100, "only str keys < 100 survive");
            // Payload projection counts both sides: int side pays key*100,
            // str side pays key*7.
            assert_eq!(r.payload_sum[3], 3 * 100 + 3 * 7);
        }
        assert_eq!(chain.order(), &[1, 0], "selective string join leads");
    }

    #[test]
    #[should_panic(expected = "join 1 is utf8-keyed but its probe column is i64")]
    fn mixed_chain_rejects_kind_mismatch() {
        let t0 = JoinSide::Int(table_with_keys(&[1]));
        let t1 = JoinSide::Str(StrHashTable::from_rows(&str_keys(&[1]), &[1]));
        let mut chain = AdaptiveJoinChain::new_mixed(vec![t0, t1], 2);
        let probe = vec![1i64];
        chain.probe_chunk_mixed(&[KeyColumn::Int(&probe), KeyColumn::Int(&probe)]);
    }

    #[test]
    #[should_panic(expected = "join 0 is utf8-keyed but its probe column is i64")]
    fn int_probe_of_str_side_panics_clearly() {
        // probe_chunk (the integer-only entry) on a chain holding a str
        // side must fail the up-front validation.
        let t1 = JoinSide::Str(StrHashTable::from_rows(&str_keys(&[1]), &[1]));
        let mut chain = AdaptiveJoinChain::new_mixed(vec![t1], 2);
        chain.probe_chunk(&[vec![1i64]]);
    }

    #[test]
    fn chain_payload_counts_every_duplicate_match() {
        // Join 0 has key 1 twice (payloads 10, 11); join 1 once (payload 5).
        let t0 = HashTable::build(
            &Array::from(vec![1i64, 1, 2]),
            &Array::from(vec![10i64, 11, 20]),
        )
        .unwrap();
        let t1 = HashTable::build(&Array::from(vec![1i64]), &Array::from(vec![5i64])).unwrap();
        let mut chain = AdaptiveJoinChain::new(vec![t0, t1], 4);
        let r = chain.probe_chunk(&[vec![1, 2], vec![1, 1]]);
        assert_eq!(r.indices, vec![0, 1]);
        assert_eq!(r.payload_sum, vec![10 + 11 + 5, 20 + 5]);
    }
}
