//! Hash joins, Bloom pre-filtering, and the §III-C adaptive join chain.
//!
//! "Consider a chain of two HashJoin operators A and B. We could filter the
//! tuples using A first and later B (essentially executing the SemiJoin
//! first), when A eliminates more tuples from the flow." —
//! [`AdaptiveJoinChain`] implements exactly that, driven by
//! [`adaptvm_vm::reorder::ReorderController`].

use std::collections::HashMap;
use std::time::Instant;

use adaptvm_storage::Array;
use adaptvm_vm::reorder::ReorderController;

/// A build-side hash table from join key to payload.
#[derive(Debug, Clone)]
pub struct HashTable {
    map: HashMap<i64, i64>,
    /// Optional Bloom-style pre-filter (a simple blocked bitmask).
    bloom: Option<Vec<u64>>,
}

const BLOOM_BITS_LOG2: u32 = 16;

impl HashTable {
    /// Build from parallel key/payload arrays (last duplicate wins).
    pub fn build(keys: &Array, payloads: &Array) -> Option<HashTable> {
        let k = keys.to_i64_vec()?;
        let p = payloads.to_i64_vec()?;
        if k.len() != p.len() {
            return None;
        }
        let map: HashMap<i64, i64> = k.iter().copied().zip(p.iter().copied()).collect();
        Some(HashTable { map, bloom: None })
    }

    /// Attach a Bloom pre-filter (useful for selective joins, §IV:
    /// "the applicability of Bloom-filters in selective hash-joins").
    pub fn with_bloom(mut self) -> HashTable {
        let mut bits = vec![0u64; 1 << (BLOOM_BITS_LOG2 - 6)];
        for &k in self.map.keys() {
            let h = adaptvm_kernels::map::hash_i64(k) as u64;
            let bit = (h >> 8) & ((1 << BLOOM_BITS_LOG2) - 1);
            bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.bloom = Some(bits);
        self
    }

    /// Number of build-side keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    #[inline]
    fn maybe_contains(&self, key: i64) -> bool {
        match &self.bloom {
            None => true,
            Some(bits) => {
                let h = adaptvm_kernels::map::hash_i64(key) as u64;
                let bit = (h >> 8) & ((1 << BLOOM_BITS_LOG2) - 1);
                bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
            }
        }
    }

    /// Probe with a key column: returns (probe indices, payloads) for
    /// matches.
    pub fn probe(&self, keys: &[i64]) -> (Vec<u32>, Vec<i64>) {
        let mut idx = Vec::new();
        let mut payload = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if !self.maybe_contains(k) {
                continue;
            }
            if let Some(&p) = self.map.get(&k) {
                idx.push(i as u32);
                payload.push(p);
            }
        }
        (idx, payload)
    }

    /// Membership check for one key (Bloom pre-filter + table lookup).
    pub fn contains(&self, key: i64) -> bool {
        self.maybe_contains(key) && self.map.contains_key(&key)
    }

    /// Semi-join: which probe keys match at all.
    pub fn semi(&self, keys: &[i64]) -> Vec<bool> {
        keys.iter()
            .map(|&k| self.maybe_contains(k) && self.map.contains_key(&k))
            .collect()
    }
}

/// A chain of hash joins probed in adaptive order: the semi-join of the
/// most selective table runs first, shrinking the flow for the rest.
pub struct AdaptiveJoinChain {
    tables: Vec<HashTable>,
    controller: ReorderController,
}

/// The result of probing a chunk through the chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainResult {
    /// Indices of probe rows surviving every join.
    pub indices: Vec<u32>,
    /// Payload sums per surviving row (a stand-in projection).
    pub payload_sum: Vec<i64>,
}

impl AdaptiveJoinChain {
    /// Chain over the given build sides, re-evaluating order every
    /// `every` chunks.
    pub fn new(tables: Vec<HashTable>, every: u64) -> AdaptiveJoinChain {
        let n = tables.len();
        AdaptiveJoinChain {
            tables,
            controller: ReorderController::new(n, every),
        }
    }

    /// The current probe order.
    pub fn order(&self) -> &[usize] {
        self.controller.current_order()
    }

    /// Times the order changed so far.
    pub fn reorders(&self) -> u64 {
        self.controller.reorders()
    }

    /// Probe one chunk of key columns (`keys[j]` is the probe key column
    /// for join `j`). All key columns must have equal length.
    pub fn probe_chunk(&mut self, keys: &[Vec<i64>]) -> ChainResult {
        assert_eq!(keys.len(), self.tables.len(), "one key column per join");
        let n = keys.first().map_or(0, Vec::len);
        let order = self.controller.current_order().to_vec();
        let mut alive: Vec<u32> = (0..n as u32).collect();
        for &j in &order {
            let t0 = Instant::now();
            let input = alive.len();
            let table = &self.tables[j];
            alive.retain(|&i| {
                let k = keys[j][i as usize];
                table.maybe_contains(k) && table.map.contains_key(&k)
            });
            self.controller
                .record(j, input, alive.len(), t0.elapsed().as_nanos() as u64);
        }
        // Project payloads for the survivors.
        let payload_sum: Vec<i64> = alive
            .iter()
            .map(|&i| {
                self.tables
                    .iter()
                    .enumerate()
                    .map(|(j, t)| *t.map.get(&keys[j][i as usize]).expect("survivor matches"))
                    .sum()
            })
            .collect();
        self.controller.next_order();
        ChainResult {
            indices: alive,
            payload_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_keys(keys: &[i64]) -> HashTable {
        let k = Array::from(keys.to_vec());
        let p = Array::from(keys.iter().map(|x| x * 100).collect::<Vec<_>>());
        HashTable::build(&k, &p).unwrap()
    }

    #[test]
    fn build_and_probe() {
        let t = table_with_keys(&[1, 2, 3]);
        assert_eq!(t.len(), 3);
        let (idx, pay) = t.probe(&[5, 2, 1, 2]);
        assert_eq!(idx, vec![1, 2, 3]);
        assert_eq!(pay, vec![200, 100, 200]);
        assert_eq!(t.semi(&[3, 9]), vec![true, false]);
    }

    #[test]
    fn bloom_filter_never_drops_matches() {
        let keys: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let plain = table_with_keys(&keys);
        let bloomed = table_with_keys(&keys).with_bloom();
        let probes: Vec<i64> = (0..3000).collect();
        assert_eq!(plain.probe(&probes), bloomed.probe(&probes));
    }

    #[test]
    fn empty_table() {
        let t = table_with_keys(&[]);
        assert!(t.is_empty());
        let (idx, _) = t.probe(&[1, 2]);
        assert!(idx.is_empty());
    }

    #[test]
    fn build_rejects_mismatch() {
        assert!(HashTable::build(&Array::from(vec![1i64]), &Array::from(vec![1i64, 2])).is_none());
        assert!(HashTable::build(&Array::from(vec![1.5f64]), &Array::from(vec![1i64])).is_none());
    }

    #[test]
    fn chain_learns_selective_join_first() {
        // Join 0 matches almost everything; join 1 matches 10%.
        let t0 = table_with_keys(&(0..1000).collect::<Vec<_>>());
        let t1 = table_with_keys(&(0..100).collect::<Vec<_>>());
        let mut chain = AdaptiveJoinChain::new(vec![t0, t1], 2);
        let keys0: Vec<i64> = (0..1000).collect();
        let keys1: Vec<i64> = (0..1000).collect();
        for _ in 0..20 {
            let r = chain.probe_chunk(&[keys0.clone(), keys1.clone()]);
            // Survivors: keys < 100 in join 1.
            assert_eq!(r.indices.len(), 100);
        }
        assert_eq!(chain.order(), &[1, 0], "selective join should lead");
    }

    #[test]
    fn chain_reorders_after_shift() {
        let t0 = table_with_keys(&(0..100).collect::<Vec<_>>());
        let t1 = table_with_keys(&(0..100).collect::<Vec<_>>());
        let mut chain = AdaptiveJoinChain::new(vec![t0, t1], 2);
        // Phase 1: probe keys make join 0 selective.
        let phase1_k0: Vec<i64> = (0..1000).collect(); // 10% match
        let phase1_k1: Vec<i64> = (0..1000).map(|i| i % 100).collect(); // all match
        for _ in 0..20 {
            chain.probe_chunk(&[phase1_k0.clone(), phase1_k1.clone()]);
        }
        assert_eq!(chain.order(), &[0, 1]);
        // Phase 2: selectivities swap.
        for _ in 0..30 {
            chain.probe_chunk(&[phase1_k1.clone(), phase1_k0.clone()]);
        }
        assert_eq!(chain.order(), &[1, 0]);
        assert!(chain.reorders() >= 1);
    }

    #[test]
    fn chain_results_are_order_independent() {
        let t0 = table_with_keys(&(0..50).collect::<Vec<_>>());
        let t1 = table_with_keys(&(25..75).collect::<Vec<_>>());
        let keys: Vec<i64> = (0..100).collect();
        let mut a = AdaptiveJoinChain::new(
            vec![
                table_with_keys(&(0..50).collect::<Vec<_>>()),
                table_with_keys(&(25..75).collect::<Vec<_>>()),
            ],
            1,
        );
        let mut results = Vec::new();
        for _ in 0..10 {
            results.push(a.probe_chunk(&[keys.clone(), keys.clone()]));
        }
        // Survivors are always 25..50 regardless of probe order.
        for r in &results {
            assert_eq!(
                r.indices,
                (25u32..50).collect::<Vec<_>>(),
                "survivors independent of order"
            );
        }
        let _ = (t0, t1);
    }
}
