//! Chunk-level physical operators.
//!
//! Operators consume and produce [`Chunk`]s with chunk-level pending
//! selections — the X100 execution model. Selections compose across
//! operators; `materialize` (condense) runs only at pipeline breakers.

use adaptvm_dsl::ast::ScalarOp;
use adaptvm_kernels::{filter_cmp, map_apply, FilterFlavor, MapMode, Operand};
use adaptvm_storage::chunk::Chunk;
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::schema::Table;
use adaptvm_storage::Array;

use crate::ops;

/// Errors from the operator layer.
pub type OpResult<T> = Result<T, adaptvm_kernels::KernelError>;

/// Extract a named column as `Vec<i64>` — the shared precondition
/// plumbing of the join and aggregation pipelines.
pub(crate) fn int_column(table: &Table, name: &str) -> OpResult<Vec<i64>> {
    table
        .column_by_name(name)
        .map_err(adaptvm_kernels::KernelError::Storage)?
        .to_i64_vec()
        .ok_or_else(|| {
            adaptvm_kernels::KernelError::Precondition(format!("{name} must be integer"))
        })
}

/// Scan a dense table as a chunk iterator.
pub struct DenseScan<'t> {
    table: &'t Table,
    columns: Vec<usize>,
    chunk_rows: usize,
    offset: usize,
}

impl<'t> DenseScan<'t> {
    /// Scan `columns` (by name) in chunks of `chunk_rows`.
    pub fn new(table: &'t Table, columns: &[&str], chunk_rows: usize) -> OpResult<DenseScan<'t>> {
        let columns = columns
            .iter()
            .map(|n| table.schema().index_of(n))
            .collect::<Result<Vec<_>, _>>()
            .map_err(adaptvm_kernels::KernelError::Storage)?;
        Ok(DenseScan {
            table,
            columns,
            chunk_rows: chunk_rows.max(1),
            offset: 0,
        })
    }
}

impl Iterator for DenseScan<'_> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        if self.offset >= self.table.rows() {
            return None;
        }
        let cols: Vec<Array> = self
            .columns
            .iter()
            .map(|&i| {
                self.table
                    .column(i)
                    .expect("validated")
                    .slice(self.offset, self.chunk_rows)
            })
            .collect();
        self.offset += cols.first().map_or(0, Array::len);
        Chunk::new(cols).ok()
    }
}

/// Apply `column <op> constant` to the chunk, composing with its pending
/// selection.
pub fn select_cmp(
    chunk: &mut Chunk,
    column: usize,
    op: ScalarOp,
    constant: Scalar,
    flavor: FilterFlavor,
) -> OpResult<()> {
    let sel = {
        let col = chunk
            .column(column)
            .map_err(adaptvm_kernels::KernelError::Storage)?;
        filter_cmp(
            op,
            &[Operand::Col(col), Operand::Const(constant)],
            chunk.sel(),
            flavor,
        )?
    };
    // The computed selection is already absolute (composition happened in
    // filter_cmp via the candidates), so install it directly.
    replace_sel(chunk, sel);
    Ok(())
}

fn replace_sel(chunk: &mut Chunk, sel: adaptvm_storage::sel::SelVec) {
    // `Chunk::apply_sel` composes; we already composed, so rebuild.
    let cols = chunk.columns().to_vec();
    let mut fresh = Chunk::new(cols).expect("same columns");
    fresh
        .apply_sel(sel)
        .expect("selection indices are in range");
    *chunk = fresh;
}

/// Compute a binary arithmetic expression over two columns (or a column
/// and a constant), appending the result as a new column.
pub fn project_binary(
    chunk: &mut Chunk,
    op: ScalarOp,
    left: usize,
    right: Option<usize>,
    constant: Option<Scalar>,
    mode: MapMode,
) -> OpResult<usize> {
    let result = {
        let l = chunk
            .column(left)
            .map_err(adaptvm_kernels::KernelError::Storage)?;
        let operands: Vec<Operand<'_>> = match (right, &constant) {
            (Some(r), _) => vec![
                Operand::Col(l),
                Operand::Col(
                    chunk
                        .column(r)
                        .map_err(adaptvm_kernels::KernelError::Storage)?,
                ),
            ],
            (None, Some(c)) => vec![Operand::Col(l), Operand::Const(c.clone())],
            (None, None) => {
                return Err(adaptvm_kernels::KernelError::Precondition(
                    "project_binary needs a right column or a constant".into(),
                ))
            }
        };
        map_apply(op, &operands, chunk.sel(), mode)?
    };
    chunk
        .push_column(result)
        .map_err(adaptvm_kernels::KernelError::Storage)?;
    Ok(chunk.columns().len() - 1)
}

/// Materialize the pending selection (pipeline breaker).
pub fn materialize(chunk: &Chunk) -> OpResult<Chunk> {
    chunk
        .condense()
        .map_err(adaptvm_kernels::KernelError::Storage)
}

/// Sum a (selected) numeric column to `f64`.
pub fn sum_f64(chunk: &Chunk, column: usize) -> OpResult<f64> {
    let col = chunk
        .column(column)
        .map_err(adaptvm_kernels::KernelError::Storage)?;
    let s = adaptvm_kernels::fold_apply(
        adaptvm_dsl::ast::FoldFn::Sum,
        &Scalar::F64(0.0),
        col,
        chunk.sel(),
    )?;
    Ok(s.as_f64().expect("sum of numerics is numeric"))
}

/// Count the selected rows.
pub fn count(chunk: &Chunk) -> usize {
    chunk.selected_len()
}

/// Convenience: the whole select→project→sum pipeline over a table —
/// the B2 selectivity experiment's workload.
pub fn filter_project_sum(
    table: &Table,
    filter_col: &str,
    threshold: i64,
    value_col: &str,
    chunk_rows: usize,
    flavor: FilterFlavor,
    mode: MapMode,
) -> OpResult<(f64, usize)> {
    let scan = DenseScan::new(table, &[filter_col, value_col], chunk_rows)?;
    let mut total = 0.0;
    let mut rows = 0;
    for mut chunk in scan {
        ops::select_cmp(&mut chunk, 0, ScalarOp::Gt, Scalar::I64(threshold), flavor)?;
        let doubled = ops::project_binary(
            &mut chunk,
            ScalarOp::Mul,
            1,
            None,
            Some(Scalar::I64(2)),
            mode,
        )?;
        total += ops::sum_f64(&chunk, doubled)?;
        rows += ops::count(&chunk);
    }
    Ok((total, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_storage::schema::{Field, Schema};
    use adaptvm_storage::ScalarType;

    fn table() -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("k", ScalarType::I64),
                Field::new("v", ScalarType::I64),
            ]),
            vec![
                Array::from((0..100i64).collect::<Vec<_>>()),
                Array::from((0..100i64).map(|i| i * 10).collect::<Vec<_>>()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn scan_chunks_cover_table() {
        let t = table();
        let chunks: Vec<Chunk> = DenseScan::new(&t, &["k", "v"], 32).unwrap().collect();
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(Chunk::len).sum::<usize>(), 100);
        assert_eq!(chunks[3].len(), 4);
        assert!(DenseScan::new(&t, &["missing"], 32).is_err());
    }

    #[test]
    fn select_project_sum_pipeline() {
        let t = table();
        for flavor in FilterFlavor::ALL {
            for mode in [MapMode::Full, MapMode::Selective] {
                let (total, rows) = filter_project_sum(&t, "k", 89, "v", 16, flavor, mode).unwrap();
                // k in 90..=99 → v = 900..=990, doubled & summed.
                let expected: f64 = (90..100).map(|i| (i * 10 * 2) as f64).sum();
                assert_eq!(total, expected, "{flavor:?}/{mode:?}");
                assert_eq!(rows, 10);
            }
        }
    }

    #[test]
    fn selections_compose_across_selects() {
        let t = table();
        let mut chunk = DenseScan::new(&t, &["k", "v"], 128)
            .unwrap()
            .next()
            .unwrap();
        select_cmp(
            &mut chunk,
            0,
            ScalarOp::Gt,
            Scalar::I64(49),
            FilterFlavor::SelVecLoop,
        )
        .unwrap();
        assert_eq!(chunk.selected_len(), 50);
        select_cmp(
            &mut chunk,
            0,
            ScalarOp::Lt,
            Scalar::I64(60),
            FilterFlavor::Bitmap,
        )
        .unwrap();
        assert_eq!(chunk.selected_len(), 10);
        let m = materialize(&chunk).unwrap();
        assert_eq!(m.len(), 10);
        assert_eq!(
            m.column(0).unwrap().to_i64_vec().unwrap(),
            (50..60).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn project_over_two_columns() {
        let t = table();
        let mut chunk = DenseScan::new(&t, &["k", "v"], 128)
            .unwrap()
            .next()
            .unwrap();
        let idx =
            project_binary(&mut chunk, ScalarOp::Add, 0, Some(1), None, MapMode::Full).unwrap();
        let col = chunk.column(idx).unwrap().to_i64_vec().unwrap();
        assert_eq!(col[5], 5 + 50);
        // Missing operands error.
        assert!(project_binary(&mut chunk, ScalarOp::Add, 0, None, None, MapMode::Full).is_err());
    }
}
