//! Memory-governed out-of-core hash joins: **grace-hash spill
//! partitions**.
//!
//! The in-memory joins of [`crate::parallel`] materialize the whole build
//! side as one hash table — fine until the build side outgrows memory.
//! This module adds the out-of-core regime. The build side is
//! hash-partitioned into [`SPILL_FANOUT`] partitions; each partition
//! charges a shared [`MemoryBudget`] before building its table, and a
//! partition whose charge fails **spills** its rows to an append-only run
//! file ([`adaptvm_storage::spill`]) instead. Probe rows for spilled
//! partitions are deferred; after the morsel-parallel probe, a sequential
//! settle phase resolves each spilled partition in deterministic
//! partition order — re-partitioning on the next four hash bits
//! (a rehash per recursion level) when a partition *still* does not fit,
//! and force-building only when a partition cannot be split further (all
//! rows share one hash) or the hash bits run out.
//!
//! ## Exactness
//!
//! The output is **bit-identical to the in-memory join** for any budget
//! and any worker count: every probe row's matches come from exactly one
//! (resident or spilled) partition with its build rows in global
//! build-row order, and the final assembly merges the resident stream and
//! the settled stream by ascending probe index. The worker-sweep and
//! proptest suites in `tests/spill_join.rs` pin this down across budgets
//! forcing zero, some, and all partitions to spill.
//!
//! ## Cancellation
//!
//! The morsel-parallel phases check the [`ParallelOpts::cancel`] token at
//! morsel boundaries as always; the settle phase checks it **between
//! spill runs** (every partition and every recursion level), so serve-
//! layer deadlines keep binding through long out-of-core tails.
//!
//! ```
//! use adaptvm_parallel::MemoryBudget;
//! use adaptvm_relational::parallel::{parallel_hash_join, ParallelOpts};
//! use adaptvm_relational::spill::parallel_hash_join_spill;
//! use adaptvm_storage::Array;
//!
//! let build_keys = Array::from((0..4_000).map(|i| i % 512).collect::<Vec<i64>>());
//! let build_pays = Array::from((0..4_000).collect::<Vec<i64>>());
//! let probe_keys: Vec<i64> = (0..2_000).map(|i| i % 700).collect();
//!
//! // A budget far below the build side's footprint: partitions spill to
//! // disk and are settled out-of-core...
//! let budget = MemoryBudget::bytes(16 * 1024);
//! let opts = ParallelOpts::new(2, 1_000).with_budget(&budget);
//! let (out, spill) =
//!     parallel_hash_join_spill(&build_keys, &build_pays, &probe_keys, false, opts).unwrap();
//! assert!(spill.spilled());
//! assert!(spill.bytes_written > 0);
//!
//! // ...and the result is bit-identical to the in-memory join.
//! let (_, reference) = parallel_hash_join(
//!     &build_keys, &build_pays, &probe_keys, false, ParallelOpts::new(2, 1_000),
//! ).unwrap();
//! assert_eq!(out.indices, reference.indices);
//! assert_eq!(out.payloads, reference.payloads);
//! assert_eq!(budget.used(), 0, "all charges released");
//! ```

use adaptvm_kernels::map::{hash_i64, hash_str};
use adaptvm_kernels::KernelError;
use adaptvm_parallel::join::SpillCheckpoint;
use adaptvm_parallel::{
    build_then_probe_spilling, BudgetLease, MemoryBudget, MorselPlan, RunError, SpillStats,
};
use adaptvm_storage::spill::{IntRun, IntRunWriter, SpillDir, StrBatch, StrRun, StrRunWriter};
use adaptvm_storage::Array;

use crate::join::{HashTable, StrHashTable};
use crate::ops::OpResult;
use crate::parallel::{kernel_run_err, ParallelJoinOutput, ParallelOpts};

/// Grace-hash fan-out: partitions per level, consuming four hash bits.
/// 16 partitions × 4 bits nest up to [`MAX_SPILL_DEPTH`] levels into a
/// 64-bit hash.
pub const SPILL_FANOUT: usize = 16;
const FANOUT_BITS: usize = 4;
/// Deepest recursion level: level `d` consumes hash bits
/// `[60 − 4d, 64 − 4d)` — top bits first, because the multiplicative
/// hash mixes high bits best (structured keys would collapse a low-bit
/// window onto few partitions) — so a 64-bit hash supports levels
/// 0..=15.
pub const MAX_SPILL_DEPTH: usize = 15;
/// Rows per run-file frame: the granularity at which recursion streams a
/// spilled partition (so re-partitioning never holds a partition whole).
const SPILL_FRAME_ROWS: usize = 4096;

/// Estimated resident bytes per build row of an integer hash table
/// (16 data bytes plus map/arena overhead) — what a partition charges
/// against the [`MemoryBudget`] before building.
pub const INT_BUILD_ROW_BYTES: usize = 48;
/// Per-row overhead estimate for a Utf8 hash table; the key bytes are
/// charged on top.
pub const STR_BUILD_ROW_BYTES: usize = 56;

/// The partition a hash lands in at recursion level `depth` (the 4-bit
/// window at bits `[60 − 4·depth, 64 − 4·depth)`).
#[inline]
fn bucket_of(hash: i64, depth: usize) -> usize {
    debug_assert!(depth <= MAX_SPILL_DEPTH);
    ((hash as u64) >> (u64::BITS as usize - FANOUT_BITS * (depth + 1))) as usize
        & (SPILL_FANOUT - 1)
}

fn storage_err(e: adaptvm_storage::StorageError) -> RunError<KernelError> {
    RunError::Task(KernelError::Storage(e))
}

static UNLIMITED: MemoryBudget = MemoryBudget::unlimited();

/// Merge the ascending resident stream with the (sorted) settled spill
/// pairs into one ascending output. The index sets are disjoint — a probe
/// row is either resident or deferred to exactly one spilled partition —
/// so `<=` never ties across streams and within-row payload order is
/// preserved.
fn merge_output_streams(
    res_idx: Vec<u32>,
    res_pay: Vec<i64>,
    spilled: Vec<(u32, i64)>,
) -> (Vec<u32>, Vec<i64>) {
    if spilled.is_empty() {
        return (res_idx, res_pay);
    }
    let mut idx = Vec::with_capacity(res_idx.len() + spilled.len());
    let mut pay = Vec::with_capacity(res_pay.len() + spilled.len());
    let (mut i, mut j) = (0, 0);
    while i < res_idx.len() || j < spilled.len() {
        let take_resident = match (res_idx.get(i), spilled.get(j)) {
            (Some(&a), Some(&(b, _))) => a <= b,
            (Some(_), None) => true,
            _ => false,
        };
        if take_resident {
            idx.push(res_idx[i]);
            pay.push(res_pay[i]);
            i += 1;
        } else {
            idx.push(spilled[j].0);
            pay.push(spilled[j].1);
            j += 1;
        }
    }
    (idx, pay)
}

// ---------------------------------------------------------------------------
// Integer keys
// ---------------------------------------------------------------------------

/// The shared probe structure of a budgeted integer join: per partition,
/// either a resident table or a spilled run. Resident charges are held
/// as RAII [`BudgetLease`]s so an aborted probe phase (cancellation,
/// deadline, rejection) returns them on drop; `dir` exists only once a
/// partition actually spilled.
struct IntSpillSides<'a> {
    tables: Vec<Option<HashTable>>,
    runs: Vec<Option<IntRun>>,
    leases: Vec<BudgetLease<'a>>,
    dir: Option<SpillDir>,
}

/// Memory-governed morsel-parallel hash join over integer keys: the
/// grace-hash sibling of [`crate::parallel::parallel_hash_join`], charging
/// [`ParallelOpts::effective_budget`] — an explicit budget, else the
/// submitting tenant's registered budget, else unlimited — for every
/// resident build partition and spilling the rest to disk. Output is
/// bit-identical to the in-memory join for any budget, worker count, and
/// morsel size; [`SpillStats`] reports what the out-of-core path did.
pub fn parallel_hash_join_spill(
    build_keys: &Array,
    build_payloads: &Array,
    probe_keys: &[i64],
    bloom: bool,
    opts: ParallelOpts<'_>,
) -> OpResult<(ParallelJoinOutput, SpillStats)> {
    let (bk, bp) = crate::parallel::build_rows(build_keys, build_payloads)?;
    let budget = opts.effective_budget().unwrap_or(&UNLIMITED);
    let build_plan = MorselPlan::new(bk.len(), opts.effective_morsel_rows());
    let probe_plan = MorselPlan::new(probe_keys.len(), opts.effective_morsel_rows());
    let with_bloom = |t: HashTable| if bloom { t.with_bloom() } else { t };

    let ((indices, payloads), stats, spill) = build_then_probe_spilling(
        opts.runner(),
        opts.cancel,
        budget,
        &build_plan,
        &probe_plan,
        // Build: partition this morsel's rows on the level-0 hash bits.
        |_, m| {
            let mut parts: Vec<(Vec<i64>, Vec<i64>)> = vec![Default::default(); SPILL_FANOUT];
            for i in m.start..m.end() {
                let b = bucket_of(hash_i64(bk[i]), 0);
                parts[b].0.push(bk[i]);
                parts[b].1.push(bp[i]);
            }
            Ok::<_, KernelError>(parts)
        },
        // Merge: concatenate per-morsel partitions in morsel order (global
        // build-row order per partition), then charge the budget partition
        // by partition — what fits becomes a resident table, what does not
        // spills to a run file.
        |parts, _, stats| {
            let mut buckets: Vec<(Vec<i64>, Vec<i64>)> = vec![Default::default(); SPILL_FANOUT];
            for part in parts {
                for (b, (k, p)) in part.into_iter().enumerate() {
                    buckets[b].0.extend(k);
                    buckets[b].1.extend(p);
                }
            }
            let mut dir: Option<SpillDir> = None;
            let mut tables = Vec::with_capacity(SPILL_FANOUT);
            let mut runs = Vec::with_capacity(SPILL_FANOUT);
            let mut leases = Vec::new();
            for (b, (keys, pays)) in buckets.into_iter().enumerate() {
                let cost = keys.len() * INT_BUILD_ROW_BYTES;
                // Leases come from the captured `budget` (not the closure
                // parameter) so the sides can hold them across the probe
                // phase and release on any exit path.
                if let Ok(lease) = budget.lease(cost) {
                    tables.push(Some(with_bloom(HashTable::from_rows(&keys, &pays))));
                    runs.push(None);
                    leases.push(lease);
                } else {
                    if dir.is_none() {
                        dir = Some(SpillDir::new().map_err(KernelError::Storage)?);
                    }
                    let d = dir.as_ref().expect("just created");
                    let mut w = IntRunWriter::create(d.run_path(&format!("int-d0-b{b}")))
                        .map_err(KernelError::Storage)?;
                    for lo in (0..keys.len()).step_by(SPILL_FRAME_ROWS) {
                        let hi = (lo + SPILL_FRAME_ROWS).min(keys.len());
                        w.append(&keys[lo..hi], &pays[lo..hi])
                            .map_err(KernelError::Storage)?;
                    }
                    let run = w.finish().map_err(KernelError::Storage)?;
                    stats.partitions_spilled += 1;
                    stats.runs_written += 1;
                    stats.bytes_written += run.bytes();
                    tables.push(None);
                    runs.push(Some(run));
                }
            }
            Ok(IntSpillSides {
                tables,
                runs,
                leases,
                dir,
            })
        },
        // Probe: resident partitions answer immediately; rows of spilled
        // partitions are deferred by (global) probe index.
        |_, m, shared: &IntSpillSides<'_>| {
            let mut idx = Vec::new();
            let mut pay = Vec::new();
            let mut deferred: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
            for (i, &k) in probe_keys.iter().enumerate().take(m.end()).skip(m.start) {
                let b = bucket_of(hash_i64(k), 0);
                match &shared.tables[b] {
                    Some(t) => {
                        for &p in t.matches(k) {
                            idx.push(i as u32);
                            pay.push(p);
                        }
                    }
                    None => deferred[b].push(i as u32),
                }
            }
            Ok((idx, pay, deferred))
        },
        // Settle: drop the resident tables and their leases (returning
        // the charge), then resolve spilled partitions sequentially in
        // partition order.
        |shared, outs, budget, stats, checkpoint| {
            let IntSpillSides {
                tables,
                runs,
                leases,
                dir,
            } = shared;
            drop(tables);
            drop(leases);
            let mut res_idx = Vec::new();
            let mut res_pay = Vec::new();
            let mut deferred: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
            for (idx, pay, defs) in outs {
                res_idx.extend(idx);
                res_pay.extend(pay);
                for (b, d) in defs.into_iter().enumerate() {
                    deferred[b].extend(d);
                }
            }
            let mut pairs: Vec<(u32, i64)> = Vec::new();
            for (b, run) in runs.into_iter().enumerate() {
                if let Some(run) = run {
                    settle_int_run(
                        run,
                        std::mem::take(&mut deferred[b]),
                        probe_keys,
                        0,
                        u64::MAX,
                        dir.as_ref().expect("spilled partitions imply a spill dir"),
                        budget,
                        bloom,
                        stats,
                        checkpoint,
                        &mut pairs,
                    )?;
                }
            }
            // Stable by probe index: payload order within a row is the
            // settled partition's build-row order.
            pairs.sort_by_key(|&(i, _)| i);
            Ok(merge_output_streams(res_idx, res_pay, pairs))
        },
    )
    .map_err(kernel_run_err)?;
    Ok((
        ParallelJoinOutput {
            indices,
            payloads,
            stats,
        },
        spill,
    ))
}

/// Resolve one spilled integer partition: rebuild it if it now fits (or
/// cannot be split further), else re-partition on the next hash level and
/// recurse. Matches are appended to `out` as `(probe index, payload)`
/// pairs in build-row order per probe row.
#[allow(clippy::too_many_arguments)]
fn settle_int_run(
    run: IntRun,
    probe_rows: Vec<u32>,
    probe_keys: &[i64],
    depth: usize,
    parent_rows: u64,
    dir: &SpillDir,
    budget: &MemoryBudget,
    bloom: bool,
    stats: &mut SpillStats,
    checkpoint: &SpillCheckpoint<'_>,
    out: &mut Vec<(u32, i64)>,
) -> Result<(), RunError<KernelError>> {
    checkpoint.check()?;
    stats.max_recursion_depth = stats.max_recursion_depth.max(depth);
    if probe_rows.is_empty() {
        run.delete();
        return Ok(());
    }
    let rows = run.rows();
    let cost = rows as usize * INT_BUILD_ROW_BYTES;
    // A further split must both have hash bits left and be able to make
    // progress (a partition of one repeated hash never shrinks).
    let splittable = depth < MAX_SPILL_DEPTH && rows < parent_rows;
    // The RAII lease releases the charge on every exit path, including
    // an I/O error while re-reading the run.
    let lease = budget.lease(cost).ok();
    if lease.is_some() || !splittable {
        if lease.is_none() {
            stats.forced_builds += 1;
        }
        let (keys, pays) = run.read_all().map_err(storage_err)?;
        stats.bytes_read += run.bytes();
        run.delete();
        let table = HashTable::from_rows(&keys, &pays);
        let table = if bloom { table.with_bloom() } else { table };
        drop((keys, pays));
        for &pi in &probe_rows {
            for &p in table.matches(probe_keys[pi as usize]) {
                out.push((pi, p));
            }
        }
        return Ok(());
    }
    // Re-partition (grace hash, next 4 bits), streaming frame-by-frame so
    // the partition is never resident whole. Sub-partitions without any
    // probe row cannot produce output — their build rows are dropped.
    let mut sub_probe: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
    for pi in probe_rows {
        sub_probe[bucket_of(hash_i64(probe_keys[pi as usize]), depth + 1)].push(pi);
    }
    let mut writers: Vec<Option<IntRunWriter>> = Vec::with_capacity(SPILL_FANOUT);
    for (s, probes) in sub_probe.iter().enumerate() {
        writers.push(if probes.is_empty() {
            None
        } else {
            Some(
                IntRunWriter::create(dir.run_path(&format!("int-d{}-b{s}", depth + 1)))
                    .map_err(storage_err)?,
            )
        });
    }
    let mut reader = run.reader().map_err(storage_err)?;
    while let Some((keys, pays)) = reader.next_frame().map_err(storage_err)? {
        let mut sub: Vec<(Vec<i64>, Vec<i64>)> = vec![Default::default(); SPILL_FANOUT];
        for (k, p) in keys.into_iter().zip(pays) {
            let s = bucket_of(hash_i64(k), depth + 1);
            if writers[s].is_some() {
                sub[s].0.push(k);
                sub[s].1.push(p);
            }
        }
        for (s, (k, p)) in sub.into_iter().enumerate() {
            if let Some(w) = writers[s].as_mut() {
                w.append(&k, &p).map_err(storage_err)?;
            }
        }
    }
    stats.bytes_read += run.bytes();
    run.delete();
    for (s, writer) in writers.into_iter().enumerate() {
        let Some(writer) = writer else { continue };
        let sub_run = writer.finish().map_err(storage_err)?;
        if sub_run.rows() == 0 {
            // Probe rows but no build rows: nothing can match.
            sub_run.delete();
            continue;
        }
        stats.partitions_spilled += 1;
        stats.runs_written += 1;
        stats.bytes_written += sub_run.bytes();
        settle_int_run(
            sub_run,
            std::mem::take(&mut sub_probe[s]),
            probe_keys,
            depth + 1,
            rows,
            dir,
            budget,
            bloom,
            stats,
            checkpoint,
            out,
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Utf8 keys
// ---------------------------------------------------------------------------

/// The shared probe structure of a budgeted string join; same lease and
/// lazy-dir discipline as [`IntSpillSides`].
struct StrSpillSides<'a> {
    tables: Vec<Option<StrHashTable>>,
    runs: Vec<Option<StrRun>>,
    leases: Vec<BudgetLease<'a>>,
    dir: Option<SpillDir>,
}

fn str_batch_cost(batch: &StrBatch) -> usize {
    batch.arena.len() + batch.len() * STR_BUILD_ROW_BYTES
}

fn str_table_of(batch: &StrBatch, bloom: bool) -> StrHashTable {
    let t = StrHashTable::from_pairs((0..batch.len()).map(|i| (batch.key(i), batch.values[i])));
    if bloom {
        t.with_bloom()
    } else {
        t
    }
}

fn append_str_chunked(w: &mut StrRunWriter, batch: &StrBatch) -> Result<(), KernelError> {
    let mut frame = StrBatch::default();
    for i in 0..batch.len() {
        frame.push(batch.key(i), batch.values[i]);
        if frame.len() == SPILL_FRAME_ROWS {
            w.append(&frame).map_err(KernelError::Storage)?;
            frame = StrBatch::default();
        }
    }
    w.append(&frame).map_err(KernelError::Storage)
}

/// Memory-governed morsel-parallel hash join over a **Utf8 key column**:
/// the grace-hash sibling of
/// [`crate::parallel::parallel_hash_join_str`], with spilled partitions
/// kept arena-backed end to end (run frames store one contiguous key
/// arena; rebuilding a partition goes through
/// [`StrHashTable::from_pairs`] without per-key allocation of the spilled
/// rows). Output is bit-identical to the in-memory string join for any
/// budget, worker count, and morsel size.
pub fn parallel_hash_join_str_spill(
    build_keys: &Array,
    build_payloads: &Array,
    probe_keys: &[String],
    bloom: bool,
    opts: ParallelOpts<'_>,
) -> OpResult<(ParallelJoinOutput, SpillStats)> {
    let bk = build_keys
        .as_str()
        .ok_or_else(|| KernelError::Precondition("join build keys must be strings".to_string()))?;
    let bp = build_payloads
        .to_i64_vec()
        .ok_or_else(|| KernelError::Precondition("join build payloads must be integer".into()))?;
    if bk.len() != bp.len() {
        return Err(KernelError::Precondition(format!(
            "build keys and payloads must have equal lengths ({} vs {})",
            bk.len(),
            bp.len()
        )));
    }
    let budget = opts.effective_budget().unwrap_or(&UNLIMITED);
    let build_plan = MorselPlan::new(bk.len(), opts.effective_morsel_rows());
    let probe_plan = MorselPlan::new(probe_keys.len(), opts.effective_morsel_rows());

    let ((indices, payloads), stats, spill) = build_then_probe_spilling(
        opts.runner(),
        opts.cancel,
        budget,
        &build_plan,
        &probe_plan,
        |_, m| {
            let mut parts: Vec<StrBatch> = vec![StrBatch::default(); SPILL_FANOUT];
            for i in m.start..m.end() {
                let b = bucket_of(hash_str(&bk[i]), 0);
                parts[b].push(&bk[i], bp[i]);
            }
            Ok::<_, KernelError>(parts)
        },
        |parts, _, stats| {
            let mut buckets: Vec<StrBatch> = vec![StrBatch::default(); SPILL_FANOUT];
            for part in parts {
                for (b, batch) in part.into_iter().enumerate() {
                    for i in 0..batch.len() {
                        buckets[b].push(batch.key(i), batch.values[i]);
                    }
                }
            }
            let mut dir: Option<SpillDir> = None;
            let mut tables = Vec::with_capacity(SPILL_FANOUT);
            let mut runs = Vec::with_capacity(SPILL_FANOUT);
            let mut leases = Vec::new();
            for (b, batch) in buckets.into_iter().enumerate() {
                let cost = str_batch_cost(&batch);
                // Leases come from the captured `budget` so the sides can
                // hold them across the probe phase (released on any exit).
                if let Ok(lease) = budget.lease(cost) {
                    tables.push(Some(str_table_of(&batch, bloom)));
                    runs.push(None);
                    leases.push(lease);
                } else {
                    if dir.is_none() {
                        dir = Some(SpillDir::new().map_err(KernelError::Storage)?);
                    }
                    let d = dir.as_ref().expect("just created");
                    let mut w = StrRunWriter::create(d.run_path(&format!("str-d0-b{b}")))
                        .map_err(KernelError::Storage)?;
                    append_str_chunked(&mut w, &batch)?;
                    let run = w.finish().map_err(KernelError::Storage)?;
                    stats.partitions_spilled += 1;
                    stats.runs_written += 1;
                    stats.bytes_written += run.bytes();
                    tables.push(None);
                    runs.push(Some(run));
                }
            }
            Ok(StrSpillSides {
                tables,
                runs,
                leases,
                dir,
            })
        },
        |_, m, shared: &StrSpillSides<'_>| {
            let mut idx = Vec::new();
            let mut pay = Vec::new();
            let mut deferred: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
            for (i, k) in probe_keys.iter().enumerate().take(m.end()).skip(m.start) {
                let b = bucket_of(hash_str(k), 0);
                match &shared.tables[b] {
                    Some(t) => {
                        for &p in t.matches(k) {
                            idx.push(i as u32);
                            pay.push(p);
                        }
                    }
                    None => deferred[b].push(i as u32),
                }
            }
            Ok((idx, pay, deferred))
        },
        |shared, outs, budget, stats, checkpoint| {
            let StrSpillSides {
                tables,
                runs,
                leases,
                dir,
            } = shared;
            drop(tables);
            drop(leases);
            let mut res_idx = Vec::new();
            let mut res_pay = Vec::new();
            let mut deferred: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
            for (idx, pay, defs) in outs {
                res_idx.extend(idx);
                res_pay.extend(pay);
                for (b, d) in defs.into_iter().enumerate() {
                    deferred[b].extend(d);
                }
            }
            let mut pairs: Vec<(u32, i64)> = Vec::new();
            for (b, run) in runs.into_iter().enumerate() {
                if let Some(run) = run {
                    settle_str_run(
                        run,
                        std::mem::take(&mut deferred[b]),
                        probe_keys,
                        0,
                        u64::MAX,
                        dir.as_ref().expect("spilled partitions imply a spill dir"),
                        budget,
                        bloom,
                        stats,
                        checkpoint,
                        &mut pairs,
                    )?;
                }
            }
            pairs.sort_by_key(|&(i, _)| i);
            Ok(merge_output_streams(res_idx, res_pay, pairs))
        },
    )
    .map_err(kernel_run_err)?;
    Ok((
        ParallelJoinOutput {
            indices,
            payloads,
            stats,
        },
        spill,
    ))
}

/// The string sibling of [`settle_int_run`].
#[allow(clippy::too_many_arguments)]
fn settle_str_run(
    run: StrRun,
    probe_rows: Vec<u32>,
    probe_keys: &[String],
    depth: usize,
    parent_rows: u64,
    dir: &SpillDir,
    budget: &MemoryBudget,
    bloom: bool,
    stats: &mut SpillStats,
    checkpoint: &SpillCheckpoint<'_>,
    out: &mut Vec<(u32, i64)>,
) -> Result<(), RunError<KernelError>> {
    checkpoint.check()?;
    stats.max_recursion_depth = stats.max_recursion_depth.max(depth);
    if probe_rows.is_empty() {
        run.delete();
        return Ok(());
    }
    let rows = run.rows();
    let splittable = depth < MAX_SPILL_DEPTH && rows < parent_rows;
    // Charge by the run's actual footprint: key bytes are inside the
    // frames, so approximate with the encoded size plus per-row overhead.
    let cost = run.bytes() as usize + rows as usize * STR_BUILD_ROW_BYTES;
    // The RAII lease releases the charge on every exit path, including
    // an I/O error while re-reading the run.
    let lease = budget.lease(cost).ok();
    if lease.is_some() || !splittable {
        if lease.is_none() {
            stats.forced_builds += 1;
        }
        let batch = run.read_all().map_err(storage_err)?;
        stats.bytes_read += run.bytes();
        run.delete();
        let table = str_table_of(&batch, bloom);
        drop(batch);
        for &pi in &probe_rows {
            for &p in table.matches(&probe_keys[pi as usize]) {
                out.push((pi, p));
            }
        }
        return Ok(());
    }
    let mut sub_probe: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
    for pi in probe_rows {
        sub_probe[bucket_of(hash_str(&probe_keys[pi as usize]), depth + 1)].push(pi);
    }
    let mut writers: Vec<Option<StrRunWriter>> = Vec::with_capacity(SPILL_FANOUT);
    for (s, probes) in sub_probe.iter().enumerate() {
        writers.push(if probes.is_empty() {
            None
        } else {
            Some(
                StrRunWriter::create(dir.run_path(&format!("str-d{}-b{s}", depth + 1)))
                    .map_err(storage_err)?,
            )
        });
    }
    let mut reader = run.reader().map_err(storage_err)?;
    while let Some(batch) = reader.next_frame().map_err(storage_err)? {
        let mut sub: Vec<StrBatch> = vec![StrBatch::default(); SPILL_FANOUT];
        for i in 0..batch.len() {
            let key = batch.key(i);
            let s = bucket_of(hash_str(key), depth + 1);
            if writers[s].is_some() {
                sub[s].push(key, batch.values[i]);
            }
        }
        for (s, frame) in sub.into_iter().enumerate() {
            if let Some(w) = writers[s].as_mut() {
                w.append(&frame).map_err(storage_err)?;
            }
        }
    }
    stats.bytes_read += run.bytes();
    run.delete();
    for (s, writer) in writers.into_iter().enumerate() {
        let Some(writer) = writer else { continue };
        let sub_run = writer.finish().map_err(storage_err)?;
        if sub_run.rows() == 0 {
            sub_run.delete();
            continue;
        }
        stats.partitions_spilled += 1;
        stats.runs_written += 1;
        stats.bytes_written += sub_run.bytes();
        settle_str_run(
            sub_run,
            std::mem::take(&mut sub_probe[s]),
            probe_keys,
            depth + 1,
            rows,
            dir,
            budget,
            bloom,
            stats,
            checkpoint,
            out,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_uses_disjoint_bit_windows() {
        // Two keys whose hashes differ only above the level-0 window must
        // collide at level 0 and (generically) separate later; the
        // function must never shift past the hash width.
        for depth in 0..=MAX_SPILL_DEPTH {
            let b = bucket_of(i64::MIN, depth);
            assert!(b < SPILL_FANOUT);
        }
        assert_eq!(bucket_of(0, 0), bucket_of(0, MAX_SPILL_DEPTH));
    }

    #[test]
    fn bucket_of_spreads_low_bit_strided_keys() {
        // Keys that share their low bits (all multiples of 16) must still
        // fan out over many level-0 partitions: the window is drawn from
        // the hash's high bits, where multiplicative hashing mixes best.
        let used: std::collections::HashSet<usize> = (0..1000i64)
            .map(|i| bucket_of(hash_i64(i * 16), 0))
            .collect();
        assert!(
            used.len() >= SPILL_FANOUT / 2,
            "structured keys collapsed to {} partitions",
            used.len()
        );
    }

    #[test]
    fn merge_streams_interleaves_by_index() {
        let (idx, pay) =
            merge_output_streams(vec![0, 2, 2], vec![10, 20, 21], vec![(1, 15), (3, 30)]);
        assert_eq!(idx, vec![0, 1, 2, 2, 3]);
        assert_eq!(pay, vec![10, 15, 20, 21, 30]);
        // Either stream alone passes through unchanged.
        assert_eq!(
            merge_output_streams(vec![5], vec![50], vec![]),
            (vec![5], vec![50])
        );
        assert_eq!(
            merge_output_streams(vec![], vec![], vec![(7, 70)]),
            (vec![7], vec![70])
        );
    }
}
