//! Memory-governed out-of-core operators: **grace-hash spill
//! partitions** for joins and aggregation.
//!
//! The in-memory joins of [`crate::parallel`] materialize the whole build
//! side as one hash table — fine until the build side outgrows memory.
//! This module adds the out-of-core regime on top of the operator-generic
//! [`SpillableOp`] driver (`adaptvm_parallel::spillable`). The input is
//! hash-partitioned into [`SPILL_FANOUT`] partitions; each partition
//! charges a shared [`MemoryBudget`] before building its resident
//! structure, and a partition whose charge fails **spills** its rows to an
//! append-only run file ([`adaptvm_storage::spill`]) instead. A sequential
//! settle phase resolves each spilled partition in deterministic partition
//! order — re-partitioning on the next four hash bits (a rehash per
//! recursion level) when a partition *still* does not fit, and
//! force-building only when a partition cannot be split further (all rows
//! share one hash) or the hash bits run out.
//!
//! Three operators live here:
//!
//! * [`parallel_hash_join_spill`] / [`parallel_hash_join_str_spill`] —
//!   grace-hash joins with **probe-side spill**: probe rows of a spilled
//!   partition are deferred as row indices, and when even that index list
//!   does not fit the budget ([`PROBE_ROW_BYTES`] per row), the deferred
//!   rows themselves spill to `(key, probe index)` runs that are streamed
//!   (never resident whole) through recursion and the final probe.
//! * [`parallel_hash_aggregate_spill`] — **out-of-core hash aggregation**
//!   (the TPC-H Q1 family): rows partition by group key, resident
//!   partitions aggregate immediately, spilled partitions aggregate
//!   during settle — always observing each group's rows in global row
//!   order, so the result is bit-identical to the sequential fold
//!   ([`crate::agg::aggregate_rows`]).
//!
//! The external merge sort built on the same driver lives in
//! [`crate::sort`].
//!
//! ## Exactness
//!
//! Every operator's output is **bit-identical to its in-memory oracle**
//! for any budget and any worker count: each row's contribution comes
//! from exactly one (resident or spilled) partition with rows in global
//! row order, and final assembly merges streams deterministically
//! (ascending probe index for joins, key order for aggregation). The
//! worker-sweep and proptest suites in `tests/spill_join.rs` and
//! `tests/spill_query.rs` pin this down across budgets forcing zero,
//! some, and all partitions to spill.
//!
//! ## Cancellation
//!
//! The morsel-parallel phases check the [`ParallelOpts::cancel`] token at
//! morsel boundaries as always; the settle phase checks it **between
//! spill runs** (every partition and every recursion level), so serve-
//! layer deadlines keep binding through long out-of-core tails.
//!
//! ```
//! use adaptvm_parallel::MemoryBudget;
//! use adaptvm_relational::parallel::{parallel_hash_join, ParallelOpts};
//! use adaptvm_relational::spill::parallel_hash_join_spill;
//! use adaptvm_storage::Array;
//!
//! let build_keys = Array::from((0..4_000).map(|i| i % 512).collect::<Vec<i64>>());
//! let build_pays = Array::from((0..4_000).collect::<Vec<i64>>());
//! let probe_keys: Vec<i64> = (0..2_000).map(|i| i % 700).collect();
//!
//! // A budget far below the build side's footprint: partitions spill to
//! // disk and are settled out-of-core...
//! let budget = MemoryBudget::bytes(16 * 1024);
//! let opts = ParallelOpts::new(2, 1_000).with_budget(&budget);
//! let (out, spill) =
//!     parallel_hash_join_spill(&build_keys, &build_pays, &probe_keys, false, opts).unwrap();
//! assert!(spill.spilled());
//! assert!(spill.bytes_written > 0);
//!
//! // ...and the result is bit-identical to the in-memory join.
//! let (_, reference) = parallel_hash_join(
//!     &build_keys, &build_pays, &probe_keys, false, ParallelOpts::new(2, 1_000),
//! ).unwrap();
//! assert_eq!(out.indices, reference.indices);
//! assert_eq!(out.payloads, reference.payloads);
//! assert_eq!(budget.used(), 0, "all charges released");
//! ```

use std::collections::HashMap;

use adaptvm_kernels::map::{hash_i64, hash_str};
use adaptvm_kernels::KernelError;
use adaptvm_parallel::{
    acquire_partition, acquire_str, obs, run_spillable, BudgetLease, MemoryBudget, Morsel,
    MorselPlan, PartitionScratch, RunError, SpillCheckpoint, SpillStats, SpillableOp, StrScratch,
};
use adaptvm_storage::spill::{IntRun, IntRunWriter, SpillDir, StrBatch, StrRun, StrRunWriter};
use adaptvm_storage::{Array, Table};

use crate::agg::GroupState;
use crate::join::{HashTable, StrHashTable};
use crate::ops::OpResult;
use crate::parallel::{kernel_run_err, ParallelJoinOutput, ParallelOpts};

/// Grace-hash fan-out: partitions per level, consuming four hash bits.
/// 16 partitions × 4 bits nest up to [`MAX_SPILL_DEPTH`] levels into a
/// 64-bit hash.
pub const SPILL_FANOUT: usize = 16;
const FANOUT_BITS: usize = 4;
/// Deepest recursion level: level `d` consumes hash bits
/// `[60 − 4d, 64 − 4d)` — top bits first, because the multiplicative
/// hash mixes high bits best (structured keys would collapse a low-bit
/// window onto few partitions) — so a 64-bit hash supports levels
/// 0..=15.
pub const MAX_SPILL_DEPTH: usize = 15;
/// Rows per run-file frame: the granularity at which recursion streams a
/// spilled partition (so re-partitioning never holds a partition whole).
pub(crate) const SPILL_FRAME_ROWS: usize = 4096;

/// Estimated resident bytes per build row of an integer hash table
/// (16 data bytes plus map/arena overhead) — what a partition charges
/// against the [`MemoryBudget`] before building.
pub const INT_BUILD_ROW_BYTES: usize = 48;
/// Per-row overhead estimate for a Utf8 hash table; the key bytes are
/// charged on top.
pub const STR_BUILD_ROW_BYTES: usize = 56;
/// Bytes charged per deferred probe-row index a spilled join partition
/// keeps resident; when even this fails, the probe side spills too.
pub const PROBE_ROW_BYTES: usize = 8;
/// Estimated resident bytes per input row of a hash-aggregation
/// partition (16 data bytes plus hash-map overhead for the worst case of
/// all-distinct keys).
pub const AGG_ROW_BYTES: usize = 56;

/// The partition a hash lands in at recursion level `depth` (the 4-bit
/// window at bits `[60 − 4·depth, 64 − 4·depth)`).
#[inline]
fn bucket_of(hash: i64, depth: usize) -> usize {
    debug_assert!(depth <= MAX_SPILL_DEPTH);
    ((hash as u64) >> (u64::BITS as usize - FANOUT_BITS * (depth + 1))) as usize
        & (SPILL_FANOUT - 1)
}

pub(crate) fn storage_err(e: adaptvm_storage::StorageError) -> RunError<KernelError> {
    RunError::Task(KernelError::Storage(e))
}

pub(crate) static UNLIMITED: MemoryBudget = MemoryBudget::unlimited();

/// Merge the ascending resident stream with the (sorted) settled spill
/// pairs into one ascending output. The index sets are disjoint — a probe
/// row is either resident or deferred to exactly one spilled partition —
/// so `<=` never ties across streams and within-row payload order is
/// preserved.
fn merge_output_streams(
    res_idx: Vec<u32>,
    res_pay: Vec<i64>,
    spilled: Vec<(u32, i64)>,
) -> (Vec<u32>, Vec<i64>) {
    if spilled.is_empty() {
        return (res_idx, res_pay);
    }
    let mut idx = Vec::with_capacity(res_idx.len() + spilled.len());
    let mut pay = Vec::with_capacity(res_pay.len() + spilled.len());
    let (mut i, mut j) = (0, 0);
    while i < res_idx.len() || j < spilled.len() {
        let take_resident = match (res_idx.get(i), spilled.get(j)) {
            (Some(&a), Some(&(b, _))) => a <= b,
            (Some(_), None) => true,
            _ => false,
        };
        if take_resident {
            idx.push(res_idx[i]);
            pay.push(res_pay[i]);
            i += 1;
        } else {
            idx.push(spilled[j].0);
            pay.push(spilled[j].1);
            j += 1;
        }
    }
    (idx, pay)
}

// ---------------------------------------------------------------------------
// Integer keys
// ---------------------------------------------------------------------------

/// The shared probe structure of a budgeted integer join: per partition,
/// either a resident table or a spilled run. Resident charges are held
/// as RAII [`BudgetLease`]s so an aborted probe phase (cancellation,
/// deadline, rejection) returns them on drop; `dir` exists only once a
/// partition actually spilled.
struct IntSpillSides<'a> {
    tables: Vec<Option<HashTable>>,
    runs: Vec<Option<IntRun>>,
    leases: Vec<BudgetLease<'a>>,
    dir: Option<SpillDir>,
}

/// The deferred probe rows of one spilled join partition: resident as a
/// charged index list when [`PROBE_ROW_BYTES`] per row fits the budget,
/// else spilled to a `(key, probe index)` run that is only ever streamed.
/// Both forms keep rows in ascending probe-index order, so the settled
/// output is identical either way.
enum IntProbe<'a> {
    Resident(Vec<u32>, Option<BudgetLease<'a>>),
    Spilled(IntRun),
}

impl IntProbe<'_> {
    fn is_empty(&self) -> bool {
        match self {
            IntProbe::Resident(rows, _) => rows.is_empty(),
            IntProbe::Spilled(run) => run.rows() == 0,
        }
    }

    fn delete(self) {
        if let IntProbe::Spilled(run) = self {
            run.delete();
        }
    }
}

/// Keep a deferred probe-index list resident under a
/// [`PROBE_ROW_BYTES`]-per-row lease, or spill it to a
/// `(key, probe index)` run when the charge fails.
fn int_probe_of<'a>(
    rows: Vec<u32>,
    probe_keys: &[i64],
    dir: &SpillDir,
    budget: &'a MemoryBudget,
    depth: usize,
    stats: &mut SpillStats,
) -> Result<IntProbe<'a>, RunError<KernelError>> {
    if rows.is_empty() {
        return Ok(IntProbe::Resident(rows, None));
    }
    match budget.lease(rows.len() * PROBE_ROW_BYTES) {
        Ok(lease) => Ok(IntProbe::Resident(rows, Some(lease))),
        Err(_) => {
            let mut w = IntRunWriter::create(dir.run_path(&format!("int-probe-d{depth}")))
                .map_err(storage_err)?;
            let mut keys = Vec::with_capacity(SPILL_FRAME_ROWS.min(rows.len()));
            let mut idxs = Vec::with_capacity(SPILL_FRAME_ROWS.min(rows.len()));
            for chunk in rows.chunks(SPILL_FRAME_ROWS) {
                keys.clear();
                idxs.clear();
                for &pi in chunk {
                    keys.push(probe_keys[pi as usize]);
                    idxs.push(pi as i64);
                }
                w.append(&keys, &idxs).map_err(storage_err)?;
            }
            let run = w.finish().map_err(storage_err)?;
            stats.probe_partitions_spilled += 1;
            stats.runs_written += 1;
            stats.bytes_written += run.bytes();
            Ok(IntProbe::Spilled(run))
        }
    }
}

/// The integer grace-hash join as a [`SpillableOp`]: partition the build
/// rows morsel-parallel, charge-or-spill per partition, probe resident
/// partitions morsel-parallel (deferring the rest), settle spilled
/// partitions sequentially with probe-side spill.
struct IntJoinSpillOp<'a> {
    bk: Vec<i64>,
    bp: Vec<i64>,
    probe_keys: &'a [i64],
    bloom: bool,
    budget: &'a MemoryBudget,
    build_plan: MorselPlan,
    probe_plan: MorselPlan,
}

impl<'a> SpillableOp for IntJoinSpillOp<'a> {
    type Partition = Vec<(Vec<i64>, Vec<i64>)>;
    type Shared = IntSpillSides<'a>;
    type Out = (Vec<u32>, Vec<i64>, Vec<Vec<u32>>);
    type Settled = (Vec<u32>, Vec<i64>);
    type Error = KernelError;

    fn input_plan(&self) -> &MorselPlan {
        &self.build_plan
    }

    fn consume_plan(&self) -> Option<&MorselPlan> {
        Some(&self.probe_plan)
    }

    // Build: partition this morsel's rows on the level-0 hash bits.
    fn partition_morsel(&self, _w: usize, m: &Morsel) -> Result<Self::Partition, KernelError> {
        let mut parts: Vec<(Vec<i64>, Vec<i64>)> = vec![Default::default(); SPILL_FANOUT];
        for i in m.start..m.end() {
            let b = bucket_of(hash_i64(self.bk[i]), 0);
            parts[b].0.push(self.bk[i]);
            parts[b].1.push(self.bp[i]);
        }
        Ok(parts)
    }

    // Merge: concatenate per-morsel partitions in morsel order (global
    // build-row order per partition), then charge the budget partition by
    // partition — what fits becomes a resident table, what does not
    // spills to a run file.
    fn charge(
        &mut self,
        parts: Vec<Self::Partition>,
        _budget: &MemoryBudget,
        stats: &mut SpillStats,
    ) -> Result<IntSpillSides<'a>, KernelError> {
        let mut buckets: Vec<(Vec<i64>, Vec<i64>)> = vec![Default::default(); SPILL_FANOUT];
        for part in parts {
            for (b, (k, p)) in part.into_iter().enumerate() {
                buckets[b].0.extend(k);
                buckets[b].1.extend(p);
            }
        }
        let mut dir: Option<SpillDir> = None;
        let mut tables = Vec::with_capacity(SPILL_FANOUT);
        let mut runs = Vec::with_capacity(SPILL_FANOUT);
        let mut leases = Vec::new();
        for (b, (keys, pays)) in buckets.into_iter().enumerate() {
            let cost = keys.len() * INT_BUILD_ROW_BYTES;
            // Leases come from the operator's own budget reference (not
            // the driver parameter, whose lifetime is too short) so the
            // sides can hold them across the probe phase and release on
            // any exit path.
            if let Ok(lease) = self.budget.lease(cost) {
                let table = HashTable::from_rows(&keys, &pays);
                tables.push(Some(if self.bloom {
                    table.with_bloom()
                } else {
                    table
                }));
                runs.push(None);
                leases.push(lease);
            } else {
                if dir.is_none() {
                    dir = Some(SpillDir::new().map_err(KernelError::Storage)?);
                }
                let d = dir.as_ref().expect("just created");
                let _io = obs::spill_scope("join-build", b as u16, 0);
                let mut w = IntRunWriter::create(d.run_path(&format!("int-d0-b{b}")))
                    .map_err(KernelError::Storage)?;
                for lo in (0..keys.len()).step_by(SPILL_FRAME_ROWS) {
                    let hi = (lo + SPILL_FRAME_ROWS).min(keys.len());
                    w.append(&keys[lo..hi], &pays[lo..hi])
                        .map_err(KernelError::Storage)?;
                }
                let run = w.finish().map_err(KernelError::Storage)?;
                stats.partitions_spilled += 1;
                stats.runs_written += 1;
                stats.bytes_written += run.bytes();
                tables.push(None);
                runs.push(Some(run));
            }
        }
        Ok(IntSpillSides {
            tables,
            runs,
            leases,
            dir,
        })
    }

    // Probe: resident partitions answer immediately; rows of spilled
    // partitions are deferred by (global) probe index.
    fn consume_morsel(
        &self,
        _w: usize,
        m: &Morsel,
        shared: &IntSpillSides<'a>,
    ) -> Result<Self::Out, KernelError> {
        let mut idx = Vec::new();
        let mut pay = Vec::new();
        let mut deferred: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
        for (i, &k) in self
            .probe_keys
            .iter()
            .enumerate()
            .take(m.end())
            .skip(m.start)
        {
            let b = bucket_of(hash_i64(k), 0);
            match &shared.tables[b] {
                Some(t) => {
                    for &p in t.matches(k) {
                        idx.push(i as u32);
                        pay.push(p);
                    }
                }
                None => deferred[b].push(i as u32),
            }
        }
        Ok((idx, pay, deferred))
    }

    // Settle: drop the resident tables and their leases (returning the
    // charge), then resolve spilled partitions sequentially in partition
    // order — charging each partition's deferred probe rows and spilling
    // them too when they do not fit.
    fn settle(
        &mut self,
        shared: IntSpillSides<'a>,
        outs: Vec<Self::Out>,
        _budget: &MemoryBudget,
        stats: &mut SpillStats,
        checkpoint: &SpillCheckpoint<'_>,
    ) -> Result<Self::Settled, RunError<KernelError>> {
        let IntSpillSides {
            tables,
            runs,
            leases,
            dir,
        } = shared;
        drop(tables);
        drop(leases);
        let mut res_idx = Vec::new();
        let mut res_pay = Vec::new();
        let mut deferred: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
        for (idx, pay, defs) in outs {
            res_idx.extend(idx);
            res_pay.extend(pay);
            for (b, d) in defs.into_iter().enumerate() {
                deferred[b].extend(d);
            }
        }
        let mut pairs: Vec<(u32, i64)> = Vec::new();
        let mut scratch = acquire_partition(SPILL_FANOUT);
        for (b, run) in runs.into_iter().enumerate() {
            let Some(run) = run else { continue };
            let dir = dir.as_ref().expect("spilled partitions imply a spill dir");
            let _io = obs::spill_scope("join", b as u16, 0);
            let probe = int_probe_of(
                std::mem::take(&mut deferred[b]),
                self.probe_keys,
                dir,
                self.budget,
                0,
                stats,
            )?;
            settle_int_run(
                run,
                probe,
                self.probe_keys,
                0,
                u64::MAX,
                dir,
                self.budget,
                self.bloom,
                stats,
                checkpoint,
                &mut scratch,
                &mut pairs,
            )?;
        }
        // Stable by probe index: payload order within a row is the
        // settled partition's build-row order.
        pairs.sort_by_key(|&(i, _)| i);
        Ok(merge_output_streams(res_idx, res_pay, pairs))
    }
}

/// Memory-governed morsel-parallel hash join over integer keys: the
/// grace-hash sibling of [`crate::parallel::parallel_hash_join`], charging
/// [`ParallelOpts::effective_budget`] — an explicit budget, else the
/// submitting tenant's registered budget, else unlimited — for every
/// resident build partition, every deferred probe-index list, and
/// spilling whatever does not fit to disk. Output is bit-identical to the
/// in-memory join for any budget, worker count, and morsel size;
/// [`SpillStats`] reports what the out-of-core path did.
pub fn parallel_hash_join_spill(
    build_keys: &Array,
    build_payloads: &Array,
    probe_keys: &[i64],
    bloom: bool,
    opts: ParallelOpts<'_>,
) -> OpResult<(ParallelJoinOutput, SpillStats)> {
    let _stage = opts.stage("join-spill");
    let (bk, bp) = crate::parallel::build_rows(build_keys, build_payloads)?;
    let budget = opts.effective_budget().unwrap_or(&UNLIMITED);
    let mut op = IntJoinSpillOp {
        build_plan: MorselPlan::new(bk.len(), opts.effective_morsel_rows()),
        probe_plan: MorselPlan::new(probe_keys.len(), opts.effective_morsel_rows()),
        bk,
        bp,
        probe_keys,
        bloom,
        budget,
    };
    let ((indices, payloads), stats, spill) =
        run_spillable(&mut op, opts.runner(), opts.cancel, budget).map_err(kernel_run_err)?;
    Ok((
        ParallelJoinOutput {
            indices,
            payloads,
            stats,
        },
        spill,
    ))
}

/// Resolve one spilled integer partition: rebuild it if it now fits (or
/// cannot be split further), else re-partition on the next hash level and
/// recurse — streaming the probe side too when it spilled. Matches are
/// appended to `out` as `(probe index, payload)` pairs in build-row order
/// per probe row.
#[allow(clippy::too_many_arguments)]
fn settle_int_run(
    run: IntRun,
    probe: IntProbe<'_>,
    probe_keys: &[i64],
    depth: usize,
    parent_rows: u64,
    dir: &SpillDir,
    budget: &MemoryBudget,
    bloom: bool,
    stats: &mut SpillStats,
    checkpoint: &SpillCheckpoint<'_>,
    scratch: &mut PartitionScratch,
    out: &mut Vec<(u32, i64)>,
) -> Result<(), RunError<KernelError>> {
    checkpoint.check()?;
    stats.max_recursion_depth = stats.max_recursion_depth.max(depth);
    if probe.is_empty() {
        run.delete();
        probe.delete();
        return Ok(());
    }
    let rows = run.rows();
    let cost = rows as usize * INT_BUILD_ROW_BYTES;
    // A further split must both have hash bits left and be able to make
    // progress (a partition of one repeated hash never shrinks).
    let splittable = depth < MAX_SPILL_DEPTH && rows < parent_rows;
    // The RAII lease releases the charge on every exit path, including
    // an I/O error while re-reading the run.
    let lease = budget.lease(cost).ok();
    if lease.is_some() || !splittable {
        if lease.is_none() {
            stats.forced_builds += 1;
        }
        let (keys, pays) = run.read_all().map_err(storage_err)?;
        stats.bytes_read += run.bytes();
        run.delete();
        let table = HashTable::from_rows(&keys, &pays);
        let table = if bloom { table.with_bloom() } else { table };
        drop((keys, pays));
        match probe {
            IntProbe::Resident(rows_idx, _lease) => {
                for &pi in &rows_idx {
                    for &p in table.matches(probe_keys[pi as usize]) {
                        out.push((pi, p));
                    }
                }
            }
            IntProbe::Spilled(prun) => {
                // Stream the spilled probe rows (ascending probe index)
                // against the rebuilt table — the run carries the keys,
                // so nothing is ever resident beyond one frame.
                let mut reader = prun.reader().map_err(storage_err)?;
                while let Some((pk, pidx)) = reader.next_frame().map_err(storage_err)? {
                    for (k, pi) in pk.into_iter().zip(pidx) {
                        for &p in table.matches(k) {
                            out.push((pi as u32, p));
                        }
                    }
                }
                stats.bytes_read += prun.bytes();
                prun.delete();
            }
        }
        return Ok(());
    }
    // Re-partition (grace hash, next 4 bits). The probe side splits
    // first: its occupancy decides which build sub-partitions can match
    // at all (build rows without any probe row are dropped).
    let mut sub_probe: Vec<Option<IntProbe>> = (0..SPILL_FANOUT).map(|_| None).collect();
    match probe {
        IntProbe::Resident(rows_idx, lease) => {
            let mut subs: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
            for pi in rows_idx {
                subs[bucket_of(hash_i64(probe_keys[pi as usize]), depth + 1)].push(pi);
            }
            // The parent's charge returns before the children charge
            // their own shares.
            drop(lease);
            for (s, rows_s) in subs.into_iter().enumerate() {
                if rows_s.is_empty() {
                    continue;
                }
                sub_probe[s] = Some(int_probe_of(
                    rows_s,
                    probe_keys,
                    dir,
                    budget,
                    depth + 1,
                    stats,
                )?);
            }
        }
        IntProbe::Spilled(prun) => {
            // The list did not fit at the parent level, so children stay
            // spilled: stream the run into per-bucket sub-runs, frame by
            // frame through the pooled scratch arena.
            let mut probe_writers: Vec<Option<IntRunWriter>> =
                (0..SPILL_FANOUT).map(|_| None).collect();
            let mut reader = prun.reader().map_err(storage_err)?;
            while let Some((pk, pidx)) = reader.next_frame().map_err(storage_err)? {
                for (k, pi) in pk.into_iter().zip(pidx) {
                    scratch.push(bucket_of(hash_i64(k), depth + 1), k, pi);
                }
                for &s in scratch.touched() {
                    let s = s as usize;
                    if probe_writers[s].is_none() {
                        probe_writers[s] = Some(
                            IntRunWriter::create(
                                dir.run_path(&format!("int-probe-d{}-b{s}", depth + 1)),
                            )
                            .map_err(storage_err)?,
                        );
                    }
                    let (k, v) = scratch.bucket(s);
                    probe_writers[s]
                        .as_mut()
                        .expect("just created")
                        .append(k, v)
                        .map_err(storage_err)?;
                }
                scratch.reset();
            }
            stats.bytes_read += prun.bytes();
            prun.delete();
            for (s, w) in probe_writers.into_iter().enumerate() {
                let Some(w) = w else { continue };
                let sub = w.finish().map_err(storage_err)?;
                stats.probe_partitions_spilled += 1;
                stats.runs_written += 1;
                stats.bytes_written += sub.bytes();
                sub_probe[s] = Some(IntProbe::Spilled(sub));
            }
        }
    }
    // Build side: stream into sub-runs, only for buckets with probe rows.
    let mut writers: Vec<Option<IntRunWriter>> = Vec::with_capacity(SPILL_FANOUT);
    for (s, probe_s) in sub_probe.iter().enumerate() {
        writers.push(match probe_s {
            Some(_) => Some(
                IntRunWriter::create(dir.run_path(&format!("int-d{}-b{s}", depth + 1)))
                    .map_err(storage_err)?,
            ),
            None => None,
        });
    }
    let mut reader = run.reader().map_err(storage_err)?;
    while let Some((keys, pays)) = reader.next_frame().map_err(storage_err)? {
        for (k, p) in keys.into_iter().zip(pays) {
            let s = bucket_of(hash_i64(k), depth + 1);
            if writers[s].is_some() {
                scratch.push(s, k, p);
            }
        }
        for &s in scratch.touched() {
            let s = s as usize;
            let (k, p) = scratch.bucket(s);
            writers[s]
                .as_mut()
                .expect("writers cover all touched buckets")
                .append(k, p)
                .map_err(storage_err)?;
        }
        scratch.reset();
    }
    stats.bytes_read += run.bytes();
    run.delete();
    for (s, writer) in writers.into_iter().enumerate() {
        let Some(writer) = writer else { continue };
        let sub_run = writer.finish().map_err(storage_err)?;
        let probe_s = sub_probe[s].take().expect("writer implies probe rows");
        if sub_run.rows() == 0 {
            // Probe rows but no build rows: nothing can match.
            sub_run.delete();
            probe_s.delete();
            continue;
        }
        stats.partitions_spilled += 1;
        stats.runs_written += 1;
        stats.bytes_written += sub_run.bytes();
        let _io = obs::spill_scope("join", s as u16, (depth + 1) as u16);
        settle_int_run(
            sub_run,
            probe_s,
            probe_keys,
            depth + 1,
            rows,
            dir,
            budget,
            bloom,
            stats,
            checkpoint,
            scratch,
            out,
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Utf8 keys
// ---------------------------------------------------------------------------

/// The shared probe structure of a budgeted string join; same lease and
/// lazy-dir discipline as [`IntSpillSides`].
struct StrSpillSides<'a> {
    tables: Vec<Option<StrHashTable>>,
    runs: Vec<Option<StrRun>>,
    leases: Vec<BudgetLease<'a>>,
    dir: Option<SpillDir>,
}

fn str_batch_cost(batch: &StrBatch) -> usize {
    batch.arena.len() + batch.len() * STR_BUILD_ROW_BYTES
}

fn str_table_of(batch: &StrBatch, bloom: bool) -> StrHashTable {
    let t = StrHashTable::from_pairs((0..batch.len()).map(|i| (batch.key(i), batch.values[i])));
    if bloom {
        t.with_bloom()
    } else {
        t
    }
}

fn append_str_chunked(w: &mut StrRunWriter, batch: &StrBatch) -> Result<(), KernelError> {
    let mut frame = StrBatch::default();
    for i in 0..batch.len() {
        frame.push(batch.key(i), batch.values[i]);
        if frame.len() == SPILL_FRAME_ROWS {
            w.append(&frame).map_err(KernelError::Storage)?;
            frame.clear();
        }
    }
    w.append(&frame).map_err(KernelError::Storage)
}

/// The string sibling of [`IntProbe`]: spilled probe rows go to a
/// `(key, probe index)` [`StrRun`] whose frames carry one contiguous key
/// arena.
enum StrProbe<'a> {
    Resident(Vec<u32>, Option<BudgetLease<'a>>),
    Spilled(StrRun),
}

impl StrProbe<'_> {
    fn is_empty(&self) -> bool {
        match self {
            StrProbe::Resident(rows, _) => rows.is_empty(),
            StrProbe::Spilled(run) => run.rows() == 0,
        }
    }

    fn delete(self) {
        if let StrProbe::Spilled(run) = self {
            run.delete();
        }
    }
}

fn str_probe_of<'a>(
    rows: Vec<u32>,
    probe_keys: &[String],
    dir: &SpillDir,
    budget: &'a MemoryBudget,
    depth: usize,
    stats: &mut SpillStats,
) -> Result<StrProbe<'a>, RunError<KernelError>> {
    if rows.is_empty() {
        return Ok(StrProbe::Resident(rows, None));
    }
    match budget.lease(rows.len() * PROBE_ROW_BYTES) {
        Ok(lease) => Ok(StrProbe::Resident(rows, Some(lease))),
        Err(_) => {
            let mut w = StrRunWriter::create(dir.run_path(&format!("str-probe-d{depth}")))
                .map_err(storage_err)?;
            let mut frame = StrBatch::default();
            for &pi in &rows {
                frame.push(&probe_keys[pi as usize], pi as i64);
                if frame.len() == SPILL_FRAME_ROWS {
                    w.append(&frame).map_err(storage_err)?;
                    frame.clear();
                }
            }
            w.append(&frame).map_err(storage_err)?;
            let run = w.finish().map_err(storage_err)?;
            stats.probe_partitions_spilled += 1;
            stats.runs_written += 1;
            stats.bytes_written += run.bytes();
            Ok(StrProbe::Spilled(run))
        }
    }
}

/// The Utf8 grace-hash join as a [`SpillableOp`]; mirrors
/// [`IntJoinSpillOp`] with arena-backed run frames.
struct StrJoinSpillOp<'a> {
    bk: &'a [String],
    bp: Vec<i64>,
    probe_keys: &'a [String],
    bloom: bool,
    budget: &'a MemoryBudget,
    build_plan: MorselPlan,
    probe_plan: MorselPlan,
}

impl<'a> SpillableOp for StrJoinSpillOp<'a> {
    type Partition = Vec<StrBatch>;
    type Shared = StrSpillSides<'a>;
    type Out = (Vec<u32>, Vec<i64>, Vec<Vec<u32>>);
    type Settled = (Vec<u32>, Vec<i64>);
    type Error = KernelError;

    fn input_plan(&self) -> &MorselPlan {
        &self.build_plan
    }

    fn consume_plan(&self) -> Option<&MorselPlan> {
        Some(&self.probe_plan)
    }

    fn partition_morsel(&self, _w: usize, m: &Morsel) -> Result<Self::Partition, KernelError> {
        let mut parts: Vec<StrBatch> = vec![StrBatch::default(); SPILL_FANOUT];
        for i in m.start..m.end() {
            let b = bucket_of(hash_str(&self.bk[i]), 0);
            parts[b].push(&self.bk[i], self.bp[i]);
        }
        Ok(parts)
    }

    fn charge(
        &mut self,
        parts: Vec<Self::Partition>,
        _budget: &MemoryBudget,
        stats: &mut SpillStats,
    ) -> Result<StrSpillSides<'a>, KernelError> {
        let mut buckets: Vec<StrBatch> = vec![StrBatch::default(); SPILL_FANOUT];
        for part in parts {
            for (b, batch) in part.into_iter().enumerate() {
                for i in 0..batch.len() {
                    buckets[b].push(batch.key(i), batch.values[i]);
                }
            }
        }
        let mut dir: Option<SpillDir> = None;
        let mut tables = Vec::with_capacity(SPILL_FANOUT);
        let mut runs = Vec::with_capacity(SPILL_FANOUT);
        let mut leases = Vec::new();
        for (b, batch) in buckets.into_iter().enumerate() {
            let cost = str_batch_cost(&batch);
            // Leases come from the operator's own budget reference so the
            // sides can hold them across the probe phase (released on any
            // exit).
            if let Ok(lease) = self.budget.lease(cost) {
                tables.push(Some(str_table_of(&batch, self.bloom)));
                runs.push(None);
                leases.push(lease);
            } else {
                if dir.is_none() {
                    dir = Some(SpillDir::new().map_err(KernelError::Storage)?);
                }
                let d = dir.as_ref().expect("just created");
                let _io = obs::spill_scope("join-str-build", b as u16, 0);
                let mut w = StrRunWriter::create(d.run_path(&format!("str-d0-b{b}")))
                    .map_err(KernelError::Storage)?;
                append_str_chunked(&mut w, &batch)?;
                let run = w.finish().map_err(KernelError::Storage)?;
                stats.partitions_spilled += 1;
                stats.runs_written += 1;
                stats.bytes_written += run.bytes();
                tables.push(None);
                runs.push(Some(run));
            }
        }
        Ok(StrSpillSides {
            tables,
            runs,
            leases,
            dir,
        })
    }

    fn consume_morsel(
        &self,
        _w: usize,
        m: &Morsel,
        shared: &StrSpillSides<'a>,
    ) -> Result<Self::Out, KernelError> {
        let mut idx = Vec::new();
        let mut pay = Vec::new();
        let mut deferred: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
        for (i, k) in self
            .probe_keys
            .iter()
            .enumerate()
            .take(m.end())
            .skip(m.start)
        {
            let b = bucket_of(hash_str(k), 0);
            match &shared.tables[b] {
                Some(t) => {
                    for &p in t.matches(k) {
                        idx.push(i as u32);
                        pay.push(p);
                    }
                }
                None => deferred[b].push(i as u32),
            }
        }
        Ok((idx, pay, deferred))
    }

    fn settle(
        &mut self,
        shared: StrSpillSides<'a>,
        outs: Vec<Self::Out>,
        _budget: &MemoryBudget,
        stats: &mut SpillStats,
        checkpoint: &SpillCheckpoint<'_>,
    ) -> Result<Self::Settled, RunError<KernelError>> {
        let StrSpillSides {
            tables,
            runs,
            leases,
            dir,
        } = shared;
        drop(tables);
        drop(leases);
        let mut res_idx = Vec::new();
        let mut res_pay = Vec::new();
        let mut deferred: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
        for (idx, pay, defs) in outs {
            res_idx.extend(idx);
            res_pay.extend(pay);
            for (b, d) in defs.into_iter().enumerate() {
                deferred[b].extend(d);
            }
        }
        let mut pairs: Vec<(u32, i64)> = Vec::new();
        let mut scratch = acquire_str(SPILL_FANOUT);
        for (b, run) in runs.into_iter().enumerate() {
            let Some(run) = run else { continue };
            let dir = dir.as_ref().expect("spilled partitions imply a spill dir");
            let _io = obs::spill_scope("join-str", b as u16, 0);
            let probe = str_probe_of(
                std::mem::take(&mut deferred[b]),
                self.probe_keys,
                dir,
                self.budget,
                0,
                stats,
            )?;
            settle_str_run(
                run,
                probe,
                self.probe_keys,
                0,
                u64::MAX,
                dir,
                self.budget,
                self.bloom,
                stats,
                checkpoint,
                &mut scratch,
                &mut pairs,
            )?;
        }
        pairs.sort_by_key(|&(i, _)| i);
        Ok(merge_output_streams(res_idx, res_pay, pairs))
    }
}

/// Memory-governed morsel-parallel hash join over a **Utf8 key column**:
/// the grace-hash sibling of
/// [`crate::parallel::parallel_hash_join_str`], with spilled partitions
/// kept arena-backed end to end (run frames store one contiguous key
/// arena; rebuilding a partition goes through
/// [`StrHashTable::from_pairs`] without per-key allocation of the spilled
/// rows) and the same probe-side spill as the integer join. Output is
/// bit-identical to the in-memory string join for any budget, worker
/// count, and morsel size.
pub fn parallel_hash_join_str_spill(
    build_keys: &Array,
    build_payloads: &Array,
    probe_keys: &[String],
    bloom: bool,
    opts: ParallelOpts<'_>,
) -> OpResult<(ParallelJoinOutput, SpillStats)> {
    let _stage = opts.stage("join-str-spill");
    let bk = build_keys
        .as_str()
        .ok_or_else(|| KernelError::Precondition("join build keys must be strings".to_string()))?;
    let bp = build_payloads
        .to_i64_vec()
        .ok_or_else(|| KernelError::Precondition("join build payloads must be integer".into()))?;
    if bk.len() != bp.len() {
        return Err(KernelError::Precondition(format!(
            "build keys and payloads must have equal lengths ({} vs {})",
            bk.len(),
            bp.len()
        )));
    }
    let budget = opts.effective_budget().unwrap_or(&UNLIMITED);
    let mut op = StrJoinSpillOp {
        build_plan: MorselPlan::new(bk.len(), opts.effective_morsel_rows()),
        probe_plan: MorselPlan::new(probe_keys.len(), opts.effective_morsel_rows()),
        bk,
        bp,
        probe_keys,
        bloom,
        budget,
    };
    let ((indices, payloads), stats, spill) =
        run_spillable(&mut op, opts.runner(), opts.cancel, budget).map_err(kernel_run_err)?;
    Ok((
        ParallelJoinOutput {
            indices,
            payloads,
            stats,
        },
        spill,
    ))
}

/// The string sibling of [`settle_int_run`].
#[allow(clippy::too_many_arguments)]
fn settle_str_run(
    run: StrRun,
    probe: StrProbe<'_>,
    probe_keys: &[String],
    depth: usize,
    parent_rows: u64,
    dir: &SpillDir,
    budget: &MemoryBudget,
    bloom: bool,
    stats: &mut SpillStats,
    checkpoint: &SpillCheckpoint<'_>,
    scratch: &mut StrScratch,
    out: &mut Vec<(u32, i64)>,
) -> Result<(), RunError<KernelError>> {
    checkpoint.check()?;
    stats.max_recursion_depth = stats.max_recursion_depth.max(depth);
    if probe.is_empty() {
        run.delete();
        probe.delete();
        return Ok(());
    }
    let rows = run.rows();
    let splittable = depth < MAX_SPILL_DEPTH && rows < parent_rows;
    // Charge by the run's actual footprint: key bytes are inside the
    // frames, so approximate with the encoded size plus per-row overhead.
    let cost = run.bytes() as usize + rows as usize * STR_BUILD_ROW_BYTES;
    // The RAII lease releases the charge on every exit path, including
    // an I/O error while re-reading the run.
    let lease = budget.lease(cost).ok();
    if lease.is_some() || !splittable {
        if lease.is_none() {
            stats.forced_builds += 1;
        }
        let batch = run.read_all().map_err(storage_err)?;
        stats.bytes_read += run.bytes();
        run.delete();
        let table = str_table_of(&batch, bloom);
        drop(batch);
        match probe {
            StrProbe::Resident(rows_idx, _lease) => {
                for &pi in &rows_idx {
                    for &p in table.matches(&probe_keys[pi as usize]) {
                        out.push((pi, p));
                    }
                }
            }
            StrProbe::Spilled(prun) => {
                let mut reader = prun.reader().map_err(storage_err)?;
                while let Some(frame) = reader.next_frame().map_err(storage_err)? {
                    for i in 0..frame.len() {
                        for &p in table.matches(frame.key(i)) {
                            out.push((frame.values[i] as u32, p));
                        }
                    }
                }
                stats.bytes_read += prun.bytes();
                prun.delete();
            }
        }
        return Ok(());
    }
    let mut sub_probe: Vec<Option<StrProbe>> = (0..SPILL_FANOUT).map(|_| None).collect();
    match probe {
        StrProbe::Resident(rows_idx, lease) => {
            let mut subs: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
            for pi in rows_idx {
                subs[bucket_of(hash_str(&probe_keys[pi as usize]), depth + 1)].push(pi);
            }
            drop(lease);
            for (s, rows_s) in subs.into_iter().enumerate() {
                if rows_s.is_empty() {
                    continue;
                }
                sub_probe[s] = Some(str_probe_of(
                    rows_s,
                    probe_keys,
                    dir,
                    budget,
                    depth + 1,
                    stats,
                )?);
            }
        }
        StrProbe::Spilled(prun) => {
            let mut probe_writers: Vec<Option<StrRunWriter>> =
                (0..SPILL_FANOUT).map(|_| None).collect();
            let mut reader = prun.reader().map_err(storage_err)?;
            while let Some(frame) = reader.next_frame().map_err(storage_err)? {
                for i in 0..frame.len() {
                    let key = frame.key(i);
                    scratch.push(bucket_of(hash_str(key), depth + 1), key, frame.values[i]);
                }
                for &s in scratch.touched() {
                    let s = s as usize;
                    if probe_writers[s].is_none() {
                        probe_writers[s] = Some(
                            StrRunWriter::create(
                                dir.run_path(&format!("str-probe-d{}-b{s}", depth + 1)),
                            )
                            .map_err(storage_err)?,
                        );
                    }
                    probe_writers[s]
                        .as_mut()
                        .expect("just created")
                        .append(scratch.bucket(s))
                        .map_err(storage_err)?;
                }
                scratch.reset();
            }
            stats.bytes_read += prun.bytes();
            prun.delete();
            for (s, w) in probe_writers.into_iter().enumerate() {
                let Some(w) = w else { continue };
                let sub = w.finish().map_err(storage_err)?;
                stats.probe_partitions_spilled += 1;
                stats.runs_written += 1;
                stats.bytes_written += sub.bytes();
                sub_probe[s] = Some(StrProbe::Spilled(sub));
            }
        }
    }
    let mut writers: Vec<Option<StrRunWriter>> = Vec::with_capacity(SPILL_FANOUT);
    for (s, probe_s) in sub_probe.iter().enumerate() {
        writers.push(match probe_s {
            Some(_) => Some(
                StrRunWriter::create(dir.run_path(&format!("str-d{}-b{s}", depth + 1)))
                    .map_err(storage_err)?,
            ),
            None => None,
        });
    }
    let mut reader = run.reader().map_err(storage_err)?;
    while let Some(frame) = reader.next_frame().map_err(storage_err)? {
        for i in 0..frame.len() {
            let key = frame.key(i);
            let s = bucket_of(hash_str(key), depth + 1);
            if writers[s].is_some() {
                scratch.push(s, key, frame.values[i]);
            }
        }
        for &s in scratch.touched() {
            let s = s as usize;
            writers[s]
                .as_mut()
                .expect("writers cover all touched buckets")
                .append(scratch.bucket(s))
                .map_err(storage_err)?;
        }
        scratch.reset();
    }
    stats.bytes_read += run.bytes();
    run.delete();
    for (s, writer) in writers.into_iter().enumerate() {
        let Some(writer) = writer else { continue };
        let sub_run = writer.finish().map_err(storage_err)?;
        let probe_s = sub_probe[s].take().expect("writer implies probe rows");
        if sub_run.rows() == 0 {
            sub_run.delete();
            probe_s.delete();
            continue;
        }
        stats.partitions_spilled += 1;
        stats.runs_written += 1;
        stats.bytes_written += sub_run.bytes();
        let _io = obs::spill_scope("join-str", s as u16, (depth + 1) as u16);
        settle_str_run(
            sub_run,
            probe_s,
            probe_keys,
            depth + 1,
            rows,
            dir,
            budget,
            bloom,
            stats,
            checkpoint,
            scratch,
            out,
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Out-of-core hash aggregation
// ---------------------------------------------------------------------------

/// The shared state of a budgeted aggregation: per partition, either a
/// resident group table (rows already folded in global row order) or a
/// spilled run of raw `(key, f64 bits)` rows.
struct AggSides<'a> {
    groups: Vec<Option<HashMap<i64, GroupState>>>,
    runs: Vec<Option<IntRun>>,
    leases: Vec<BudgetLease<'a>>,
    dir: Option<SpillDir>,
}

/// Out-of-core hash aggregation as a consume-less [`SpillableOp`]: the
/// input partitions by group key, resident partitions fold immediately,
/// spilled partitions fold during settle — each group's rows always in
/// global row order, which makes the result bit-identical to the
/// sequential fold regardless of what spilled.
struct AggSpillOp<'a> {
    keys: Vec<i64>,
    value_bits: Vec<i64>,
    budget: &'a MemoryBudget,
    plan: MorselPlan,
}

impl<'a> SpillableOp for AggSpillOp<'a> {
    type Partition = Vec<(Vec<i64>, Vec<i64>)>;
    type Shared = AggSides<'a>;
    type Out = ();
    type Settled = Vec<(i64, GroupState)>;
    type Error = KernelError;

    fn input_plan(&self) -> &MorselPlan {
        &self.plan
    }

    fn partition_morsel(&self, _w: usize, m: &Morsel) -> Result<Self::Partition, KernelError> {
        let mut parts: Vec<(Vec<i64>, Vec<i64>)> = vec![Default::default(); SPILL_FANOUT];
        for i in m.start..m.end() {
            let b = bucket_of(hash_i64(self.keys[i]), 0);
            parts[b].0.push(self.keys[i]);
            parts[b].1.push(self.value_bits[i]);
        }
        Ok(parts)
    }

    fn charge(
        &mut self,
        parts: Vec<Self::Partition>,
        _budget: &MemoryBudget,
        stats: &mut SpillStats,
    ) -> Result<AggSides<'a>, KernelError> {
        let mut buckets: Vec<(Vec<i64>, Vec<i64>)> = vec![Default::default(); SPILL_FANOUT];
        for part in parts {
            for (b, (k, v)) in part.into_iter().enumerate() {
                buckets[b].0.extend(k);
                buckets[b].1.extend(v);
            }
        }
        let mut dir: Option<SpillDir> = None;
        let mut groups = Vec::with_capacity(SPILL_FANOUT);
        let mut runs = Vec::with_capacity(SPILL_FANOUT);
        let mut leases = Vec::new();
        for (b, (keys, bits)) in buckets.into_iter().enumerate() {
            let cost = keys.len() * AGG_ROW_BYTES;
            if let Ok(lease) = self.budget.lease(cost) {
                let mut map: HashMap<i64, GroupState> = HashMap::new();
                for (&k, &v) in keys.iter().zip(&bits) {
                    map.entry(k).or_default().observe_bits(v);
                }
                groups.push(Some(map));
                runs.push(None);
                leases.push(lease);
            } else {
                if dir.is_none() {
                    dir = Some(SpillDir::new().map_err(KernelError::Storage)?);
                }
                let d = dir.as_ref().expect("just created");
                let _io = obs::spill_scope("agg", b as u16, 0);
                let mut w = IntRunWriter::create(d.run_path(&format!("agg-d0-b{b}")))
                    .map_err(KernelError::Storage)?;
                for lo in (0..keys.len()).step_by(SPILL_FRAME_ROWS) {
                    let hi = (lo + SPILL_FRAME_ROWS).min(keys.len());
                    w.append(&keys[lo..hi], &bits[lo..hi])
                        .map_err(KernelError::Storage)?;
                }
                let run = w.finish().map_err(KernelError::Storage)?;
                stats.partitions_spilled += 1;
                stats.runs_written += 1;
                stats.bytes_written += run.bytes();
                groups.push(None);
                runs.push(Some(run));
            }
        }
        Ok(AggSides {
            groups,
            runs,
            leases,
            dir,
        })
    }

    fn settle(
        &mut self,
        shared: AggSides<'a>,
        outs: Vec<()>,
        _budget: &MemoryBudget,
        stats: &mut SpillStats,
        checkpoint: &SpillCheckpoint<'_>,
    ) -> Result<Self::Settled, RunError<KernelError>> {
        debug_assert!(outs.is_empty(), "aggregation has no consume phase");
        let AggSides {
            groups,
            runs,
            leases,
            dir,
        } = shared;
        // A key lives in exactly one level-0 partition, so collecting all
        // partitions' groups and sorting by key is a disjoint union.
        let mut out: Vec<(i64, GroupState)> = Vec::new();
        for map in groups.into_iter().flatten() {
            out.extend(map);
        }
        drop(leases);
        let mut scratch = acquire_partition(SPILL_FANOUT);
        for (b, run) in runs.into_iter().enumerate() {
            let Some(run) = run else { continue };
            let _io = obs::spill_scope("agg", b as u16, 0);
            settle_agg_run(
                run,
                0,
                u64::MAX,
                dir.as_ref().expect("spilled partitions imply a spill dir"),
                self.budget,
                stats,
                checkpoint,
                &mut scratch,
                &mut out,
            )?;
        }
        out.sort_by_key(|&(k, _)| k);
        Ok(out)
    }
}

/// Resolve one spilled aggregation partition: fold it if its worst-case
/// group table now fits (or it cannot be split further), else
/// re-partition on the next hash level and recurse. Rows stay in global
/// row order throughout, so every group's fold is bit-identical to the
/// sequential one.
#[allow(clippy::too_many_arguments)]
fn settle_agg_run(
    run: IntRun,
    depth: usize,
    parent_rows: u64,
    dir: &SpillDir,
    budget: &MemoryBudget,
    stats: &mut SpillStats,
    checkpoint: &SpillCheckpoint<'_>,
    scratch: &mut PartitionScratch,
    out: &mut Vec<(i64, GroupState)>,
) -> Result<(), RunError<KernelError>> {
    checkpoint.check()?;
    stats.max_recursion_depth = stats.max_recursion_depth.max(depth);
    let rows = run.rows();
    let splittable = depth < MAX_SPILL_DEPTH && rows < parent_rows;
    let lease = budget.lease(rows as usize * AGG_ROW_BYTES).ok();
    if lease.is_some() || !splittable {
        if lease.is_none() {
            stats.forced_builds += 1;
        }
        let mut map: HashMap<i64, GroupState> = HashMap::new();
        let mut reader = run.reader().map_err(storage_err)?;
        while let Some((keys, bits)) = reader.next_frame().map_err(storage_err)? {
            for (k, v) in keys.into_iter().zip(bits) {
                map.entry(k).or_default().observe_bits(v);
            }
        }
        stats.bytes_read += run.bytes();
        run.delete();
        out.extend(map);
        return Ok(());
    }
    let mut writers: Vec<Option<IntRunWriter>> = (0..SPILL_FANOUT).map(|_| None).collect();
    let mut reader = run.reader().map_err(storage_err)?;
    while let Some((keys, bits)) = reader.next_frame().map_err(storage_err)? {
        for (k, v) in keys.into_iter().zip(bits) {
            scratch.push(bucket_of(hash_i64(k), depth + 1), k, v);
        }
        for &s in scratch.touched() {
            let s = s as usize;
            if writers[s].is_none() {
                writers[s] = Some(
                    IntRunWriter::create(dir.run_path(&format!("agg-d{}-b{s}", depth + 1)))
                        .map_err(storage_err)?,
                );
            }
            let (k, v) = scratch.bucket(s);
            writers[s]
                .as_mut()
                .expect("just created")
                .append(k, v)
                .map_err(storage_err)?;
        }
        scratch.reset();
    }
    stats.bytes_read += run.bytes();
    run.delete();
    for (s, writer) in writers.into_iter().enumerate() {
        let Some(writer) = writer else { continue };
        let sub_run = writer.finish().map_err(storage_err)?;
        stats.partitions_spilled += 1;
        stats.runs_written += 1;
        stats.bytes_written += sub_run.bytes();
        let _io = obs::spill_scope("agg", s as u16, (depth + 1) as u16);
        settle_agg_run(
            sub_run, // non-empty by construction: writers are lazy
            depth + 1,
            rows,
            dir,
            budget,
            stats,
            checkpoint,
            scratch,
            out,
        )?;
    }
    Ok(())
}

/// Memory-governed morsel-parallel hash aggregation (count/sum/min/max
/// per integer group key over an `f64` value column — the TPC-H Q1
/// family): the out-of-core sibling of
/// [`crate::parallel::parallel_hash_aggregate`], charging
/// [`ParallelOpts::effective_budget`] per partition ([`AGG_ROW_BYTES`] a
/// row) and spilling raw rows to disk when the charge fails. The result
/// is **bit-identical** to the sequential row-order fold
/// [`crate::agg::aggregate_rows`] for any budget, worker count, and
/// morsel size, because each group's rows are observed in global row
/// order whether its partition spilled or not.
///
/// ```
/// use adaptvm_parallel::MemoryBudget;
/// use adaptvm_relational::agg::aggregate_rows;
/// use adaptvm_relational::parallel::ParallelOpts;
/// use adaptvm_relational::spill::parallel_hash_aggregate_spill;
/// use adaptvm_storage::gen;
///
/// let table = gen::measurements(10_000, 64, 7);
/// let budget = MemoryBudget::bytes(8 * 1024);
/// let opts = ParallelOpts::new(2, 1_000).with_budget(&budget);
/// let (groups, spill) =
///     parallel_hash_aggregate_spill(&table, "group", "value", opts).unwrap();
/// assert!(spill.spilled());
/// let keys = table.column_by_name("group").unwrap().to_i64_vec().unwrap();
/// let values = table.column_by_name("value").unwrap().as_f64().unwrap().to_vec();
/// assert_eq!(groups, aggregate_rows(&keys, &values));
/// assert_eq!(budget.used(), 0, "all charges released");
/// ```
pub fn parallel_hash_aggregate_spill(
    table: &Table,
    key_col: &str,
    value_col: &str,
    opts: ParallelOpts<'_>,
) -> OpResult<(Vec<(i64, GroupState)>, SpillStats)> {
    let _stage = opts.stage("agg-spill");
    let keys = table
        .column_by_name(key_col)
        .map_err(KernelError::Storage)?
        .to_i64_vec()
        .ok_or_else(|| KernelError::Precondition(format!("{key_col} must be integer")))?;
    let value_bits: Vec<i64> = table
        .column_by_name(value_col)
        .map_err(KernelError::Storage)?
        .as_f64()
        .ok_or_else(|| KernelError::Precondition(format!("{value_col} must be f64")))?
        .iter()
        .map(|v| v.to_bits() as i64)
        .collect();
    let budget = opts.effective_budget().unwrap_or(&UNLIMITED);
    let mut op = AggSpillOp {
        plan: MorselPlan::new(keys.len(), opts.effective_morsel_rows()),
        keys,
        value_bits,
        budget,
    };
    let (groups, _stats, spill) =
        run_spillable(&mut op, opts.runner(), opts.cancel, budget).map_err(kernel_run_err)?;
    Ok((groups, spill))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_uses_disjoint_bit_windows() {
        // Two keys whose hashes differ only above the level-0 window must
        // collide at level 0 and (generically) separate later; the
        // function must never shift past the hash width.
        for depth in 0..=MAX_SPILL_DEPTH {
            let b = bucket_of(i64::MIN, depth);
            assert!(b < SPILL_FANOUT);
        }
        assert_eq!(bucket_of(0, 0), bucket_of(0, MAX_SPILL_DEPTH));
    }

    #[test]
    fn bucket_of_spreads_low_bit_strided_keys() {
        // Keys that share their low bits (all multiples of 16) must still
        // fan out over many level-0 partitions: the window is drawn from
        // the hash's high bits, where multiplicative hashing mixes best.
        let used: std::collections::HashSet<usize> = (0..1000i64)
            .map(|i| bucket_of(hash_i64(i * 16), 0))
            .collect();
        assert!(
            used.len() >= SPILL_FANOUT / 2,
            "structured keys collapsed to {} partitions",
            used.len()
        );
    }

    #[test]
    fn merge_streams_interleaves_by_index() {
        let (idx, pay) =
            merge_output_streams(vec![0, 2, 2], vec![10, 20, 21], vec![(1, 15), (3, 30)]);
        assert_eq!(idx, vec![0, 1, 2, 2, 3]);
        assert_eq!(pay, vec![10, 15, 20, 21, 30]);
        // Either stream alone passes through unchanged.
        assert_eq!(
            merge_output_streams(vec![5], vec![50], vec![]),
            (vec![5], vec![50])
        );
        assert_eq!(
            merge_output_streams(vec![], vec![], vec![(7, 70)]),
            (vec![7], vec![70])
        );
    }
}
