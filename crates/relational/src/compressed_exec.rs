//! Scan strategies over per-block compressed columns (§I, §III-C).
//!
//! The workload: `SUM(x) WHERE x > threshold` over a [`BlockColumn`] whose
//! compression scheme changes block by block. Three strategies:
//!
//! * [`ScanStrategy::Decompress`] — always decompress, then run the plain
//!   vectorized kernels (the safe baseline, cf. the paper's fallback),
//! * [`ScanStrategy::Compressed`] — always try the compressed-execution
//!   fast paths ([`adaptvm_kernels::compressed`]); fall back to
//!   decompression when a block's encoding has no fast path,
//! * [`ScanStrategy::Adaptive`] — the paper's behaviour: keep a
//!   situation-keyed plan per scheme ("the program may only contain the
//!   code of the current combination of compression techniques"), notice
//!   scheme changes at block boundaries, fall back to
//!   decompress-and-interpret on first encounter, and use the specialized
//!   path once it has "compiled" (cached) a plan for that scheme.

use std::collections::HashMap;

use adaptvm_dsl::ast::{FoldFn, ScalarOp};
use adaptvm_kernels::compressed::{filter_compressed, sum_compressed};
use adaptvm_kernels::{fold_apply, Operand};
use adaptvm_storage::block::BlockColumn;
use adaptvm_storage::compress::Scheme;
use adaptvm_storage::scalar::Scalar;

use crate::ops::OpResult;

/// How to execute over compressed blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Decompress every block, run plain kernels.
    Decompress,
    /// Use compressed fast paths wherever they exist.
    Compressed,
    /// Situation-keyed adaptive plans with first-encounter fallback.
    Adaptive,
}

/// Statistics of one scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Blocks processed.
    pub blocks: usize,
    /// Blocks handled by a compressed fast path.
    pub fast_path: usize,
    /// Blocks that were decompressed.
    pub decompressed: usize,
    /// Scheme changes observed at block boundaries.
    pub scheme_changes: usize,
    /// Per-scheme plan cache entries at the end (adaptive only).
    pub plans_cached: usize,
}

/// `SUM(x) WHERE x > threshold` over a blocked column.
pub fn sum_where_gt(
    column: &BlockColumn,
    threshold: i64,
    strategy: ScanStrategy,
) -> OpResult<(i64, ScanStats)> {
    let mut stats = ScanStats::default();
    let mut total: i64 = 0;
    let mut last_scheme: Option<Scheme> = None;
    // The adaptive strategy's "code cache": scheme → specialized plan
    // exists. (The plan itself is the choice fast-vs-decompress; what
    // matters for the experiment is the first-encounter fallback and the
    // per-situation reuse, mirroring trace compilation per situation.)
    let mut plans: HashMap<Scheme, bool> = HashMap::new();

    for block in column.blocks() {
        stats.blocks += 1;
        let scheme = block.scheme();
        if last_scheme.is_some() && last_scheme != Some(scheme) {
            stats.scheme_changes += 1;
        }
        last_scheme = Some(scheme);

        let use_fast = match strategy {
            ScanStrategy::Decompress => false,
            ScanStrategy::Compressed => true,
            ScanStrategy::Adaptive => match plans.get(&scheme) {
                // Known situation: use its specialized plan.
                Some(&has_fast) => has_fast,
                // New situation (scheme change): fall back to
                // decompression now, "compile" the specialized plan for
                // next time (§III-C: "it will fall back to decompression
                // and interpretation. Later, it can provide a (partially)
                // compiled and optimized alternative").
                None => {
                    let has_fast = sum_compressed(&block.encoded).is_some()
                        || filter_compressed(&block.encoded, ScalarOp::Gt, threshold).is_some();
                    plans.insert(scheme, has_fast);
                    false
                }
            },
        };

        let mut handled = false;
        if use_fast {
            // Fast path 1: the filter prunes wholesale (all/none match).
            if let Some(sel) = filter_compressed(&block.encoded, ScalarOp::Gt, threshold) {
                if sel.is_empty() {
                    stats.fast_path += 1;
                    handled = true;
                } else if sel.len() == block.len() {
                    if let Some(s) = sum_compressed(&block.encoded) {
                        total = total.wrapping_add(s.as_i64().unwrap_or(0));
                        stats.fast_path += 1;
                        handled = true;
                    }
                }
                if !handled {
                    // Partial match with a cheap selection: decode once,
                    // fold over the selection.
                    let data = block
                        .decompress()
                        .map_err(adaptvm_kernels::KernelError::Storage)?;
                    let s = fold_apply(FoldFn::Sum, &Scalar::I64(0), &data, Some(&sel))?;
                    total = total.wrapping_add(s.as_i64().unwrap_or(0));
                    stats.fast_path += 1;
                    handled = true;
                }
            }
        }
        if !handled {
            stats.decompressed += 1;
            let data = block
                .decompress()
                .map_err(adaptvm_kernels::KernelError::Storage)?;
            let sel = adaptvm_kernels::filter_cmp(
                ScalarOp::Gt,
                &[Operand::Col(&data), Operand::Const(Scalar::I64(threshold))],
                None,
                adaptvm_kernels::FilterFlavor::SelVecLoop,
            )?;
            let s = fold_apply(FoldFn::Sum, &Scalar::I64(0), &data, Some(&sel))?;
            total = total.wrapping_add(s.as_i64().unwrap_or(0));
        }
    }
    stats.plans_cached = plans.len();
    Ok((total, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_storage::block::Block;
    use adaptvm_storage::Array;

    /// A column whose blocks alternate schemes: RLE, Dict, ForPack, Plain.
    fn mixed_column(blocks_per_scheme: usize, rows: usize) -> (BlockColumn, Vec<i64>) {
        let mut col = BlockColumn::new();
        let mut all = Vec::new();
        for round in 0..blocks_per_scheme {
            let base = round as i64;
            // RLE-friendly.
            let rle: Vec<i64> = vec![base + 5; rows];
            // Dict-friendly.
            let dict: Vec<i64> = (0..rows).map(|i| ((i % 3) as i64) * 1_000_003).collect();
            // ForPack-friendly.
            let fp: Vec<i64> = (0..rows).map(|i| 1000 + ((i * 37) % 251) as i64).collect();
            // Plain (high entropy, bounded magnitude).
            let plain: Vec<i64> = (0..rows)
                .map(|i| ((i as i64) * 0x9E37 + base).wrapping_mul(2_654_435_761) % 1_000_003)
                .collect();
            for (data, scheme) in [
                (rle, Scheme::Rle),
                (dict, Scheme::Dict),
                (fp, Scheme::ForPack),
                (plain, Scheme::Plain),
            ] {
                all.extend(data.iter().copied());
                col.push_block(Block::compress(&Array::from(data), scheme).unwrap());
            }
        }
        (col, all)
    }

    fn reference(data: &[i64], threshold: i64) -> i64 {
        data.iter()
            .filter(|&&x| x > threshold)
            .fold(0i64, |a, &b| a.wrapping_add(b))
    }

    #[test]
    fn all_strategies_agree() {
        let (col, data) = mixed_column(3, 512);
        let expected = reference(&data, 500);
        for strategy in [
            ScanStrategy::Decompress,
            ScanStrategy::Compressed,
            ScanStrategy::Adaptive,
        ] {
            let (total, stats) = sum_where_gt(&col, 500, strategy).unwrap();
            assert_eq!(total, expected, "{strategy:?}");
            assert_eq!(stats.blocks, 12);
        }
    }

    #[test]
    fn decompress_never_uses_fast_paths() {
        let (col, _) = mixed_column(2, 256);
        let (_, stats) = sum_where_gt(&col, 0, ScanStrategy::Decompress).unwrap();
        assert_eq!(stats.fast_path, 0);
        assert_eq!(stats.decompressed, stats.blocks);
    }

    #[test]
    fn compressed_uses_fast_paths_where_possible() {
        let (col, _) = mixed_column(2, 256);
        let (_, stats) = sum_where_gt(&col, 0, ScanStrategy::Compressed).unwrap();
        // RLE and Dict blocks have full fast paths; ForPack prunes.
        assert!(stats.fast_path > 0, "{stats:?}");
        // Plain blocks always decompress.
        assert!(stats.decompressed >= 2);
    }

    #[test]
    fn adaptive_falls_back_once_per_scheme_then_specializes() {
        let (col, data) = mixed_column(4, 256);
        let (total, stats) = sum_where_gt(&col, 100, ScanStrategy::Adaptive).unwrap();
        assert_eq!(total, reference(&data, 100));
        // 4 schemes → 4 cached plans; scheme changes at every boundary.
        assert_eq!(stats.plans_cached, 4);
        assert_eq!(stats.scheme_changes, stats.blocks - 1);
        // First block of each scheme decompressed; later RLE/Dict/ForPack
        // blocks use the fast path.
        assert!(stats.fast_path > 0);
        assert!(stats.decompressed >= 4);
        assert!(stats.decompressed < stats.blocks);
    }

    #[test]
    fn single_scheme_column_has_no_changes() {
        let data: Vec<i64> = vec![7; 2048];
        let col = BlockColumn::from_array_auto(&Array::from(data.clone()), 512).unwrap();
        let (total, stats) = sum_where_gt(&col, 0, ScanStrategy::Adaptive).unwrap();
        assert_eq!(total, reference(&data, 0));
        assert_eq!(stats.scheme_changes, 0);
        assert_eq!(stats.plans_cached, 1);
    }

    #[test]
    fn empty_column() {
        let col = BlockColumn::new();
        let (total, stats) = sum_where_gt(&col, 0, ScanStrategy::Adaptive).unwrap();
        assert_eq!(total, 0);
        assert_eq!(stats.blocks, 0);
    }
}
