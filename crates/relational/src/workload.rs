//! DSL-driven workloads: text in, any-executor execution out.
//!
//! This module is the end-to-end bridge between the §II DSL front-end and
//! the execution stack. A [`Workload`] is compiled once from DSL *text*
//! (parse → typecheck → normalize → re-check) against a declared buffer
//! schema, and can then be run under **any** VM strategy
//! ([`Strategy::Interpret`], [`Strategy::CompiledPipeline`],
//! [`Strategy::Adaptive`]) crossed with **any** executor via
//! [`ParallelOpts`] — a scoped per-run pool, a shared [`Scheduler`], or an
//! admission-controlled [`QueryService`] with tenant + priority — and an
//! optional [`MemoryBudget`]. The plumbing is the same
//! [`ParallelOpts`] dispatch used by the hand-coded TPC-H pipelines
//! (e.g. [`crate::parallel::q6_parallel`]), so cancellation, deadlines,
//! and per-tenant budgets bind through DSL queries exactly as they do for
//! built-in queries.
//!
//! ## Determinism contract
//!
//! [`Workload::run`] executes the program as a **single task** on the
//! chosen executor: results are bit-identical across strategies,
//! executors, worker counts, and budgets — the executor only decides
//! where the task runs. [`Workload::run_partitioned`] additionally
//! splits the driving buffers into morsels and concatenates per-morsel
//! outputs **in morsel order**, so it too is worker-count independent;
//! it is only meaningful for chunk-local programs (each morsel sees its
//! own slice — programs that fold across the full input should use
//! [`Workload::run`]).
//!
//! ## Budget binding
//!
//! DSL programs do not spill yet. An attached budget (directly or via a
//! tenant's quota, see [`ParallelOpts::effective_budget`]) is bound as
//! **accounting**: the run charges its resident input bytes for its
//! duration so concurrent spillable operators sharing the budget observe
//! the pressure, and releases them afterwards. Charging is best-effort
//! and never changes results — an exhausted budget degrades the
//! accounting, not the query.
//!
//! [`Strategy::Interpret`]: adaptvm_vm::Strategy::Interpret
//! [`Strategy::CompiledPipeline`]: adaptvm_vm::Strategy::CompiledPipeline
//! [`Strategy::Adaptive`]: adaptvm_vm::Strategy::Adaptive
//! [`Scheduler`]: adaptvm_parallel::Scheduler
//! [`QueryService`]: adaptvm_parallel::QueryService
//! [`MemoryBudget`]: adaptvm_parallel::MemoryBudget

use std::collections::HashMap;

use adaptvm_dsl::ast::Program;
use adaptvm_dsl::normalize::normalize_program;
use adaptvm_dsl::parser::parse_program;
use adaptvm_dsl::typecheck::{check_program, TypeEnv};
use adaptvm_dsl::DslError;
use adaptvm_parallel::{MemoryBudget, Morsel, MorselPlan, ParallelRunReport, ParallelVm};
use adaptvm_storage::scalar::ScalarType;
use adaptvm_storage::Array;
use adaptvm_vm::{Buffers, Vm, VmConfig, VmError};

use crate::parallel::ParallelOpts;

/// A compiled DSL workload: the original source, the normalized program,
/// and the buffer schema it was typechecked against.
#[derive(Debug, Clone)]
pub struct Workload {
    source: String,
    program: Program,
    schema: Vec<(String, ScalarType)>,
}

impl Workload {
    /// Compile DSL `source` against a buffer `schema` (every buffer the
    /// program reads or writes, with its element type).
    ///
    /// Pipeline: parse → typecheck → [`normalize_program`] → re-check the
    /// normalized form (normalization must preserve well-typedness; a
    /// failure here is a compiler bug surfaced as a typed error rather
    /// than a downstream panic).
    pub fn compile(source: &str, schema: &[(&str, ScalarType)]) -> Result<Workload, DslError> {
        let parsed = parse_program(source)?;
        let mut env = TypeEnv::new();
        for (name, ty) in schema {
            env = env.with_buffer(name, *ty);
        }
        check_program(&parsed, &env)?;
        let program = normalize_program(&parsed);
        check_program(&program, &env)?;
        Ok(Workload {
            source: source.to_string(),
            program,
            schema: schema.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        })
    }

    /// The DSL text this workload was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The normalized program (what actually runs).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The declared buffer schema.
    pub fn schema(&self) -> &[(String, ScalarType)] {
        &self.schema
    }

    /// Validate provided inputs against the compile-time schema and build
    /// the VM [`Buffers`]. Every provided input must be declared with a
    /// matching element type; declared-but-absent names are treated as
    /// outputs (reading one surfaces the VM's typed
    /// [`VmError::UnknownBuffer`]).
    fn buffers(&self, inputs: &[(&str, Array)]) -> Result<Buffers, VmError> {
        let mut buffers = Buffers::new();
        for (name, array) in inputs {
            match self.schema.iter().find(|(n, _)| n == name) {
                None => {
                    return Err(VmError::Shape(format!(
                        "input buffer {name} is not declared in the workload schema"
                    )))
                }
                Some((_, ty)) if *ty != array.scalar_type() => {
                    return Err(VmError::Shape(format!(
                        "input buffer {name} is {:?} but the schema declares {ty:?}",
                        array.scalar_type()
                    )))
                }
                Some(_) => buffers = buffers.with_input(name, array.clone()),
            }
        }
        Ok(buffers)
    }

    /// Run sequentially on a plain [`Vm`] with `config`. Returns the
    /// output buffers by name.
    pub fn run_seq(
        &self,
        inputs: &[(&str, Array)],
        config: VmConfig,
    ) -> Result<HashMap<String, Array>, VmError> {
        let buffers = self.buffers(inputs)?;
        let vm = Vm::new(config);
        let (out, _report) = vm.run(&self.program, buffers)?;
        Ok(out.into_outputs())
    }

    /// Run the whole program as a **single task** under the executor
    /// selected by `opts` (scoped pool / scheduler / service), with
    /// cancellation checked at the task boundary and any effective budget
    /// charged for the run's resident input bytes.
    ///
    /// Results are bit-identical to [`Workload::run_seq`] with the same
    /// `config` for every executor, worker count, and budget.
    pub fn run(
        &self,
        inputs: &[(&str, Array)],
        config: VmConfig,
        opts: ParallelOpts<'_>,
    ) -> Result<(HashMap<String, Array>, ParallelRunReport), VmError> {
        let buffers = self.buffers(inputs)?;
        let resident: usize = inputs.iter().map(|(_, a)| a.byte_size()).sum();
        let charged = opts
            .effective_budget()
            .map(|b| (b, charge_up_to(b, resident)));
        let plan = MorselPlan::new(1, 1);
        let make = |_m: &Morsel| (self.program.clone(), buffers.clone());
        let result = self.dispatch(&plan, config, opts, make);
        if let Some((budget, bytes)) = charged {
            budget.release(bytes);
        }
        let (mut outs, report) = result?;
        let out = outs
            .pop()
            .ok_or_else(|| VmError::Shape("workload run produced no task output".into()))?;
        Ok((out.into_outputs(), report))
    }

    /// Run a **chunk-local** program morsel-parallel over `rows` driving
    /// rows: every input array whose length equals `rows` is sliced per
    /// morsel, shorter/longer arrays (parameters, dimension tables) are
    /// passed whole, and per-morsel outputs are concatenated in morsel
    /// order — worker-count independent by construction.
    ///
    /// A program without an explicit chunk loop (`read 0 …`, no
    /// `loop`) processes only the **first chunk** of its morsel's
    /// slice, so such programs must run with `opts.morsel_rows ==
    /// config.chunk_size` (morsel = chunk) to cover every row; leaving
    /// `morsel_rows` elastic (0) makes the covered row set — and thus
    /// the output — depend on the scheduler's adaptive morsel sizing.
    /// Loop-shaped programs (see [`tpch::q6_program`]'s chunked-loop
    /// idiom) consume their whole slice at any morsel size.
    ///
    /// [`tpch::q6_program`]: crate::tpch::q6_program
    pub fn run_partitioned(
        &self,
        rows: usize,
        inputs: &[(&str, Array)],
        config: VmConfig,
        opts: ParallelOpts<'_>,
    ) -> Result<(HashMap<String, Array>, ParallelRunReport), VmError> {
        // Validate names/types once up front (same typed errors as `run`).
        self.buffers(inputs)?;
        let resident: usize = inputs.iter().map(|(_, a)| a.byte_size()).sum();
        let charged = opts
            .effective_budget()
            .map(|b| (b, charge_up_to(b, resident)));
        let plan = MorselPlan::chunk_aligned(rows, opts.effective_morsel_rows(), config.chunk_size);
        let make = |m: &Morsel| {
            let mut buffers = Buffers::new();
            for (name, array) in inputs {
                let piece = if array.len() == rows {
                    m.slice_array(array)
                } else {
                    array.clone()
                };
                buffers = buffers.with_input(name, piece);
            }
            (self.program.clone(), buffers)
        };
        let result = self.dispatch(&plan, config, opts, make);
        if let Some((budget, bytes)) = charged {
            budget.release(bytes);
        }
        let (outs, report) = result?;
        let mut merged: HashMap<String, Array> = HashMap::new();
        for (i, out) in outs.into_iter().enumerate() {
            for (name, array) in out.into_outputs() {
                match merged.entry(name) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(array);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().extend(&array).map_err(|err| {
                            VmError::Shape(format!(
                                "morsel {i} output {} cannot be merged: {err}",
                                e.key()
                            ))
                        })?;
                    }
                }
            }
        }
        Ok((merged, report))
    }

    /// The shared executor dispatch: service → gated admission, scheduler
    /// → shared pool, neither → scoped per-run pool. Mirrors
    /// [`crate::parallel::q6_parallel`] so DSL workloads inherit the same
    /// cancellation / deadline / tenant semantics.
    fn dispatch<F>(
        &self,
        plan: &MorselPlan,
        config: VmConfig,
        opts: ParallelOpts<'_>,
        make: F,
    ) -> Result<(Vec<Buffers>, ParallelRunReport), VmError>
    where
        F: Fn(&Morsel) -> (Program, Buffers) + Send + Sync,
    {
        let _stage = opts.stage("workload");
        let pvm = ParallelVm::new(opts.effective_workers(), config);
        if let Some(service) = opts.service {
            let mut sopts = adaptvm_parallel::SubmitOpts::new(opts.priority);
            if let Some(id) = opts.tenant {
                sopts = sopts.with_tenant(id);
            }
            if let Some(token) = opts.cancel {
                sopts = sopts.with_cancel(token.clone());
            }
            if let Some(t) = opts.trace {
                sopts = sopts.with_trace(t.clone());
            }
            service
                .run_gated_with(
                    sopts,
                    |s| pvm.on(s).run_morsels_with(plan, opts.cancel, &make),
                    |r| match r {
                        Ok(_) => adaptvm_parallel::QueryOutcomeKind::Completed,
                        Err(VmError::Cancelled) => adaptvm_parallel::QueryOutcomeKind::Cancelled,
                        Err(_) => adaptvm_parallel::QueryOutcomeKind::TaskError,
                    },
                )
                .map_err(|_| VmError::Cancelled)?
        } else if let Some(s) = opts.scheduler {
            pvm.on(s).run_morsels_with(plan, opts.cancel, make)
        } else {
            pvm.run_morsels_with(plan, opts.cancel, make)
        }
    }
}

/// Charge as much of `bytes` as the budget will admit (halving on
/// rejection). Returns the amount actually charged; the caller must
/// `release` exactly that amount. Best-effort: accounting only, never an
/// error.
fn charge_up_to(budget: &MemoryBudget, bytes: usize) -> usize {
    let mut want = bytes.min(budget.remaining());
    while want > 0 {
        if budget.try_charge(want).is_ok() {
            return want;
        }
        want /= 2;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_parallel::{CancelToken, Priority, QueryService, Scheduler, ServeConfig};
    use adaptvm_vm::Strategy;

    fn cfg(strategy: Strategy) -> VmConfig {
        VmConfig {
            strategy,
            ..VmConfig::default()
        }
    }

    const SRC: &str = "mut out\nwrite out 0 (fold sum 0 (map (\\x -> x * 2) (read 0 xs)))\n";

    fn schema() -> Vec<(&'static str, ScalarType)> {
        vec![("xs", ScalarType::I64), ("out", ScalarType::I64)]
    }

    fn xs() -> Array {
        Array::from((0i64..100).collect::<Vec<_>>())
    }

    #[test]
    fn compile_rejects_bad_programs() {
        assert!(matches!(
            Workload::compile("write out 0 (", &schema()),
            Err(DslError::Parse { .. })
        ));
        assert!(matches!(
            Workload::compile("mut out\nwrite out 0 (fold sum 0 nope)\n", &schema()),
            Err(DslError::Unbound(_))
        ));
        // Array-typed fold init: the concrete grammar cannot even express a
        // map arity mismatch (input atoms are counted off the lambda), so
        // this is the canonical text-level type error.
        assert!(matches!(
            Workload::compile(
                "mut out\nwrite out 0 (fold sum (read 0 xs) (read 0 xs))\n",
                &schema()
            ),
            Err(DslError::Type(_))
        ));
    }

    #[test]
    fn undeclared_or_mistyped_inputs_are_typed_errors() {
        let w = Workload::compile(SRC, &schema()).unwrap();
        let err = w.run_seq(&[("zs", xs())], VmConfig::default()).unwrap_err();
        assert!(matches!(err, VmError::Shape(_)), "{err}");
        let err = w
            .run_seq(&[("xs", Array::from(vec![1.0f64]))], VmConfig::default())
            .unwrap_err();
        assert!(matches!(err, VmError::Shape(_)), "{err}");
    }

    #[test]
    fn all_strategies_and_executors_agree() {
        let w = Workload::compile(SRC, &schema()).unwrap();
        let expected: i64 = (0i64..100).map(|x| x * 2).sum();
        let scheduler = Scheduler::new(4);
        let service = QueryService::new(ServeConfig::default());
        let budget = MemoryBudget::bytes(64);
        for strategy in [
            Strategy::Interpret,
            Strategy::CompiledPipeline,
            Strategy::Adaptive,
        ] {
            let seq = w.run_seq(&[("xs", xs())], cfg(strategy)).unwrap();
            assert_eq!(seq["out"], Array::from(vec![expected]));
            for workers in [1usize, 4] {
                let base = ParallelOpts {
                    workers,
                    ..ParallelOpts::default()
                };
                let variants: Vec<ParallelOpts<'_>> = vec![
                    base,
                    base.with_scheduler(&scheduler),
                    base.with_service(&service, Priority::Normal),
                    base.with_budget(&budget),
                ];
                for opts in variants {
                    let (out, _) = w.run(&[("xs", xs())], cfg(strategy), opts).unwrap();
                    assert_eq!(out["out"], Array::from(vec![expected]));
                }
            }
        }
        assert_eq!(budget.used(), 0, "budget charges must be released");
    }

    #[test]
    fn partitioned_concatenates_in_morsel_order() {
        // Chunk-local program: per-morsel doubled copy of the slice.
        let src = "mut out\nwrite out 0 (map (\\x -> x * 2) (read 0 xs))\n";
        let w = Workload::compile(src, &schema()).unwrap();
        let expected: Vec<i64> = (0i64..1000).map(|x| x * 2).collect();
        let data = Array::from((0i64..1000).collect::<Vec<_>>());
        for workers in [1usize, 2, 4, 8] {
            let opts = ParallelOpts {
                workers,
                morsel_rows: 128,
                ..ParallelOpts::default()
            };
            let (out, _) = w
                .run_partitioned(1000, &[("xs", data.clone())], cfg(Strategy::Adaptive), opts)
                .unwrap();
            assert_eq!(out["out"], Array::from(expected.clone()));
        }
    }

    #[test]
    fn cancellation_binds_through_dsl_runs() {
        let w = Workload::compile(SRC, &schema()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let opts = ParallelOpts {
            workers: 2,
            ..ParallelOpts::default()
        }
        .with_cancel(&token);
        let err = w
            .run(&[("xs", xs())], cfg(Strategy::Interpret), opts)
            .unwrap_err();
        assert!(matches!(err, VmError::Cancelled));
    }
}
