//! Morsel-parallel relational pipelines.
//!
//! Every pipeline here follows the same shape: slice the table into a
//! [`MorselPlan`], run the per-morsel stage on the work-stealing pool
//! ([`adaptvm_parallel`]), and merge the per-morsel results **in morsel
//! order**. The ordered merge is what makes parallel results independent
//! of worker count — and, wherever the sequential implementation already
//! folds per chunk (`q1_vectorized`, [`crate::ops::filter_project_sum`],
//! Q6 through the VM), chunk-aligned morsels make the parallel result
//! **bit-identical to the single-threaded one**, because both sides add
//! the same per-chunk partials in the same order.
//!
//! Exactness ladder (strongest first):
//! * [`q1_parallel_adaptive`], [`q3_parallel`] — integer fixed-point
//!   accumulators: bit-identical to their sequential counterparts
//!   ([`tpch::q1_adaptive`], [`tpch::q3_hash`]) for *any* split,
//! * [`q1_parallel_vectorized`], [`parallel_filter_project_sum`],
//!   [`q6_parallel`] — bit-identical to their sequential counterparts via
//!   per-chunk partials merged in global chunk order,
//! * [`parallel_hash_join`], [`parallel_build_hash_table`] — the
//!   partitioned build merges per-morsel [`JoinPartition`]s in morsel
//!   order, so the shared table and the morsel-ordered probe output are
//!   observably identical to a sequential build + probe (exact: integer
//!   payloads only),
//! * [`q1_parallel_fused`], [`parallel_hash_aggregate`] — deterministic
//!   (worker-count independent) per-morsel merge; equal to the sequential
//!   fold up to floating-point associativity.
//!
//! ## Parallel joins
//!
//! Joins follow the **partitioned build, shared probe** pattern of
//! [`adaptvm_parallel::join`]: each worker hashes its build-side morsels
//! into private [`JoinPartition`]s, the partitions merge (morsel order)
//! into one read-only [`HashTable`], and probe-side morsels then probe it
//! concurrently. [`ParallelJoinChain`] extends this to the §III-C adaptive
//! join chain: every batch is probed morsel-parallel under one order
//! snapshot, per-join selectivity observations are merged across morsels,
//! and only then does the reorder controller see them — one coherent
//! observation per join per batch, scheduling-independent results.

use std::collections::HashMap;
use std::convert::Infallible;

use adaptvm_dsl::ast::ScalarOp;
use adaptvm_kernels::{FilterFlavor, MapMode};
use adaptvm_parallel::{
    build_then_probe_with, BuildProbeStats, CancelToken, MemoryBudget, Morsel, MorselPlan,
    ParallelRunReport, ParallelVm, Priority, QueryService, RunError, Runner, Scheduler, SubmitOpts,
    TenantId, Trace,
};
use adaptvm_storage::scalar::Scalar;
use adaptvm_storage::schema::Table;
use adaptvm_storage::Array;
use adaptvm_vm::reorder::ReorderController;
use adaptvm_vm::{Vm, VmConfig, VmError};

use crate::agg::{AdaptiveAggregator, GroupState, PreAgg};
use crate::join::{
    probe_chunk_with_order_mixed, validate_mixed_columns, ChainResult, HashTable, JoinPartition,
    JoinSide, KeyColumn, StrHashTable, StrJoinPartition,
};
use crate::ops::{self, DenseScan, OpResult};
use crate::tpch::{self, CompactLineitem, JoinStrategy, Q1Row, Q1_GROUPS};

/// How to run a parallel pipeline: worker threads, morsel size, and an
/// optional executor — a long-lived [`Scheduler`], or an
/// admission-controlled [`QueryService`] with a [`Priority`] class.
///
/// With neither attached every pipeline spawns a scoped per-run pool of
/// `workers` threads (the original behavior). With a scheduler attached
/// (see [`ParallelOpts::on`]) the same pipeline is queued on the shared,
/// parked worker set instead — `workers` is then ignored in favor of the
/// pool's size. With a *service* attached (see [`ParallelOpts::served`])
/// the pipeline additionally passes admission control (bounded priority
/// queues, weighted-fair dispatch) before running on the service's
/// scheduler. Results are **identical** on every executor (all of them
/// merge in morsel order) — the executor only decides where and when the
/// work runs. `morsel_rows = 0` defers to the scheduler's
/// elasticity-preferred size (or [`adaptvm_parallel::DEFAULT_MORSEL_ROWS`]
/// without one).
///
/// An attached [`CancelToken`] (see [`ParallelOpts::with_cancel`]) is
/// checked at every morsel boundary on any executor: cancellation or a
/// deadline surfaces as [`adaptvm_kernels::KernelError::Cancelled`] (or
/// [`VmError::Cancelled`] from the VM pipelines), aborting only this
/// pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOpts<'a> {
    /// Worker threads (clamped to ≥ 1; 1 = inline sequential execution).
    /// Ignored when `scheduler` or `service` is set (the pool's size
    /// wins).
    pub workers: usize,
    /// Rows per morsel (aligned up to the chunk size where it matters);
    /// 0 = let the scheduler's elasticity controller pick.
    pub morsel_rows: usize,
    /// Execute on this long-lived scheduler instead of scoped threads.
    pub scheduler: Option<&'a Scheduler>,
    /// Execute through this admission-controlled service (wins over
    /// `scheduler` when both are set).
    pub service: Option<&'a QueryService>,
    /// Priority class for service admission (ignored without `service`).
    pub priority: Priority,
    /// Tenant the pipeline is attributed to (ignored without `service`;
    /// `None` = anonymous). Tenancy gates *when* the pipeline is admitted
    /// and dispatched, never how it runs — results are bit-identical to
    /// an anonymous submission.
    pub tenant: Option<TenantId>,
    /// Cooperative cancellation, checked at morsel boundaries.
    pub cancel: Option<&'a CancelToken>,
    /// Byte budget the out-of-core joins ([`crate::spill`]) charge for
    /// resident build partitions — partitions that do not fit spill to
    /// disk. `None` = unlimited (nothing spills). Ignored by the purely
    /// in-memory pipelines. When unset and `tenant` is set, the spill
    /// pipelines fall back to the tenant's registered budget — see
    /// [`ParallelOpts::effective_budget`].
    pub memory_budget: Option<&'a MemoryBudget>,
    /// Record this pipeline's execution into a query trace (see
    /// [`adaptvm_parallel::obs`]): every morsel, JIT, spill, budget, and
    /// scratch event it produces lands in the trace's per-worker rings,
    /// ready to merge into an [`adaptvm_parallel::QueryProfile`]. `None`
    /// (the default) leaves tracing off — event sites then cost one
    /// relaxed atomic load. Tracing never changes results: traced runs
    /// are bit-identical to untraced ones.
    pub trace: Option<&'a Trace>,
}

impl Default for ParallelOpts<'_> {
    fn default() -> ParallelOpts<'static> {
        ParallelOpts {
            workers: 4,
            morsel_rows: adaptvm_parallel::DEFAULT_MORSEL_ROWS,
            scheduler: None,
            service: None,
            priority: Priority::Normal,
            tenant: None,
            cancel: None,
            memory_budget: None,
            trace: None,
        }
    }
}

impl<'a> ParallelOpts<'a> {
    /// Scoped-pool options: `workers` threads, `morsel_rows` per morsel.
    pub fn new(workers: usize, morsel_rows: usize) -> ParallelOpts<'a> {
        ParallelOpts {
            workers,
            morsel_rows,
            ..ParallelOpts::default()
        }
    }

    /// Options for running on a long-lived scheduler, at its worker count
    /// and its current elasticity-preferred morsel size.
    pub fn on(scheduler: &'a Scheduler) -> ParallelOpts<'a> {
        ParallelOpts {
            workers: scheduler.workers(),
            morsel_rows: 0,
            scheduler: Some(scheduler),
            ..ParallelOpts::default()
        }
    }

    /// Options for running through an admission-controlled service at
    /// `priority`, at the service scheduler's worker count and elastic
    /// morsel size.
    pub fn served(service: &'a QueryService, priority: Priority) -> ParallelOpts<'a> {
        ParallelOpts {
            workers: service.scheduler().workers(),
            morsel_rows: 0,
            service: Some(service),
            priority,
            ..ParallelOpts::default()
        }
    }

    /// Attach a scheduler to existing options (keeps `morsel_rows`).
    pub fn with_scheduler(mut self, scheduler: &'a Scheduler) -> ParallelOpts<'a> {
        self.workers = scheduler.workers();
        self.scheduler = Some(scheduler);
        self
    }

    /// Attach a service to existing options (keeps `morsel_rows`).
    pub fn with_service(
        mut self,
        service: &'a QueryService,
        priority: Priority,
    ) -> ParallelOpts<'a> {
        self.workers = service.scheduler().workers();
        self.service = Some(service);
        self.priority = priority;
        self
    }

    /// Attach a cancel token to existing options.
    pub fn with_cancel(mut self, cancel: &'a CancelToken) -> ParallelOpts<'a> {
        self.cancel = Some(cancel);
        self
    }

    /// Attach a memory budget governing the out-of-core joins.
    pub fn with_budget(mut self, budget: &'a MemoryBudget) -> ParallelOpts<'a> {
        self.memory_budget = Some(budget);
        self
    }

    /// Attribute the pipeline to a tenant registered with the attached
    /// service. Admission then counts against the tenant's quotas, and
    /// the spill pipelines pick up the tenant's memory budget when no
    /// explicit one is set.
    pub fn with_tenant(mut self, tenant: TenantId) -> ParallelOpts<'a> {
        self.tenant = Some(tenant);
        self
    }

    /// Record this pipeline's execution into `trace`; see
    /// [`ParallelOpts::trace`].
    pub fn with_trace(mut self, trace: &'a Trace) -> ParallelOpts<'a> {
        self.trace = Some(trace);
        self
    }

    /// Enter the attached trace (if any) under `stage`. Pipelines hold
    /// the returned guard for their whole run: workers inherit the scope
    /// when the run is dispatched, so their events carry this label.
    pub(crate) fn stage(&self, stage: &'static str) -> Option<adaptvm_parallel::obs::ScopeGuard> {
        self.trace.map(|t| t.enter_stage(stage))
    }

    /// The memory budget the out-of-core pipelines actually charge: an
    /// explicit [`ParallelOpts::with_budget`] wins; otherwise a
    /// tenant-attributed pipeline uses the tenant's registered budget;
    /// otherwise `None` (unlimited).
    pub fn effective_budget(&self) -> Option<&'a MemoryBudget> {
        if self.memory_budget.is_some() {
            return self.memory_budget;
        }
        match (self.service, self.tenant) {
            (Some(service), Some(id)) => service.tenants().budget(id),
            _ => None,
        }
    }

    /// The executor these options select.
    pub fn runner(&self) -> Runner<'a> {
        match (self.service, self.scheduler) {
            (Some(service), _) => Runner::Service {
                service,
                priority: self.priority,
                tenant: self.tenant,
            },
            (None, Some(s)) => Runner::Scheduler(s),
            (None, None) => Runner::Scoped {
                workers: self.workers,
            },
        }
    }

    /// Worker threads the selected executor actually runs on.
    pub fn effective_workers(&self) -> usize {
        self.runner().workers()
    }

    /// Morsel size with the `0 = elastic` sentinel resolved.
    pub fn effective_morsel_rows(&self) -> usize {
        if self.morsel_rows > 0 {
            self.morsel_rows
        } else if let Some(service) = self.service {
            service.scheduler().morsel_rows()
        } else if let Some(s) = self.scheduler {
            s.morsel_rows()
        } else {
            adaptvm_parallel::DEFAULT_MORSEL_ROWS
        }
    }
}

/// Fold a runner-level error into the kernel error the pipelines speak:
/// task errors pass through; cancellation, deadline, and admission
/// rejection become [`adaptvm_kernels::KernelError::Cancelled`].
pub(crate) fn kernel_run_err(
    e: RunError<adaptvm_kernels::KernelError>,
) -> adaptvm_kernels::KernelError {
    match e {
        RunError::Task(e) => e,
        RunError::Cancelled | RunError::DeadlineExceeded | RunError::Rejected(_) => {
            adaptvm_kernels::KernelError::Cancelled
        }
    }
}

/// Same fold for pipelines whose per-morsel stage cannot fail.
fn infallible_run_err(e: RunError<Infallible>) -> adaptvm_kernels::KernelError {
    match e {
        RunError::Task(e) => match e {},
        RunError::Cancelled | RunError::DeadlineExceeded | RunError::Rejected(_) => {
            adaptvm_kernels::KernelError::Cancelled
        }
    }
}

/// Run a per-morsel stage over a table and return the per-morsel results
/// in morsel order — the generic scan→…→merge driver every concrete
/// pipeline below builds on.
pub fn parallel_pipeline<T, F>(table: &Table, opts: ParallelOpts<'_>, stage: F) -> OpResult<Vec<T>>
where
    T: Send,
    F: Fn(&Morsel) -> OpResult<T> + Send + Sync,
{
    let _stage = opts.stage("scan");
    let plan = MorselPlan::new(table.rows(), opts.effective_morsel_rows());
    opts.runner()
        .run_with(&plan, opts.cancel, |_, m| stage(m))
        .map(|(v, _)| v)
        .map_err(kernel_run_err)
}

/// Morsel-parallel select→project→sum (the parallel version of
/// [`ops::filter_project_sum`]): filter `filter_col > threshold`, compute
/// `2 · value_col` over survivors, sum. Per-chunk sums are merged in
/// global chunk order, so the result is bit-identical to the sequential
/// pipeline at the same `chunk_rows`.
#[allow(clippy::too_many_arguments)]
pub fn parallel_filter_project_sum(
    table: &Table,
    filter_col: &str,
    threshold: i64,
    value_col: &str,
    chunk_rows: usize,
    flavor: FilterFlavor,
    mode: MapMode,
    opts: ParallelOpts<'_>,
) -> OpResult<(f64, usize)> {
    let _stage = opts.stage("filter-project-sum");
    let chunk_rows = chunk_rows.max(1);
    let plan = MorselPlan::chunk_aligned(table.rows(), opts.effective_morsel_rows(), chunk_rows);
    let run = opts.runner().run_with(&plan, opts.cancel, |_, m| {
        // Slice only the columns the pipeline reads, not the whole table.
        let slice = project_slice(table, &[filter_col, value_col], m)?;
        let scan = DenseScan::new(&slice, &[filter_col, value_col], chunk_rows)?;
        let mut parts: Vec<(f64, usize)> = Vec::new();
        for mut chunk in scan {
            ops::select_cmp(&mut chunk, 0, ScalarOp::Gt, Scalar::I64(threshold), flavor)?;
            let doubled = ops::project_binary(
                &mut chunk,
                ScalarOp::Mul,
                1,
                None,
                Some(Scalar::I64(2)),
                mode,
            )?;
            parts.push((ops::sum_f64(&chunk, doubled)?, ops::count(&chunk)));
        }
        Ok::<_, adaptvm_kernels::KernelError>(parts)
    });
    let (per_morsel, _) = run.map_err(kernel_run_err)?;
    // Final merge: fold per-chunk sums in global chunk order.
    let mut total = 0.0;
    let mut rows = 0;
    for parts in per_morsel {
        for (s, c) in parts {
            total += s;
            rows += c;
        }
    }
    Ok((total, rows))
}

/// Partitioned hash aggregation with a final merge phase: each morsel
/// aggregates `(key_col, value_col)` into a private hash table (through
/// the adaptively pre-aggregating [`AdaptiveAggregator`]), and the
/// partial tables are merged in morsel order, then sorted by key.
pub fn parallel_hash_aggregate(
    table: &Table,
    key_col: &str,
    value_col: &str,
    mode: PreAgg,
    chunk_rows: usize,
    opts: ParallelOpts<'_>,
) -> OpResult<Vec<(i64, GroupState)>> {
    let _stage = opts.stage("aggregate");
    let chunk_rows = chunk_rows.max(1);
    let keys = table
        .column_by_name(key_col)
        .map_err(adaptvm_kernels::KernelError::Storage)?
        .to_i64_vec()
        .ok_or_else(|| {
            adaptvm_kernels::KernelError::Precondition(format!("{key_col} must be integer"))
        })?;
    let values = table
        .column_by_name(value_col)
        .map_err(adaptvm_kernels::KernelError::Storage)?
        .as_f64()
        .ok_or_else(|| {
            adaptvm_kernels::KernelError::Precondition(format!("{value_col} must be f64"))
        })?;

    let plan = MorselPlan::chunk_aligned(table.rows(), opts.effective_morsel_rows(), chunk_rows);
    let run = opts.runner().run_with(&plan, opts.cancel, |_, m| {
        let mut agg = AdaptiveAggregator::new(mode);
        let mut off = m.start;
        while off < m.end() {
            let n = chunk_rows.min(m.end() - off);
            agg.push_chunk(&keys[off..off + n], &values[off..off + n]);
            off += n;
        }
        Ok::<_, adaptvm_kernels::KernelError>(agg.finish())
    });
    let (partials, _) = run.map_err(kernel_run_err)?;

    // Merge phase: morsel order, then key order for the final answer.
    let mut global: HashMap<i64, GroupState> = HashMap::new();
    for partial in partials {
        for (k, s) in partial {
            global.entry(k).or_default().merge(&s);
        }
    }
    let mut out: Vec<(i64, GroupState)> = global.into_iter().collect();
    out.sort_by_key(|(k, _)| *k);
    Ok(out)
}

/// Extract equal-length integer build columns (the shared precondition of
/// every partitioned build entry point).
pub(crate) fn build_rows(keys: &Array, payloads: &Array) -> OpResult<(Vec<i64>, Vec<i64>)> {
    let int_rows = |array: &Array, what: &str| {
        array.to_i64_vec().ok_or_else(|| {
            adaptvm_kernels::KernelError::Precondition(format!("{what} must be integer"))
        })
    };
    let k = int_rows(keys, "join build keys")?;
    let p = int_rows(payloads, "join build payloads")?;
    if k.len() != p.len() {
        return Err(adaptvm_kernels::KernelError::Precondition(format!(
            "build keys and payloads must have equal lengths ({} vs {})",
            k.len(),
            p.len()
        )));
    }
    Ok((k, p))
}

/// Morsel-parallel partitioned hash-table build: every worker hashes its
/// build-side morsels into private [`JoinPartition`]s, merged — in morsel
/// order — into one shared, read-only [`HashTable`]. Observably identical
/// to a sequential [`HashTable::build`] over the same columns (duplicate
/// keys keep every payload, in global build-row order), for any worker
/// count and morsel size.
pub fn parallel_build_hash_table(
    keys: &Array,
    payloads: &Array,
    bloom: bool,
    opts: ParallelOpts<'_>,
) -> OpResult<HashTable> {
    let _stage = opts.stage("build");
    let (k, p) = build_rows(keys, payloads)?;
    let plan = MorselPlan::new(k.len(), opts.effective_morsel_rows());
    let run = opts.runner().run_with(&plan, opts.cancel, |_, m| {
        Ok::<_, Infallible>(JoinPartition::from_rows(
            &k[m.start..m.end()],
            &p[m.start..m.end()],
        ))
    });
    let (partitions, _) = run.map_err(infallible_run_err)?;
    let table = HashTable::from_partitions(partitions);
    Ok(if bloom { table.with_bloom() } else { table })
}

/// A materialized morsel-parallel hash join: probe indices (global row
/// numbers, one per build match) and the matching payloads, merged in
/// morsel order — identical to [`HashTable::probe`] over the whole probe
/// column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelJoinOutput {
    /// Probe-side row numbers, one per build match, ascending.
    pub indices: Vec<u32>,
    /// The matching build payloads, in build-row order per probe row.
    pub payloads: Vec<i64>,
    /// Per-phase dispatch statistics.
    pub stats: BuildProbeStats,
}

/// Full morsel-parallel hash join over integer key/payload columns:
/// partitioned build (each worker over its build morsels, partitions
/// merged in morsel order into one shared [`HashTable`]) followed by a
/// shared probe over probe-side morsels, outputs merged in morsel order.
/// Returns the shared table and the materialized join output —
/// bit-identical across 1/2/4/8/… workers, and equal to the sequential
/// build + [`HashTable::probe`].
pub fn parallel_hash_join(
    build_keys: &Array,
    build_payloads: &Array,
    probe_keys: &[i64],
    bloom: bool,
    opts: ParallelOpts<'_>,
) -> OpResult<(HashTable, ParallelJoinOutput)> {
    let _stage = opts.stage("join");
    let (bk, bp) = build_rows(build_keys, build_payloads)?;
    let build_plan = MorselPlan::new(bk.len(), opts.effective_morsel_rows());
    let probe_plan = MorselPlan::new(probe_keys.len(), opts.effective_morsel_rows());
    let (table, per_morsel, stats) = build_then_probe_with(
        opts.runner(),
        opts.cancel,
        &build_plan,
        &probe_plan,
        |_, m| {
            Ok::<_, Infallible>(JoinPartition::from_rows(
                &bk[m.start..m.end()],
                &bp[m.start..m.end()],
            ))
        },
        |partitions| {
            let t = HashTable::from_partitions(partitions);
            if bloom {
                t.with_bloom()
            } else {
                t
            }
        },
        |_, m, table: &HashTable| {
            let (idx, pay) = table.probe(&probe_keys[m.start..m.end()]);
            Ok((m.start as u32, idx, pay))
        },
    )
    .map_err(infallible_run_err)?;
    let mut indices = Vec::new();
    let mut payloads = Vec::new();
    for (base, idx, pay) in per_morsel {
        indices.extend(idx.into_iter().map(|i| i + base));
        payloads.extend(pay);
    }
    Ok((
        table,
        ParallelJoinOutput {
            indices,
            payloads,
            stats,
        },
    ))
}

/// Full morsel-parallel hash join over a **Utf8 key column** (string
/// keys, integer payloads): the same partitioned-build / shared-probe
/// shape as [`parallel_hash_join`], with per-morsel
/// [`StrJoinPartition`]s merged — in morsel order — into one arena-backed
/// [`StrHashTable`] (keys hashed via `adaptvm_kernels` string hashing).
/// Bit-identical across 1/2/4/8/… workers and equal to the sequential
/// [`StrHashTable::build`] + [`StrHashTable::probe`].
pub fn parallel_hash_join_str(
    build_keys: &Array,
    build_payloads: &Array,
    probe_keys: &[String],
    bloom: bool,
    opts: ParallelOpts<'_>,
) -> OpResult<(StrHashTable, ParallelJoinOutput)> {
    let _stage = opts.stage("join-str");
    let bk = build_keys.as_str().ok_or_else(|| {
        adaptvm_kernels::KernelError::Precondition("join build keys must be strings".into())
    })?;
    let bp = build_payloads.to_i64_vec().ok_or_else(|| {
        adaptvm_kernels::KernelError::Precondition("join build payloads must be integer".into())
    })?;
    if bk.len() != bp.len() {
        return Err(adaptvm_kernels::KernelError::Precondition(format!(
            "build keys and payloads must have equal lengths ({} vs {})",
            bk.len(),
            bp.len()
        )));
    }
    let build_plan = MorselPlan::new(bk.len(), opts.effective_morsel_rows());
    let probe_plan = MorselPlan::new(probe_keys.len(), opts.effective_morsel_rows());
    let (table, per_morsel, stats) = build_then_probe_with(
        opts.runner(),
        opts.cancel,
        &build_plan,
        &probe_plan,
        |_, m| {
            Ok::<_, Infallible>(StrJoinPartition::from_rows(
                &bk[m.start..m.end()],
                &bp[m.start..m.end()],
            ))
        },
        |partitions| {
            let t = StrHashTable::from_partitions(partitions);
            if bloom {
                t.with_bloom()
            } else {
                t
            }
        },
        |_, m, table: &StrHashTable| {
            let (idx, pay) = table.probe(&probe_keys[m.start..m.end()]);
            Ok((m.start as u32, idx, pay))
        },
    )
    .map_err(infallible_run_err)?;
    let mut indices = Vec::new();
    let mut payloads = Vec::new();
    for (base, idx, pay) in per_morsel {
        indices.extend(idx.into_iter().map(|i| i + base));
        payloads.extend(pay);
    }
    Ok((
        table,
        ParallelJoinOutput {
            indices,
            payloads,
            stats,
        },
    ))
}

/// The §III-C adaptive join chain, probed morsel-parallel.
///
/// Each batch of key columns is sliced into morsels and probed on the
/// work-stealing pool under **one snapshot** of the current order; every
/// morsel records per-join `(input, output, ns)` observations. After the
/// batch, the observations are **merged across morsels (in morsel order)
/// before reordering** — the controller sees one coherent selectivity
/// sample per join per batch, so its decisions are based on whole-batch
/// pass rates, not on whichever morsel finished last.
///
/// Survivor indices and payload sums merge in morsel order: the result is
/// identical to [`crate::join::AdaptiveJoinChain::probe_chunk`] over the
/// same rows for any worker count (survivors of a conjunctive chain do
/// not depend on probe order).
pub struct ParallelJoinChain {
    sides: Vec<JoinSide>,
    controller: ReorderController,
}

impl ParallelJoinChain {
    /// Chain over integer-keyed build sides, re-evaluating order every
    /// `every` batches.
    pub fn new(tables: Vec<HashTable>, every: u64) -> ParallelJoinChain {
        ParallelJoinChain::new_mixed(tables.into_iter().map(JoinSide::Int).collect(), every)
    }

    /// Chain over possibly mixed-key build sides (integer and Utf8 — a
    /// Q3-style plan can chain an `i64 o_orderkey` join with a Utf8
    /// segment-key join), re-evaluating order every `every` batches.
    pub fn new_mixed(sides: Vec<JoinSide>, every: u64) -> ParallelJoinChain {
        let n = sides.len();
        ParallelJoinChain {
            sides,
            controller: ReorderController::new(n, every),
        }
    }

    /// The current probe order.
    pub fn order(&self) -> &[usize] {
        self.controller.current_order()
    }

    /// Times the order changed so far.
    pub fn reorders(&self) -> u64 {
        self.controller.reorders()
    }

    /// Probe one batch of integer key columns (`keys[j]` is the probe key
    /// column for join `j`; all columns must have equal length)
    /// morsel-parallel. Fails only when the batch was cancelled or refused
    /// by its executor (in which case no observation reaches the reorder
    /// controller). Panics if a side is Utf8-keyed — mixed chains probe
    /// through [`Self::probe_batch_mixed`].
    pub fn probe_batch(
        &mut self,
        keys: &[Vec<i64>],
        opts: ParallelOpts<'_>,
    ) -> OpResult<ChainResult> {
        let columns: Vec<KeyColumn<'_>> = keys.iter().map(|k| KeyColumn::Int(k)).collect();
        self.probe_batch_mixed(&columns, opts)
    }

    /// Probe one batch of **mixed** key columns morsel-parallel:
    /// `keys[j]`'s kind must match side `j` (validated up front). The
    /// merge discipline is identical to the integer chain — survivors in
    /// morsel order, one folded observation per join per batch — so
    /// results and learned orders are worker-count independent.
    pub fn probe_batch_mixed(
        &mut self,
        keys: &[KeyColumn<'_>],
        opts: ParallelOpts<'_>,
    ) -> OpResult<ChainResult> {
        let _stage = opts.stage("join-chain");
        let n = validate_mixed_columns(&self.sides, keys);
        let order = self.controller.current_order().to_vec();
        let plan = MorselPlan::new(n, opts.effective_morsel_rows());
        let sides = &self.sides;
        let run = opts.runner().run_with(&plan, opts.cancel, |_, m| {
            Ok::<_, Infallible>(probe_chunk_with_order_mixed(
                sides,
                &order,
                keys,
                m.start..m.end(),
            ))
        });
        let (per_morsel, _) = run.map_err(infallible_run_err)?;
        // Merge: survivors in morsel order; observations folded across
        // morsels into one (input, output, ns) sample per join.
        let mut indices = Vec::new();
        let mut payload_sum = Vec::new();
        let mut merged = vec![(0usize, 0usize, 0u64); self.sides.len()];
        for (result, observations) in per_morsel {
            indices.extend(result.indices);
            payload_sum.extend(result.payload_sum);
            for o in observations {
                let slot = &mut merged[o.join];
                slot.0 += o.input;
                slot.1 += o.output;
                slot.2 += o.ns;
            }
        }
        for &j in &order {
            let (input, output, ns) = merged[j];
            self.controller.record(j, input, output, ns);
        }
        self.controller.next_order();
        Ok(ChainResult {
            indices,
            payload_sum,
        })
    }
}

/// Morsel-parallel Q3-style join query (see [`tpch::q3_hash`]): the
/// partitioned build filters and hashes orders morsels into partitions
/// merged in morsel order; the shared probe then runs every lineitem
/// morsel through the chosen [`JoinStrategy`], and the exact fixed-point
/// morsel revenues fold in morsel order. Integer accumulators are
/// associative, so the result is **bit-identical to the sequential
/// [`tpch::q3_hash`]** for any worker count, morsel size, and strategy.
pub fn q3_parallel(
    lineitem: &Table,
    orders: &Table,
    date: i64,
    strategy: JoinStrategy,
    chunk_rows: usize,
    bloom: bool,
    opts: ParallelOpts<'_>,
) -> OpResult<(f64, BuildProbeStats)> {
    let _stage = opts.stage("q3");
    let chunk_rows = chunk_rows.max(1);
    let okey = ops::int_column(orders, "o_orderkey")?;
    let odate = ops::int_column(orders, "o_orderdate")?;
    let cols = tpch::Q3Cols::from_table(lineitem)?;
    let build_plan = MorselPlan::new(okey.len(), opts.effective_morsel_rows());
    let probe_plan =
        MorselPlan::chunk_aligned(lineitem.rows(), opts.effective_morsel_rows(), chunk_rows);
    let (_, revenues, stats) = build_then_probe_with(
        opts.runner(),
        opts.cancel,
        &build_plan,
        &probe_plan,
        |_, m| {
            // Build stage: filter this orders morsel by date, hash the
            // survivors into a private partition.
            let mut keys = Vec::new();
            let mut payloads = Vec::new();
            for i in m.start..m.end() {
                if odate[i] < date {
                    keys.push(okey[i]);
                    payloads.push(odate[i]);
                }
            }
            Ok::<_, Infallible>(JoinPartition::from_rows(&keys, &payloads))
        },
        |partitions| {
            let t = HashTable::from_partitions(partitions);
            if bloom {
                t.with_bloom()
            } else {
                t
            }
        },
        |_, m, table: &HashTable| {
            Ok(tpch::q3_probe_range(
                &cols, table, date, strategy, m.start, m.len, chunk_rows,
            ))
        },
    )
    .map_err(infallible_run_err)?;
    Ok((tpch::q3_revenue_f64(revenues.into_iter().sum()), stats))
}

/// A morsel-sized table holding only the named columns.
fn project_slice(table: &Table, columns: &[&str], m: &Morsel) -> OpResult<Table> {
    let fields = columns
        .iter()
        .map(|n| table.schema().field(n).cloned())
        .collect::<Result<Vec<_>, _>>()
        .map_err(adaptvm_kernels::KernelError::Storage)?;
    let arrays = columns
        .iter()
        .map(|n| table.column_by_name(n).map(|c| m.slice_array(c)))
        .collect::<Result<Vec<_>, _>>()
        .map_err(adaptvm_kernels::KernelError::Storage)?;
    Table::new(adaptvm_storage::schema::Schema::new(fields), arrays)
        .map_err(adaptvm_kernels::KernelError::Storage)
}

/// Parallel TPC-H Q1, X100-style vectorized. Per-chunk partial
/// accumulators merged in global chunk order: bit-identical to
/// [`tpch::q1_vectorized`] at the same `chunk_rows`, for any worker
/// count. Fails only on cancellation/rejection by the executor.
pub fn q1_parallel_vectorized(
    table: &Table,
    chunk_rows: usize,
    opts: ParallelOpts<'_>,
) -> OpResult<Vec<Q1Row>> {
    let _stage = opts.stage("q1");
    let chunk_rows = chunk_rows.max(1);
    let plan = MorselPlan::chunk_aligned(table.rows(), opts.effective_morsel_rows(), chunk_rows);
    let run = opts.runner().run_with(&plan, opts.cancel, |_, m| {
        let mut parts = Vec::with_capacity(m.len.div_ceil(chunk_rows));
        let mut off = m.start;
        while off < m.end() {
            let n = chunk_rows.min(m.end() - off);
            parts.push(tpch::q1_vectorized_chunk(table, off, n));
            off += n;
        }
        Ok::<_, Infallible>(parts)
    });
    let (per_morsel, _) = run.map_err(infallible_run_err)?;
    let mut accs = tpch::new_accs();
    for parts in per_morsel {
        for partial in parts {
            for (a, p) in accs.iter_mut().zip(&partial) {
                a.merge(p);
            }
        }
    }
    Ok(tpch::q1_rows(accs))
}

/// Parallel TPC-H Q1, HyPer-style fused. Per-morsel partials merged in
/// morsel order: deterministic for any worker count; equal to
/// [`tpch::q1_fused`] up to floating-point associativity (counts and
/// integer-valued sums are exact). Fails only on cancellation/rejection.
pub fn q1_parallel_fused(table: &Table, opts: ParallelOpts<'_>) -> OpResult<Vec<Q1Row>> {
    let _stage = opts.stage("q1");
    let plan = MorselPlan::new(table.rows(), opts.effective_morsel_rows());
    let run = opts.runner().run_with(&plan, opts.cancel, |_, m| {
        Ok::<_, Infallible>(tpch::q1_fused_range(table, m.start, m.len))
    });
    let (partials, _) = run.map_err(infallible_run_err)?;
    let mut accs = tpch::new_accs();
    for partial in partials {
        for (a, p) in accs.iter_mut().zip(&partial) {
            a.merge(p);
        }
    }
    Ok(tpch::q1_rows(accs))
}

/// Parallel TPC-H Q1 with the paper's compact-types + adaptive mix. The
/// accumulators are exact 64-bit integer fixed point — associative — so
/// the result is **bit-identical to [`tpch::q1_adaptive`]** for any
/// worker count and any morsel size. Fails only on
/// cancellation/rejection.
pub fn q1_parallel_adaptive(
    compact: &CompactLineitem,
    chunk_rows: usize,
    opts: ParallelOpts<'_>,
) -> OpResult<Vec<Q1Row>> {
    let _stage = opts.stage("q1");
    let chunk_rows = chunk_rows.max(1);
    let plan =
        MorselPlan::chunk_aligned(compact.qty.len(), opts.effective_morsel_rows(), chunk_rows);
    let run = opts.runner().run_with(&plan, opts.cancel, |_, m| {
        Ok::<_, Infallible>(tpch::q1_adaptive_range(compact, m.start, m.len, chunk_rows))
    });
    let (partials, _) = run.map_err(infallible_run_err)?;
    let mut iaccs = [[0i64; 5]; Q1_GROUPS as usize];
    for p in &partials {
        tpch::q1_adaptive_merge(&mut iaccs, p);
    }
    Ok(tpch::q1_adaptive_rows(&iaccs))
}

/// Parallel TPC-H Q6 through the full adaptive VM: one VM program per
/// morsel (each worker owns its `Env`/interpreter), all sharing one JIT
/// code cache, revenues folded in morsel order.
///
/// With `morsel_rows == config.chunk_size` every morsel is exactly one
/// chunk and the revenue fold reproduces the single-threaded VM's
/// addition tree: the result is bit-identical to running
/// [`tpch::q6_program`] on one thread with the same strategy. Larger
/// (chunk-aligned) morsels remain deterministic for any worker count.
///
/// With a scheduler in `opts`, the run executes on the long-lived pool via
/// [`ParallelVm::on`]: same revenue, but traces live in the scheduler's
/// shared cache (repeat runs report `trace_cache_hits`) and the merged
/// profile window feeds the scheduler's morsel elasticity. With a
/// *service* in `opts` the run additionally passes admission control at
/// `opts.priority` first; cancellation (token or queued-deadline)
/// surfaces as [`VmError::Cancelled`].
pub fn q6_parallel(
    table: &Table,
    date_lo: i64,
    config: VmConfig,
    opts: ParallelOpts<'_>,
) -> Result<(f64, ParallelRunReport), VmError> {
    let _stage = opts.stage("q6");
    let plan = MorselPlan::chunk_aligned(
        table.rows(),
        opts.effective_morsel_rows(),
        config.chunk_size,
    );
    let pvm = ParallelVm::new(opts.effective_workers(), config);
    // Resolve the four Q6 columns once; each morsel slices only these.
    let price = table.column_by_name("l_extendedprice").expect("schema");
    let disc = table.column_by_name("l_discount").expect("schema");
    let qty = table.column_by_name("l_quantity").expect("schema");
    let ship = table.column_by_name("l_shipdate").expect("schema");
    let make = |m: &Morsel| {
        let buffers = adaptvm_vm::Buffers::new()
            .with_input("l_price", m.slice_array(price))
            .with_input("l_disc", m.slice_array(disc))
            .with_input("l_qty", m.slice_array(qty))
            .with_input("l_ship", m.slice_array(ship));
        (tpch::q6_program(m.len as i64, date_lo), buffers)
    };
    let (outs, report) = if let Some(service) = opts.service {
        let mut sopts = SubmitOpts::new(opts.priority);
        if let Some(id) = opts.tenant {
            sopts = sopts.with_tenant(id);
        }
        if let Some(token) = opts.cancel {
            sopts = sopts.with_cancel(token.clone());
        }
        if let Some(t) = opts.trace {
            sopts = sopts.with_trace(t.clone());
        }
        service
            .run_gated_with(
                sopts,
                |s| pvm.on(s).run_morsels_with(&plan, opts.cancel, make),
                |r| match r {
                    Ok(_) => adaptvm_parallel::QueryOutcomeKind::Completed,
                    Err(VmError::Cancelled) => adaptvm_parallel::QueryOutcomeKind::Cancelled,
                    Err(_) => adaptvm_parallel::QueryOutcomeKind::TaskError,
                },
            )
            .map_err(|_| VmError::Cancelled)??
    } else if let Some(s) = opts.scheduler {
        pvm.on(s).run_morsels_with(&plan, opts.cancel, make)?
    } else {
        pvm.run_morsels_with(&plan, opts.cancel, make)?
    };
    let mut revenue = 0.0;
    for (i, out) in outs.iter().enumerate() {
        let rev = out
            .output("revenue")
            .and_then(|a| a.as_f64())
            .and_then(|v| v.first().copied())
            .ok_or_else(|| VmError::Shape(format!("morsel {i} produced no f64 revenue output")))?;
        revenue += rev;
    }
    Ok((revenue, report))
}

/// Morsel-parallel TPC-H Q18 (large-volume customer): the big group-by —
/// `sum(l_quantity) by l_orderkey` through the **spillable** parallel
/// aggregate ([`crate::spill::parallel_hash_aggregate_spill`], which
/// binds `opts`' effective memory budget) — feeding a filter
/// (`total > threshold`) and a join back to `orders` for the date.
///
/// Bit-identical to [`tpch::q18_reference`] at every worker count,
/// budget, and executor: the spilling aggregate is bit-identical to the
/// sequential fold and already key-sorted, and the join is a point
/// lookup per surviving group.
pub fn q18_parallel(
    lineitem: &Table,
    orders: &Table,
    threshold: f64,
    opts: ParallelOpts<'_>,
) -> OpResult<(Vec<tpch::Q18Row>, adaptvm_parallel::SpillStats)> {
    let _stage = opts.stage("q18");
    let (groups, stats) =
        crate::spill::parallel_hash_aggregate_spill(lineitem, "l_orderkey", "l_quantity", opts)?;
    let rows = q18_finish(groups, orders, threshold)?;
    Ok((rows, stats))
}

/// The shared tail of the Q18 pipelines: apply the HAVING filter to the
/// key-sorted group sums and join the survivors back to `orders` for the
/// date.
fn q18_finish(
    groups: Vec<(i64, GroupState)>,
    orders: &Table,
    threshold: f64,
) -> OpResult<Vec<tpch::Q18Row>> {
    use adaptvm_kernels::KernelError;
    let okey = orders
        .column_by_name("o_orderkey")
        .map_err(KernelError::Storage)?
        .to_i64_vec()
        .ok_or_else(|| KernelError::Precondition("o_orderkey must be integer".into()))?;
    let odate = orders
        .column_by_name("o_orderdate")
        .map_err(KernelError::Storage)?
        .to_i64_vec()
        .ok_or_else(|| KernelError::Precondition("o_orderdate must be integer".into()))?;
    let dates: HashMap<i64, i64> = okey.into_iter().zip(odate).collect();
    Ok(groups
        .into_iter()
        .filter(|(_, g)| g.sum > threshold)
        .filter_map(|(k, g)| {
            dates.get(&k).map(|&d| tpch::Q18Row {
                o_orderkey: k,
                o_orderdate: d,
                total_qty: g.sum,
                line_count: g.count,
            })
        })
        .collect())
}

/// [`q18_parallel`] with the HAVING clause **re-evaluated through the
/// adaptive VM**: the spillable parallel aggregate computes the per-order
/// quantity sums exactly as in [`q18_parallel`], then a Q6-shaped DSL
/// program ([`tpch::q18_having_program`]) recomputes
/// `sum(total where total > threshold)` over those group sums inside the
/// VM — interpreting, tracing, JIT-compiling, or deoptimizing per
/// `config.strategy`. The host still materializes the result rows; the
/// VM's kept-quantity sum must agree **bit-exactly** with the host's
/// (quantities are integer-valued f64 and the sums stay far below 2^53,
/// so addition order cannot matter), and any disagreement surfaces as
/// [`VmError::Shape`].
///
/// The VM leg makes this the engine's one-stop profiling query: a single
/// traced call produces admission, morsel, spill, budget, **and** JIT
/// events in one [`adaptvm_parallel::QueryProfile`].
pub fn q18_parallel_vm(
    lineitem: &Table,
    orders: &Table,
    threshold: f64,
    config: VmConfig,
    opts: ParallelOpts<'_>,
) -> Result<(Vec<tpch::Q18Row>, adaptvm_parallel::SpillStats), VmError> {
    let _stage = opts.stage("q18");
    let (groups, stats) =
        crate::spill::parallel_hash_aggregate_spill(lineitem, "l_orderkey", "l_quantity", opts)
            .map_err(VmError::Kernel)?;
    // HAVING through the VM over the aggregated (key-sorted) group sums.
    // Empty input is degenerate — nothing to filter, nothing to check.
    if !groups.is_empty() {
        let sums: Vec<f64> = groups.iter().map(|(_, g)| g.sum).collect();
        let program = tpch::q18_having_program(sums.len() as i64, threshold);
        let buffers = adaptvm_vm::Buffers::new().with_input("sums", Array::from(sums));
        let (out, _report) = Vm::new(config).run(&program, buffers)?;
        let vm_kept = out
            .output("kept")
            .and_then(|a| a.as_f64())
            .and_then(|v| v.first().copied())
            .ok_or_else(|| VmError::Shape("q18 HAVING program produced no kept output".into()))?;
        let host_kept: f64 = groups
            .iter()
            .map(|(_, g)| g.sum)
            .filter(|&s| s > threshold)
            .sum();
        if vm_kept.to_bits() != host_kept.to_bits() {
            return Err(VmError::Shape(format!(
                "q18 HAVING disagreement: VM kept {vm_kept}, host kept {host_kept}"
            )));
        }
    }
    let rows = q18_finish(groups, orders, threshold).map_err(VmError::Kernel)?;
    Ok((rows, stats))
}

/// Morsel-parallel TPC-H Q9 (product-type profit): a **mixed-key**
/// adaptive join chain — two integer sides (selective part filter,
/// supplier) and one Utf8 side (brand) — probed batch-by-batch under the
/// reorder controller, with exact whole-cent profit grouped by the
/// supplier's nation.
///
/// `batch_rows` sets the reorder observation granularity (one folded
/// observation per join per batch); `bloom` builds every side with a
/// Bloom pre-filter. Results are bit-identical to
/// [`tpch::q9_reference`] for every worker count, batch size, Bloom
/// setting, and executor — survivors merge in morsel order and the
/// profit accumulators are integers. Returns the rows plus the number of
/// join-order changes the controller made.
pub fn q9_parallel(
    data: &tpch::Q9Data,
    batch_rows: usize,
    bloom: bool,
    every: u64,
    opts: ParallelOpts<'_>,
) -> OpResult<(Vec<tpch::Q9Row>, u64)> {
    let _stage = opts.stage("q9");
    let mut part = HashTable::from_rows(&data.part_keys, &data.part_payload);
    let mut supp = HashTable::from_rows(&data.supp_keys, &data.supp_payload);
    let brand_payloads = Array::from(data.brand_payload.clone());
    let mut brand = StrHashTable::build(&Array::from(data.brand_keys.clone()), &brand_payloads)
        .expect("Utf8 keys with integer payloads");
    if bloom {
        part = part.with_bloom();
        supp = supp.with_bloom();
        brand = brand.with_bloom();
    }
    let mut chain = ParallelJoinChain::new_mixed(
        vec![
            JoinSide::Int(part),
            JoinSide::Int(supp),
            JoinSide::Str(brand),
        ],
        every,
    );
    let n = data.l_partkey.len();
    let batch_rows = batch_rows.max(1);
    let mut groups: HashMap<i64, (i64, i64)> = HashMap::new();
    let mut start = 0;
    while start < n {
        let end = (start + batch_rows).min(n);
        let keys = [
            KeyColumn::Int(&data.l_partkey[start..end]),
            KeyColumn::Int(&data.l_suppkey[start..end]),
            KeyColumn::Str(&data.l_brand[start..end]),
        ];
        let result = chain.probe_batch_mixed(&keys, opts)?;
        for (&local, &pay) in result.indices.iter().zip(&result.payload_sum) {
            let g = start + local as usize;
            let nation = data.supp_nation[data.l_suppkey[g] as usize];
            let profit = data.l_price_c[g] - data.l_cost_c[g] + pay;
            let slot = groups.entry(nation).or_default();
            slot.0 += profit;
            slot.1 += 1;
        }
        start = end;
    }
    let mut rows: Vec<tpch::Q9Row> = groups
        .into_iter()
        .map(|(nation, (profit_c, count))| tpch::Q9Row {
            nation,
            profit_c,
            rows: count,
        })
        .collect();
    rows.sort_by_key(|r| r.nation);
    Ok((rows, chain.reorders()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptvm_storage::DEFAULT_CHUNK;
    use adaptvm_vm::Strategy;

    fn exact_eq(a: &[Q1Row], b: &[Q1Row]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.group == y.group
                    && x.count == y.count
                    && x.sum_qty.to_bits() == y.sum_qty.to_bits()
                    && x.sum_base.to_bits() == y.sum_base.to_bits()
                    && x.sum_disc_price.to_bits() == y.sum_disc_price.to_bits()
                    && x.sum_charge.to_bits() == y.sum_charge.to_bits()
            })
    }

    #[test]
    fn parallel_vectorized_q1_bit_identical_to_sequential() {
        let t = tpch::lineitem(50_000, 11);
        let seq = tpch::q1_vectorized(&t, 1024);
        for workers in [1, 2, 4, 8] {
            let par = q1_parallel_vectorized(
                &t,
                1024,
                ParallelOpts {
                    workers,
                    morsel_rows: 8 * 1024,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            assert!(exact_eq(&seq, &par), "workers={workers}");
        }
    }

    #[test]
    fn parallel_adaptive_q1_bit_identical_to_sequential() {
        let t = tpch::lineitem(40_000, 5);
        let compact = CompactLineitem::from_table(&t);
        let seq = tpch::q1_adaptive(&compact, 1024);
        for (workers, morsel) in [(1, 1000), (2, 4096), (4, 7777), (8, 1024)] {
            let par = q1_parallel_adaptive(
                &compact,
                1024,
                ParallelOpts {
                    workers,
                    morsel_rows: morsel,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            assert!(exact_eq(&seq, &par), "workers={workers} morsel={morsel}");
        }
    }

    #[test]
    fn parallel_fused_q1_matches_reference() {
        let t = tpch::lineitem(30_000, 3);
        let seq = tpch::q1_fused(&t);
        let one_worker = q1_parallel_fused(
            &t,
            ParallelOpts {
                workers: 1,
                morsel_rows: 4096,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        for workers in [2, 4, 8] {
            let par = q1_parallel_fused(
                &t,
                ParallelOpts {
                    workers,
                    morsel_rows: 4096,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            // Same morsel decomposition ⇒ bit-identical across worker counts.
            assert!(exact_eq(&one_worker, &par), "workers={workers}");
            // And equal to the sequential fused loop within fp tolerance.
            assert!(tpch::q1_results_match(&seq, &par), "workers={workers}");
        }
    }

    #[test]
    fn parallel_filter_project_sum_bit_identical() {
        use adaptvm_storage::gen;
        let t = gen::measurements(20_000, 8, 21);
        let (seq_total, seq_rows) = ops::filter_project_sum(
            &t,
            "group",
            2,
            "value",
            512,
            FilterFlavor::SelVecLoop,
            MapMode::Selective,
        )
        .unwrap();
        for workers in [1, 2, 4] {
            let (total, rows) = parallel_filter_project_sum(
                &t,
                "group",
                2,
                "value",
                512,
                FilterFlavor::SelVecLoop,
                MapMode::Selective,
                ParallelOpts {
                    workers,
                    morsel_rows: 2048,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            assert_eq!(rows, seq_rows, "workers={workers}");
            assert_eq!(total.to_bits(), seq_total.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn partitioned_agg_merges_deterministically() {
        use adaptvm_storage::gen;
        let t = gen::measurements(30_000, 16, 9);
        let reference = parallel_hash_aggregate(
            &t,
            "group",
            "value",
            PreAgg::Adaptive,
            1024,
            ParallelOpts {
                workers: 1,
                morsel_rows: 4096,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        // Sanity: counts partition the input.
        assert_eq!(
            reference.iter().map(|(_, s)| s.count).sum::<i64>(),
            t.rows() as i64
        );
        for workers in [2, 4, 8] {
            let par = parallel_hash_aggregate(
                &t,
                "group",
                "value",
                PreAgg::Adaptive,
                1024,
                ParallelOpts {
                    workers,
                    morsel_rows: 4096,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            assert_eq!(par.len(), reference.len());
            for ((k1, s1), (k2, s2)) in reference.iter().zip(&par) {
                assert_eq!(k1, k2);
                assert_eq!(s1.count, s2.count);
                assert_eq!(s1.sum.to_bits(), s2.sum.to_bits(), "workers={workers}");
                assert_eq!(s1.min.to_bits(), s2.min.to_bits());
                assert_eq!(s1.max.to_bits(), s2.max.to_bits());
            }
        }
    }

    #[test]
    fn parallel_q6_every_strategy_matches_reference() {
        let t = tpch::lineitem(20_000, 9);
        let expected = tpch::q6_reference(&t, 1000);
        for strategy in [
            Strategy::Interpret,
            Strategy::CompiledPipeline,
            Strategy::Adaptive,
        ] {
            let config = VmConfig {
                strategy,
                hot_threshold: 3,
                ..VmConfig::default()
            };
            let (rev, report) = q6_parallel(
                &t,
                1000,
                config,
                ParallelOpts {
                    workers: 4,
                    morsel_rows: 4 * DEFAULT_CHUNK,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            assert!(
                (rev - expected).abs() / expected.abs().max(1.0) < 1e-9,
                "{strategy:?}: {rev} vs {expected}"
            );
            assert_eq!(report.morsels, 5, "{strategy:?}");
        }
    }

    #[test]
    fn parallel_build_matches_sequential_build() {
        // Heavy duplication: 20k rows over 500 distinct keys.
        let keys = Array::from((0..20_000).map(|i| i % 500).collect::<Vec<i64>>());
        let pays = Array::from((0..20_000).collect::<Vec<i64>>());
        let sequential = HashTable::build(&keys, &pays).unwrap();
        let probes: Vec<i64> = (-10..510).collect();
        let expected = sequential.probe(&probes);
        for workers in [1, 2, 4, 8] {
            for bloom in [false, true] {
                let par = parallel_build_hash_table(
                    &keys,
                    &pays,
                    bloom,
                    ParallelOpts {
                        workers,
                        morsel_rows: 3_000,
                        ..ParallelOpts::default()
                    },
                )
                .unwrap();
                assert_eq!(par.len(), sequential.len());
                assert_eq!(par.distinct_keys(), sequential.distinct_keys());
                assert_eq!(
                    par.probe(&probes),
                    expected,
                    "workers={workers} bloom={bloom}"
                );
            }
        }
    }

    #[test]
    fn parallel_hash_join_matches_sequential_probe() {
        let build_keys = Array::from((0..5_000).map(|i| i % 400).collect::<Vec<i64>>());
        let build_pays = Array::from((0..5_000).map(|i| i * 3).collect::<Vec<i64>>());
        let probe_keys: Vec<i64> = (0..30_000).map(|i| (i * 7) % 800).collect();
        let table = HashTable::build(&build_keys, &build_pays).unwrap();
        let (seq_idx, seq_pay) = table.probe(&probe_keys);
        for workers in [1, 2, 4, 8] {
            let (_, out) = parallel_hash_join(
                &build_keys,
                &build_pays,
                &probe_keys,
                workers % 2 == 0, // alternate bloom on/off across the sweep
                ParallelOpts {
                    workers,
                    morsel_rows: 4_096,
                    ..ParallelOpts::default()
                },
            )
            .unwrap();
            assert_eq!(out.indices, seq_idx, "workers={workers}");
            assert_eq!(out.payloads, seq_pay, "workers={workers}");
            assert_eq!(
                out.stats.probe.executed.iter().sum::<u64>(),
                30_000u64.div_ceil(4_096),
            );
        }
    }

    #[test]
    fn parallel_join_chain_matches_sequential_chain() {
        use crate::join::AdaptiveJoinChain;
        let mk = |n: i64| {
            let keys: Vec<i64> = (0..n).collect();
            HashTable::build(
                &Array::from(keys.clone()),
                &Array::from(keys.iter().map(|k| k + 1).collect::<Vec<_>>()),
            )
            .unwrap()
        };
        let probes: Vec<i64> = (0..20_000).map(|i| i % 15_000).collect();
        let keys = [probes.clone(), probes.clone()];
        // Sequential reference over the same batches.
        let mut seq = AdaptiveJoinChain::new(vec![mk(10_000), mk(1_000)], 2);
        let seq_results: Vec<ChainResult> = (0..6).map(|_| seq.probe_chunk(&keys)).collect();
        for workers in [1, 2, 4, 8] {
            let mut par = ParallelJoinChain::new(vec![mk(10_000), mk(1_000)], 2);
            for (batch, expected) in seq_results.iter().enumerate() {
                let r = par
                    .probe_batch(
                        &keys,
                        ParallelOpts {
                            workers,
                            morsel_rows: 3_000,
                            ..ParallelOpts::default()
                        },
                    )
                    .unwrap();
                assert_eq!(&r, expected, "workers={workers} batch={batch}");
            }
            assert_eq!(
                par.order(),
                &[1, 0],
                "selective join leads after merged stats (workers={workers})"
            );
        }
    }

    #[test]
    fn parallel_q3_bit_identical_to_sequential_for_every_strategy() {
        let li = tpch::lineitem_q3(25_000, 4_000, 23);
        let ord = tpch::orders(4_000, 23);
        let date = tpch::SHIPDATE_MAX / 2;
        let reference = tpch::q3_reference(&li, &ord, date);
        for strategy in JoinStrategy::ALL {
            let seq = tpch::q3_hash(&li, &ord, date, strategy, 1024, true).unwrap();
            assert!((seq - reference).abs() / reference.abs().max(1.0) < 1e-9);
            for workers in [1, 2, 4, 8] {
                let (rev, stats) = q3_parallel(
                    &li,
                    &ord,
                    date,
                    strategy,
                    1024,
                    true,
                    ParallelOpts {
                        workers,
                        morsel_rows: 5_000,
                        ..ParallelOpts::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    rev.to_bits(),
                    seq.to_bits(),
                    "{strategy:?} diverged at {workers} workers"
                );
                assert_eq!(stats.build_morsels, 4_000usize.div_ceil(5_000));
                // Probe morsels are chunk-aligned: 5_000 → 5_120 rows.
                assert_eq!(stats.probe_morsels, 25_000usize.div_ceil(5_120));
            }
        }
    }

    #[test]
    fn scheduler_entry_points_bit_identical_to_scoped() {
        // One long-lived scheduler serving Q1 (vectorized + adaptive), Q3
        // and Q6: every result must be bit-identical to the scoped-pool
        // path over the same plan.
        let scheduler = Scheduler::new(4);
        let t = tpch::lineitem(30_000, 19);
        let compact = CompactLineitem::from_table(&t);
        let scoped = ParallelOpts::new(4, 5_000);
        let sched = scoped.with_scheduler(&scheduler);

        let q1_scoped = q1_parallel_vectorized(&t, 1024, scoped).unwrap();
        let q1_sched = q1_parallel_vectorized(&t, 1024, sched).unwrap();
        assert!(exact_eq(&q1_scoped, &q1_sched), "vectorized Q1");

        let q1a_scoped = q1_parallel_adaptive(&compact, 1024, scoped).unwrap();
        let q1a_sched = q1_parallel_adaptive(&compact, 1024, sched).unwrap();
        assert!(exact_eq(&q1a_scoped, &q1a_sched), "adaptive Q1");

        let li = tpch::lineitem_q3(20_000, 3_000, 7);
        let ord = tpch::orders(3_000, 7);
        let date = tpch::SHIPDATE_MAX / 2;
        for strategy in JoinStrategy::ALL {
            let (seq, _) = q3_parallel(&li, &ord, date, strategy, 1024, true, scoped).unwrap();
            let (par, stats) = q3_parallel(&li, &ord, date, strategy, 1024, true, sched).unwrap();
            assert_eq!(seq.to_bits(), par.to_bits(), "{strategy:?}");
            assert_eq!(
                stats.probe.executed.len(),
                scheduler.workers(),
                "probe stats come from the scheduler pool"
            );
        }

        let config = VmConfig {
            strategy: Strategy::Adaptive,
            hot_threshold: 3,
            ..VmConfig::default()
        };
        let (rev_scoped, _) = q6_parallel(&t, 1000, config.clone(), scoped).unwrap();
        let (rev_sched, report) = q6_parallel(&t, 1000, config, sched).unwrap();
        assert_eq!(rev_scoped.to_bits(), rev_sched.to_bits(), "Q6");
        assert_eq!(report.workers, scheduler.workers());
    }

    #[test]
    fn scheduler_q6_hits_shared_cache_on_repeat_runs() {
        // The repeated-fragment workload: the same Q6 program shape run
        // twice on one scheduler. The second run's traces come from the
        // scheduler's shared cache — zero additional compiles.
        let scheduler = Scheduler::new(2);
        let t = tpch::lineitem(20_480, 3);
        let config = VmConfig {
            strategy: Strategy::CompiledPipeline,
            ..VmConfig::default()
        };
        let opts = ParallelOpts::new(2, 4 * DEFAULT_CHUNK).with_scheduler(&scheduler);
        let (rev1, r1) = q6_parallel(&t, 1000, config.clone(), opts).unwrap();
        assert!(
            r1.trace_cache_hits >= (r1.morsels as u64) - 1,
            "later morsels of the first run already share the cache: {r1:?}"
        );
        let (rev2, r2) = q6_parallel(&t, 1000, config, opts).unwrap();
        assert_eq!(rev1.to_bits(), rev2.to_bits());
        assert_eq!(
            r2.trace_cache_hits, r2.morsels as u64,
            "every morsel of the repeat run hits: {r2:?}"
        );
        assert_eq!(r2.compile_ns_total, 0, "{r2:?}");
    }

    #[test]
    fn elastic_morsel_sentinel_resolves_and_stays_exact() {
        // morsel_rows = 0 defers to the scheduler's elastic size; the
        // adaptive Q1 fixed-point result is split-independent, so feeding
        // windows that move the size between runs must not change results.
        let scheduler = Scheduler::new(4);
        let t = tpch::lineitem(30_000, 23);
        let compact = CompactLineitem::from_table(&t);
        let seq = tpch::q1_adaptive(&compact, 1024);
        let opts = ParallelOpts::on(&scheduler);
        assert_eq!(
            opts.effective_morsel_rows(),
            scheduler.morsel_rows(),
            "sentinel resolves to the elastic size"
        );
        for round in 0..4 {
            let par = q1_parallel_adaptive(&compact, 1024, opts).unwrap();
            assert!(
                exact_eq(&tpch::q1_adaptive(&compact, 1024), &par),
                "round {round} at morsel_rows={}",
                scheduler.morsel_rows()
            );
            assert!(exact_eq(&seq, &par));
            // Alternate grow/shrink pressure on the controller.
            let window = if round % 2 == 0 {
                adaptvm_parallel::ProfileWindow {
                    morsels: 32,
                    steals: 0,
                    trace_executions: 64,
                    fallbacks: 0,
                }
            } else {
                adaptvm_parallel::ProfileWindow {
                    morsels: 16,
                    steals: 8,
                    trace_executions: 0,
                    fallbacks: 8,
                }
            };
            scheduler.observe_window(&window);
        }
    }

    #[test]
    fn parallel_q6_shares_the_jit_across_morsels() {
        let t = tpch::lineitem(40_960, 2);
        let config = VmConfig {
            strategy: Strategy::CompiledPipeline,
            ..VmConfig::default()
        };
        let (_, report) = q6_parallel(
            &t,
            1000,
            config,
            ParallelOpts {
                workers: 4,
                morsel_rows: 8 * DEFAULT_CHUNK,
                ..ParallelOpts::default()
            },
        )
        .unwrap();
        // 5 equal-size morsels, one fragment each: ≥4 must be cache hits.
        assert_eq!(report.morsels, 5);
        assert!(
            report.trace_cache_hits >= 4,
            "shared cache must serve later morsels: {report:?}"
        );
    }

    #[test]
    fn q18_matches_reference_under_both_distributions() {
        for dist in [tpch::KeyDist::Uniform, tpch::KeyDist::Zipf] {
            let li = tpch::lineitem_q18(20_000, 500, dist, 7);
            let orders = tpch::orders(500, 7);
            let expected = tpch::q18_reference(&li, &orders, 900.0);
            assert!(!expected.is_empty(), "threshold must keep some groups");
            for workers in [1usize, 4] {
                let opts = ParallelOpts {
                    workers,
                    morsel_rows: 1024,
                    ..ParallelOpts::default()
                };
                let (rows, _) = q18_parallel(&li, &orders, 900.0, opts).unwrap();
                assert_eq!(rows.len(), expected.len());
                for (a, b) in rows.iter().zip(&expected) {
                    assert_eq!(a.o_orderkey, b.o_orderkey);
                    assert_eq!(a.o_orderdate, b.o_orderdate);
                    assert_eq!(a.line_count, b.line_count);
                    assert_eq!(a.total_qty.to_bits(), b.total_qty.to_bits());
                }
            }
        }
    }

    #[test]
    fn q9_matches_reference_under_both_distributions() {
        for dist in [tpch::KeyDist::Uniform, tpch::KeyDist::Zipf] {
            let data = tpch::q9_data(20_000, 200, 64, 8, dist, 11);
            let expected = tpch::q9_reference(&data);
            assert!(!expected.is_empty());
            for bloom in [false, true] {
                for workers in [1usize, 4] {
                    let opts = ParallelOpts {
                        workers,
                        morsel_rows: 512,
                        ..ParallelOpts::default()
                    };
                    let (rows, _) = q9_parallel(&data, 4096, bloom, 2, opts).unwrap();
                    assert_eq!(
                        rows, expected,
                        "dist={dist:?} bloom={bloom} workers={workers}"
                    );
                }
            }
        }
    }
}
