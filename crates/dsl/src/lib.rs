//! The `adaptvm` DSL (paper §II).
//!
//! A small language of **data-parallel skeletons** (Table I of the paper)
//! plus control flow and mutable state, sitting between front-ends (query
//! compilers, UDF languages) and the adaptive VM. The skeleton set:
//!
//! | Skeleton   | Purpose |
//! |------------|---------|
//! | `map`      | element-wise application of `f` on one or more arrays |
//! | `filter`   | element-wise selection with predicate `p` — computes a **selection vector**, does not move data |
//! | `fold`     | reduction with initial value and reduction function |
//! | `read`     | consecutive read from position `i` of a named buffer |
//! | `write`    | consecutive write to position `i` of a named buffer |
//! | `gather`   | random read at an index array |
//! | `scatter`  | random write at an index array with a conflict handler |
//! | `gen`      | fill an array from an index function |
//! | `condense` | physically eliminate a pending selection |
//! | `merge`    | abstract merge (join / union / diff / intersect) on sorted inputs |
//!
//! On top of the skeletons the language has expressions (constants,
//! function application, variables), control flow (infinite `loop`, `break`,
//! `if-then-else`), mutable variables (`mut`, `:=`) and `let … in` bindings
//! (§II, Fig. 2).
//!
//! The crate also implements the *transformations* the paper calls out:
//! deforestation/fusion, chunk-size manipulation (vectorized ↔
//! tuple-at-a-time ↔ column-at-a-time, footnote 1), lambda normalization
//! (§III-A), dependency-graph construction and the greedy partitioning of
//! §III-B / Fig. 3.

pub mod ast;
pub mod depgraph;
pub mod normalize;
pub mod oracle;
pub mod parser;
pub mod partition;
pub mod printer;
pub mod programs;
pub mod transform;
pub mod typecheck;
pub mod value;

pub use ast::{ConflictFn, Expr, FoldFn, Lambda, MergeKind, OpClass, Program, ScalarOp, Stmt};
pub use depgraph::{DepGraph, Node, NodeId};
pub use partition::{PartitionConfig, Partitioning, Region};
pub use value::{Value, Vector};

/// Errors produced by DSL analyses and transformations.
#[derive(Debug, Clone, PartialEq)]
pub enum DslError {
    /// Parse failure with position and message.
    Parse {
        /// Byte offset in the source.
        offset: usize,
        /// Human readable message.
        message: String,
    },
    /// Type error with message.
    Type(String),
    /// Reference to an unbound variable.
    Unbound(String),
    /// A transformation's precondition failed.
    Transform(String),
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DslError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            DslError::Type(m) => write!(f, "type error: {m}"),
            DslError::Unbound(v) => write!(f, "unbound variable: {v}"),
            DslError::Transform(m) => write!(f, "transform error: {m}"),
        }
    }
}

impl std::error::Error for DslError {}
