//! Abstract syntax of the DSL.
//!
//! The design follows §II: data-parallel *skeletons* over arrays (Table I),
//! scalar expressions with named operations usable inside lambdas, control
//! flow (infinite loop, break, if-then-else), mutable variables, `let … in`
//! bindings for sharing intermediates, and named function definitions.

use adaptvm_storage::scalar::{Scalar, ScalarType};

/// Scalar operations usable inside lambdas (and for loop control).
///
/// These are the "simpler operations" normalization breaks complex lambdas
/// into (§III-A) — each has a pre-compiled vectorized kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on integers).
    Div,
    /// Remainder.
    Rem,
    /// Square root (promotes to f64).
    Sqrt,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
    /// Logical not.
    Not,
    /// 64-bit hash (multiplicative).
    Hash,
    /// Cast to a target type.
    Cast(ScalarType),
    /// String length (a "non-trivial string operation" per §III-B — excluded
    /// from JIT fragments by the partitioner's default heuristics).
    StrLen,
    /// String concatenation (also excluded from fragments by default).
    Concat,
}

impl ScalarOp {
    /// Number of operands.
    pub fn arity(self) -> usize {
        match self {
            ScalarOp::Sqrt
            | ScalarOp::Abs
            | ScalarOp::Neg
            | ScalarOp::Not
            | ScalarOp::Hash
            | ScalarOp::Cast(_)
            | ScalarOp::StrLen => 1,
            _ => 2,
        }
    }

    /// True for comparison operators (result type `bool`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            ScalarOp::Eq | ScalarOp::Ne | ScalarOp::Lt | ScalarOp::Le | ScalarOp::Gt | ScalarOp::Ge
        )
    }

    /// True for the string operations the §III-B heuristics exclude from
    /// compiled fragments ("they hinder vectorization").
    pub fn is_string_op(self) -> bool {
        matches!(self, ScalarOp::StrLen | ScalarOp::Concat)
    }

    /// Stable lowercase name, used by the printer and kernel lookup.
    pub fn name(self) -> &'static str {
        match self {
            ScalarOp::Add => "add",
            ScalarOp::Sub => "sub",
            ScalarOp::Mul => "mul",
            ScalarOp::Div => "div",
            ScalarOp::Rem => "rem",
            ScalarOp::Sqrt => "sqrt",
            ScalarOp::Abs => "abs",
            ScalarOp::Neg => "neg",
            ScalarOp::Min => "min",
            ScalarOp::Max => "max",
            ScalarOp::Eq => "eq",
            ScalarOp::Ne => "ne",
            ScalarOp::Lt => "lt",
            ScalarOp::Le => "le",
            ScalarOp::Gt => "gt",
            ScalarOp::Ge => "ge",
            ScalarOp::And => "and",
            ScalarOp::Or => "or",
            ScalarOp::Not => "not",
            ScalarOp::Hash => "hash",
            ScalarOp::Cast(_) => "cast",
            ScalarOp::StrLen => "strlen",
            ScalarOp::Concat => "concat",
        }
    }
}

/// A lambda: parameter names and a scalar-expression body.
///
/// Lambdas appear in `map`, `filter`, `gen` and `fold`. Their bodies are
/// *scalar* expressions over the parameters (plus captured `let`-bound
/// scalars) — the vectorized interpreter lifts them element-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Parameter names.
    pub params: Vec<String>,
    /// Scalar body over `params` (uses only `Const` / `Var` / `Apply`).
    pub body: Box<Expr>,
}

impl Lambda {
    /// Convenience constructor.
    pub fn new(params: Vec<&str>, body: Expr) -> Lambda {
        Lambda {
            params: params.into_iter().map(String::from).collect(),
            body: Box::new(body),
        }
    }

    /// True when the body is a single operation over variables/constants —
    /// the *normal form* the interpreter's kernel lookup requires (§III-A).
    pub fn is_normalized(&self) -> bool {
        match self.body.as_ref() {
            Expr::Var(_) | Expr::Const(_) => true,
            Expr::Apply(_, args) => args
                .iter()
                .all(|a| matches!(a, Expr::Var(_) | Expr::Const(_))),
            _ => false,
        }
    }
}

/// Built-in reduction functions for `fold`.
///
/// Folds carry a named reduction rather than a free lambda so the kernel
/// library can dispatch to specialized (and reassociable, hence
/// SIMD/parallel-safe) implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FoldFn {
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of elements (ignores values).
    Count,
    /// Logical all (bool input).
    All,
    /// Logical any (bool input).
    Any,
}

impl FoldFn {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FoldFn::Sum => "sum",
            FoldFn::Min => "min",
            FoldFn::Max => "max",
            FoldFn::Count => "count",
            FoldFn::All => "all",
            FoldFn::Any => "any",
        }
    }
}

/// The merge flavors of Table I's abstract `merge` skeleton.
///
/// All operate on **sorted** inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeKind {
    /// Sorted union (duplicates preserved, as in merge sort).
    Union,
    /// Values present in both inputs (MergeJoin's key intersection).
    Intersect,
    /// Values of the left input not present in the right (MergeDiff).
    Diff,
    /// For each match, the index in the *left* input (MergeJoin build side).
    JoinLeftIdx,
    /// For each match, the index in the *right* input (MergeJoin probe side).
    JoinRightIdx,
}

impl MergeKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            MergeKind::Union => "union",
            MergeKind::Intersect => "intersect",
            MergeKind::Diff => "diff",
            MergeKind::JoinLeftIdx => "join_left",
            MergeKind::JoinRightIdx => "join_right",
        }
    }
}

/// Conflict handling for `scatter` when two lanes write the same location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictFn {
    /// Last writer (in index order) wins.
    LastWins,
    /// Add into the target (used for scatter-aggregation).
    Add,
    /// Keep the minimum.
    Min,
    /// Keep the maximum.
    Max,
}

/// Expressions: scalar expressions *and* data-parallel skeleton
/// applications. Scalars are arrays of length one (§II), so both live in
/// one syntactic category; the type checker distinguishes them.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant scalar.
    Const(Scalar),
    /// A variable reference (let-bound, mutable, or lambda parameter).
    Var(String),
    /// Scalar function application (inside lambdas, or on scalar operands).
    Apply(ScalarOp, Vec<Expr>),
    /// Length of the array an expression evaluates to.
    Len(Box<Expr>),
    /// `map f v…` — element-wise application over one or more equal-length
    /// arrays.
    Map {
        /// The per-element function.
        f: Lambda,
        /// Input arrays (arity must match `f.params`).
        inputs: Vec<Expr>,
    },
    /// `filter p v…` — attach a selection vector; does **not** move data.
    ///
    /// The selection attaches to the *first* input (the flow carrier).
    /// Additional inputs exist so normalization can hoist complex predicate
    /// arithmetic into preceding `map`s and still select the original flow:
    /// `filter (\x -> 2*x+1 > 3) a` normalizes to
    /// `let d = map (\x -> 2*x+1) a in filter (\x d -> d > 3) a d`.
    Filter {
        /// The predicate (arity = number of inputs; selection is computed
        /// from the predicate, applied to `inputs[0]`).
        p: Lambda,
        /// Flow carrier first, then derived predicate operands.
        inputs: Vec<Expr>,
    },
    /// `fold r i v` — reduce `v` with `r`, starting from `i`.
    Fold {
        /// The reduction function.
        r: FoldFn,
        /// Initial value.
        init: Box<Expr>,
        /// The input array.
        input: Box<Expr>,
    },
    /// `read i d` — consecutive read of up to one chunk from buffer `d`
    /// starting at position `i`.
    Read {
        /// Start position (scalar).
        pos: Box<Expr>,
        /// Named source buffer.
        data: String,
        /// Maximum elements to read; `None` means the engine's chunk size.
        len: Option<Box<Expr>>,
    },
    /// `gather is d` — read buffer `d` at the index array `is`.
    Gather {
        /// Index array.
        indices: Box<Expr>,
        /// Named source buffer.
        data: String,
    },
    /// `gen f n` — build an array of length `n` with `f(0..n)`.
    Gen {
        /// The index function.
        f: Lambda,
        /// Length (scalar).
        len: Box<Expr>,
    },
    /// `condense v` — physically eliminate the pending selection.
    Condense(Box<Expr>),
    /// `merge kind l r` — abstract merge on sorted arrays.
    Merge {
        /// Which merge.
        kind: MergeKind,
        /// Left sorted input.
        left: Box<Expr>,
        /// Right sorted input.
        right: Box<Expr>,
    },
}

/// Statements (§II: state maintenance, assignments, control flow, writes).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `mut x` — declare a mutable variable.
    DeclareMut {
        /// Variable name.
        name: String,
    },
    /// `x := e` — assign to a mutable variable.
    Assign {
        /// Target variable.
        name: String,
        /// Value.
        expr: Expr,
    },
    /// `let x = e in { body }` — bind an immutable intermediate.
    Let {
        /// Bound name.
        name: String,
        /// Bound expression.
        expr: Expr,
        /// Statements with `name` in scope.
        body: Vec<Stmt>,
    },
    /// `write d i v` — consecutive write of `v` into buffer `d` at `i`.
    Write {
        /// Named target buffer.
        target: String,
        /// Start position (scalar).
        pos: Expr,
        /// Values to write.
        value: Expr,
    },
    /// `scatter d is v conflict` — random write with conflict handling.
    Scatter {
        /// Named target buffer.
        target: String,
        /// Index array.
        indices: Expr,
        /// Values to write.
        value: Expr,
        /// Conflict resolution.
        conflict: ConflictFn,
    },
    /// `loop { body }` — infinite loop, exits via `break`.
    Loop(Vec<Stmt>),
    /// `break` — exit the innermost loop.
    Break,
    /// `if c then { … } else { … }`.
    If {
        /// Scalar boolean condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
    },
    /// Evaluate an expression for effect (rare; kept for completeness).
    ExprStmt(Expr),
}

/// A named function definition (§II: "function definitions").
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements; the function's value is its final `Assign` to
    /// `result` or is used purely for effects on buffers.
    pub body: Vec<Stmt>,
}

/// A whole program: optional function definitions plus a statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Named functions (callable from front-ends; not via `Apply`).
    pub funcs: Vec<FuncDef>,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// A program from statements only.
    pub fn new(stmts: Vec<Stmt>) -> Program {
        Program {
            funcs: Vec::new(),
            stmts,
        }
    }
}

/// Coarse operation classes used by cost estimation and the §III-B
/// partitioning heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `map` (and `gen`).
    Map,
    /// `filter` — excluded from fused fragments by default (§III-B).
    Filter,
    /// `fold`.
    Fold,
    /// `read`.
    Read,
    /// `write`.
    Write,
    /// `gather` / `scatter` (random access).
    Random,
    /// `condense`.
    Condense,
    /// `merge`.
    Merge,
    /// Non-trivial string operation — excluded from fragments (§III-B).
    StringOp,
    /// Scalar-only computation.
    Scalar,
}

impl Expr {
    /// The coarse class of the *outermost* operation.
    pub fn op_class(&self) -> OpClass {
        match self {
            Expr::Map { f, .. } => {
                if lambda_uses_string_op(f) {
                    OpClass::StringOp
                } else {
                    OpClass::Map
                }
            }
            Expr::Gen { .. } => OpClass::Map,
            Expr::Filter { .. } => OpClass::Filter,
            Expr::Fold { .. } => OpClass::Fold,
            Expr::Read { .. } => OpClass::Read,
            Expr::Gather { .. } => OpClass::Random,
            Expr::Condense(_) => OpClass::Condense,
            Expr::Merge { .. } => OpClass::Merge,
            Expr::Const(_) | Expr::Var(_) | Expr::Apply(..) | Expr::Len(_) => OpClass::Scalar,
        }
    }

    /// Free variables of the expression (lambda parameters are bound).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                if !bound.contains(v) && !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Apply(_, args) => {
                for a in args {
                    a.collect_free(bound, out);
                }
            }
            Expr::Len(e) | Expr::Condense(e) => e.collect_free(bound, out),
            Expr::Map { f, inputs } => {
                for i in inputs {
                    i.collect_free(bound, out);
                }
                let n = bound.len();
                bound.extend(f.params.iter().cloned());
                f.body.collect_free(bound, out);
                bound.truncate(n);
            }
            Expr::Filter { p, inputs } => {
                for i in inputs {
                    i.collect_free(bound, out);
                }
                let n = bound.len();
                bound.extend(p.params.iter().cloned());
                p.body.collect_free(bound, out);
                bound.truncate(n);
            }
            Expr::Fold { init, input, .. } => {
                init.collect_free(bound, out);
                input.collect_free(bound, out);
            }
            Expr::Read { pos, len, .. } => {
                pos.collect_free(bound, out);
                if let Some(l) = len {
                    l.collect_free(bound, out);
                }
            }
            Expr::Gather { indices, .. } => indices.collect_free(bound, out),
            Expr::Gen { f, len } => {
                len.collect_free(bound, out);
                let n = bound.len();
                bound.extend(f.params.iter().cloned());
                f.body.collect_free(bound, out);
                bound.truncate(n);
            }
            Expr::Merge { left, right, .. } => {
                left.collect_free(bound, out);
                right.collect_free(bound, out);
            }
        }
    }

    /// Static cost estimate for one evaluation over a chunk, in abstract
    /// units. Used to seed the §III-B partitioner before profile feedback
    /// replaces it with measured costs.
    pub fn static_cost(&self) -> f64 {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0.0,
            Expr::Len(_) => 0.1,
            Expr::Apply(op, args) => {
                let inner: f64 = args.iter().map(Expr::static_cost).sum();
                let own = match op {
                    ScalarOp::Div | ScalarOp::Rem | ScalarOp::Sqrt => 4.0,
                    ScalarOp::Hash => 2.0,
                    op if op.is_string_op() => 8.0,
                    _ => 1.0,
                };
                own + inner
            }
            Expr::Map { f, inputs } => {
                2.0 + f.body.static_cost() + inputs.iter().map(Expr::static_cost).sum::<f64>()
            }
            Expr::Gen { f, .. } => 2.0 + f.body.static_cost(),
            Expr::Filter { p, inputs } => {
                3.0 + p.body.static_cost() + inputs.iter().map(Expr::static_cost).sum::<f64>()
            }
            Expr::Fold { init, input, .. } => 2.0 + init.static_cost() + input.static_cost(),
            Expr::Read { .. } => 1.0,
            Expr::Gather { indices, .. } => 4.0 + indices.static_cost(),
            Expr::Condense(e) => 2.0 + e.static_cost(),
            Expr::Merge { left, right, .. } => 6.0 + left.static_cost() + right.static_cost(),
        }
    }
}

fn lambda_uses_string_op(f: &Lambda) -> bool {
    fn walk(e: &Expr) -> bool {
        match e {
            Expr::Apply(op, args) => op.is_string_op() || args.iter().any(walk),
            _ => false,
        }
    }
    walk(&f.body)
}

/// Builder helpers for constructing programs in Rust (used by tests,
/// examples and the relational layer's lowering).
pub mod build {
    use super::*;

    /// Integer constant.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Scalar::I64(v))
    }

    /// Float constant.
    pub fn float(v: f64) -> Expr {
        Expr::Const(Scalar::F64(v))
    }

    /// Boolean constant.
    pub fn boolean(v: bool) -> Expr {
        Expr::Const(Scalar::Bool(v))
    }

    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Binary scalar application.
    pub fn bin(op: ScalarOp, l: Expr, r: Expr) -> Expr {
        Expr::Apply(op, vec![l, r])
    }

    /// Unary scalar application.
    pub fn un(op: ScalarOp, e: Expr) -> Expr {
        Expr::Apply(op, vec![e])
    }

    /// `map` skeleton.
    pub fn map(f: Lambda, inputs: Vec<Expr>) -> Expr {
        Expr::Map { f, inputs }
    }

    /// `filter` skeleton over a single flow input.
    pub fn filter(p: Lambda, input: Expr) -> Expr {
        Expr::Filter {
            p,
            inputs: vec![input],
        }
    }

    /// `filter` skeleton over a flow carrier plus derived inputs.
    pub fn filter_multi(p: Lambda, inputs: Vec<Expr>) -> Expr {
        Expr::Filter { p, inputs }
    }

    /// `fold` skeleton.
    pub fn fold(r: FoldFn, init: Expr, input: Expr) -> Expr {
        Expr::Fold {
            r,
            init: Box::new(init),
            input: Box::new(input),
        }
    }

    /// `read` skeleton (engine chunk size).
    pub fn read(pos: Expr, data: &str) -> Expr {
        Expr::Read {
            pos: Box::new(pos),
            data: data.to_string(),
            len: None,
        }
    }

    /// `gather` skeleton.
    pub fn gather(indices: Expr, data: &str) -> Expr {
        Expr::Gather {
            indices: Box::new(indices),
            data: data.to_string(),
        }
    }

    /// `gen` skeleton.
    pub fn gen(f: Lambda, len: Expr) -> Expr {
        Expr::Gen {
            f,
            len: Box::new(len),
        }
    }

    /// `condense` skeleton.
    pub fn condense(e: Expr) -> Expr {
        Expr::Condense(Box::new(e))
    }

    /// `merge` skeleton.
    pub fn merge(kind: MergeKind, left: Expr, right: Expr) -> Expr {
        Expr::Merge {
            kind,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `let name = expr in { body }`.
    pub fn let_in(name: &str, expr: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::Let {
            name: name.to_string(),
            expr,
            body,
        }
    }

    /// `mut name`.
    pub fn declare_mut(name: &str) -> Stmt {
        Stmt::DeclareMut {
            name: name.to_string(),
        }
    }

    /// `name := expr`.
    pub fn assign(name: &str, expr: Expr) -> Stmt {
        Stmt::Assign {
            name: name.to_string(),
            expr,
        }
    }

    /// `write target pos value`.
    pub fn write(target: &str, pos: Expr, value: Expr) -> Stmt {
        Stmt::Write {
            target: target.to_string(),
            pos,
            value,
        }
    }

    /// One-parameter lambda.
    pub fn lam1(param: &str, body: Expr) -> Lambda {
        Lambda::new(vec![param], body)
    }

    /// Two-parameter lambda.
    pub fn lam2(p1: &str, p2: &str, body: Expr) -> Lambda {
        Lambda::new(vec![p1, p2], body)
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn arity_and_classes() {
        assert_eq!(ScalarOp::Add.arity(), 2);
        assert_eq!(ScalarOp::Sqrt.arity(), 1);
        assert!(ScalarOp::Lt.is_comparison());
        assert!(!ScalarOp::Add.is_comparison());
        assert!(ScalarOp::StrLen.is_string_op());
    }

    #[test]
    fn normal_form_detection() {
        let simple = lam1("x", bin(ScalarOp::Mul, int(2), var("x")));
        assert!(simple.is_normalized());
        let nested = lam1(
            "x",
            un(ScalarOp::Sqrt, bin(ScalarOp::Add, var("x"), int(1))),
        );
        assert!(!nested.is_normalized());
        let identity = lam1("x", var("x"));
        assert!(identity.is_normalized());
    }

    #[test]
    fn free_vars_respect_binding() {
        // map (\x -> x + y) input : free are input's vars plus y.
        let e = map(
            lam1("x", bin(ScalarOp::Add, var("x"), var("y"))),
            vec![var("input")],
        );
        let mut fv = e.free_vars();
        fv.sort();
        assert_eq!(fv, vec!["input".to_string(), "y".to_string()]);
    }

    #[test]
    fn free_vars_of_read_and_write_exprs() {
        let e = read(var("i"), "some_data");
        assert_eq!(e.free_vars(), vec!["i".to_string()]);
        let e = gather(var("is"), "d");
        assert_eq!(e.free_vars(), vec!["is".to_string()]);
    }

    #[test]
    fn op_class_of_string_map_is_string() {
        let e = map(lam1("s", un(ScalarOp::StrLen, var("s"))), vec![var("v")]);
        assert_eq!(e.op_class(), OpClass::StringOp);
        let e = map(lam1("x", var("x")), vec![var("v")]);
        assert_eq!(e.op_class(), OpClass::Map);
    }

    #[test]
    fn static_cost_orders_ops_sensibly() {
        let cheap = map(
            lam1("x", bin(ScalarOp::Add, var("x"), int(1))),
            vec![var("v")],
        );
        let pricey = map(lam1("x", un(ScalarOp::Sqrt, var("x"))), vec![var("v")]);
        assert!(pricey.static_cost() > cheap.static_cost());
        assert!(read(int(0), "d").static_cost() < cheap.static_cost());
    }
}
