//! Greedy dependency-graph partitioning (§III-B, Fig. 3).
//!
//! The paper's algorithm, verbatim: *"Starting with an initially empty set
//! of functions R, we go over the graph and select the most expensive node
//! (operation). From this node we greedily add neighbor nodes until one of
//! our heuristic constraints is violated. … All newly marked nodes belong
//! to one function f and we add f to R. Afterwards, we go to the next
//! expensive (unvisited) node and do the same. This ends when either a
//! threshold is reached or no nodes can be visited. The remaining nodes can
//! either be compiled or interpreted."*
//!
//! Heuristic constraints (§III-B):
//! * **TLB width** — at most `max_io` distinct inputs/intermediates per
//!   function, "whereas n depends on the size of the Translation look-aside
//!   buffer. This prevents TLB thrashing in the generated functions."
//! * **Barrier operations** — "we do not allow to include some operations
//!   inside functions, such as `filter`s" and non-trivial string operations.
//!   Note Fig. 3 *does* show `filter → condense → write w` as one
//!   compilable function: a barrier operation may **seed** (head) a region
//!   and grow downstream, but may never be pulled *into* a region grown
//!   from elsewhere. [`BarrierMode`] makes the stricter reading available.

use std::collections::HashSet;

use crate::ast::OpClass;
use crate::depgraph::{DepGraph, NodeId};

/// How barrier operations (filters, string ops) participate in regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierMode {
    /// A barrier node may seed its own region and grow downstream
    /// (reproduces Fig. 3). The default.
    SeedOnly,
    /// Barrier nodes are never part of any region (strict reading of the
    /// §III-B text); they stay interpreted.
    Exclude,
}

/// Configuration of the greedy partitioner.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Maximum distinct inputs + intermediates + buffers per function
    /// (the TLB-size heuristic).
    pub max_io: usize,
    /// Operation classes treated as barriers.
    pub barriers: HashSet<OpClass>,
    /// Operation classes never compiled at all (always interpreted).
    pub excluded: HashSet<OpClass>,
    /// Stop after this many regions (the paper's "threshold").
    pub max_regions: usize,
    /// Regions with total cost below this stay interpreted (compiling them
    /// cannot pay off).
    pub min_region_cost: f64,
    /// Barrier behaviour.
    pub barrier_mode: BarrierMode,
}

impl Default for PartitionConfig {
    fn default() -> PartitionConfig {
        PartitionConfig {
            max_io: 8,
            barriers: [OpClass::Filter].into_iter().collect(),
            excluded: [OpClass::StringOp].into_iter().collect(),
            max_regions: 16,
            min_region_cost: 0.0,
            barrier_mode: BarrierMode::SeedOnly,
        }
    }
}

impl PartitionConfig {
    /// A config with a specific TLB width.
    pub fn with_max_io(max_io: usize) -> PartitionConfig {
        PartitionConfig {
            max_io,
            ..PartitionConfig::default()
        }
    }
}

/// One compilable function: a connected set of nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Member nodes, in the order they were added (seed first).
    pub nodes: Vec<NodeId>,
    /// The seed (most expensive node at selection time).
    pub seed: NodeId,
    /// Total cost of the members.
    pub cost: f64,
}

impl Region {
    /// Member count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the region is empty (never produced by the partitioner).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The partitioner's result: compilable regions plus the interpreted rest.
#[derive(Debug, Clone, Default)]
pub struct Partitioning {
    /// Compilable functions, in discovery order.
    pub regions: Vec<Region>,
    /// Nodes left to the interpreter.
    pub interpreted: Vec<NodeId>,
}

impl Partitioning {
    /// The region containing `id`, if any.
    pub fn region_of(&self, id: NodeId) -> Option<usize> {
        self.regions.iter().position(|r| r.nodes.contains(&id))
    }
}

/// Run the greedy partitioning of §III-B.
pub fn partition(g: &DepGraph, cfg: &PartitionConfig) -> Partitioning {
    let mut visited = vec![false; g.len()];
    let mut result = Partitioning::default();

    loop {
        if result.regions.len() >= cfg.max_regions {
            break;
        }
        // "Select the most expensive (unvisited) node." Ties break on the
        // lower id for determinism.
        let seed = match g
            .nodes()
            .iter()
            .filter(|n| !visited[n.id] && !cfg.excluded.contains(&n.class))
            .max_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .expect("costs are finite")
                    .then(b.id.cmp(&a.id))
            }) {
            Some(n) => n.id,
            None => break,
        };
        let seed_is_barrier = cfg.barriers.contains(&g.node(seed).class);
        if seed_is_barrier && cfg.barrier_mode == BarrierMode::Exclude {
            visited[seed] = true;
            result.interpreted.push(seed);
            continue;
        }

        visited[seed] = true;
        let mut region = vec![seed];

        // "From this node we greedily add neighbor nodes until one of our
        // heuristic constraints is violated."
        loop {
            let mut candidates: Vec<NodeId> = Vec::new();
            for &m in &region {
                let nbrs: Vec<NodeId> = if seed_is_barrier {
                    // A barrier-seeded region grows downstream only: the
                    // barrier heads the function, nothing is computed
                    // before it.
                    g.consumers(m).to_vec()
                } else {
                    g.neighbors(m)
                };
                for nb in nbrs {
                    if !visited[nb]
                        && !region.contains(&nb)
                        && !candidates.contains(&nb)
                        && !cfg.barriers.contains(&g.node(nb).class)
                        && !cfg.excluded.contains(&g.node(nb).class)
                    {
                        candidates.push(nb);
                    }
                }
            }
            // Most expensive candidate first (greedy), ties on lower id.
            candidates.sort_by(|&a, &b| {
                g.node(b)
                    .cost
                    .partial_cmp(&g.node(a).cost)
                    .expect("costs are finite")
                    .then(a.cmp(&b))
            });
            let mut grew = false;
            for cand in candidates {
                let mut attempt = region.clone();
                attempt.push(cand);
                if g.io_count(&attempt) <= cfg.max_io {
                    region.push(cand);
                    visited[cand] = true;
                    grew = true;
                    break; // re-derive the frontier
                }
            }
            if !grew {
                break;
            }
        }

        let cost: f64 = region.iter().map(|&id| g.node(id).cost).sum();
        if !region.is_empty() && cost >= cfg.min_region_cost {
            result.regions.push(Region {
                seed,
                nodes: region,
                cost,
            });
        } else {
            result.interpreted.extend(region);
        }
    }

    for n in g.nodes() {
        if !visited[n.id] {
            result.interpreted.push(n.id);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use std::collections::HashMap;

    fn fig2_graph() -> DepGraph {
        let p = programs::fig2_example();
        DepGraph::from_stmts(programs::loop_body(&p).unwrap())
    }

    fn labels(g: &DepGraph, ids: &[NodeId]) -> Vec<String> {
        let mut v: Vec<String> = ids.iter().map(|&i| g.node(i).label.clone()).collect();
        v.sort();
        v
    }

    /// The headline Fig. 3 test: the Fig. 2 iteration partitions into
    /// exactly the two compilable functions the paper draws.
    #[test]
    fn fig3_partition() {
        let g = fig2_graph();
        let parts = partition(&g, &PartitionConfig::default());
        assert_eq!(parts.regions.len(), 2, "{parts:?}");
        assert!(parts.interpreted.is_empty());
        let mut regions: Vec<Vec<String>> =
            parts.regions.iter().map(|r| labels(&g, &r.nodes)).collect();
        regions.sort();
        assert_eq!(
            regions,
            vec![
                vec![
                    "condense".to_string(),
                    "filter".to_string(),
                    "write w".to_string()
                ],
                vec![
                    "map (\\x -> …)".to_string(),
                    "read some_data".to_string(),
                    "write v".to_string()
                ],
            ]
        );
    }

    #[test]
    fn fig3_filter_heads_its_region() {
        let g = fig2_graph();
        let parts = partition(&g, &PartitionConfig::default());
        let filter_region = parts
            .regions
            .iter()
            .find(|r| labels(&g, &r.nodes).contains(&"filter".to_string()))
            .unwrap();
        assert_eq!(g.node(filter_region.seed).label, "filter");
        assert_eq!(filter_region.nodes[0], filter_region.seed);
    }

    #[test]
    fn exclude_mode_interprets_filters() {
        let g = fig2_graph();
        let cfg = PartitionConfig {
            barrier_mode: BarrierMode::Exclude,
            ..PartitionConfig::default()
        };
        let parts = partition(&g, &cfg);
        let interpreted = labels(&g, &parts.interpreted);
        assert!(
            interpreted.contains(&"filter".to_string()),
            "{interpreted:?}"
        );
        // No region contains the filter.
        for r in &parts.regions {
            assert!(!labels(&g, &r.nodes).contains(&"filter".to_string()));
        }
    }

    #[test]
    fn tlb_constraint_limits_region_width() {
        let g = fig2_graph();
        // max_io = 2 is too narrow to fuse read+map+write (3 names).
        let parts = partition(&g, &PartitionConfig::with_max_io(2));
        for r in &parts.regions {
            assert!(g.io_count(&r.nodes) <= 2, "region too wide: {r:?}");
        }
        // Wider budget merges more.
        let wide = partition(&g, &PartitionConfig::with_max_io(16));
        let max_region = wide.regions.iter().map(Region::len).max().unwrap();
        let max_narrow = parts.regions.iter().map(Region::len).max().unwrap();
        assert!(max_region >= max_narrow);
    }

    #[test]
    fn max_regions_threshold_stops_early() {
        let g = fig2_graph();
        let cfg = PartitionConfig {
            max_regions: 1,
            ..PartitionConfig::default()
        };
        let parts = partition(&g, &cfg);
        assert_eq!(parts.regions.len(), 1);
        // Everything else is interpreted.
        assert_eq!(parts.regions[0].len() + parts.interpreted.len(), g.len());
    }

    #[test]
    fn min_region_cost_falls_back_to_interpretation() {
        let g = fig2_graph();
        let cfg = PartitionConfig {
            min_region_cost: 1e9,
            ..PartitionConfig::default()
        };
        let parts = partition(&g, &cfg);
        assert!(parts.regions.is_empty());
        assert_eq!(parts.interpreted.len(), g.len());
    }

    #[test]
    fn profile_costs_change_seeding() {
        let mut g = fig2_graph();
        // Make the condense hugely expensive; it must become a seed.
        let mut costs = HashMap::new();
        costs.insert("b".to_string(), 1000.0); // condense binds b
        g.apply_costs(&costs);
        let parts = partition(&g, &PartitionConfig::default());
        let seeds: Vec<String> = parts
            .regions
            .iter()
            .map(|r| g.node(r.seed).label.clone())
            .collect();
        assert!(seeds.contains(&"condense".to_string()), "{seeds:?}");
    }

    #[test]
    fn every_node_is_placed_exactly_once() {
        let g = fig2_graph();
        for max_io in [1, 2, 3, 4, 8, 64] {
            let parts = partition(&g, &PartitionConfig::with_max_io(max_io));
            let mut seen = vec![0usize; g.len()];
            for r in &parts.regions {
                for &n in &r.nodes {
                    seen[n] += 1;
                }
            }
            for &n in &parts.interpreted {
                seen[n] += 1;
            }
            assert!(seen.iter().all(|&c| c == 1), "max_io={max_io}: {seen:?}");
        }
    }

    #[test]
    fn string_ops_always_interpreted() {
        use crate::parser::parse_program;
        let p = parse_program(
            "let a = read 0 names in { let l = map (\\s -> strlen(s)) a in { write out 0 l } }",
        )
        .unwrap();
        let g = DepGraph::from_stmts(&p.stmts);
        let parts = partition(&g, &PartitionConfig::default());
        let interp = labels(&g, &parts.interpreted);
        assert!(
            interp.iter().any(|l| l.starts_with("map")),
            "string map should be interpreted: {interp:?}"
        );
    }

    #[test]
    fn empty_graph_partitions_empty() {
        let g = DepGraph::from_stmts(&[]);
        let parts = partition(&g, &PartitionConfig::default());
        assert!(parts.regions.is_empty());
        assert!(parts.interpreted.is_empty());
    }
}
