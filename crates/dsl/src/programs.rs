//! Canned DSL programs used across tests, examples and experiments.

use crate::ast::build::*;
use crate::ast::{Expr, FoldFn, Program, ScalarOp, Stmt};
use crate::parser::parse_program;

/// The paper's Fig. 2 example, verbatim (chunked loop over `some_data`,
/// doubling into `v` and writing the positive doubles into `w`).
///
/// Buffers: reads `some_data`, writes `v` and `w`. Stops after 4096 input
/// elements.
pub fn fig2_example() -> Program {
    fig2_with_limit(4096)
}

/// Fig. 2 with a configurable input limit (the paper uses 4096).
pub fn fig2_with_limit(limit: i64) -> Program {
    let src = format!(
        r#"
        mut i
        mut k
        i := 0
        k := 0
        loop {{
          let input = read i some_data in {{
            let a = map (\x -> 2 * x) input in {{
              let t = filter (\x -> x > 0) a in {{
                let b = condense t in {{
                  write v i a
                  write w k b
                  i := i + len(a)
                  k := k + len(b)
                }}
              }}
            }}
          }}
          if i >= {limit} then {{ break }}
        }}
        "#
    );
    parse_program(&src).expect("fig2 source is well-formed")
}

/// The §III-A normalization example: `f(a,b) = sqrt(a² + b²)` mapped over
/// two buffers, written to `out`. Whole-array form (no chunk loop) — feed it
/// to [`crate::transform::vectorize`] to obtain the chunked version.
pub fn hypot_whole_array() -> Program {
    parse_program(
        r#"
        let a = read 0 xs in {
          let b = read 0 ys in {
            let h = map (\p q -> sqrt(p * p + q * q)) a b in {
              write out 0 h
            }
          }
        }
        "#,
    )
    .expect("hypot source is well-formed")
}

/// SAXPY: `out[i] = alpha * x[i] + y[i]` over full buffers, chunked.
pub fn saxpy(alpha: i64, n: i64) -> Program {
    let src = format!(
        r#"
        mut i
        i := 0
        loop {{
          let x = read i xs in {{
            let y = read i ys in {{
              let r = map (\p q -> {alpha} * p + q) x y in {{
                write out i r
                i := i + len(x)
              }}
            }}
          }}
          if i >= {n} then {{ break }}
        }}
        "#
    );
    parse_program(&src).expect("saxpy source is well-formed")
}

/// Selective aggregation: sum of `2*x` for `x > threshold`, chunked.
/// Accumulates into mutable `acc`; used by the selectivity experiments.
pub fn filter_sum(threshold: i64, n: i64) -> Program {
    let src = format!(
        r#"
        mut i
        mut acc
        i := 0
        acc := 0
        loop {{
          let input = read i xs in {{
            let t = filter (\x -> x > {threshold}) input in {{
              let b = condense t in {{
                let d = map (\x -> 2 * x) b in {{
                  let s = fold sum 0 d in {{
                    acc := acc + s
                    i := i + len(input)
                  }}
                }}
              }}
            }}
          }}
          if i >= {n} then {{ break }}
        }}
        "#
    );
    parse_program(&src).expect("filter_sum source is well-formed")
}

/// A longer straight-line map chain (for fusion/deforestation experiments):
/// `out = (((x*2)+3)*5)-1`, written per chunk.
pub fn map_chain(n: i64) -> Program {
    let src = format!(
        r#"
        mut i
        i := 0
        loop {{
          let x = read i xs in {{
            let a = map (\v -> v * 2) x in {{
              let b = map (\v -> v + 3) a in {{
                let c = map (\v -> v * 5) b in {{
                  let d = map (\v -> v - 1) c in {{
                    write out i d
                    i := i + len(x)
                  }}
                }}
              }}
            }}
          }}
          if i >= {n} then {{ break }}
        }}
        "#
    );
    parse_program(&src).expect("map_chain source is well-formed")
}

/// Reference semantics of Fig. 2 computed directly in Rust: returns
/// `(v, w)` for the first `limit` elements of `data`.
pub fn fig2_reference(data: &[i64], limit: usize) -> (Vec<i64>, Vec<i64>) {
    let n = data.len().min(limit);
    let v: Vec<i64> = data[..n].iter().map(|&x| 2 * x).collect();
    let w: Vec<i64> = v.iter().copied().filter(|&x| x > 0).collect();
    (v, w)
}

/// Reference semantics of [`filter_sum`].
pub fn filter_sum_reference(data: &[i64], threshold: i64, limit: usize) -> i64 {
    data[..data.len().min(limit)]
        .iter()
        .filter(|&&x| x > threshold)
        .map(|&x| 2 * x)
        .sum()
}

/// Reference semantics of [`map_chain`].
pub fn map_chain_reference(data: &[i64], limit: usize) -> Vec<i64> {
    data[..data.len().min(limit)]
        .iter()
        .map(|&x| (((x * 2) + 3) * 5) - 1)
        .collect()
}

/// Extract the loop-body statements of a single-loop program like Fig. 2.
/// Returns `None` when the program has no top-level loop.
pub fn loop_body(p: &Program) -> Option<&Vec<Stmt>> {
    p.stmts.iter().find_map(|s| match s {
        Stmt::Loop(body) => Some(body),
        _ => None,
    })
}

/// Build a simple one-`let` program: `let r = <expr> in { write out 0 r }`.
pub fn expr_program(e: Expr) -> Program {
    Program::new(vec![let_in("r", e, vec![write("out", int(0), var("r"))])])
}

/// A whole-array sum-of-squares program used by transform tests.
pub fn sum_of_squares() -> Program {
    Program::new(vec![let_in(
        "x",
        read(int(0), "xs"),
        vec![let_in(
            "sq",
            map(
                lam1("v", bin(ScalarOp::Mul, var("v"), var("v"))),
                vec![var("x")],
            ),
            vec![let_in(
                "s",
                fold(FoldFn::Sum, int(0), var("sq")),
                vec![Stmt::Assign {
                    name: "result".into(),
                    expr: var("s"),
                }],
            )],
        )],
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;

    #[test]
    fn fig2_shape() {
        let p = fig2_example();
        assert_eq!(p.stmts.len(), 5);
        let body = loop_body(&p).expect("has a loop");
        assert_eq!(body.len(), 2);
        assert!(matches!(&body[0], Stmt::Let { name, .. } if name == "input"));
        assert!(matches!(&body[1], Stmt::If { .. }));
    }

    #[test]
    fn fig2_reference_semantics() {
        let data = vec![1i64, -2, 3, -4];
        let (v, w) = fig2_reference(&data, 4);
        assert_eq!(v, vec![2, -4, 6, -8]);
        assert_eq!(w, vec![2, 6]);
        // Limit truncates.
        let (v, _) = fig2_reference(&data, 2);
        assert_eq!(v, vec![2, -4]);
    }

    #[test]
    fn canned_programs_parse() {
        let _ = hypot_whole_array();
        let _ = saxpy(3, 1000);
        let _ = filter_sum(0, 1000);
        let _ = map_chain(1000);
        let _ = sum_of_squares();
    }

    #[test]
    #[allow(clippy::identity_op)] // the chain mirrors map_chain's ops
    fn references_are_consistent() {
        let data: Vec<i64> = (-10..10).collect();
        assert_eq!(
            filter_sum_reference(&data, 0, data.len()),
            data.iter().filter(|&&x| x > 0).map(|x| 2 * x).sum::<i64>()
        );
        assert_eq!(map_chain_reference(&[1], 1), vec![(((1 * 2) + 3) * 5) - 1]);
    }
}
