//! Bidirectional type checker for DSL programs.
//!
//! Types are either scalars or arrays of scalars (`§II`: "these skeletons
//! operate on arrays of data … scalar values can be seen as arrays with
//! length 1"). The checker propagates element types through skeletons,
//! infers lambda parameter types from the inputs, and validates buffer
//! reads/writes against a buffer environment.

use std::collections::HashMap;

use adaptvm_storage::scalar::ScalarType;

use crate::ast::{Expr, FoldFn, Lambda, MergeKind, Program, ScalarOp, Stmt};
use crate::DslError;

/// A DSL type: scalar or array-of-scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// A single value.
    Scalar(ScalarType),
    /// An array of values.
    Array(ScalarType),
}

impl Type {
    /// The element type (identity for scalars).
    pub fn element(self) -> ScalarType {
        match self {
            Type::Scalar(t) | Type::Array(t) => t,
        }
    }

    /// True for array types.
    pub fn is_array(self) -> bool {
        matches!(self, Type::Array(_))
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Scalar(t) => write!(f, "{t}"),
            Type::Array(t) => write!(f, "[{t}]"),
        }
    }
}

/// Typing environment: variables in scope and the named buffers the program
/// may `read`/`write`/`gather`/`scatter`.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    vars: HashMap<String, Type>,
    buffers: HashMap<String, ScalarType>,
}

impl TypeEnv {
    /// Empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Register a named buffer of element type `ty`.
    pub fn with_buffer(mut self, name: &str, ty: ScalarType) -> TypeEnv {
        self.buffers.insert(name.to_string(), ty);
        self
    }

    /// Register a variable.
    pub fn with_var(mut self, name: &str, ty: Type) -> TypeEnv {
        self.vars.insert(name.to_string(), ty);
        self
    }

    fn buffer(&self, name: &str) -> Result<ScalarType, DslError> {
        self.buffers
            .get(name)
            .copied()
            .ok_or_else(|| DslError::Unbound(format!("buffer {name}")))
    }
}

/// Result of scalar-operation typing over promoted operand types.
fn apply_type(op: ScalarOp, args: &[ScalarType]) -> Result<ScalarType, DslError> {
    use ScalarOp::*;
    let promote2 = |a: ScalarType, b: ScalarType| {
        a.promote(b)
            .ok_or_else(|| DslError::Type(format!("no common type for {a} and {b} in {op:?}")))
    };
    match op {
        Add | Sub | Mul | Div | Rem | Min | Max => {
            let t = promote2(args[0], args[1])?;
            if !t.is_numeric() {
                return Err(DslError::Type(format!(
                    "{op:?} needs numeric operands, got {t}"
                )));
            }
            Ok(t)
        }
        Sqrt => {
            if !args[0].is_numeric() {
                return Err(DslError::Type(format!(
                    "sqrt needs a numeric operand, got {}",
                    args[0]
                )));
            }
            Ok(ScalarType::F64)
        }
        Abs | Neg => {
            if !args[0].is_numeric() {
                return Err(DslError::Type(format!(
                    "{op:?} needs a numeric operand, got {}",
                    args[0]
                )));
            }
            Ok(args[0])
        }
        Eq | Ne => {
            if args[0] != args[1] && args[0].promote(args[1]).is_none() {
                return Err(DslError::Type(format!(
                    "cannot compare {} with {}",
                    args[0], args[1]
                )));
            }
            Ok(ScalarType::Bool)
        }
        Lt | Le | Gt | Ge => {
            let comparable = (args[0].is_numeric() && args[1].is_numeric())
                || (args[0] == ScalarType::Str && args[1] == ScalarType::Str);
            if !comparable {
                return Err(DslError::Type(format!(
                    "cannot order {} with {}",
                    args[0], args[1]
                )));
            }
            Ok(ScalarType::Bool)
        }
        And | Or => {
            if args[0] != ScalarType::Bool || args[1] != ScalarType::Bool {
                return Err(DslError::Type(format!(
                    "{op:?} needs booleans, got {} and {}",
                    args[0], args[1]
                )));
            }
            Ok(ScalarType::Bool)
        }
        Not => {
            if args[0] != ScalarType::Bool {
                return Err(DslError::Type(format!(
                    "not needs a boolean, got {}",
                    args[0]
                )));
            }
            Ok(ScalarType::Bool)
        }
        Hash => Ok(ScalarType::I64),
        Cast(t) => Ok(t),
        StrLen => {
            if args[0] != ScalarType::Str {
                return Err(DslError::Type(format!(
                    "strlen needs a string, got {}",
                    args[0]
                )));
            }
            Ok(ScalarType::I64)
        }
        Concat => {
            if args[0] != ScalarType::Str || args[1] != ScalarType::Str {
                return Err(DslError::Type("concat needs strings".into()));
            }
            Ok(ScalarType::Str)
        }
    }
}

/// Reject skeletons nested inside a lambda body. Lambdas are lifted to
/// whole-vector kernels, so their bodies must be per-lane scalar
/// computation; a nested skeleton (e.g. a fold over a buffer read) would
/// need per-lane re-evaluation, which the vectorized execution model
/// cannot express — and which a naive per-lane interpreter *would*
/// evaluate, silently diverging.
fn check_lambda_body_shape(e: &Expr) -> Result<(), DslError> {
    match e {
        Expr::Const(_) | Expr::Var(_) => Ok(()),
        Expr::Apply(_, args) => {
            for a in args {
                check_lambda_body_shape(a)?;
            }
            Ok(())
        }
        Expr::Len(inner) => check_lambda_body_shape(inner),
        other => Err(DslError::Type(format!(
            "lambda bodies must be scalar expressions over their parameters; \
             nested `{}` is not supported",
            skeleton_name(other)
        ))),
    }
}

fn skeleton_name(e: &Expr) -> &'static str {
    match e {
        Expr::Map { .. } => "map",
        Expr::Filter { .. } => "filter",
        Expr::Fold { .. } => "fold",
        Expr::Read { .. } => "read",
        Expr::Gather { .. } => "gather",
        Expr::Gen { .. } => "gen",
        Expr::Condense(_) => "condense",
        Expr::Merge { .. } => "merge",
        _ => "expression",
    }
}

/// Infer a lambda's result element type given its inputs' element types.
pub fn infer_lambda(
    f: &Lambda,
    arg_types: &[ScalarType],
    env: &TypeEnv,
) -> Result<ScalarType, DslError> {
    if f.params.len() != arg_types.len() {
        return Err(DslError::Type(format!(
            "lambda takes {} parameters but {} inputs were given",
            f.params.len(),
            arg_types.len()
        )));
    }
    check_lambda_body_shape(&f.body)?;
    let mut inner = env.clone();
    for (p, &t) in f.params.iter().zip(arg_types) {
        inner.vars.insert(p.clone(), Type::Scalar(t));
    }
    match infer_expr(&f.body, &inner)? {
        Type::Scalar(t) => Ok(t),
        Type::Array(t) => Err(DslError::Type(format!(
            "lambda body must be scalar, produced [{t}]"
        ))),
    }
}

/// Infer the type of an expression.
pub fn infer_expr(e: &Expr, env: &TypeEnv) -> Result<Type, DslError> {
    match e {
        Expr::Const(s) => Ok(Type::Scalar(s.scalar_type())),
        Expr::Var(name) => env
            .vars
            .get(name)
            .copied()
            .ok_or_else(|| DslError::Unbound(name.clone())),
        Expr::Apply(op, args) => {
            if args.len() != op.arity() {
                return Err(DslError::Type(format!(
                    "{op:?} takes {} operands, got {}",
                    op.arity(),
                    args.len()
                )));
            }
            let mut tys = Vec::with_capacity(args.len());
            let mut any_array = false;
            for a in args {
                let t = infer_expr(a, env)?;
                any_array |= t.is_array();
                tys.push(t.element());
            }
            let result = apply_type(*op, &tys)?;
            // A scalar op lifted over arrays yields an array (implicit map).
            Ok(if any_array {
                Type::Array(result)
            } else {
                Type::Scalar(result)
            })
        }
        Expr::Len(inner) => {
            let t = infer_expr(inner, env)?;
            if !t.is_array() {
                return Err(DslError::Type(format!("len needs an array, got {t}")));
            }
            Ok(Type::Scalar(ScalarType::I64))
        }
        Expr::Map { f, inputs } => {
            let mut elems = Vec::with_capacity(inputs.len());
            for i in inputs {
                elems.push(infer_expr(i, env)?.element());
            }
            Ok(Type::Array(infer_lambda(f, &elems, env)?))
        }
        Expr::Filter { p, inputs } => {
            if inputs.is_empty() {
                return Err(DslError::Type("filter needs at least one input".into()));
            }
            let mut elems = Vec::with_capacity(inputs.len());
            let mut flow = None;
            for (i, input) in inputs.iter().enumerate() {
                let t = infer_expr(input, env)?;
                if !t.is_array() {
                    return Err(DslError::Type(format!("filter needs arrays, got {t}")));
                }
                if i == 0 {
                    flow = Some(t);
                }
                elems.push(t.element());
            }
            let pt = infer_lambda(p, &elems, env)?;
            if pt != ScalarType::Bool {
                return Err(DslError::Type(format!(
                    "filter predicate must be boolean, got {pt}"
                )));
            }
            Ok(flow.expect("non-empty inputs"))
        }
        Expr::Fold { r, init, input } => {
            let it = infer_expr(input, env)?;
            if !it.is_array() {
                return Err(DslError::Type(format!("fold needs an array, got {it}")));
            }
            let init_ty = infer_expr(init, env)?;
            if init_ty.is_array() {
                return Err(DslError::Type(format!(
                    "fold init must be scalar, got {init_ty}"
                )));
            }
            let init_t = init_ty.element();
            let elem = it.element();
            let result = match r {
                FoldFn::Count => ScalarType::I64,
                FoldFn::All | FoldFn::Any => {
                    if elem != ScalarType::Bool {
                        return Err(DslError::Type(format!(
                            "fold {} needs booleans, got {elem}",
                            r.name()
                        )));
                    }
                    ScalarType::Bool
                }
                FoldFn::Sum | FoldFn::Min | FoldFn::Max => {
                    if !elem.is_numeric() {
                        return Err(DslError::Type(format!(
                            "fold {} needs numbers, got {elem}",
                            r.name()
                        )));
                    }
                    elem.promote(init_t).ok_or_else(|| {
                        DslError::Type(format!(
                            "fold init {init_t} incompatible with elements {elem}"
                        ))
                    })?
                }
            };
            Ok(Type::Scalar(result))
        }
        Expr::Read { pos, data, len } => {
            expect_scalar_int(pos, env, "read position")?;
            if let Some(l) = len {
                expect_scalar_int(l, env, "read length")?;
            }
            Ok(Type::Array(env.buffer(data)?))
        }
        Expr::Gather { indices, data } => {
            let it = infer_expr(indices, env)?;
            if !it.is_array() || !it.element().is_integer() {
                return Err(DslError::Type(format!(
                    "gather needs integer indices, got {it}"
                )));
            }
            Ok(Type::Array(env.buffer(data)?))
        }
        Expr::Gen { f, len } => {
            expect_scalar_int(len, env, "gen length")?;
            Ok(Type::Array(infer_lambda(f, &[ScalarType::I64], env)?))
        }
        Expr::Condense(inner) => {
            let t = infer_expr(inner, env)?;
            if !t.is_array() {
                return Err(DslError::Type(format!("condense needs an array, got {t}")));
            }
            Ok(t)
        }
        Expr::Merge { kind, left, right } => {
            let lt = infer_expr(left, env)?;
            let rt = infer_expr(right, env)?;
            if !lt.is_array() || !rt.is_array() {
                return Err(DslError::Type("merge needs arrays".into()));
            }
            if lt.element() != rt.element() {
                return Err(DslError::Type(format!(
                    "merge inputs must agree: {lt} vs {rt}"
                )));
            }
            Ok(match kind {
                MergeKind::JoinLeftIdx | MergeKind::JoinRightIdx => Type::Array(ScalarType::I64),
                _ => lt,
            })
        }
    }
}

fn expect_scalar_int(e: &Expr, env: &TypeEnv, what: &str) -> Result<(), DslError> {
    let t = infer_expr(e, env)?;
    match t {
        Type::Scalar(s) if s.is_integer() => Ok(()),
        other => Err(DslError::Type(format!(
            "{what} must be a scalar integer, got {other}"
        ))),
    }
}

/// Check a whole program against an environment (mutable-variable types are
/// recorded on first assignment).
pub fn check_program(p: &Program, env: &TypeEnv) -> Result<(), DslError> {
    let mut env = env.clone();
    check_stmts(&p.stmts, &mut env, false)
}

fn check_stmts(stmts: &[Stmt], env: &mut TypeEnv, in_loop: bool) -> Result<(), DslError> {
    for s in stmts {
        check_stmt(s, env, in_loop)?;
    }
    Ok(())
}

fn check_stmt(s: &Stmt, env: &mut TypeEnv, in_loop: bool) -> Result<(), DslError> {
    match s {
        Stmt::DeclareMut { .. } => Ok(()),
        Stmt::Assign { name, expr } => {
            let t = infer_expr(expr, env)?;
            if let Some(existing) = env.vars.get(name) {
                if *existing != t {
                    return Err(DslError::Type(format!(
                        "assignment changes type of {name}: {existing} → {t}"
                    )));
                }
            }
            env.vars.insert(name.clone(), t);
            Ok(())
        }
        Stmt::Let { name, expr, body } => {
            let t = infer_expr(expr, env)?;
            let shadowed = env.vars.insert(name.clone(), t);
            let r = check_stmts(body, env, in_loop);
            match shadowed {
                Some(old) => {
                    env.vars.insert(name.clone(), old);
                }
                None => {
                    env.vars.remove(name);
                }
            }
            r
        }
        Stmt::Write { target, pos, value } => {
            expect_scalar_int(pos, env, "write position")?;
            let vt = infer_expr(value, env)?;
            let bt = env.buffer(target)?;
            if vt.element() != bt {
                return Err(DslError::Type(format!(
                    "write of {vt} into buffer {target} of [{bt}]"
                )));
            }
            Ok(())
        }
        Stmt::Scatter {
            target,
            indices,
            value,
            ..
        } => {
            let it = infer_expr(indices, env)?;
            if !it.is_array() || !it.element().is_integer() {
                return Err(DslError::Type("scatter needs integer indices".into()));
            }
            let vt = infer_expr(value, env)?;
            let bt = env.buffer(target)?;
            if vt.element() != bt {
                return Err(DslError::Type(format!(
                    "scatter of {vt} into buffer {target} of [{bt}]"
                )));
            }
            Ok(())
        }
        Stmt::Loop(body) => check_stmts(body, env, true),
        Stmt::Break => {
            if in_loop {
                Ok(())
            } else {
                Err(DslError::Type("break outside loop".into()))
            }
        }
        Stmt::If { cond, then, els } => {
            let t = infer_expr(cond, env)?;
            if t != Type::Scalar(ScalarType::Bool) {
                return Err(DslError::Type(format!(
                    "if condition must be bool, got {t}"
                )));
            }
            check_stmts(then, env, in_loop)?;
            check_stmts(els, env, in_loop)
        }
        Stmt::ExprStmt(e) => infer_expr(e, env).map(|_| ()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};
    use crate::programs;

    fn env() -> TypeEnv {
        TypeEnv::new()
            .with_buffer("some_data", ScalarType::I64)
            .with_buffer("v", ScalarType::I64)
            .with_buffer("w", ScalarType::I64)
            .with_buffer("xs", ScalarType::I64)
            .with_buffer("ys", ScalarType::I64)
            .with_buffer("out", ScalarType::F64)
    }

    fn ty(src: &str) -> Result<Type, DslError> {
        infer_expr(&parse_expr(src).unwrap(), &env())
    }

    #[test]
    fn scalar_expressions() {
        assert_eq!(ty("1 + 2").unwrap(), Type::Scalar(ScalarType::I64));
        assert_eq!(ty("1 + 2.5").unwrap(), Type::Scalar(ScalarType::F64));
        assert_eq!(ty("1 < 2").unwrap(), Type::Scalar(ScalarType::Bool));
        assert_eq!(ty("sqrt(4)").unwrap(), Type::Scalar(ScalarType::F64));
        assert_eq!(ty("cast(i16, 9)").unwrap(), Type::Scalar(ScalarType::I16));
        assert!(ty("true + 1").is_err());
        assert!(ty("1 && true").is_err());
        assert!(ty("strlen(1)").is_err());
    }

    #[test]
    fn skeleton_types() {
        assert_eq!(
            ty("read 0 some_data").unwrap(),
            Type::Array(ScalarType::I64)
        );
        assert_eq!(
            ty("map (\\x -> x * 2) (read 0 xs)").unwrap(),
            Type::Array(ScalarType::I64)
        );
        assert_eq!(
            ty("map (\\x -> sqrt(x)) (read 0 xs)").unwrap(),
            Type::Array(ScalarType::F64)
        );
        assert_eq!(
            ty("filter (\\x -> x > 0) (read 0 xs)").unwrap(),
            Type::Array(ScalarType::I64)
        );
        assert_eq!(
            ty("fold sum 0 (read 0 xs)").unwrap(),
            Type::Scalar(ScalarType::I64)
        );
        assert_eq!(
            ty("fold count 0 (read 0 xs)").unwrap(),
            Type::Scalar(ScalarType::I64)
        );
        assert_eq!(ty("len(read 0 xs)").unwrap(), Type::Scalar(ScalarType::I64));
        assert_eq!(
            ty("merge join_left (read 0 xs) (read 0 ys)").unwrap(),
            Type::Array(ScalarType::I64)
        );
        assert_eq!(
            ty("gen (\\i -> i % 3) 10").unwrap(),
            Type::Array(ScalarType::I64)
        );
        assert_eq!(
            ty("gather (gen (\\i -> i) 4) xs").unwrap(),
            Type::Array(ScalarType::I64)
        );
    }

    #[test]
    fn skeleton_type_errors() {
        // Non-bool predicate.
        assert!(ty("filter (\\x -> x + 1) (read 0 xs)").is_err());
        // Fold all over ints.
        assert!(ty("fold all true (read 0 xs)").is_err());
        // Unknown buffer.
        assert!(ty("read 0 nope").is_err());
        // len of scalar.
        assert!(ty("len(1)").is_err());
        // Lambda arity mismatch is a parse-level impossibility; via builder:
        use crate::ast::build::*;
        let bad = map(lam2("a", "b", var("a")), vec![var("x")]);
        let e = env().with_var("x", Type::Array(ScalarType::I64));
        assert!(infer_expr(&bad, &e).is_err());
    }

    #[test]
    fn implicit_lift_of_scalar_ops() {
        // Applying a scalar op to an array lifts element-wise.
        let e = env().with_var("a", Type::Array(ScalarType::I64));
        let t = infer_expr(&parse_expr("a + 1").unwrap(), &e).unwrap();
        assert_eq!(t, Type::Array(ScalarType::I64));
    }

    #[test]
    fn fig2_checks() {
        check_program(&programs::fig2_example(), &env()).unwrap();
    }

    #[test]
    fn canned_programs_check() {
        let int_out = TypeEnv::new()
            .with_buffer("xs", ScalarType::I64)
            .with_buffer("ys", ScalarType::I64)
            .with_buffer("out", ScalarType::I64);
        check_program(&programs::saxpy(3, 100), &int_out).unwrap();
        check_program(&programs::filter_sum(0, 100), &int_out).unwrap();
        check_program(
            &programs::map_chain(100),
            &TypeEnv::new()
                .with_buffer("xs", ScalarType::I64)
                .with_buffer("out", ScalarType::I64),
        )
        .unwrap();
        check_program(
            &programs::hypot_whole_array(),
            &TypeEnv::new()
                .with_buffer("xs", ScalarType::F64)
                .with_buffer("ys", ScalarType::F64)
                .with_buffer("out", ScalarType::F64),
        )
        .unwrap();
    }

    #[test]
    fn statement_errors() {
        // break outside loop.
        assert!(check_program(&parse_program("break").unwrap(), &env()).is_err());
        // write type mismatch: f64 map into i64 buffer.
        let p =
            parse_program("let a = map (\\x -> sqrt(x)) (read 0 xs) in { write v 0 a }").unwrap();
        assert!(check_program(&p, &env()).is_err());
        // non-bool if condition.
        let p = parse_program("if 1 + 2 then { break }").unwrap();
        assert!(check_program(&p, &env()).is_err());
        // assignment retype.
        let p = parse_program("mut x\nx := 1\nx := true").unwrap();
        assert!(check_program(&p, &env()).is_err());
    }

    #[test]
    fn fold_init_must_be_scalar() {
        // Regression: an array-typed fold init used to pass the checker
        // (via `.element()`) and only fail at runtime.
        let err = ty("fold sum (read 0 ys) (read 0 xs)").unwrap_err();
        assert!(
            matches!(&err, DslError::Type(m) if m.contains("fold init must be scalar")),
            "{err}"
        );
    }

    #[test]
    fn every_scalar_op_error_path() {
        // apply_type rejections, one per arm.
        assert!(ty("true + false").is_err()); // arith needs numbers
        assert!(ty("sqrt(\"x\")").is_err()); // sqrt needs a number
        assert!(ty("abs(true)").is_err()); // abs/neg need numbers
        assert!(ty("\"a\" == 1").is_err()); // incomparable Eq/Ne
        assert!(ty("true < false").is_err()); // unordered Lt..Ge
        assert!(ty("1 || true").is_err()); // and/or need bools
        assert!(ty("!(1)").is_err()); // not needs bool
        assert!(ty("strlen(1)").is_err()); // strlen needs a string
        assert!(ty("concat(1, \"a\")").is_err()); // concat needs strings
                                                  // Arity mismatch (builder-only; the parser fixes arity).
        use crate::ast::build::*;
        let bad = Expr::Apply(ScalarOp::Add, vec![int(1)]);
        assert!(matches!(
            infer_expr(&bad, &env()),
            Err(DslError::Type(m)) if m.contains("operands")
        ));
    }

    #[test]
    fn every_skeleton_error_path() {
        use crate::ast::build::*;
        // Lambda body must be scalar (an array-producing skeleton is
        // rejected by the body-shape rule).
        let bad = map(lam1("x", read(int(0), "xs")), vec![read(int(0), "ys")]);
        assert!(matches!(
            infer_expr(&bad, &env()),
            Err(DslError::Type(m)) if m.contains("must be scalar")
        ));
        // len of a scalar.
        assert!(ty("len(1)").is_err());
        // Filter: no inputs / scalar input / non-bool predicate.
        let none = filter_multi(lam1("x", bin(ScalarOp::Gt, var("x"), int(0))), vec![]);
        assert!(infer_expr(&none, &env()).is_err());
        assert!(ty("filter (\\x -> x > 0) 1").is_err());
        assert!(ty("filter (\\x -> x + 1) (read 0 xs)").is_err());
        // Fold: scalar input / all over ints / sum over strings /
        // incompatible init.
        assert!(ty("fold sum 0 1").is_err());
        assert!(ty("fold any 0 (read 0 xs)").is_err());
        let senv = env().with_buffer("ss", ScalarType::Str);
        assert!(infer_expr(&parse_expr("fold min 0 (read 0 ss)").unwrap(), &senv).is_err());
        assert!(infer_expr(&parse_expr("fold sum \"s\" (read 0 xs)").unwrap(), &senv).is_err());
        // Read/gen positions and lengths must be scalar integers.
        assert!(ty("read 1.5 xs").is_err());
        assert!(ty("read (read 0 xs) xs").is_err());
        assert!(ty("gen (\\i -> i) 1.5").is_err());
        // Gather needs integer indices.
        assert!(infer_expr(
            &parse_expr("gather (read 0 fs) xs").unwrap(),
            &env().with_buffer("fs", ScalarType::F64)
        )
        .is_err());
        // Condense and merge need arrays; merge elements must agree.
        assert!(ty("condense 1").is_err());
        assert!(ty("merge union 1 2").is_err());
        assert!(infer_expr(
            &parse_expr("merge union (read 0 xs) (read 0 fs)").unwrap(),
            &env().with_buffer("fs", ScalarType::F64)
        )
        .is_err());
        // Unbound buffer is DslError::Unbound.
        assert!(matches!(ty("read 0 nope"), Err(DslError::Unbound(_))));
    }

    #[test]
    fn every_statement_error_path() {
        let e = env();
        // Scatter: non-integer indices, element mismatch, unknown target.
        let p =
            parse_program("let i = read 0 fs in { let v = read 0 xs in { scatter w i v add } }")
                .unwrap();
        assert!(check_program(&p, &e.clone().with_buffer("fs", ScalarType::F64)).is_err());
        let p =
            parse_program("let i = read 0 xs in { let v = read 0 fs in { scatter w i v add } }")
                .unwrap();
        assert!(check_program(&p, &e.clone().with_buffer("fs", ScalarType::F64)).is_err());
        let p =
            parse_program("let i = read 0 xs in { let v = read 0 xs in { scatter gone i v add } }")
                .unwrap();
        assert!(matches!(check_program(&p, &e), Err(DslError::Unbound(_))));
        // Write: unknown target / non-integer position.
        let p = parse_program("let a = read 0 xs in { write gone 0 a }").unwrap();
        assert!(matches!(check_program(&p, &e), Err(DslError::Unbound(_))));
        let p = parse_program("let a = read 0 xs in { write v 1.5 a }").unwrap();
        assert!(check_program(&p, &e).is_err());
    }

    #[test]
    fn let_scoping_restores() {
        // `a` out of scope after the let body.
        let p = parse_program("let a = read 0 xs in { write v 0 a }\nwrite v 0 a").unwrap();
        let err = check_program(&p, &env()).unwrap_err();
        assert!(matches!(err, DslError::Unbound(name) if name == "a"));
    }

    #[test]
    fn skeletons_inside_lambda_bodies_are_rejected() {
        // Regression (found by the query fuzzer): a scalar-typed fold
        // inside a map lambda used to typecheck, but the vectorized
        // engine cannot evaluate per-lane skeletons — and the normalizer
        // leaked the parameter out of scope while flattening. Such bodies
        // are now a type error.
        let e = env();
        let p = parse_program(
            "let r = map (\\x -> (fold min x (read 0 xs))) (read 0 xs) in { write v 0 r }",
        )
        .unwrap();
        assert!(matches!(check_program(&p, &e), Err(DslError::Type(_))));
        // Same rule for filter predicates and gen bodies.
        let p = parse_program(
            "let r = filter (\\x -> (fold any false (x > (read 0 xs)))) (read 0 xs) in { write v 0 r }",
        )
        .unwrap();
        assert!(matches!(check_program(&p, &e), Err(DslError::Type(_))));
        let p =
            parse_program("let r = gen (\\i -> i + (fold sum 0 (read 0 xs))) 4 in { write v 0 r }")
                .unwrap();
        assert!(matches!(check_program(&p, &e), Err(DslError::Type(_))));
        // Plain scalar bodies (including len of a bound array) still pass.
        let p = parse_program(
            "let a = read 0 xs in { let r = map (\\x -> x + len(a)) a in { write v 0 r } }",
        )
        .unwrap();
        check_program(&p, &e).unwrap();
    }
}
