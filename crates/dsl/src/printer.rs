//! Pretty printer emitting the concrete syntax of [`crate::parser`].
//!
//! `parse_program(print_program(p)) == p` is a tested round-trip invariant
//! (modulo scalar-constant width: the printer emits `i64`/`f64` literals).

use adaptvm_storage::scalar::Scalar;

use crate::ast::{ConflictFn, Expr, Lambda, Program, ScalarOp, Stmt};

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.stmts {
        print_stmt(s, 0, &mut out);
    }
    out
}

/// Render a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut out = String::new();
    expr(e, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match s {
        Stmt::DeclareMut { name } => {
            out.push_str("mut ");
            out.push_str(name);
            out.push('\n');
        }
        Stmt::Assign { name, expr: e } => {
            out.push_str(name);
            out.push_str(" := ");
            expr(e, out);
            out.push('\n');
        }
        Stmt::Let {
            name,
            expr: e,
            body,
        } => {
            out.push_str("let ");
            out.push_str(name);
            out.push_str(" = ");
            expr(e, out);
            out.push_str(" in {\n");
            for s in body {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Write { target, pos, value } => {
            out.push_str("write ");
            out.push_str(target);
            out.push(' ');
            atom(pos, out);
            out.push(' ');
            atom(value, out);
            out.push('\n');
        }
        Stmt::Scatter {
            target,
            indices,
            value,
            conflict,
        } => {
            out.push_str("scatter ");
            out.push_str(target);
            out.push(' ');
            atom(indices, out);
            out.push(' ');
            atom(value, out);
            out.push(' ');
            out.push_str(match conflict {
                ConflictFn::LastWins => "last",
                ConflictFn::Add => "add",
                ConflictFn::Min => "min",
                ConflictFn::Max => "max",
            });
            out.push('\n');
        }
        Stmt::Loop(body) => {
            out.push_str("loop {\n");
            for s in body {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Break => out.push_str("break\n"),
        Stmt::If { cond, then, els } => {
            out.push_str("if ");
            expr(cond, out);
            out.push_str(" then {\n");
            for s in then {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push('}');
            if !els.is_empty() {
                out.push_str(" else {\n");
                for s in els {
                    print_stmt(s, level + 1, out);
                }
                indent(level, out);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::ExprStmt(e) => {
            expr(e, out);
            out.push('\n');
        }
    }
}

fn lambda(f: &Lambda, out: &mut String) {
    out.push_str("(\\");
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(p);
    }
    out.push_str(" -> ");
    // The parser reads lambda bodies with the scalar-expression grammar,
    // so a scalar-typed skeleton body (e.g. a fold) must be parenthesized.
    scalar_expr(&f.body, 0, out);
    out.push(')');
}

fn expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Map { f, inputs } => {
            out.push_str("map ");
            lambda(f, out);
            for i in inputs {
                out.push(' ');
                atom(i, out);
            }
        }
        Expr::Filter { p, inputs } => {
            out.push_str("filter ");
            lambda(p, out);
            for i in inputs {
                out.push(' ');
                atom(i, out);
            }
        }
        Expr::Fold { r, init, input } => {
            out.push_str("fold ");
            out.push_str(r.name());
            out.push(' ');
            atom(init, out);
            out.push(' ');
            atom(input, out);
        }
        Expr::Read { pos, data, .. } => {
            out.push_str("read ");
            atom(pos, out);
            out.push(' ');
            out.push_str(data);
        }
        Expr::Gather { indices, data } => {
            out.push_str("gather ");
            atom(indices, out);
            out.push(' ');
            out.push_str(data);
        }
        Expr::Gen { f, len } => {
            out.push_str("gen ");
            lambda(f, out);
            out.push(' ');
            atom(len, out);
        }
        Expr::Condense(e) => {
            out.push_str("condense ");
            atom(e, out);
        }
        Expr::Merge { kind, left, right } => {
            out.push_str("merge ");
            out.push_str(kind.name());
            out.push(' ');
            atom(left, out);
            out.push(' ');
            atom(right, out);
        }
        _ => scalar_expr(e, 0, out),
    }
}

/// Binding strength for infix printing; higher binds tighter.
fn precedence(op: ScalarOp) -> u8 {
    match op {
        ScalarOp::Or => 1,
        ScalarOp::And => 2,
        ScalarOp::Eq | ScalarOp::Ne | ScalarOp::Lt | ScalarOp::Le | ScalarOp::Gt | ScalarOp::Ge => {
            3
        }
        ScalarOp::Add | ScalarOp::Sub => 4,
        ScalarOp::Mul | ScalarOp::Div | ScalarOp::Rem => 5,
        _ => 6,
    }
}

fn infix_symbol(op: ScalarOp) -> Option<&'static str> {
    Some(match op {
        ScalarOp::Add => "+",
        ScalarOp::Sub => "-",
        ScalarOp::Mul => "*",
        ScalarOp::Div => "/",
        ScalarOp::Rem => "%",
        ScalarOp::Lt => "<",
        ScalarOp::Le => "<=",
        ScalarOp::Gt => ">",
        ScalarOp::Ge => ">=",
        ScalarOp::Eq => "==",
        ScalarOp::Ne => "!=",
        ScalarOp::And => "&&",
        ScalarOp::Or => "||",
        _ => return None,
    })
}

/// Format an `f64` constant so it re-lexes as a float: Rust's `Display`
/// prints `1.0` as `"1"`, which the lexer would read back as an *integer*
/// constant, silently changing the expression's type.
fn f64_text(v: f64) -> String {
    let s = v.to_string();
    if s.contains('.') || !v.is_finite() {
        s
    } else {
        format!("{s}.0")
    }
}

fn scalar_expr(e: &Expr, parent_prec: u8, out: &mut String) {
    match e {
        Expr::Const(s) => match s {
            Scalar::Str(v) => {
                out.push('"');
                out.push_str(v);
                out.push('"');
            }
            Scalar::F64(v) => out.push_str(&f64_text(*v)),
            other => out.push_str(&other.to_string()),
        },
        Expr::Var(v) => out.push_str(v),
        Expr::Len(inner) => {
            out.push_str("len(");
            expr(inner, out);
            out.push(')');
        }
        Expr::Apply(op, args) => {
            if let Some(sym) = infix_symbol(*op) {
                let prec = precedence(*op);
                let need_parens = prec < parent_prec;
                if need_parens {
                    out.push('(');
                }
                scalar_expr(&args[0], prec, out);
                out.push(' ');
                out.push_str(sym);
                out.push(' ');
                // Right operand binds one tighter (left-associative ops).
                scalar_expr(&args[1], prec + 1, out);
                if need_parens {
                    out.push(')');
                }
            } else {
                match op {
                    ScalarOp::Neg => {
                        out.push('-');
                        scalar_expr(&args[0], 6, out);
                    }
                    ScalarOp::Not => {
                        out.push('!');
                        scalar_expr(&args[0], 6, out);
                    }
                    ScalarOp::Cast(ty) => {
                        out.push_str("cast(");
                        out.push_str(&ty.to_string());
                        out.push_str(", ");
                        scalar_expr(&args[0], 0, out);
                        out.push(')');
                    }
                    named => {
                        out.push_str(named.name());
                        out.push('(');
                        for (i, a) in args.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            scalar_expr(a, 0, out);
                        }
                        out.push(')');
                    }
                }
            }
        }
        // A skeleton in scalar position must be parenthesized.
        other => {
            out.push('(');
            expr(other, out);
            out.push(')');
        }
    }
}

/// Print in atom position: anything non-atomic is parenthesized.
fn atom(e: &Expr, out: &mut String) {
    match e {
        Expr::Var(_) => expr(e, out),
        Expr::Const(Scalar::I64(v)) if *v >= 0 => out.push_str(&v.to_string()),
        Expr::Const(Scalar::F64(v)) if *v >= 0.0 => out.push_str(&f64_text(*v)),
        Expr::Const(Scalar::Bool(b)) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Const(Scalar::Str(s)) => {
            out.push('"');
            out.push_str(s);
            out.push('"');
        }
        Expr::Len(_) => expr(e, out),
        _ => {
            out.push('(');
            expr(e, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};
    use crate::programs;

    fn roundtrip_expr(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("reparse of {printed:?} failed: {err}");
        });
        assert_eq!(e, e2, "print was {printed:?}");
    }

    #[test]
    fn whole_valued_floats_stay_floats() {
        // Regression: `Display` prints 1.0 as "1", which re-lexes as an
        // integer constant and silently retypes the expression.
        use crate::ast::build::*;
        use adaptvm_storage::scalar::Scalar;
        for v in [0.0, 1.0, -2.0, 1.5, 100.0] {
            let e = Expr::Const(Scalar::F64(v));
            let printed = print_expr(&e);
            let back = parse_expr(&printed).unwrap();
            let want = if v < 0.0 {
                un(crate::ast::ScalarOp::Neg, float(-v))
            } else {
                float(v)
            };
            assert_eq!(back, want, "printed {printed:?}");
        }
    }

    #[test]
    fn skeleton_lambda_bodies_are_parenthesized() {
        // Regression (found by the query fuzzer): a scalar-typed skeleton
        // as a lambda body — e.g. `map (\x -> fold all false bs) xs` — was
        // printed bare, but the parser reads lambda bodies with the scalar
        // grammar and needs the parens.
        use crate::ast::{build, FoldFn, Lambda};
        let e = build::map(
            Lambda::new(
                vec!["x"],
                build::fold(FoldFn::All, build::boolean(false), build::var("bs")),
            ),
            vec![build::var("xs")],
        );
        let printed = print_expr(&e);
        let back = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("reparse of {printed:?} failed: {err}");
        });
        assert_eq!(back, e, "printed {printed:?}");
    }

    #[test]
    fn expr_roundtrips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "x > 0 && y <= 4 || !z",
            "sqrt(x * x + y * y)",
            "map (\\x -> 2 * x) input",
            "map (\\x y -> x + y) a b",
            "filter (\\x -> x > 0) a",
            "fold sum 0 xs",
            "read i some_data",
            "gather idx d",
            "gen (\\i -> i % 7) 100",
            "condense t",
            "merge join_left xs ys",
            "cast(i16, x + 1)",
            "min(a, max(b, c))",
            "len(read i d)",
            "1 - 2 - 3",
            "a / b / c",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn left_associativity_preserved() {
        // 1 - 2 - 3 must stay (1-2)-3.
        let e = parse_expr("1 - 2 - 3").unwrap();
        let printed = print_expr(&e);
        assert_eq!(parse_expr(&printed).unwrap(), e);
        assert_eq!(printed, "1 - 2 - 3");
        // But 1 - (2 - 3) needs parens.
        let e = parse_expr("1 - (2 - 3)").unwrap();
        let printed = print_expr(&e);
        assert_eq!(parse_expr(&printed).unwrap(), e);
        assert!(printed.contains('('));
    }

    #[test]
    fn fig2_roundtrips() {
        let p = programs::fig2_example();
        let printed = print_program(&p);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2, "printed:\n{printed}");
    }

    #[test]
    fn statement_roundtrips() {
        for src in [
            "mut x\nx := 1\n",
            "write out i vals\n",
            "scatter out idx vals add\n",
            "if x > 1 then { break } else { x := 0 }\n",
            "loop { break }\n",
        ] {
            let p = parse_program(src).unwrap();
            let printed = print_program(&p);
            assert_eq!(parse_program(&printed).unwrap(), p, "printed:\n{printed}");
        }
    }
}
