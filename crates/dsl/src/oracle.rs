//! A naive tree-walking reference interpreter — the query fuzzer's oracle.
//!
//! This is an *independent* implementation of the DSL's dynamic semantics:
//! it shares only `adaptvm-storage` (the value representation) with the
//! engine, never the vectorized kernels, the JIT, or the VM's interpreter.
//! Everything is evaluated scalar-at-a-time with plain loops, the way one
//! would write the semantics on a whiteboard.
//!
//! ## Contract with the engine
//!
//! For every program the engine runs successfully — under any strategy
//! (vectorized / fused / adaptive), any executor, any worker count, any
//! memory budget — the oracle produces **bit-identical outputs**. When the
//! engine reports an error, the oracle reports an error too (the error
//! *variants* need not match across the two implementations; ok-ness must).
//! `tests/query_fuzz.rs` property-tests this contract with random
//! well-typed programs.
//!
//! Two semantic corners are mirrored deliberately rather than "fixed":
//!
//! * **Flat environments.** `let` does not restore shadowed bindings and a
//!   lambda parameter that was unbound before a `map` stays bound after it,
//!   exactly like the VM's interpreter (normalized programs use fresh
//!   names, so neither is observable there — but raw programs can see
//!   both).
//! * **Integer arithmetic at `i64`.** The kernels compute narrow integer
//!   ops at their promoted width with wrapping semantics; the oracle
//!   computes at `i64` and truncates the result to the promoted width
//!   ([`Scalar::int_of_type`]). For add/sub/mul/div/rem/neg/abs this is
//!   bit-identical: inputs are widened losslessly, `i64` is exact for all
//!   narrow-width intermediates, and truncation mod 2ʷ equals wrapping at
//!   width *w*. Comparisons and min/max are order-preserving under
//!   widening.

use std::collections::HashMap;

use adaptvm_storage::array::Array;
use adaptvm_storage::scalar::{Scalar, ScalarType};
use adaptvm_storage::sel::SelVec;
use adaptvm_storage::{StorageError, DEFAULT_CHUNK};

use crate::ast::{ConflictFn, Expr, FoldFn, Lambda, MergeKind, Program, ScalarOp, Stmt};
use crate::value::{Value, Vector};

/// Default loop-iteration guard, matching the VM interpreter's.
pub const DEFAULT_MAX_ITERATIONS: u64 = 1 << 32;

/// An error from the reference interpreter.
///
/// Variants classify failures the same way the engine stack does, but the
/// oracle contract only requires ok-ness to match — comparisons between
/// engine and oracle errors are by presence, not by variant.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// An unbound variable was referenced.
    Unbound(String),
    /// An unknown buffer was referenced.
    UnknownBuffer(String),
    /// A value had the wrong shape (vector vs scalar, arity, selections).
    Shape(String),
    /// No semantics exist for the requested (op, types) combination.
    NoKernel(String),
    /// Operand lengths disagree.
    LengthMismatch {
        /// First length.
        left: usize,
        /// Second length.
        right: usize,
    },
    /// All operands were constants (an element-wise op needs an array).
    NoArrayOperand,
    /// Input violates a precondition (unsorted merge input, NaN keys,
    /// negative scatter indices…).
    Precondition(String),
    /// Underlying storage error.
    Storage(StorageError),
    /// The loop-iteration guard fired.
    IterationLimit(u64),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Unbound(n) => write!(f, "unbound variable {n}"),
            OracleError::UnknownBuffer(n) => write!(f, "unknown buffer {n}"),
            OracleError::Shape(m) => write!(f, "shape error: {m}"),
            OracleError::NoKernel(m) => write!(f, "no semantics: {m}"),
            OracleError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            OracleError::NoArrayOperand => write!(f, "no array operand"),
            OracleError::Precondition(m) => write!(f, "precondition violated: {m}"),
            OracleError::Storage(e) => write!(f, "storage error: {e}"),
            OracleError::IterationLimit(n) => write!(f, "iteration limit {n} exceeded"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<StorageError> for OracleError {
    fn from(e: StorageError) -> OracleError {
        OracleError::Storage(e)
    }
}

/// Named data buffers for an oracle run: read-only inputs and growable
/// output sinks, mirroring the engine's buffer rules (`read` falls back to
/// outputs; `write` always targets an output, creating it on first write).
#[derive(Debug, Clone, Default)]
pub struct OracleBuffers {
    inputs: HashMap<String, Array>,
    outputs: HashMap<String, Array>,
}

impl OracleBuffers {
    /// Empty buffer set.
    pub fn new() -> OracleBuffers {
        OracleBuffers::default()
    }

    /// Add (replace) an input buffer.
    pub fn with_input(mut self, name: &str, data: Array) -> OracleBuffers {
        self.inputs.insert(name.to_string(), data);
        self
    }

    /// Look up an input (or previously written output) buffer.
    pub fn buffer(&self, name: &str) -> Result<&Array, OracleError> {
        self.inputs
            .get(name)
            .or_else(|| self.outputs.get(name))
            .ok_or_else(|| OracleError::UnknownBuffer(name.to_string()))
    }

    /// Read up to `len` elements at `pos`; short/empty tail reads are
    /// normal (loop exits depend on them).
    pub fn read(&self, name: &str, pos: usize, len: usize) -> Result<Array, OracleError> {
        Ok(self.buffer(name)?.slice(pos, len))
    }

    /// Write `values` into output `name` at `pos`, growing as needed.
    pub fn write(&mut self, name: &str, pos: usize, values: &Array) -> Result<(), OracleError> {
        let out = self
            .outputs
            .entry(name.to_string())
            .or_insert_with(|| Array::empty(values.scalar_type()));
        out.write_at(pos, values)?;
        Ok(())
    }

    /// Mutable output (scatter target), created with `ty` when absent.
    pub fn output_mut(&mut self, name: &str, ty: ScalarType) -> &mut Array {
        self.outputs
            .entry(name.to_string())
            .or_insert_with(|| Array::empty(ty))
    }

    /// An output buffer by name, when present.
    pub fn output(&self, name: &str) -> Option<&Array> {
        self.outputs.get(name)
    }

    /// All outputs, by name.
    pub fn outputs(&self) -> &HashMap<String, Array> {
        &self.outputs
    }

    /// Consume into the output map.
    pub fn into_outputs(self) -> HashMap<String, Array> {
        self.outputs
    }
}

/// The reference interpreter: configuration + entry point.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Chunk length used by `read` without an explicit length.
    pub chunk_size: usize,
    /// Loop-iteration guard ([`DEFAULT_MAX_ITERATIONS`] by default; tests
    /// lower it to make runaway programs fail fast).
    pub max_iterations: u64,
}

impl Default for Oracle {
    fn default() -> Oracle {
        Oracle::new(DEFAULT_CHUNK)
    }
}

impl Oracle {
    /// An oracle reading `chunk_size` elements per un-lengthed `read`.
    pub fn new(chunk_size: usize) -> Oracle {
        Oracle {
            chunk_size: if chunk_size == 0 {
                DEFAULT_CHUNK
            } else {
                chunk_size
            },
            max_iterations: DEFAULT_MAX_ITERATIONS,
        }
    }

    /// Lower the loop-iteration guard.
    pub fn with_max_iterations(mut self, n: u64) -> Oracle {
        self.max_iterations = n;
        self
    }

    /// Run a program over the given buffers; returns the final buffers.
    pub fn run(&self, p: &Program, buffers: OracleBuffers) -> Result<OracleBuffers, OracleError> {
        let mut w = Walker {
            vars: HashMap::new(),
            buffers,
            chunk: self.chunk_size,
            max_iterations: self.max_iterations,
        };
        w.exec_stmts(&p.stmts)?;
        Ok(w.buffers)
    }
}

/// Control flow of statement execution.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Flow {
    Normal,
    Broke,
}

struct Walker {
    vars: HashMap<String, Value>,
    buffers: OracleBuffers,
    chunk: usize,
    max_iterations: u64,
}

impl Walker {
    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<Flow, OracleError> {
        for s in stmts {
            if self.exec_stmt(s)? == Flow::Broke {
                return Ok(Flow::Broke);
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, OracleError> {
        match s {
            Stmt::DeclareMut { .. } => Ok(Flow::Normal),
            Stmt::Assign { name, expr } => {
                let v = self.eval(expr)?;
                self.vars.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Let { name, expr, body } => {
                let v = self.eval(expr)?;
                self.vars.insert(name.clone(), v);
                self.exec_stmts(body)
            }
            Stmt::Write { target, pos, value } => {
                let pos = self.eval_scalar_int(pos)?;
                if pos < 0 {
                    return Err(OracleError::Shape(
                        "write position must be non-negative".into(),
                    ));
                }
                let data = match self.eval(value)? {
                    Value::Vector(v) => v.condense()?.data,
                    Value::Scalar(s) => Array::splat(&s, 1),
                };
                self.buffers
                    .write(target, pos as usize, &data)
                    .map(|()| Flow::Normal)
            }
            Stmt::Scatter {
                target,
                indices,
                value,
                conflict,
            } => {
                let idx = self.eval_vector(indices)?.condense()?.data;
                let vals = self.eval_vector(value)?.condense()?.data;
                let out = self.buffers.output_mut(target, vals.scalar_type());
                scatter(out, &idx, &vals, *conflict)?;
                Ok(Flow::Normal)
            }
            Stmt::Loop(body) => {
                let mut iterations: u64 = 0;
                loop {
                    iterations += 1;
                    if iterations > self.max_iterations {
                        return Err(OracleError::IterationLimit(self.max_iterations));
                    }
                    if self.exec_stmts(body)? == Flow::Broke {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Broke),
            Stmt::If { cond, then, els } => {
                let c = self.eval(cond)?;
                let b = c.as_scalar().and_then(Scalar::as_bool).ok_or_else(|| {
                    OracleError::Shape("if condition must be a scalar bool".into())
                })?;
                if b {
                    self.exec_stmts(then)
                } else {
                    self.exec_stmts(els)
                }
            }
            Stmt::ExprStmt(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, OracleError> {
        match e {
            Expr::Const(s) => Ok(Value::Scalar(s.clone())),
            Expr::Var(name) => self
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| OracleError::Unbound(name.clone())),
            Expr::Len(inner) => {
                let v = self.eval(inner)?;
                Ok(Value::Scalar(Scalar::I64(v.logical_len() as i64)))
            }
            Expr::Apply(op, args) => {
                let values = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.eval_apply(*op, &values)
            }
            Expr::Read { pos, data, len } => {
                let pos = self.eval_scalar_int(pos)?;
                if pos < 0 {
                    return Err(OracleError::Shape(
                        "read position must be non-negative".into(),
                    ));
                }
                let len = match len {
                    Some(l) => {
                        let l = self.eval_scalar_int(l)?;
                        if l < 0 {
                            return Err(OracleError::Shape(
                                "read length must be non-negative".into(),
                            ));
                        }
                        l as usize
                    }
                    None => self.chunk,
                };
                let chunk = self.buffers.read(data, pos as usize, len)?;
                Ok(Value::dense(chunk))
            }
            Expr::Map { f, inputs } => {
                let values = inputs
                    .iter()
                    .map(|i| self.eval(i))
                    .collect::<Result<Vec<_>, _>>()?;
                self.eval_map(f, &values)
            }
            Expr::Filter { p, inputs } => {
                let values = inputs
                    .iter()
                    .map(|i| self.eval(i))
                    .collect::<Result<Vec<_>, _>>()?;
                self.eval_filter(p, &values)
            }
            Expr::Fold { r, init, input } => {
                let init = self
                    .eval(init)?
                    .as_scalar()
                    .cloned()
                    .ok_or_else(|| OracleError::Shape("fold init must be scalar".into()))?;
                let v = self.eval_vector(input)?;
                Ok(Value::Scalar(fold(*r, &init, &v.data, v.sel.as_ref())?))
            }
            Expr::Gather { indices, data } => {
                let idx = self.eval_vector(indices)?.condense()?.data;
                let buffer = self.buffers.buffer(data)?.clone();
                Ok(Value::dense(gather(&buffer, &idx)?))
            }
            Expr::Gen { f, len } => {
                let n = self.eval_scalar_int(len)?;
                if n < 0 {
                    return Err(OracleError::Shape("gen length must be non-negative".into()));
                }
                let index = Value::dense(Array::I64((0..n).collect()));
                if f.params.len() == 1
                    && matches!(f.body.as_ref(), Expr::Var(v) if *v == f.params[0])
                {
                    return Ok(index);
                }
                self.eval_map(f, &[index])
            }
            Expr::Condense(inner) => {
                let v = self.eval_vector(inner)?;
                Ok(Value::Vector(v.condense()?))
            }
            Expr::Merge { kind, left, right } => {
                let l = self.eval_vector(left)?.condense()?.data;
                let r = self.eval_vector(right)?.condense()?.data;
                Ok(Value::dense(merge(*kind, &l, &r)?))
            }
        }
    }

    fn eval_vector(&mut self, e: &Expr) -> Result<Vector, OracleError> {
        match self.eval(e)? {
            Value::Vector(v) => Ok(v),
            Value::Scalar(s) => Ok(Vector::dense(Array::splat(&s, 1))),
        }
    }

    fn eval_scalar_int(&mut self, e: &Expr) -> Result<i64, OracleError> {
        self.eval(e)?
            .as_i64()
            .ok_or_else(|| OracleError::Shape("expected a scalar integer".into()))
    }

    /// Scalar ops over mixed scalar/vector operands: pure-scalar operands
    /// compute as a one-lane column; any vector lifts element-wise.
    fn eval_apply(&mut self, op: ScalarOp, values: &[Value]) -> Result<Value, OracleError> {
        let any_vector = values.iter().any(|v| matches!(v, Value::Vector(_)));
        if !any_vector {
            // One-lane evaluation: the first scalar becomes a column so the
            // common-length rule sees an array operand.
            let first = values
                .first()
                .and_then(Value::as_scalar)
                .cloned()
                .map(|s| Array::splat(&s, 1));
            let mut operands = Vec::with_capacity(values.len());
            if let Some(a) = first {
                operands.push(OOperand::Col(a));
            }
            for v in &values[1.min(values.len())..] {
                operands.push(OOperand::Const(v.as_scalar().cloned().expect("checked")));
            }
            let result = map_op(op, &operands)?;
            return Ok(Value::Scalar(result.get(0)?));
        }
        let sel = common_sel(values)?;
        let operands: Vec<OOperand> = values
            .iter()
            .map(|v| match v {
                Value::Vector(vec) => OOperand::Col(vec.data.clone()),
                Value::Scalar(s) => OOperand::Const(s.clone()),
            })
            .collect();
        let data = map_op(op, &operands)?;
        Ok(Value::Vector(Vector { data, sel }))
    }

    /// Bind parameters, evaluate the lambda body with lifted scalar ops.
    fn eval_map(&mut self, f: &Lambda, inputs: &[Value]) -> Result<Value, OracleError> {
        if f.params.len() != inputs.len() {
            return Err(OracleError::Shape(format!(
                "map arity mismatch: {} params, {} inputs",
                f.params.len(),
                inputs.len()
            )));
        }
        let sel = common_sel(inputs)?;
        let shadowed: Vec<Option<Value>> = f
            .params
            .iter()
            .zip(inputs)
            .map(|(p, v)| {
                let old = self.vars.get(p).cloned();
                self.vars.insert(p.clone(), v.clone());
                old
            })
            .collect();
        let result = self.eval(&f.body);
        for (p, old) in f.params.iter().zip(shadowed) {
            if let Some(v) = old {
                self.vars.insert(p.clone(), v);
            }
            // Previously-unbound parameters stay bound — the engine's flat
            // environment does the same.
        }
        match result? {
            Value::Vector(v) => Ok(Value::Vector(v)),
            Value::Scalar(s) => {
                let n = inputs
                    .iter()
                    .find_map(|v| v.as_vector().map(Vector::len))
                    .unwrap_or(1);
                Ok(Value::Vector(Vector {
                    data: Array::splat(&s, n),
                    sel,
                }))
            }
        }
    }

    /// Filters compute a new selection over the flow carrier (`inputs[0]`)
    /// without moving data. The engine has two paths (a comparison fast
    /// path and a generic predicate path) whose error behavior differs
    /// slightly; the oracle branches on the same condition.
    fn eval_filter(&mut self, p: &Lambda, inputs: &[Value]) -> Result<Value, OracleError> {
        let flow = inputs
            .first()
            .and_then(Value::as_vector)
            .ok_or_else(|| OracleError::Shape("filter flow must be a vector".into()))?
            .clone();
        let fast = if let Expr::Apply(op, args) = p.body.as_ref() {
            if op.is_comparison()
                && args
                    .iter()
                    .all(|a| matches!(a, Expr::Var(_) | Expr::Const(_)))
            {
                let mut operands = Vec::with_capacity(args.len());
                for a in args {
                    operands.push(match a {
                        Expr::Const(s) => OOperand::Const(s.clone()),
                        Expr::Var(name) => match p.params.iter().position(|x| x == name) {
                            Some(i) => match &inputs[i] {
                                Value::Vector(v) => OOperand::Col(v.data.clone()),
                                Value::Scalar(s) => OOperand::Const(s.clone()),
                            },
                            None => {
                                return Err(OracleError::Unbound(format!(
                                    "predicate variable {name}"
                                )))
                            }
                        },
                        _ => unreachable!("atomic args checked"),
                    });
                }
                let bools = map_op(*op, &operands)?;
                Some(filter_bools(&bools, flow.sel.as_ref())?)
            } else {
                None
            }
        } else {
            None
        };
        let sel = match fast {
            Some(s) => s,
            None => {
                let bools = self.eval_map(p, inputs)?;
                let bools = bools
                    .as_vector()
                    .ok_or_else(|| OracleError::Shape("predicate must be vectorized".into()))?;
                filter_bools(&bools.data, flow.sel.as_ref())?
            }
        };
        Ok(Value::Vector(Vector::selected(flow.data, sel)))
    }
}

/// The common pending selection of vector operands (scalars have none).
fn common_sel(values: &[Value]) -> Result<Option<SelVec>, OracleError> {
    let mut sel: Option<&SelVec> = None;
    for v in values {
        if let Value::Vector(vec) = v {
            match (&sel, &vec.sel) {
                (None, Some(s)) => sel = Some(s),
                (Some(a), Some(b)) if *a != b => {
                    return Err(OracleError::Shape(
                        "operands carry different selections".into(),
                    ))
                }
                _ => {}
            }
        }
    }
    Ok(sel.cloned())
}

/// One operand of an element-wise op: a column or a broadcast constant.
enum OOperand {
    Col(Array),
    Const(Scalar),
}

impl OOperand {
    fn scalar_type(&self) -> ScalarType {
        match self {
            OOperand::Col(a) => a.scalar_type(),
            OOperand::Const(s) => s.scalar_type(),
        }
    }

    fn len(&self) -> Option<usize> {
        match self {
            OOperand::Col(a) => Some(a.len()),
            OOperand::Const(_) => None,
        }
    }
}

/// The common lane count: columns must agree, and one must exist.
fn common_len(operands: &[OOperand]) -> Result<usize, OracleError> {
    let mut len = None;
    for o in operands {
        if let Some(n) = o.len() {
            match len {
                None => len = Some(n),
                Some(m) if m != n => return Err(OracleError::LengthMismatch { left: m, right: n }),
                _ => {}
            }
        }
    }
    len.ok_or(OracleError::NoArrayOperand)
}

fn promoted(operands: &[OOperand], op: ScalarOp) -> Result<ScalarType, OracleError> {
    let mut ty = operands[0].scalar_type();
    for o in &operands[1..] {
        ty = ty
            .promote(o.scalar_type())
            .ok_or_else(|| OracleError::NoKernel(format!("{} on mixed types", op.name())))?;
    }
    Ok(ty)
}

fn no_kernel(op: ScalarOp, ty: ScalarType) -> OracleError {
    OracleError::NoKernel(format!("{} over {ty:?}", op.name()))
}

/// Widened integer lane; errors on non-integer columns and non-integer
/// constants (the engine's coercion is widening-only).
fn int_lane(o: &OOperand, i: usize) -> Result<i64, OracleError> {
    match o {
        OOperand::Col(a) => match a {
            Array::I8(v) => Ok(v[i] as i64),
            Array::I16(v) => Ok(v[i] as i64),
            Array::I32(v) => Ok(v[i] as i64),
            Array::I64(v) => Ok(v[i]),
            other => Err(OracleError::NoKernel(format!(
                "integer coercion of {:?}",
                other.scalar_type()
            ))),
        },
        OOperand::Const(s) => s
            .as_i64()
            .ok_or_else(|| OracleError::NoKernel("integer coercion of constant".into())),
    }
}

fn f64_lane(o: &OOperand, i: usize) -> Result<f64, OracleError> {
    match o {
        OOperand::Col(a) => a
            .get(i)?
            .as_f64()
            .ok_or_else(|| OracleError::NoKernel("float coercion".into())),
        OOperand::Const(s) => s
            .as_f64()
            .ok_or_else(|| OracleError::NoKernel("float coercion of constant".into())),
    }
}

fn bool_lane(o: &OOperand, i: usize) -> Result<bool, OracleError> {
    match o {
        OOperand::Col(Array::Bool(v)) => Ok(v[i]),
        OOperand::Const(Scalar::Bool(b)) => Ok(*b),
        other => Err(OracleError::NoKernel(format!(
            "bool coercion of {:?}",
            other.scalar_type()
        ))),
    }
}

fn str_lane(o: &OOperand, i: usize) -> Result<String, OracleError> {
    match o {
        OOperand::Col(Array::Str(v)) => Ok(v[i].clone()),
        OOperand::Const(Scalar::Str(s)) => Ok(s.clone()),
        other => Err(OracleError::NoKernel(format!(
            "string coercion of {:?}",
            other.scalar_type()
        ))),
    }
}

/// Lane-level validation done up front, the way the engine's columnar
/// coercion fails before any lane is touched (so zero-length columns still
/// report type errors).
fn check_lanes(
    operands: &[OOperand],
    check: impl Fn(&OOperand) -> Result<(), OracleError>,
) -> Result<(), OracleError> {
    operands.iter().try_for_each(check)
}

fn is_int(o: &OOperand) -> Result<(), OracleError> {
    if o.scalar_type().is_integer() {
        Ok(())
    } else {
        Err(OracleError::NoKernel(format!(
            "integer coercion of {:?}",
            o.scalar_type()
        )))
    }
}

fn is_numeric(o: &OOperand) -> Result<(), OracleError> {
    if o.scalar_type().is_numeric() {
        Ok(())
    } else {
        Err(OracleError::NoKernel(format!(
            "float coercion of {:?}",
            o.scalar_type()
        )))
    }
}

fn is_bool(o: &OOperand) -> Result<(), OracleError> {
    if o.scalar_type() == ScalarType::Bool {
        Ok(())
    } else {
        Err(OracleError::NoKernel(format!(
            "bool coercion of {:?}",
            o.scalar_type()
        )))
    }
}

fn is_str(o: &OOperand) -> Result<(), OracleError> {
    if o.scalar_type() == ScalarType::Str {
        Ok(())
    } else {
        Err(OracleError::NoKernel(format!(
            "string coercion of {:?}",
            o.scalar_type()
        )))
    }
}

/// Fibonacci-hash an `i64` (must match the kernels' multiplier).
fn hash_i64(v: i64) -> i64 {
    (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as i64
}

/// FNV-1a over bytes (must match the kernels' basis and prime).
fn hash_str(s: &str) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h as i64
}

/// Apply one scalar op element-wise over the operands — the oracle's
/// counterpart of the vectorized `map` kernels, written lane-at-a-time.
fn map_op(op: ScalarOp, operands: &[OOperand]) -> Result<Array, OracleError> {
    let n = common_len(operands)?;
    if operands.len() != op.arity() {
        return Err(OracleError::NoKernel(format!(
            "{} arity {} applied to {} operands",
            op.name(),
            op.arity(),
            operands.len()
        )));
    }

    let int_arith = |f: fn(i64, i64) -> i64| -> Result<Array, OracleError> {
        let p = promoted(operands, op)?;
        match p {
            t if t.is_integer() => {
                check_lanes(operands, is_int)?;
                let mut out = Array::empty(t);
                for i in 0..n {
                    let a = int_lane(&operands[0], i)?;
                    let b = int_lane(&operands[1], i)?;
                    out.push(Scalar::int_of_type(f(a, b), t))?;
                }
                Ok(out)
            }
            ScalarType::F64 => Err(no_kernel(op, p)), // handled by caller
            other => Err(no_kernel(op, other)),
        }
    };
    let arith =
        |f_int: fn(i64, i64) -> i64, f_f64: fn(f64, f64) -> f64| -> Result<Array, OracleError> {
            let p = promoted(operands, op)?;
            if p == ScalarType::F64 {
                check_lanes(operands, is_numeric)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(f_f64(
                        f64_lane(&operands[0], i)?,
                        f64_lane(&operands[1], i)?,
                    ));
                }
                Ok(Array::F64(out))
            } else {
                int_arith(f_int)
            }
        };
    let compare = |f: fn(std::cmp::Ordering) -> bool,
                   f_eq_bool: Option<fn(bool, bool) -> bool>|
     -> Result<Array, OracleError> {
        let p = promoted(operands, op)?;
        let mut out = Vec::with_capacity(n);
        match p {
            t if t.is_integer() => {
                check_lanes(operands, is_int)?;
                for i in 0..n {
                    let a = int_lane(&operands[0], i)?;
                    let b = int_lane(&operands[1], i)?;
                    out.push(f(a.cmp(&b)));
                }
            }
            ScalarType::F64 => {
                check_lanes(operands, is_numeric)?;
                for i in 0..n {
                    let a = f64_lane(&operands[0], i)?;
                    let b = f64_lane(&operands[1], i)?;
                    // IEEE semantics: unordered (NaN) lanes satisfy only Ne.
                    out.push(match a.partial_cmp(&b) {
                        Some(ord) => f(ord),
                        None => op == ScalarOp::Ne,
                    });
                }
            }
            ScalarType::Bool => {
                check_lanes(operands, is_bool)?;
                let g = f_eq_bool.ok_or_else(|| no_kernel(op, p))?;
                for i in 0..n {
                    out.push(g(bool_lane(&operands[0], i)?, bool_lane(&operands[1], i)?));
                }
            }
            // Integers are covered by the guard above; Str is all that's
            // left, but exhaustiveness can't see through the guard.
            _ => {
                check_lanes(operands, is_str)?;
                for i in 0..n {
                    let a = str_lane(&operands[0], i)?;
                    let b = str_lane(&operands[1], i)?;
                    out.push(f(a.cmp(&b)));
                }
            }
        }
        Ok(Array::Bool(out))
    };

    use std::cmp::Ordering;
    match op {
        ScalarOp::Add => arith(|a, b| a.wrapping_add(b), |a, b| a + b),
        ScalarOp::Sub => arith(|a, b| a.wrapping_sub(b), |a, b| a - b),
        ScalarOp::Mul => arith(|a, b| a.wrapping_mul(b), |a, b| a * b),
        ScalarOp::Div => arith(
            |a, b| if b == 0 { 0 } else { a.wrapping_div(b) },
            |a, b| a / b,
        ),
        ScalarOp::Rem => arith(
            |a, b| if b == 0 { 0 } else { a.wrapping_rem(b) },
            |a, b| a % b,
        ),
        ScalarOp::Min => arith(|a, b| a.min(b), f64::min),
        ScalarOp::Max => arith(|a, b| a.max(b), f64::max),
        ScalarOp::Eq => compare(|o| o == Ordering::Equal, Some(|a, b| a == b)),
        ScalarOp::Ne => compare(|o| o != Ordering::Equal, Some(|a, b| a != b)),
        ScalarOp::Lt => compare(|o| o == Ordering::Less, Some(|a, b| !a & b)),
        ScalarOp::Le => compare(|o| o != Ordering::Greater, Some(|a, b| a <= b)),
        ScalarOp::Gt => compare(|o| o == Ordering::Greater, Some(|a, b| a & !b)),
        ScalarOp::Ge => compare(|o| o != Ordering::Less, Some(|a, b| a >= b)),
        ScalarOp::And | ScalarOp::Or => {
            check_lanes(operands, is_bool)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let a = bool_lane(&operands[0], i)?;
                let b = bool_lane(&operands[1], i)?;
                out.push(if op == ScalarOp::And { a && b } else { a || b });
            }
            Ok(Array::Bool(out))
        }
        ScalarOp::Not => {
            check_lanes(operands, is_bool)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(!bool_lane(&operands[0], i)?);
            }
            Ok(Array::Bool(out))
        }
        ScalarOp::Neg | ScalarOp::Abs => {
            let t = operands[0].scalar_type();
            if t.is_integer() {
                check_lanes(operands, is_int)?;
                let mut out = Array::empty(t);
                for i in 0..n {
                    let a = int_lane(&operands[0], i)?;
                    let r = if op == ScalarOp::Neg {
                        a.wrapping_neg()
                    } else {
                        a.wrapping_abs()
                    };
                    out.push(Scalar::int_of_type(r, t))?;
                }
                Ok(out)
            } else if t == ScalarType::F64 {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let a = f64_lane(&operands[0], i)?;
                    out.push(if op == ScalarOp::Neg { -a } else { a.abs() });
                }
                Ok(Array::F64(out))
            } else {
                Err(no_kernel(op, t))
            }
        }
        ScalarOp::Sqrt => {
            check_lanes(operands, is_numeric)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(f64_lane(&operands[0], i)?.sqrt());
            }
            Ok(Array::F64(out))
        }
        ScalarOp::Hash => {
            let mut out = Vec::with_capacity(n);
            match operands[0].scalar_type() {
                ScalarType::Str => {
                    for i in 0..n {
                        out.push(hash_str(&str_lane(&operands[0], i)?));
                    }
                }
                ScalarType::F64 => {
                    for i in 0..n {
                        out.push(hash_i64(f64_lane(&operands[0], i)?.to_bits() as i64));
                    }
                }
                ScalarType::Bool => {
                    for i in 0..n {
                        out.push(hash_i64(bool_lane(&operands[0], i)? as i64));
                    }
                }
                _ => {
                    check_lanes(operands, is_int)?;
                    for i in 0..n {
                        out.push(hash_i64(int_lane(&operands[0], i)?));
                    }
                }
            }
            Ok(Array::I64(out))
        }
        ScalarOp::Cast(target) => {
            let src = match &operands[0] {
                OOperand::Col(a) => a.clone(),
                OOperand::Const(s) => Array::splat(s, n),
            };
            Ok(src.cast(target)?)
        }
        ScalarOp::StrLen => {
            check_lanes(operands, is_str)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(str_lane(&operands[0], i)?.len() as i64);
            }
            Ok(Array::I64(out))
        }
        ScalarOp::Concat => {
            check_lanes(operands, is_str)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut s = str_lane(&operands[0], i)?;
                s.push_str(&str_lane(&operands[1], i)?);
                out.push(s);
            }
            Ok(Array::Str(out))
        }
    }
}

/// New selection from a boolean column: the lanes of `existing` (or all
/// lanes) whose predicate is true.
fn filter_bools(bools: &Array, existing: Option<&SelVec>) -> Result<SelVec, OracleError> {
    let b = match bools {
        Array::Bool(v) => v,
        other => {
            return Err(OracleError::NoKernel(format!(
                "filter over {:?}",
                other.scalar_type()
            )))
        }
    };
    let mut out = Vec::new();
    match existing {
        Some(sel) => {
            for &i in sel.indices() {
                if (i as usize) >= b.len() {
                    return Err(OracleError::Precondition(format!(
                        "selection index {i} out of range of {}-lane predicate",
                        b.len()
                    )));
                }
                if b[i as usize] {
                    out.push(i);
                }
            }
        }
        None => {
            for (i, &v) in b.iter().enumerate() {
                if v {
                    out.push(i as u32);
                }
            }
        }
    }
    Ok(SelVec::new(out))
}

/// Reduce `input` (restricted to `sel`) with `f`, starting from `init` —
/// the oracle's counterpart of the fold kernels, with identical promotion.
fn fold(
    f: FoldFn,
    init: &Scalar,
    input: &Array,
    sel: Option<&SelVec>,
) -> Result<Scalar, OracleError> {
    let elem_ty = input.scalar_type();
    let selected: Vec<usize> = match sel {
        Some(s) => s.indices().iter().map(|&i| i as usize).collect(),
        None => (0..input.len()).collect(),
    };
    match f {
        FoldFn::Count => {
            let base = init.as_i64().unwrap_or(0);
            Ok(Scalar::I64(base + selected.len() as i64))
        }
        FoldFn::All | FoldFn::Any => {
            let bools = match input {
                Array::Bool(v) => v,
                other => {
                    return Err(OracleError::NoKernel(format!(
                        "{} over {:?}",
                        f.name(),
                        other.scalar_type()
                    )))
                }
            };
            let init_b = init.as_bool().unwrap_or(f == FoldFn::All);
            let result = if f == FoldFn::All {
                init_b && selected.iter().all(|&i| bools[i])
            } else {
                init_b || selected.iter().any(|&i| bools[i])
            };
            Ok(Scalar::Bool(result))
        }
        FoldFn::Sum | FoldFn::Min | FoldFn::Max => {
            let result_ty = if elem_ty == ScalarType::F64 {
                ScalarType::F64
            } else {
                elem_ty
                    .promote(init.scalar_type())
                    .filter(|t| t.is_numeric())
                    .ok_or_else(|| {
                        OracleError::NoKernel(format!(
                            "{} over {elem_ty:?} with {:?} init",
                            f.name(),
                            init.scalar_type()
                        ))
                    })?
            };
            if result_ty == ScalarType::F64 {
                if !elem_ty.is_numeric() {
                    return Err(OracleError::NoKernel(format!(
                        "{} over {elem_ty:?}",
                        f.name()
                    )));
                }
                let init_v = init.as_f64().ok_or_else(|| {
                    OracleError::NoKernel(format!("{} with non-numeric init", f.name()))
                })?;
                let mut acc = init_v;
                for &i in &selected {
                    let x = input.get(i)?.as_f64().expect("numeric checked");
                    acc = match f {
                        FoldFn::Sum => acc + x,
                        FoldFn::Min => acc.min(x),
                        FoldFn::Max => acc.max(x),
                        _ => unreachable!(),
                    };
                }
                Ok(Scalar::F64(acc))
            } else {
                let init_v = init.as_i64().ok_or_else(|| {
                    OracleError::NoKernel(format!("{} with non-integer init", f.name()))
                })?;
                let mut acc = init_v;
                for &i in &selected {
                    let x = input.get(i)?.as_i64().expect("integer checked");
                    acc = match f {
                        FoldFn::Sum => acc.wrapping_add(x),
                        FoldFn::Min => acc.min(x),
                        FoldFn::Max => acc.max(x),
                        _ => unreachable!(),
                    };
                }
                Ok(Scalar::int_of_type(acc, result_ty))
            }
        }
    }
}

/// Bounds-checked `data[indices[i]]`.
fn gather(data: &Array, indices: &Array) -> Result<Array, OracleError> {
    if !indices.scalar_type().is_integer() {
        return Err(OracleError::NoKernel(format!(
            "gather with {:?} indices",
            indices.scalar_type()
        )));
    }
    let n = data.len();
    let mut out = Array::empty(data.scalar_type());
    for i in 0..indices.len() {
        let idx = indices.get(i)?.as_i64().expect("integer checked");
        if idx < 0 || idx as usize >= n {
            return Err(OracleError::Storage(StorageError::OutOfBounds {
                index: idx.max(0) as usize,
                len: n,
            }));
        }
        out.push(data.get(idx as usize)?)?;
    }
    Ok(out)
}

/// Random write with conflict handling; the target grows with defaults.
fn scatter(
    target: &mut Array,
    indices: &Array,
    values: &Array,
    conflict: ConflictFn,
) -> Result<(), OracleError> {
    if !indices.scalar_type().is_integer() {
        return Err(OracleError::NoKernel(format!(
            "scatter with {:?} indices",
            indices.scalar_type()
        )));
    }
    if indices.len() != values.len() {
        return Err(OracleError::LengthMismatch {
            left: indices.len(),
            right: values.len(),
        });
    }
    if values.scalar_type() != target.scalar_type() {
        return Err(OracleError::Storage(StorageError::TypeMismatch {
            expected: target.scalar_type(),
            found: values.scalar_type(),
        }));
    }
    let idx: Vec<i64> = (0..indices.len())
        .map(|i| indices.get(i).map(|s| s.as_i64().expect("integer checked")))
        .collect::<Result<_, _>>()?;
    if let Some(&max) = idx.iter().max() {
        if max < 0 {
            return Err(OracleError::Precondition("negative scatter index".into()));
        }
        let needed = max as usize + 1;
        while target.len() < needed {
            target.push(default_scalar(target.scalar_type()))?;
        }
    }
    for (i, &at) in idx.iter().enumerate() {
        let old = target.get(at as usize)?;
        let new = values.get(i)?;
        let merged = conflict_merge(&old, &new, conflict)?;
        target.write_at(at as usize, &Array::splat(&merged, 1))?;
    }
    Ok(())
}

fn default_scalar(ty: ScalarType) -> Scalar {
    match ty {
        t if t.is_integer() => Scalar::int_of_type(0, t),
        ScalarType::F64 => Scalar::F64(0.0),
        ScalarType::Bool => Scalar::Bool(false),
        ScalarType::Str => Scalar::Str(String::new()),
        _ => unreachable!("all types covered"),
    }
}

/// Scatter conflict resolution on same-typed scalars.
///
/// Integer `add` is computed at `i64` and truncated to the slot width —
/// identical to the engine's native-width addition in release builds (the
/// fuzzer keeps scattered values small so debug overflow checks never
/// fire on either side).
fn conflict_merge(old: &Scalar, new: &Scalar, c: ConflictFn) -> Result<Scalar, OracleError> {
    let ty = old.scalar_type();
    Ok(match (ty, c) {
        (_, ConflictFn::LastWins) if ty != ScalarType::Str => new.clone(),
        (ScalarType::Str, ConflictFn::LastWins) => new.clone(),
        (ScalarType::Str, other) => {
            return Err(OracleError::Precondition(format!(
                "scatter conflict {other:?} not defined for strings"
            )))
        }
        (ScalarType::Bool, ConflictFn::Add) | (ScalarType::Bool, ConflictFn::Max) => {
            Scalar::Bool(old.as_bool().expect("bool") | new.as_bool().expect("bool"))
        }
        (ScalarType::Bool, ConflictFn::Min) => {
            Scalar::Bool(old.as_bool().expect("bool") & new.as_bool().expect("bool"))
        }
        (ScalarType::F64, ConflictFn::Add) => {
            Scalar::F64(old.as_f64().expect("f64") + new.as_f64().expect("f64"))
        }
        (ScalarType::F64, ConflictFn::Min) => {
            let (o, nv) = (old.as_f64().expect("f64"), new.as_f64().expect("f64"));
            Scalar::F64(if nv < o { nv } else { o })
        }
        (ScalarType::F64, ConflictFn::Max) => {
            let (o, nv) = (old.as_f64().expect("f64"), new.as_f64().expect("f64"));
            Scalar::F64(if nv > o { nv } else { o })
        }
        (t, ConflictFn::Add) => {
            let (o, nv) = (old.as_i64().expect("int"), new.as_i64().expect("int"));
            Scalar::int_of_type(o.wrapping_add(nv), t)
        }
        (t, ConflictFn::Min) => {
            let (o, nv) = (old.as_i64().expect("int"), new.as_i64().expect("int"));
            Scalar::int_of_type(if nv < o { nv } else { o }, t)
        }
        (t, ConflictFn::Max) => {
            let (o, nv) = (old.as_i64().expect("int"), new.as_i64().expect("int"));
            Scalar::int_of_type(if nv > o { nv } else { o }, t)
        }
        (_, ConflictFn::LastWins) => unreachable!("handled above"),
    })
}

/// Sorted-input merge, mirroring the kernel's preconditions: equal types,
/// verified sortedness, no NaN on float inputs, no boolean merges.
fn merge(kind: MergeKind, left: &Array, right: &Array) -> Result<Array, OracleError> {
    use std::cmp::Ordering::{self, Equal, Greater, Less};
    if left.scalar_type() != right.scalar_type() {
        return Err(OracleError::NoKernel(format!(
            "merge {} over {:?} and {:?}",
            kind.name(),
            left.scalar_type(),
            right.scalar_type()
        )));
    }
    let ty = left.scalar_type();
    if ty == ScalarType::Bool {
        return Err(OracleError::NoKernel("merge over Bool".into()));
    }
    if ty == ScalarType::F64 {
        let has_nan = |a: &Array| {
            (0..a.len()).any(|i| {
                a.get(i)
                    .ok()
                    .and_then(|s| s.as_f64())
                    .is_some_and(f64::is_nan)
            })
        };
        if has_nan(left) || has_nan(right) {
            return Err(OracleError::Precondition("merge input contains NaN".into()));
        }
    }
    let cmp = |a: &Array, i: usize, b: &Array, j: usize| -> Ordering {
        let x = a.get(i).expect("in range");
        let y = b.get(j).expect("in range");
        match (x, y) {
            (Scalar::F64(x), Scalar::F64(y)) => x.partial_cmp(&y).expect("NaN excluded"),
            (Scalar::Str(x), Scalar::Str(y)) => x.cmp(&y),
            (x, y) => x
                .as_i64()
                .expect("integer")
                .cmp(&y.as_i64().expect("integer")),
        }
    };
    for (name, side) in [("left", left), ("right", right)] {
        for i in 1..side.len() {
            if cmp(side, i - 1, side, i) == Greater {
                return Err(OracleError::Precondition(format!(
                    "merge {name} input is not sorted"
                )));
            }
        }
    }
    let (nl, nr) = (left.len(), right.len());
    Ok(match kind {
        MergeKind::Union => {
            let mut out = Array::empty(ty);
            let (mut i, mut j) = (0, 0);
            while i < nl && j < nr {
                if cmp(left, i, right, j) != Greater {
                    out.push(left.get(i)?)?;
                    i += 1;
                } else {
                    out.push(right.get(j)?)?;
                    j += 1;
                }
            }
            while i < nl {
                out.push(left.get(i)?)?;
                i += 1;
            }
            while j < nr {
                out.push(right.get(j)?)?;
                j += 1;
            }
            out
        }
        MergeKind::Intersect => {
            let mut out = Array::empty(ty);
            let (mut i, mut j) = (0, 0);
            while i < nl && j < nr {
                match cmp(left, i, right, j) {
                    Less => i += 1,
                    Greater => j += 1,
                    Equal => {
                        out.push(left.get(i)?)?;
                        i += 1;
                        j += 1;
                    }
                }
            }
            out
        }
        MergeKind::Diff => {
            let mut out = Array::empty(ty);
            let (mut i, mut j) = (0, 0);
            while i < nl {
                if j >= nr {
                    out.push(left.get(i)?)?;
                    i += 1;
                    continue;
                }
                match cmp(left, i, right, j) {
                    Less => {
                        out.push(left.get(i)?)?;
                        i += 1;
                    }
                    Greater => j += 1,
                    Equal => i += 1,
                }
            }
            out
        }
        MergeKind::JoinLeftIdx | MergeKind::JoinRightIdx => {
            let mut li: Vec<i64> = Vec::new();
            let mut ri: Vec<i64> = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < nl && j < nr {
                match cmp(left, i, right, j) {
                    Less => i += 1,
                    Greater => j += 1,
                    Equal => {
                        let mut i_end = i + 1;
                        while i_end < nl && cmp(left, i_end, left, i) == Equal {
                            i_end += 1;
                        }
                        let mut j_end = j + 1;
                        while j_end < nr && cmp(right, j_end, right, j) == Equal {
                            j_end += 1;
                        }
                        for a in i..i_end {
                            for b in j..j_end {
                                li.push(a as i64);
                                ri.push(b as i64);
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
            Array::I64(if kind == MergeKind::JoinLeftIdx {
                li
            } else {
                ri
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, buffers: OracleBuffers) -> Result<OracleBuffers, OracleError> {
        let p = parse_program(src).unwrap();
        Oracle::new(1024).run(&p, buffers)
    }

    #[test]
    fn basic_pipeline() {
        let b = OracleBuffers::new().with_input("xs", Array::from(vec![1i64, 5, 8, 12]));
        let out = run(
            "let a = read 0 xs in { let t = filter (\\x -> x > 2 && x < 10) a in { write out 0 (condense t) } }",
            b,
        )
        .unwrap();
        assert_eq!(out.output("out").unwrap(), &Array::from(vec![5i64, 8]));
    }

    #[test]
    fn fold_promotion_and_count() {
        let b = OracleBuffers::new().with_input("xs", Array::from(vec![1i64, 2, 3]));
        let out = run(
            "let a = read 0 xs in { let s = fold sum 10 a in { write out 0 s } }",
            b,
        )
        .unwrap();
        assert_eq!(out.output("out").unwrap(), &Array::from(vec![16i64]));
    }

    #[test]
    fn merge_and_scatter() {
        let b = OracleBuffers::new()
            .with_input("xs", Array::from(vec![1i64, 3, 5]))
            .with_input("ys", Array::from(vec![2i64, 3]));
        let out = run(
            "let a = read 0 xs in { let b = read 0 ys in { let m = merge union a b in { write out 0 m } } }",
            b,
        )
        .unwrap();
        assert_eq!(
            out.output("out").unwrap(),
            &Array::from(vec![1i64, 2, 3, 3, 5])
        );

        let b = OracleBuffers::new()
            .with_input("vals", Array::from(vec![5i64, 7, 9]))
            .with_input("keys", Array::from(vec![1i64, 1, 0]));
        let out = run(
            "let k = read 0 keys in { let v = read 0 vals in { scatter agg k v add } }",
            b,
        )
        .unwrap();
        assert_eq!(out.output("agg").unwrap(), &Array::from(vec![9i64, 12]));
    }

    #[test]
    fn loops_and_short_reads() {
        // Chunked copy loop: terminates via the empty tail read.
        let src = "mut i\ni := 0\nloop {\n  let c = read i xs in {\n    if len(c) == 0 then { break }\n    write out i c\n    i := i + len(c)\n  }\n}";
        let data: Vec<i64> = (0..3000).collect();
        let b = OracleBuffers::new().with_input("xs", Array::from(data.clone()));
        let out = run(src, b).unwrap();
        assert_eq!(out.output("out").unwrap(), &Array::from(data));
    }

    #[test]
    fn typed_errors_not_panics() {
        // Negative gen length.
        let err = run(
            "let g = gen (\\i -> i) (0 - 5) in { write out 0 g }",
            OracleBuffers::new(),
        )
        .unwrap_err();
        assert!(matches!(err, OracleError::Shape(_)));
        // Negative read position.
        let b = OracleBuffers::new().with_input("xs", Array::from(vec![1i64]));
        let err = run("let a = read (0 - 1) xs in { write out 0 a }", b).unwrap_err();
        assert!(matches!(err, OracleError::Shape(_)));
        // Unknown buffer / unbound var.
        let err = run("write out 0 missing", OracleBuffers::new()).unwrap_err();
        assert!(matches!(err, OracleError::Unbound(_)));
        let err = run(
            "let a = read 0 nope in { write out 0 a }",
            OracleBuffers::new(),
        )
        .unwrap_err();
        assert!(matches!(err, OracleError::UnknownBuffer(_)));
        // Unsorted merge input.
        let b = OracleBuffers::new()
            .with_input("xs", Array::from(vec![3i64, 1]))
            .with_input("ys", Array::from(vec![2i64]));
        let err = run(
            "let a = read 0 xs in { let b = read 0 ys in { write out 0 (merge union a b) } }",
            b,
        )
        .unwrap_err();
        assert!(matches!(err, OracleError::Precondition(_)));
    }

    #[test]
    fn iteration_guard() {
        let err = parse_program("loop { }")
            .map(|p| {
                Oracle::new(16)
                    .with_max_iterations(8)
                    .run(&p, OracleBuffers::new())
            })
            .unwrap()
            .unwrap_err();
        assert_eq!(err, OracleError::IterationLimit(8));
    }

    #[test]
    fn hash_constants_match_kernels() {
        // Pinned values: if the kernels' multiplier/basis ever change,
        // these fail before the fuzzer does.
        assert_eq!(hash_i64(1), 0x9E37_79B9_7F4A_7C15u64 as i64);
        assert_eq!(hash_str(""), 0xcbf2_9ce4_8422_2325u64 as i64);
    }
}
