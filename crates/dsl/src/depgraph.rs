//! Dependency graphs over one loop iteration (Fig. 3 of the paper).
//!
//! A [`DepGraph`] is built from a *normalized* statement list (usually the
//! body of the chunk loop). Its nodes are the data-parallel operations —
//! `let`-bound skeletons plus `write`/`scatter` sinks — and its edges are
//! the dataflow dependencies between them. Mutable-variable updates and
//! control flow are excluded, exactly as in the paper's Fig. 3 ("excluding
//! updating mutable variables and control-flow").
//!
//! Each node carries a cost, seeded from [`Expr::static_cost`] and
//! replaceable with measured per-operation profile data — the input the
//! §III-B greedy partitioner ([`crate::partition`]) ranks nodes by.

use std::collections::HashMap;

use crate::ast::{Expr, OpClass, Stmt};
use crate::printer::print_expr;

/// Index of a node in its graph.
pub type NodeId = usize;

/// One data-parallel operation in the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Display label, e.g. `map (\x -> 2 * x)` or `write v`.
    pub label: String,
    /// Coarse class (drives partitioning heuristics).
    pub class: OpClass,
    /// The variable this node binds (sinks bind none).
    pub output: Option<String>,
    /// Variable names consumed (array-valued dataflow only).
    pub inputs: Vec<String>,
    /// Buffer the node reads from or writes to, when applicable.
    pub buffer: Option<String>,
    /// Cost estimate (static, or measured once profiling data exists).
    pub cost: f64,
    /// The expression (for `let` nodes) — the partitioner's consumer (the
    /// JIT) needs it to build fragments.
    pub expr: Option<Expr>,
    /// For `write`/`scatter` sinks: the position/index expression the VM
    /// evaluates when performing the buffer write.
    pub write_pos: Option<Expr>,
}

/// The dependency graph of one iteration.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    nodes: Vec<Node>,
    /// For each node, ids of nodes producing its inputs.
    producers: Vec<Vec<NodeId>>,
    /// For each node, ids of nodes consuming its output.
    consumers: Vec<Vec<NodeId>>,
}

impl DepGraph {
    /// Build the graph from (normalized) statements.
    ///
    /// `let` bindings whose expression is a skeleton become nodes; `write`
    /// and `scatter` statements become sink nodes; scalar assignments,
    /// `if`/`loop`/`break` are skipped (they stay with the interpreter).
    /// Nested `let` bodies are walked recursively.
    pub fn from_stmts(stmts: &[Stmt]) -> DepGraph {
        let mut g = DepGraph::default();
        g.walk(stmts);
        g.link();
        g
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Let { name, expr, body } => {
                    if expr.op_class() != OpClass::Scalar {
                        self.push_node(
                            expr_label(expr),
                            expr.op_class(),
                            Some(name.clone()),
                            array_inputs(expr),
                            buffer_of(expr),
                            expr.static_cost(),
                            Some(expr.clone()),
                            None,
                        );
                    }
                    self.walk(body);
                }
                Stmt::Write { target, value, pos } => {
                    self.push_node(
                        format!("write {target}"),
                        OpClass::Write,
                        None,
                        expr_vars(value),
                        Some(target.clone()),
                        1.0,
                        None,
                        Some(pos.clone()),
                    );
                }
                Stmt::Scatter {
                    target,
                    indices,
                    value,
                    ..
                } => {
                    let mut inputs = expr_vars(indices);
                    inputs.extend(expr_vars(value));
                    self.push_node(
                        format!("scatter {target}"),
                        OpClass::Random,
                        None,
                        inputs,
                        Some(target.clone()),
                        4.0,
                        None,
                        Some(indices.clone()),
                    );
                }
                Stmt::Loop(body) => self.walk(body),
                Stmt::If { then, els, .. } => {
                    self.walk(then);
                    self.walk(els);
                }
                Stmt::Assign { .. } | Stmt::DeclareMut { .. } | Stmt::Break | Stmt::ExprStmt(_) => {
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_node(
        &mut self,
        label: String,
        class: OpClass,
        output: Option<String>,
        inputs: Vec<String>,
        buffer: Option<String>,
        cost: f64,
        expr: Option<Expr>,
        write_pos: Option<Expr>,
    ) {
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            label,
            class,
            output,
            inputs,
            buffer,
            cost,
            expr,
            write_pos,
        });
    }

    fn link(&mut self) {
        let by_output: HashMap<&str, NodeId> = self
            .nodes
            .iter()
            .filter_map(|n| n.output.as_deref().map(|o| (o, n.id)))
            .collect();
        self.producers = vec![Vec::new(); self.nodes.len()];
        self.consumers = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for input in &n.inputs {
                if let Some(&p) = by_output.get(input.as_str()) {
                    if p != n.id {
                        self.producers[n.id].push(p);
                        self.consumers[p].push(n.id);
                    }
                }
            }
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Ids of nodes producing `id`'s inputs.
    pub fn producers(&self, id: NodeId) -> &[NodeId] {
        &self.producers[id]
    }

    /// Ids of nodes consuming `id`'s output.
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.consumers[id]
    }

    /// Undirected neighborhood (producers ∪ consumers).
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = self.producers[id].clone();
        for &c in &self.consumers[id] {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Replace node costs, e.g. with measured profile data keyed by the
    /// bound variable name (sinks are keyed by `write <buffer>`).
    pub fn apply_costs(&mut self, costs: &HashMap<String, f64>) {
        for n in &mut self.nodes {
            let key = n.output.clone().unwrap_or_else(|| n.label.clone());
            if let Some(&c) = costs.get(&key) {
                n.cost = c;
            }
        }
    }

    /// Distinct external inputs + outputs of a node set — the §III-B
    /// "inputs/intermediates per function" count the TLB heuristic bounds.
    pub fn io_count(&self, ids: &[NodeId]) -> usize {
        let in_set = |id: NodeId| ids.contains(&id);
        let mut names: Vec<&str> = Vec::new();
        for &id in ids {
            let n = &self.nodes[id];
            // External inputs: consumed vars produced outside the set.
            for input in &n.inputs {
                let produced_inside = self.producers[id]
                    .iter()
                    .any(|&p| in_set(p) && self.nodes[p].output.as_deref() == Some(input));
                if !produced_inside && !names.contains(&input.as_str()) {
                    names.push(input);
                }
            }
            // Buffers read/written count as IO.
            if let Some(b) = &n.buffer {
                if !names.contains(&b.as_str()) {
                    names.push(b);
                }
            }
            // Outputs consumed outside the set.
            if let Some(o) = &n.output {
                let escapes =
                    self.consumers[id].iter().any(|&c| !in_set(c)) || self.consumers[id].is_empty();
                if escapes && !names.contains(&o.as_str()) {
                    names.push(o);
                }
            }
        }
        names.len()
    }
}

/// Variables referenced from *scalar* positions of a statement list: loop
/// counters (`i := i + len(a)`), `if` conditions, read/write positions,
/// fold initializers and captured lambda scalars. A region-bound variable
/// appearing here must escape any compiled fragment even when no graph
/// node consumes it — the interpreter needs its value.
pub fn scalar_uses(stmts: &[Stmt]) -> std::collections::HashSet<String> {
    let mut out = std::collections::HashSet::new();
    collect_scalar_uses(stmts, &mut out);
    out
}

fn collect_scalar_uses(stmts: &[Stmt], out: &mut std::collections::HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { expr, .. } | Stmt::ExprStmt(expr) => {
                out.extend(expr.free_vars());
            }
            Stmt::Let { expr, body, .. } => {
                collect_expr_scalar_uses(expr, out);
                collect_scalar_uses(body, out);
            }
            Stmt::Write { pos, .. } => out.extend(pos.free_vars()),
            Stmt::Scatter { .. } | Stmt::DeclareMut { .. } | Stmt::Break => {}
            Stmt::Loop(body) => collect_scalar_uses(body, out),
            Stmt::If { cond, then, els } => {
                out.extend(cond.free_vars());
                collect_scalar_uses(then, out);
                collect_scalar_uses(els, out);
            }
        }
    }
}

fn collect_expr_scalar_uses(e: &Expr, out: &mut std::collections::HashSet<String>) {
    match e {
        Expr::Read { pos, len, .. } => {
            out.extend(pos.free_vars());
            if let Some(l) = len {
                out.extend(l.free_vars());
            }
        }
        Expr::Fold { init, .. } => out.extend(init.free_vars()),
        Expr::Gen { len, .. } => out.extend(len.free_vars()),
        Expr::Map { f, .. } | Expr::Filter { p: f, .. } => {
            // Captured (non-parameter) scalars inside lambda bodies.
            for v in f.body.free_vars() {
                if !f.params.contains(&v) {
                    out.insert(v);
                }
            }
        }
        Expr::Len(inner) => out.extend(inner.free_vars()),
        _ => {}
    }
}

fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Map { f, .. } => format!("map (\\{} -> …)", f.params.join(" ")),
        Expr::Filter { .. } => "filter".to_string(),
        Expr::Fold { r, .. } => format!("fold {}", r.name()),
        Expr::Read { data, .. } => format!("read {data}"),
        Expr::Gather { data, .. } => format!("gather {data}"),
        Expr::Gen { .. } => "gen".to_string(),
        Expr::Condense(_) => "condense".to_string(),
        Expr::Merge { kind, .. } => format!("merge {}", kind.name()),
        other => print_expr(other),
    }
}

/// Array-valued variable inputs of a skeleton (scalar counters excluded:
/// read positions and fold inits do not create dataflow edges).
fn array_inputs(e: &Expr) -> Vec<String> {
    match e {
        Expr::Map { inputs, .. } | Expr::Filter { inputs, .. } => {
            inputs.iter().flat_map(expr_vars).collect()
        }
        Expr::Fold { input, .. } | Expr::Condense(input) => expr_vars(input),
        Expr::Gather { indices, .. } => expr_vars(indices),
        Expr::Merge { left, right, .. } => {
            let mut v = expr_vars(left);
            v.extend(expr_vars(right));
            v
        }
        Expr::Read { .. } | Expr::Gen { .. } => Vec::new(),
        _ => Vec::new(),
    }
}

fn expr_vars(e: &Expr) -> Vec<String> {
    match e {
        Expr::Var(v) => vec![v.clone()],
        _ => Vec::new(),
    }
}

/// The buffer a `read`/`gather` touches (writes record theirs at node
/// construction).
fn buffer_of(e: &Expr) -> Option<String> {
    match e {
        Expr::Read { data, .. } | Expr::Gather { data, .. } => Some(data.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    /// The Fig. 2 loop body's graph: read, map, filter, condense,
    /// write v, write w.
    fn fig2_graph() -> DepGraph {
        let p = programs::fig2_example();
        let body = programs::loop_body(&p).unwrap();
        DepGraph::from_stmts(body)
    }

    #[test]
    fn fig2_nodes_and_edges() {
        let g = fig2_graph();
        assert_eq!(g.len(), 6);
        let by_label: HashMap<&str, NodeId> =
            g.nodes().iter().map(|n| (n.label.as_str(), n.id)).collect();
        let read = by_label["read some_data"];
        let map = by_label["map (\\x -> …)"];
        let filter = by_label["filter"];
        let condense = by_label["condense"];
        let wv = by_label["write v"];
        let ww = by_label["write w"];
        assert_eq!(g.producers(map), &[read]);
        assert!(g.consumers(map).contains(&filter));
        assert!(g.consumers(map).contains(&wv));
        assert_eq!(g.producers(condense), &[filter]);
        assert_eq!(g.producers(ww), &[condense]);
        assert_eq!(g.consumers(ww), &[] as &[NodeId]);
        // Undirected neighborhood of map covers read, filter, write v.
        let nb = g.neighbors(map);
        assert!(nb.contains(&read) && nb.contains(&filter) && nb.contains(&wv));
    }

    #[test]
    fn control_flow_and_mut_updates_excluded() {
        let g = fig2_graph();
        for n in g.nodes() {
            assert!(
                !n.label.contains(":="),
                "mutable updates must not be nodes: {}",
                n.label
            );
        }
    }

    #[test]
    fn io_counts() {
        let g = fig2_graph();
        let by_label: HashMap<&str, NodeId> =
            g.nodes().iter().map(|n| (n.label.as_str(), n.id)).collect();
        let read = by_label["read some_data"];
        let map = by_label["map (\\x -> …)"];
        let wv = by_label["write v"];
        // {read, map, write v}: buffers some_data + v, output a escapes (to
        // filter) → 3 names.
        assert_eq!(g.io_count(&[read, map, wv]), 3);
        // {map} alone: input `input`, output `a` → 2.
        assert_eq!(g.io_count(&[map]), 2);
    }

    #[test]
    fn apply_costs_overrides() {
        let mut g = fig2_graph();
        let mut costs = HashMap::new();
        costs.insert("a".to_string(), 100.0); // map binds `a`
        costs.insert("write v".to_string(), 9.0);
        g.apply_costs(&costs);
        let map = g
            .nodes()
            .iter()
            .find(|n| n.output.as_deref() == Some("a"))
            .unwrap();
        assert_eq!(map.cost, 100.0);
        let wv = g.nodes().iter().find(|n| n.label == "write v").unwrap();
        assert_eq!(wv.cost, 9.0);
    }

    #[test]
    fn empty_graph() {
        let g = DepGraph::from_stmts(&[]);
        assert!(g.is_empty());
        assert_eq!(g.io_count(&[]), 0);
    }
}
